"""Figure 5: accuracy / performance trade-off as the privacy level changes.

Sweeps the privacy budget epsilon over [0.01, 10] for both DP strategies
(ObliDB back-end, query Q2, all other parameters at their defaults) and
reports the average L1 error and average QET per epsilon, alongside the
constant naive-strategy baselines.

Expected shape (paper's Figure 5):

* DP-Timer's error *decreases* as epsilon grows (less noise -> fewer delayed
  records);
* DP-ANT's error *increases* as epsilon grows (less comparison noise -> it
  waits for the full theta records before synchronizing), and both flatten
  out between epsilon = 1 and 10;
* both strategies' QET decreases as epsilon grows (fewer dummy records).
"""

from __future__ import annotations

import os

from benchmarks.conftest import BENCH_QUERY_INTERVAL, BENCH_SCALE, BENCH_SEED, emit_report
from repro.analysis.tradeoff import privacy_tradeoff_series
from repro.simulation.experiment import run_privacy_sweep
from repro.simulation.reporting import format_figure_series

EPSILONS = tuple(
    float(x)
    for x in os.environ.get("REPRO_BENCH_EPSILONS", "0.01,0.1,0.5,1.0,5.0,10.0").split(",")
)


def _run_sweep():
    return run_privacy_sweep(
        epsilons=EPSILONS,
        backend="oblidb",
        scale=BENCH_SCALE,
        query_interval=BENCH_QUERY_INTERVAL,
        seed=BENCH_SEED,
    )


def test_figure5_privacy_tradeoff(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    series = privacy_tradeoff_series(sweep, query_name="Q2")

    error_series = {name: data["error"] for name, data in series.items()}
    qet_series = {name: data["qet"] for name, data in series.items()}
    text = (
        "Figure 5a: average L1 error vs privacy parameter epsilon (Q2, ObliDB)\n\n"
        + format_figure_series("avg L1 error", error_series, x_label="epsilon", y_label="L1")
        + "\n\nFigure 5b: average QET vs privacy parameter epsilon\n\n"
        + format_figure_series("avg QET (s)", qet_series, x_label="epsilon", y_label="seconds")
    )
    emit_report("figure5_privacy_sweep", text)

    timer_error = dict(series["dp-timer"]["error"])
    ant_error = dict(series["dp-ant"]["error"])
    low, high = min(EPSILONS), max(EPSILONS)
    # DP-Timer: error shrinks as epsilon grows.
    assert timer_error[low] > timer_error[high]
    # DP-ANT: error grows (or at least does not shrink dramatically) with epsilon.
    assert ant_error[high] >= 0.5 * ant_error[low]
    # Performance: both strategies get cheaper (or no worse) with more budget.
    for name in ("dp-timer", "dp-ant"):
        qet = dict(series[name]["qet"])
        assert qet[high] <= qet[low] * 1.05
