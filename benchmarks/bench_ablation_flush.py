"""Ablation: the cache-flush mechanism.

The flush mechanism is the paper's answer to unbounded cache growth for an
indefinitely growing database: every ``f`` steps exactly ``s`` records are
synchronized at zero privacy cost.  This bench runs DP-Timer and DP-ANT with
the flush on and off on a bursty workload (long quiet stretches after bursts,
the worst case for gap draining) and reports the gap/overhead trade-off.

Expected shape: with the flush disabled the maximum logical gap (and the
residual gap once arrivals stop) is larger; with the flush enabled the gap is
bounded and eventually drains to zero, at the price of extra dummy records.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.registry import make_strategy
from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.generator import bursty_arrivals

SCHEMA = Schema("events", ("sensor_id", "value"))
HORIZON = 6_000


def _run(strategy_name: str, flush: FlushPolicy, seed: int):
    rng = np.random.default_rng(seed)
    arrivals = bursty_arrivals(HORIZON, burst_probability=0.002, burst_length=120, rng=rng)
    # Quiet tail: the last 1500 steps carry no data at all.
    arrivals[-1500:] = [False] * 1500
    strategy = make_strategy(
        strategy_name,
        dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
        rng=np.random.default_rng(seed + 1),
        epsilon=0.5,
        period=30,
        theta=15,
        flush=flush,
    )
    strategy.setup([])
    max_gap = 0
    for t, arrived in enumerate(arrivals, start=1):
        update = (
            Record(values={"sensor_id": 1, "value": float(t)}, arrival_time=t, table="events")
            if arrived
            else None
        )
        strategy.step(t, update)
        max_gap = max(max_gap, strategy.logical_gap)
    return {
        "max_gap": max_gap,
        "final_gap": strategy.logical_gap,
        "dummies": strategy.synced_dummy_total,
        "syncs": strategy.sync_count,
    }


def _run_all():
    flush_on = FlushPolicy(interval=500, size=10)
    flush_off = FlushPolicy.disabled()
    return {
        (name, label): _run(name, policy, seed=11)
        for name in ("dp-timer", "dp-ant")
        for label, policy in (("flush-on", flush_on), ("flush-off", flush_off))
    }


def test_ablation_cache_flush(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = ["Ablation: cache flush on vs off (bursty workload, quiet tail)", ""]
    lines.append(f"{'strategy':<10} {'flush':<10} {'max gap':>8} {'final gap':>10} {'dummies':>9} {'syncs':>7}")
    lines.append("-" * 60)
    for (name, label), stats in outcomes.items():
        lines.append(
            f"{name:<10} {label:<10} {stats['max_gap']:>8} {stats['final_gap']:>10} "
            f"{stats['dummies']:>9} {stats['syncs']:>7}"
        )
    emit_report("ablation_flush", "\n".join(lines))

    for name in ("dp-timer", "dp-ant"):
        with_flush = outcomes[(name, "flush-on")]
        without_flush = outcomes[(name, "flush-off")]
        # The flush drains the cache during the quiet tail.
        assert with_flush["final_gap"] == 0
        assert with_flush["final_gap"] <= without_flush["final_gap"]
        # It pays for that with extra dummy records.
        assert with_flush["dummies"] >= without_flush["dummies"]
