"""Figure 2: per-query L1 error and QET over time (end-to-end comparison).

Regenerates the ten panels of Figure 2: for each back-end and each query, the
L1 error series (top row) and the QET series (bottom row) over the month of
simulated time, for all five synchronization strategies.

Expected shape: SUR/SET errors flat at ~0 (ObliDB) or small noise
(Crypt-epsilon); OTO error grows linearly with time; DP strategies fluctuate
inside a bounded band (no error accumulation).  QET curves grow with the
outsourced data size; SET's grows roughly twice as fast.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.simulation.reporting import format_figure_series


def _series_text(results, queries, value: str) -> str:
    sections = []
    for query in queries:
        series = {}
        for strategy, result in results.items():
            points = (
                result.error_series(query) if value == "error" else result.qet_series(query)
            )
            series[strategy] = points
        label = "L1 error" if value == "error" else "QET (s)"
        sections.append(
            format_figure_series(
                f"{query} {label} over time",
                series,
                x_label="time",
                y_label=label,
                max_points=12,
            )
        )
    return "\n\n".join(sections)


def test_figure2_oblidb_error_and_qet(benchmark, oblidb_results):
    results = benchmark.pedantic(lambda: oblidb_results, rounds=1, iterations=1)
    queries = ("Q1", "Q2", "Q3")
    text = (
        "Figure 2 (c,d,e): ObliDB query error over time\n\n"
        + _series_text(results, queries, "error")
        + "\n\nFigure 2 (h,i,j): ObliDB query execution time over time\n\n"
        + _series_text(results, queries, "qet")
    )
    emit_report("figure2_oblidb", text)

    # No error accumulation for the DP strategies: the late-half mean error
    # must not be dramatically larger than the early-half mean error.
    for strategy in ("dp-timer", "dp-ant"):
        errors = [e for _, e in results[strategy].error_series("Q2")]
        half = len(errors) // 2
        early = sum(errors[:half]) / max(1, half)
        late = sum(errors[half:]) / max(1, len(errors) - half)
        assert late <= max(4.0 * early, early + 30.0)
    # OTO's error does accumulate.
    oto_errors = [e for _, e in results["oto"].error_series("Q2")]
    assert oto_errors[-1] > oto_errors[0]


def test_figure2_crypte_error_and_qet(benchmark, crypte_results):
    results = benchmark.pedantic(lambda: crypte_results, rounds=1, iterations=1)
    queries = ("Q1", "Q2")
    text = (
        "Figure 2 (a,b): Crypt-epsilon query error over time\n\n"
        + _series_text(results, queries, "error")
        + "\n\nFigure 2 (f,g): Crypt-epsilon query execution time over time\n\n"
        + _series_text(results, queries, "qet")
    )
    emit_report("figure2_crypte", text)

    # Crypt-epsilon adds DP answer noise, so even SET/SUR show small errors.
    assert results["set"].mean_l1_error("Q1") >= 0.0
    assert results["oto"].max_l1_error("Q2") > results["dp-ant"].max_l1_error("Q2")
