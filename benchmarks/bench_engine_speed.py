"""Engine-vs-legacy wall-clock benchmark.

Replays a sparse 50,000-tick, 3-table DP-Timer workload twice -- once
through the original per-tick loop (:meth:`Simulation.run_legacy`) and once
through the scheduled-event engine (:meth:`Simulation.run`) -- and records
the wall-clock of each.  On a sparse stream the legacy loop spends almost
all of its time on dead iterations (strategy steps that are no-ops), which
the engine skips entirely, so the speedup grows with the quiet fraction of
the horizon.

The results are emitted to ``BENCH_engine.json`` at the repository root to
seed the performance trajectory across PRs; the test also asserts the
acceptance floor of a 3x speedup and that both paths produce identical
results.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit_report
from repro.core.strategies.flush import FlushPolicy
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record
from repro.query.ast import CountQuery
from repro.query.predicates import RangePredicate
from repro.simulation.simulator import Simulation, SimulationConfig
from repro.workload.stream import GrowingDatabase

HORIZON = 50_000
TABLES = 3
RECORDS_PER_TABLE = 500  # occupancy 1%: the stream is quiet 99% of the time
TIMER_PERIOD = 120  # sparse sync schedule to match the sparse stream
# The acceptance floor is 3x (local margin ~4.6x); shared CI runners set a
# lower smoke floor because wall-clock ratios are noisy there.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def sparse_workloads(seed: int = 0) -> dict[str, GrowingDatabase]:
    """Three sparse streams with a fixed arrival layout per seed."""
    rng = np.random.default_rng(seed)
    workloads: dict[str, GrowingDatabase] = {}
    for index in range(TABLES):
        table = f"Sensor{index}"
        times = np.sort(
            rng.choice(np.arange(1, HORIZON + 1), size=RECORDS_PER_TABLE, replace=False)
        )
        updates: list[Record | None] = [None] * HORIZON
        for t in times:
            t = int(t)
            updates[t - 1] = Record(
                values={"sensor_id": index, "value": t % 97},
                arrival_time=t,
                table=table,
            )
        workloads[table] = GrowingDatabase(table=table, updates=updates)
    return workloads


def build_simulation(workloads) -> Simulation:
    config = SimulationConfig(
        strategy="dp-timer",
        epsilon=0.5,
        timer_period=TIMER_PERIOD,
        flush=FlushPolicy(interval=2000, size=15),
        query_interval=5000,
        seed=7,
    )
    queries = [
        CountQuery(
            table="Sensor0",
            predicate=RangePredicate("value", 10, 60),
            label="Q1",
        )
    ]
    return Simulation(
        edb_factory=lambda: ObliDB(rng=np.random.default_rng(1)),
        workloads=workloads,
        queries=queries,
        config=config,
    )


def test_engine_speedup_over_legacy_loop(bench_settings):
    workloads = sparse_workloads()

    start = time.perf_counter()
    legacy_result = build_simulation(workloads).run_legacy()
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine_result = build_simulation(workloads).run()
    engine_seconds = time.perf_counter() - start

    assert engine_result == legacy_result, "engine run diverged from legacy loop"
    speedup = legacy_seconds / max(engine_seconds, 1e-9)

    payload = {
        "benchmark": "engine_speed",
        "horizon": HORIZON,
        "tables": TABLES,
        "records_per_table": RECORDS_PER_TABLE,
        "strategy": "dp-timer",
        "timer_period": TIMER_PERIOD,
        "legacy_seconds": round(legacy_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(speedup, 2),
        "sync_count": legacy_result.sync_count,
        "total_update_volume": legacy_result.total_update_volume,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit_report(
        "engine_speed",
        "Event-driven engine vs. legacy per-tick loop "
        f"({TABLES} tables x {HORIZON} ticks, {RECORDS_PER_TABLE} records/table)\n\n"
        f"legacy loop : {legacy_seconds:8.3f} s\n"
        f"engine      : {engine_seconds:8.3f} s\n"
        f"speedup     : {speedup:8.2f} x\n"
        f"(results identical: sync_count={legacy_result.sync_count}, "
        f"volume={legacy_result.total_update_volume})",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup, measured {speedup:.2f}x"
    )
