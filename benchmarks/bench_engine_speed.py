"""Engine wall-clock benchmarks: event scheduling and the EDB fast path.

Two comparisons are recorded into ``BENCH_engine.json`` at the repo root:

1. **engine vs legacy loop** -- a sparse 50,000-tick, 3-table DP-Timer
   workload replayed through the original per-tick loop
   (:meth:`Simulation.run_legacy`) and the scheduled-event engine
   (:meth:`Simulation.run`).  On a sparse stream the legacy loop spends
   almost all of its time on dead iterations, which the engine skips.
2. **EDB fast path vs reference** -- a Figure-2-scale dp-timer run (full
   June taxi workload, paper query schedule) on the engine, once with the
   ``reference`` EDB mode (the PR-1 engine baseline: row-at-a-time
   operators) and once with the vectorized ``fast`` mode.  Results are
   asserted bit-identical; the acceptance floor is a 5x speedup.

Shared CI runners set lower smoke floors via the ``REPRO_BENCH_MIN_SPEEDUP``
/ ``REPRO_BENCH_MIN_EDB_SPEEDUP`` knobs because wall-clock ratios are noisy
there.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit_report, merge_bench_json
from repro.core.strategies.flush import FlushPolicy
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record
from repro.query.ast import CountQuery
from repro.query.predicates import RangePredicate
from repro.simulation.runner import CellSpec, run_cell
from repro.simulation.simulator import Simulation, SimulationConfig
from repro.workload.stream import GrowingDatabase

HORIZON = 50_000
TABLES = 3
RECORDS_PER_TABLE = 500  # occupancy 1%: the stream is quiet 99% of the time
TIMER_PERIOD = 120  # sparse sync schedule to match the sparse stream
# The acceptance floor is 3x (local margin ~4.6x); shared CI runners set a
# lower smoke floor because wall-clock ratios are noisy there.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
#: Acceptance floor for the figure-2-scale EDB fast path (local margin ~7x).
MIN_EDB_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_EDB_SPEEDUP", "5.0"))
#: Workload scale of the fast-path comparison (1.0 = the paper's Figure 2).
FIG2_SCALE = float(os.environ.get("REPRO_BENCH_FIG2_SCALE", "1.0"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def sparse_workloads(seed: int = 0) -> dict[str, GrowingDatabase]:
    """Three sparse streams with a fixed arrival layout per seed."""
    rng = np.random.default_rng(seed)
    workloads: dict[str, GrowingDatabase] = {}
    for index in range(TABLES):
        table = f"Sensor{index}"
        times = np.sort(
            rng.choice(np.arange(1, HORIZON + 1), size=RECORDS_PER_TABLE, replace=False)
        )
        updates: list[Record | None] = [None] * HORIZON
        for t in times:
            t = int(t)
            updates[t - 1] = Record(
                values={"sensor_id": index, "value": t % 97},
                arrival_time=t,
                table=table,
            )
        workloads[table] = GrowingDatabase(table=table, updates=updates)
    return workloads


def build_simulation(workloads) -> Simulation:
    config = SimulationConfig(
        strategy="dp-timer",
        epsilon=0.5,
        timer_period=TIMER_PERIOD,
        flush=FlushPolicy(interval=2000, size=15),
        query_interval=5000,
        seed=7,
    )
    queries = [
        CountQuery(
            table="Sensor0",
            predicate=RangePredicate("value", 10, 60),
            label="Q1",
        )
    ]
    return Simulation(
        edb_factory=lambda: ObliDB(rng=np.random.default_rng(1)),
        workloads=workloads,
        queries=queries,
        config=config,
    )


def test_engine_speedup_over_legacy_loop(bench_settings):
    workloads = sparse_workloads()

    start = time.perf_counter()
    legacy_result = build_simulation(workloads).run_legacy()
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine_result = build_simulation(workloads).run()
    engine_seconds = time.perf_counter() - start

    assert engine_result == legacy_result, "engine run diverged from legacy loop"
    speedup = legacy_seconds / max(engine_seconds, 1e-9)

    payload = {
        "benchmark": "engine_speed",
        "horizon": HORIZON,
        "tables": TABLES,
        "records_per_table": RECORDS_PER_TABLE,
        "strategy": "dp-timer",
        "timer_period": TIMER_PERIOD,
        "edb_mode": "fast",
        "legacy_seconds": round(legacy_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(speedup, 2),
        "sync_count": legacy_result.sync_count,
        "total_update_volume": legacy_result.total_update_volume,
    }
    merge_bench_json(OUTPUT_PATH, "engine_speed", payload)

    emit_report(
        "engine_speed",
        "Event-driven engine vs. legacy per-tick loop "
        f"({TABLES} tables x {HORIZON} ticks, {RECORDS_PER_TABLE} records/table)\n\n"
        f"legacy loop : {legacy_seconds:8.3f} s\n"
        f"engine      : {engine_seconds:8.3f} s\n"
        f"speedup     : {speedup:8.2f} x\n"
        f"(results identical: sync_count={legacy_result.sync_count}, "
        f"volume={legacy_result.total_update_volume})",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup, measured {speedup:.2f}x"
    )


def test_edb_fast_path_speedup_figure2(bench_settings):
    """Figure-2-scale dp-timer: vectorized EDB vs the PR-1 engine baseline.

    Both runs use the event-driven engine; only the EDB implementation mode
    differs, so the measured ratio isolates the storage/query-layer rewrite.
    """
    spec = CellSpec(
        strategy="dp-timer",
        backend="oblidb",
        scenario="taxi-june",
        scale=FIG2_SCALE,
        query_interval=360,
        sim_seed=1,
        backend_seed=2,
        workload_seed=2020,
    )
    # Warm the per-process scenario cache so neither timing pays the build.
    run_cell(dataclasses.replace(spec, horizon=10))

    start = time.perf_counter()
    reference_result = run_cell(dataclasses.replace(spec, edb_mode="reference"))
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast_result = run_cell(dataclasses.replace(spec, edb_mode="fast"))
    fast_seconds = time.perf_counter() - start

    assert fast_result.to_dict() == reference_result.to_dict(), (
        "fast EDB mode diverged from the reference mode"
    )
    speedup = reference_seconds / max(fast_seconds, 1e-9)

    payload = {
        "benchmark": "edb_fast_path_figure2",
        "strategy": "dp-timer",
        "backend": "oblidb",
        "scenario": "taxi-june",
        "scale": FIG2_SCALE,
        "query_interval": 360,
        "modes_compared": ["reference", "fast"],
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 2),
        "sync_count": fast_result.sync_count,
        "total_update_volume": fast_result.total_update_volume,
    }
    merge_bench_json(OUTPUT_PATH, "edb_fast_path_figure2", payload)

    emit_report(
        "edb_fast_path_figure2",
        "Vectorized EDB fast path vs reference mode "
        f"(figure-2-scale dp-timer, scale={FIG2_SCALE})\n\n"
        f"reference mode : {reference_seconds:8.3f} s\n"
        f"fast mode      : {fast_seconds:8.3f} s\n"
        f"speedup        : {speedup:8.2f} x\n"
        f"(results identical: sync_count={fast_result.sync_count}, "
        f"volume={fast_result.total_update_volume})",
    )

    assert speedup >= MIN_EDB_SPEEDUP, (
        f"expected >= {MIN_EDB_SPEEDUP}x EDB speedup, measured {speedup:.2f}x"
    )
