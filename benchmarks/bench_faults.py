"""Self-healing fleet: fault-free supervision overhead and recovery latency.

Emits ``BENCH_faults.json`` at the repository root with two sections:

* ``fault_free_overhead`` -- the supervision tax nobody should notice: the
  same encrypted 2-shard drive (setup + update/query ticks, sized to fit
  one checkpoint window of the default cadence) run plain and under
  ``supervisor="on"``.  The headline assertion pins ``ratio <=
  REPRO_BENCH_MAX_FAULT_OVERHEAD`` (default 1.05x): staging journal
  entries in memory and flushing at snapshot boundaries keeps the hot
  path at dictionary-insert cost.  Byte-equality of every observable is
  asserted on the side -- the ratio is only meaningful if supervision
  stayed invisible.

  Resolving a few percent on a noisy 1-CPU container takes a deliberate
  protocol: both routers are driven *in lockstep*, tick by tick, with the
  timed arm order alternating every tick, so each comparison window is
  milliseconds wide and the container's +-10% wall-clock drift hits both
  arms alike.  The ratio is the median over ``REPRO_BENCH_FAULT_ROUNDS``
  lockstep passes after one warmup pass, with the allocator's cyclic GC
  paused during measurement (the journal retains the in-flight window's
  records for replay; gen-2 collections would otherwise land on whichever
  arm the threshold falls in and swamp the signal).  A single retry is
  allowed -- the floor is a regression tripwire, not a latency SLO.

* ``recovery_latency`` -- per fault kind (kill, delay, drop, lostshm,
  raise, tornsnap) against persistent worker processes: wall-clock spent
  inside recovery (teardown, snapshot restore, journal replay, worker
  respawn) per heal.  Informational -- absolute numbers depend on the
  container -- with correctness pinned: every kind heals, answers match
  the fault-free twin's.

Knobs: ``REPRO_BENCH_MAX_FAULT_OVERHEAD`` (default 1.05),
``REPRO_BENCH_FAULT_ROUNDS`` (lockstep passes per attempt, default 5),
``REPRO_BENCH_FAULT_TIMEOUT_S`` (pipe deadline for the latency section;
the delay/drop kinds wait it out, default 1.0).
"""

from __future__ import annotations

import gc
import os
import statistics
import time
from pathlib import Path

from benchmarks.conftest import bench_environment, emit_report, merge_bench_json
from repro.edb.records import Record
from repro.edb.router import ShardRouter
from repro.fleet.supervisor import SupervisorConfig
from repro.query.ast import CountQuery
from repro.simulation.runner import make_backend
from repro.testing.chaos import FAULT_KINDS

MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_FAULT_OVERHEAD", "1.05"))
ROUNDS = int(os.environ.get("REPRO_BENCH_FAULT_ROUNDS", "5"))
TIMEOUT_S = float(os.environ.get("REPRO_BENCH_FAULT_TIMEOUT_S", "1.0"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

QUERY = CountQuery(table="events", label="Q1")

#: Overhead workload: 2 encrypted ObliDB shards, serial executor (no
#: process noise), 24 update ticks of 800 records with a query every 4 --
#: 31 mutating commands per shard, inside the default 32-command
#: checkpoint cadence, so the measured tax is pure supervision (dispatch,
#: fault-point check, staged journaling), not the amortized checkpoint.
SETUP_N, TICKS, BATCH = 2000, 24, 800


def _records(n: int, start: int = 0, t: int = 0) -> list[Record]:
    return [
        Record(
            values={"key": (start + i) % 7, "value": start + i},
            arrival_time=t,
            table="events",
        )
        for i in range(n)
    ]


def _router(executor="serial", supervisor=None, faults="") -> ShardRouter:
    shards = [
        make_backend("oblidb", seed=40 + i, simulate_encryption=True)()
        for i in range(2)
    ]
    return ShardRouter(
        shards,
        route_seed=9,
        executor=executor,
        supervisor=supervisor,
        faults=faults,
    )


def _drive(router: ShardRouter, ticks: int = TICKS, batch: int = BATCH):
    observed = [router.setup(_records(SETUP_N)).records_added]
    for t in range(1, ticks + 1):
        update = router.update(_records(batch, start=SETUP_N + batch * t, t=t), t)
        observed.append((update.records_added, update.bytes_added))
        if t % 4 == 0:
            result = router.query(QUERY, time=t)
            observed.append((result.answer, result.qet_seconds))
    return observed


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _lockstep_pass() -> tuple[float, float]:
    """One tick-interleaved plain/supervised drive; returns arm totals."""
    plain, supervised = _router(), _router(supervisor="on")
    plain_obs, supervised_obs = [], []
    totals = {"plain": 0.0, "supervised": 0.0}
    observed = {"plain": plain_obs, "supervised": supervised_obs}
    try:
        result, elapsed = _timed(lambda: plain.setup(_records(SETUP_N)))
        plain_obs.append(result.records_added)
        totals["plain"] += elapsed
        result, elapsed = _timed(lambda: supervised.setup(_records(SETUP_N)))
        supervised_obs.append(result.records_added)
        totals["supervised"] += elapsed
        for t in range(1, TICKS + 1):
            batch = _records(BATCH, start=SETUP_N + BATCH * t, t=t)

            def tick(router):
                update = router.update(batch, t)
                out = [(update.records_added, update.bytes_added)]
                if t % 4 == 0:
                    q = router.query(QUERY, time=t)
                    out.append((q.answer, q.qet_seconds))
                return out

            arms = [("plain", plain), ("supervised", supervised)]
            if t % 2:  # alternate order so phase-locked stalls cancel
                arms.reverse()
            for name, router in arms:
                out, elapsed = _timed(lambda: tick(router))
                observed[name].extend(out)
                totals[name] += elapsed
    finally:
        plain.close()
        supervised.close()
    assert supervised_obs == plain_obs  # supervision is observably invisible
    return totals["plain"], totals["supervised"]


def _overhead_attempt() -> dict:
    gc.collect()
    gc.disable()
    try:
        _lockstep_pass()  # warmup: imports, allocator growth, code caches
        passes = [_lockstep_pass() for _ in range(ROUNDS)]
    finally:
        gc.enable()
    ratios = [supervised / plain for plain, supervised in passes]
    plain = min(plain for plain, _ in passes)
    supervised = min(supervised for _, supervised in passes)
    ratio = statistics.median(ratios)
    commands_per_shard = 1 + TICKS + TICKS // 4
    return {
        "workload": {
            "backend": "oblidb",
            "simulate_encryption": True,
            "n_shards": 2,
            "executor": "serial",
            "setup_records": SETUP_N,
            "ticks": TICKS,
            "batch": BATCH,
            "mutating_commands_per_shard": commands_per_shard,
        },
        "rounds": ROUNDS,
        "plain_seconds": plain,
        "supervised_seconds": supervised,
        "pass_ratios": ratios,
        "overhead_ratio": ratio,
        "overhead_per_command_us": (ratio - 1.0) * plain / commands_per_shard * 1e6,
        "max_overhead_ratio": MAX_OVERHEAD,
        "gc_paused_during_measurement": True,
    }


def _overhead() -> dict:
    outcome = _overhead_attempt()
    if outcome["overhead_ratio"] > MAX_OVERHEAD:  # one retry: tripwire, not SLO
        retry = _overhead_attempt()
        if retry["overhead_ratio"] < outcome["overhead_ratio"]:
            outcome = retry
        outcome["retried"] = True
    return outcome


def _recovery_latency() -> list[dict]:
    config = SupervisorConfig(timeout_s=TIMEOUT_S, backoff_base_s=0.01)
    reference = _router(executor="processes")
    try:
        expected = _drive(reference, ticks=6, batch=50)
    finally:
        reference.close()
    results = []
    for kind in sorted(FAULT_KINDS):
        chaotic = _router(
            executor="processes", supervisor=config, faults=f"{kind}:0@3"
        )
        try:
            start = time.perf_counter()
            observed = _drive(chaotic, ticks=6, batch=50)
            elapsed = time.perf_counter() - start
            health = chaotic.measured.health()
        finally:
            chaotic.close()
        assert observed == expected, f"{kind} recovery changed an observable"
        assert health["recoveries"] == 1, f"{kind} did not heal exactly once"
        results.append(
            {
                "kind": kind,
                "recovery_seconds": health["recovery_seconds"],
                "replayed_batches": health["replayed_batches"],
                "run_seconds": elapsed,
            }
        )
    return results


def test_fault_free_supervision_overhead(benchmark):
    outcome = benchmark.pedantic(_overhead, rounds=1, iterations=1)

    lines = [
        "Fault-free supervision overhead "
        f"(2 encrypted ObliDB shards, {TICKS} ticks x {BATCH} records, "
        f"median of {ROUNDS} tick-lockstep passes)",
        "",
        f"  plain drive          {outcome['plain_seconds'] * 1e3:9.1f} ms (best)",
        f"  supervised drive     {outcome['supervised_seconds'] * 1e3:9.1f} ms (best)",
        f"  overhead ratio       {outcome['overhead_ratio']:9.3f}x"
        f"  (floor: <= {MAX_OVERHEAD}x)",
        f"  per mutating command {outcome['overhead_per_command_us']:9.1f} us",
    ]
    emit_report("fault_overhead", "\n".join(lines))

    merge_bench_json(
        OUTPUT_PATH,
        "fault_free_overhead",
        {**outcome, "environment": bench_environment()},
    )

    assert outcome["overhead_ratio"] <= MAX_OVERHEAD, (
        f"fault-free supervision overhead {outcome['overhead_ratio']:.3f}x "
        f"exceeds the {MAX_OVERHEAD}x floor"
    )


def test_recovery_latency_per_fault_kind(benchmark):
    results = benchmark.pedantic(_recovery_latency, rounds=1, iterations=1)

    lines = [
        "Recovery latency by fault kind "
        f"(2 encrypted shards, worker processes, {TIMEOUT_S}s pipe deadline)",
        "",
    ]
    for row in results:
        lines.append(
            f"  {row['kind']:<9} heal {row['recovery_seconds'] * 1e3:8.1f} ms"
            f"  ({row['replayed_batches']} batches replayed,"
            f" run {row['run_seconds'] * 1e3:7.1f} ms)"
        )
    emit_report("fault_recovery", "\n".join(lines))

    merge_bench_json(
        OUTPUT_PATH,
        "recovery_latency",
        {
            "timeout_s": TIMEOUT_S,
            "kinds": results,
            "environment": bench_environment(),
        },
    )
