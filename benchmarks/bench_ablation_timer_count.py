"""Ablation: what DP-Timer's Perturb operator counts (window vs cache).

Algorithm 1 as printed perturbs the number of records received *since the
last synchronization*.  Because the Laplace noise is symmetric, rounds whose
noisy count comes out low leave a backlog in the local cache that no later
round explicitly drains, so the logical gap behaves like a reflected random
walk and its time-average grows with sqrt(#syncs) -- exactly the O(2 sqrt(k)
/ eps) behaviour of Theorem 6, but noticeably larger than the ~10-record mean
gap reported in the paper's Table 5.

Perturbing the *current cache length* instead continually re-targets the
backlog, keeping the mean gap at a few records (matching the paper's
empirical numbers) at the price of a slightly larger dummy overhead and of a
weaker formal composition argument (one record may influence several window
outputs).  This bench quantifies that trade-off.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.generator import poisson_arrivals

SCHEMA = Schema("events", ("sensor_id", "value"))
HORIZON = 20_000
ARRIVAL_RATE = 0.43
EPSILON = 0.5
PERIOD = 30


def _run(count_mode: str, seed: int):
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(HORIZON, rate=ARRIVAL_RATE, rng=rng)
    strategy = DPTimerStrategy(
        dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
        epsilon=EPSILON,
        period=PERIOD,
        flush=FlushPolicy(interval=2000, size=15),
        rng=np.random.default_rng(seed + 1),
        count_mode=count_mode,
    )
    strategy.setup([])
    gaps = []
    for t, arrived in enumerate(arrivals, start=1):
        update = (
            Record(values={"sensor_id": 1, "value": float(t)}, arrival_time=t, table="events")
            if arrived
            else None
        )
        strategy.step(t, update)
        gaps.append(strategy.logical_gap)
    return {
        "mean_gap": float(np.mean(gaps)),
        "max_gap": int(np.max(gaps)),
        "dummies": strategy.synced_dummy_total,
        "syncs": strategy.sync_count,
    }


def _run_all():
    return {mode: _run(mode, seed=17) for mode in ("window", "cache")}


def test_ablation_timer_count_mode(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [
        f"Ablation: DP-Timer Perturb count mode (eps={EPSILON}, T={PERIOD}, "
        f"{HORIZON} steps at {ARRIVAL_RATE} arrivals/step)",
        "",
        f"{'count mode':<12} {'mean gap':>10} {'max gap':>9} {'dummies':>9} {'syncs':>7}",
        "-" * 52,
    ]
    for mode, stats in outcomes.items():
        lines.append(
            f"{mode:<12} {stats['mean_gap']:>10.2f} {stats['max_gap']:>9} "
            f"{stats['dummies']:>9} {stats['syncs']:>7}"
        )
    lines.append("")
    lines.append(
        "'window' is Algorithm 1 verbatim (gap follows the Theorem 6 random-walk "
        "shape); 'cache' reproduces the small mean gaps of the paper's Table 5."
    )
    emit_report("ablation_timer_count", "\n".join(lines))

    window, cache = outcomes["window"], outcomes["cache"]
    # Cache-length counting keeps the backlog (and hence the gap) much smaller.
    assert cache["mean_gap"] < window["mean_gap"]
    assert cache["mean_gap"] < 20
    # Both variants synchronize on the same fixed schedule.
    assert abs(cache["syncs"] - window["syncs"]) <= 2
