"""Fleet/shard scaling benchmark: throughput vs shard count.

Emits ``BENCH_fleet.json`` at the repository root with two sections:

1. **scatter_gather_equality** -- a million-user-shaped record stream is
   ingested into a plain ObliDB and into :class:`ShardRouter`\\ s with 2 and
   4 shards; at every checkpoint the gathered count / group-by / join-count
   answers must equal the unsharded answers *exactly*, while the gathered
   (simulated) QET shrinks with the shard count.
2. **end_to_end** -- the same ``million-users`` scenario run end to end
   through the grid runner (dp-timer, 2 owners) at ``n_shards`` in {1, 2, 4}:
   per-cell results must be identical except for the (smaller) simulated
   QETs, and the section records ingest wall-clock, records/second, and the
   per-shard-count mean QET whose ratio is the throughput-scaling headline.

The acceptance floor (simulated mean-QET speedup of the 4-shard run over the
unsharded run) defaults to 2x; CI smoke runs at a lower scale override it via
``REPRO_BENCH_MIN_FLEET_QET_SPEEDUP``.

3. **measured_qet** -- the *measured* counterpart of the simulated model: a
   large hash-partitioned table is queried through **process-executor**
   routers (persistent per-shard worker processes) at K in {1, 2, 4} and the
   section records real wall-clock per gathered query, the router's
   :class:`~repro.edb.router.WallClockStats` ledger (per-shard worker busy
   seconds and the serialization overhead of the process boundary), and a
   thread-executor contrast at K=4 -- with gathered answers asserted
   byte-identical to sequential execution first.  The acceptance floor
   (``REPRO_BENCH_MIN_MEASURED_QET_SPEEDUP``; the default 2x assumes >= 4
   CPUs, CI runners with fewer cores override it) is only meaningful when
   workers can actually run in parallel, so it is enforced on >= 2 usable
   CPUs and recorded as ``"skipped_single_cpu"`` otherwise -- the numbers
   themselves are always recorded honestly, and ``affinity_cpus`` is stamped
   into the payload so a reader can judge the scaling context at a glance.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import (
    bench_environment,
    emit_report,
    merge_bench_json,
    usable_cpus,
)
from repro.edb.records import Record
from repro.edb.router import ShardRouter
from repro.query.sql import parse_query
from repro.simulation.runner import (
    CellSpec,
    make_backend,
    make_sharded_backend,
    run_cell,
)
from repro.workload.scenarios import build_scenario, scenario_queries

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
FLEET_SCALE = float(os.environ.get("REPRO_BENCH_FLEET_SCALE", "0.6"))
MIN_QET_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FLEET_QET_SPEEDUP", "2.0"))
MIN_MEASURED_QET_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_MEASURED_QET_SPEEDUP", "2.0")
)
SHARD_COUNTS = (1, 2, 4)
N_OWNERS = int(os.environ.get("REPRO_BENCH_FLEET_OWNERS", "2"))
#: Row count of the measured-wall-clock section's table (scaled).
MEASURED_ROWS = int(120_000 * FLEET_SCALE)
#: Query-loop repetitions for stable measured timings.
MEASURED_REPEATS = int(os.environ.get("REPRO_BENCH_MEASURED_REPEATS", "20"))


def _queries():
    """The scenario's own Q1/Q2 plus a join shape for the scatter-gather check."""
    return scenario_queries("million-users") + [
        parse_query(
            "SELECT COUNT(*) FROM Users INNER JOIN Users ON Users.region = Users.region",
            label="Q3",
        ),
    ]


def _make_edb(n_shards: int):
    """Exactly the back-ends grid runs use, so both sections measure the same
    construction path (shard 0 seeded like the unsharded back-end)."""
    if n_shards == 1:
        return make_backend("oblidb", seed=1)()
    return make_sharded_backend("oblidb", n_shards, seed=1)()


def test_scatter_gather_equality_and_query_scaling(bench_settings):
    """Merged answers equal unsharded answers at every checkpoint."""
    workload = build_scenario("million-users", seed=7, scale=min(FLEET_SCALE, 0.5))[
        "Users"
    ]
    records = [record for _, record in workload.arrivals()]
    queries = _queries()

    edbs = {k: _make_edb(k) for k in SHARD_COUNTS}
    for edb in edbs.values():
        edb.setup([])

    checkpoint_every = max(1, len(records) // 12)
    checkpoints = 0
    qet_sums = {k: 0.0 for k in SHARD_COUNTS}
    for index, record in enumerate(records, start=1):
        for edb in edbs.values():
            edb.insert_many({"Users": [record]}, time=index)
        if index % checkpoint_every == 0 or index == len(records):
            checkpoints += 1
            for query in queries:
                expected = edbs[1].query(query, time=index)
                for k in SHARD_COUNTS[1:]:
                    gathered = edbs[k].query(query, time=index)
                    assert gathered.answer == expected.answer, (
                        f"{query.name} diverged at checkpoint {index} with {k} shards"
                    )
                    qet_sums[k] += gathered.qet_seconds
                qet_sums[1] += expected.qet_seconds

    mean_qets = {k: qet_sums[k] / (checkpoints * len(queries)) for k in SHARD_COUNTS}
    payload = {
        "benchmark": "scatter_gather_equality",
        "backend": "oblidb",
        "edb_mode": "fast",
        "records": len(records),
        "checkpoints": checkpoints,
        "queries": [q.name for q in queries],
        "answers_equal_at_every_checkpoint": True,
        "mean_qet_seconds_by_shards": {str(k): round(v, 4) for k, v in mean_qets.items()},
    }
    merge_bench_json(OUTPUT_PATH, "scatter_gather_equality", payload)

    emit_report(
        "fleet_scatter_gather",
        f"Scatter-gather over {len(records)} million-user records, "
        f"{checkpoints} checkpoints x {len(queries)} queries\n\n"
        + "\n".join(
            f"{k} shard(s): mean simulated QET {mean_qets[k]:8.4f} s"
            for k in SHARD_COUNTS
        )
        + "\nanswers equal to the unsharded back-end at every checkpoint",
    )
    # More shards never slow a linear scan; the join decomposition makes the
    # gathered Q3 dramatically cheaper than the quadratic unsharded charge.
    assert mean_qets[4] < mean_qets[2] < mean_qets[1]


def _measured_records(n: int) -> list[Record]:
    rng = np.random.default_rng(17)
    users = rng.integers(1, 200_000, size=n)
    regions = rng.integers(1, 40, size=n)
    values = rng.integers(0, 100, size=n)
    return [
        Record(
            values={
                "user_id": int(users[i]),
                "region": int(regions[i]),
                "value": int(values[i]),
            },
            arrival_time=i,
            table="Users",
        )
        for i in range(n)
    ]


def _build_router(n_shards: int, executor: str) -> ShardRouter:
    factory = make_sharded_backend(
        "oblidb", max(n_shards, 1), seed=1, shard_executor=executor
    )
    router = factory()
    router.setup([])
    return router


def test_measured_concurrent_query_wall_clock(bench_settings):
    """Real wall-clock QET at K in {1, 2, 4}: worker processes vs the loop.

    The end-to-end section's QET speedup is *simulated* (max over shards);
    this section measures what the coordinator actually waits per gathered
    query with the **process executor** -- per-shard worker processes with
    no GIL in common -- pins the gathered answers byte-identical to
    sequential execution first, and records a thread-executor contrast at
    K=4 so the GIL cost of in-process fan-out stays visible.
    """
    records = _measured_records(MEASURED_ROWS)
    queries = [
        parse_query(
            "SELECT COUNT(*) FROM Users WHERE value BETWEEN 10 AND 70", label="Q1"
        ),
        parse_query(
            "SELECT region, COUNT(*) FROM Users GROUP BY region", label="Q2"
        ),
        parse_query(
            "SELECT COUNT(*) FROM Users INNER JOIN Users "
            "ON Users.region = Users.region",
            label="Q3",
        ),
    ]

    routers = {k: _build_router(k, "processes") for k in SHARD_COUNTS}
    serial_checks = {k: _build_router(k, "serial") for k in SHARD_COUNTS}
    threads_contrast = _build_router(4, "threads")
    everyone = (*routers.values(), *serial_checks.values(), threads_contrast)
    try:
        chunk = 2048
        for start in range(0, len(records), chunk):
            batch = {"Users": records[start : start + chunk]}
            for router in everyone:
                router.insert_many(batch, time=start // chunk + 1)

        # Byte-identical gathered answers: worker processes vs sequential.
        for k in SHARD_COUNTS:
            for query in queries:
                assert routers[k].query(query, time=0) == serial_checks[k].query(
                    query, time=0
                ), f"executor divergence for {query.name} at K={k}"

        # Call counters share one attempt-counting basis across the whole
        # protocol surface (setup included); snapshot before the timed phase
        # resets the ledger.
        protocol_calls = {
            str(k): {
                "setup": routers[k].measured.setup_calls,
                "update": routers[k].measured.update_calls,
                "query": routers[k].measured.query_calls,
            }
            for k in SHARD_COUNTS
        }

        def _measure(router) -> float:
            router.measured.reset()
            start = time.perf_counter()
            for _ in range(MEASURED_REPEATS):
                for query in queries:
                    router.query(query, time=0)
            return time.perf_counter() - start

        wall = {k: _measure(router) for k, router in routers.items()}
        threads_wall = _measure(threads_contrast)

        per_query = {
            k: wall[k] / (MEASURED_REPEATS * len(queries)) for k in SHARD_COUNTS
        }
        measured_speedup = wall[1] / max(wall[4], 1e-9)
        cpus = usable_cpus()
        floor = (
            "enforced"
            if cpus >= 2
            else "skipped_single_cpu"  # workers cannot overlap on one CPU;
            # the measured numbers are still recorded honestly below.
        )
        ledger = routers[4].measured
        payload = {
            "benchmark": "measured_concurrent_qet",
            "backend": "oblidb",
            "edb_mode": "fast",
            "shard_executor": "processes",
            "affinity_cpus": cpus,
            "records": len(records),
            "repeats": MEASURED_REPEATS,
            "queries": [q.name for q in queries],
            "answers_byte_identical_to_sequential": True,
            "measured_wall_seconds_by_shards": {
                str(k): round(wall[k], 4) for k in SHARD_COUNTS
            },
            "measured_seconds_per_query_by_shards": {
                str(k): round(per_query[k], 6) for k in SHARD_COUNTS
            },
            "router_measured_query_seconds": {
                str(k): round(routers[k].measured.query_seconds, 4)
                for k in SHARD_COUNTS
            },
            "router_protocol_calls_before_timing": protocol_calls,
            # K=4 boundary accounting: how much of the coordinator's wait was
            # worker compute vs pickling/transport across the process boundary.
            "worker_busy_seconds_by_shard_at_4": {
                str(index): round(busy, 4)
                for index, busy in sorted(ledger.per_shard_busy_seconds.items())
            },
            "serialization_overhead_seconds_at_4": round(
                ledger.serialization_seconds, 4
            ),
            "threads_contrast_wall_seconds_at_4": round(threads_wall, 4),
            "measured_qet_speedup_4_shards": round(measured_speedup, 2),
            "measured_floor": floor,
            "min_measured_speedup": MIN_MEASURED_QET_SPEEDUP,
            "environment": bench_environment(usable_cpus=cpus),
        }
        merge_bench_json(OUTPUT_PATH, "measured_qet", payload)
        emit_report(
            "fleet_measured_qet",
            f"Measured scatter-gather wall clock ({len(records)} rows, "
            f"{MEASURED_REPEATS}x{len(queries)} queries, process executor)\n\n"
            + "\n".join(
                f"{k} shard(s): {per_query[k] * 1e3:8.3f} ms/query measured"
                for k in SHARD_COUNTS
            )
            + f"\nthreads contrast at 4 shards: "
            f"{threads_wall / (MEASURED_REPEATS * len(queries)) * 1e3:8.3f} ms/query"
            + f"\nmeasured QET speedup at 4 shards: {measured_speedup:.2f}x "
            f"(floor {MIN_MEASURED_QET_SPEEDUP}x, {floor}; {cpus} usable CPUs)\n"
            "answers byte-identical to sequential execution at every K",
        )
    finally:
        for router in everyone:
            router.close()
    if floor == "enforced":
        assert measured_speedup >= MIN_MEASURED_QET_SPEEDUP, (
            f"expected >= {MIN_MEASURED_QET_SPEEDUP}x measured wall-clock QET "
            f"speedup at 4 shards on {cpus} CPUs, measured {measured_speedup:.2f}x"
        )


def test_fleet_end_to_end_throughput(bench_settings):
    """End-to-end dp-timer fleet runs at 1 / 2 / 4 shards."""
    base = CellSpec(
        strategy="dp-timer",
        backend="oblidb",
        scenario="million-users",
        scale=FLEET_SCALE,
        query_interval=720,
        n_owners=N_OWNERS,
        sim_seed=13,
        backend_seed=1,
        workload_seed=7,
    )
    run_cell(dataclasses.replace(base, horizon=10))  # warm the scenario cache

    rows = []
    reference_dict = None
    reference_qets = None
    for n_shards in SHARD_COUNTS:
        spec = dataclasses.replace(base, n_shards=n_shards)
        start = time.perf_counter()
        result = run_cell(spec)
        wall_seconds = time.perf_counter() - start

        payload_dict = result.to_dict()
        qets = [t.pop("qet_seconds") for t in payload_dict["query_traces"]]
        if reference_dict is None:
            reference_dict, reference_qets = payload_dict, qets
        else:
            # Sharding may change nothing but the simulated query time.
            assert payload_dict == reference_dict, (
                f"{n_shards}-shard run diverged beyond QET"
            )
            assert all(s <= r for s, r in zip(qets, reference_qets))

        total_records = result.final_time_point().logical_size
        mean_qet = sum(qets) / max(len(qets), 1)
        rows.append(
            {
                "n_shards": n_shards,
                "n_owners": N_OWNERS,
                "wall_seconds": round(wall_seconds, 4),
                "records": int(total_records),
                "records_per_second": round(total_records / max(wall_seconds, 1e-9), 1),
                "mean_simulated_qet_seconds": round(mean_qet, 4),
                "sync_count": result.sync_count,
                "total_update_volume": result.total_update_volume,
            }
        )

    qet_by_shards = {row["n_shards"]: row["mean_simulated_qet_seconds"] for row in rows}
    qet_speedup = qet_by_shards[1] / max(qet_by_shards[4], 1e-9)
    payload = {
        "benchmark": "fleet_end_to_end",
        "strategy": "dp-timer",
        "backend": "oblidb",
        "edb_mode": "fast",
        "scenario": "million-users",
        "scale": FLEET_SCALE,
        "shard_counts": list(SHARD_COUNTS),
        "results": rows,
        "qet_speedup_4_shards": round(qet_speedup, 2),
        "identical_except_qet": True,
    }
    merge_bench_json(OUTPUT_PATH, "end_to_end", payload)

    emit_report(
        "fleet_end_to_end",
        f"Fleet end-to-end (dp-timer, {N_OWNERS} owners, million-users @ "
        f"scale {FLEET_SCALE})\n\n"
        + "\n".join(
            f"{row['n_shards']} shard(s): wall {row['wall_seconds']:7.2f} s, "
            f"{row['records_per_second']:8.1f} rec/s ingest, "
            f"mean simulated QET {row['mean_simulated_qet_seconds']:8.4f} s"
            for row in rows
        )
        + f"\nsimulated QET speedup at 4 shards: {qet_speedup:.2f}x "
        f"(floor {MIN_QET_SPEEDUP}x); results identical except QET",
    )

    assert qet_speedup >= MIN_QET_SPEEDUP, (
        f"expected >= {MIN_QET_SPEEDUP}x simulated QET speedup at 4 shards, "
        f"measured {qet_speedup:.2f}x"
    )
