"""Figure 3: total and dummy outsourced data size over time.

Regenerates the four panels of Figure 3: for each back-end, the total
outsourced data size (Mb) and the dummy data size (Mb) over time for all five
strategies.

Expected shape: SET's total size grows linearly with time and ends >= ~2.1x
the DP strategies'; the DP strategies track SUR closely (within a few percent
at full scale); OTO stays flat at its initial size; SET's dummy size dwarfs
the DP strategies' dummy size (>= ~11x in the paper).
"""

from __future__ import annotations

from benchmarks.conftest import IS_FULL_SCALE, emit_report
from repro.simulation.reporting import format_figure_series


def _size_sections(results, backend: str) -> str:
    total_series = {}
    dummy_series = {}
    for strategy, result in results.items():
        sizes = result.size_series()
        total_series[strategy] = [(t, total) for t, total, _ in sizes]
        dummy_series[strategy] = [(t, dummy) for t, _, dummy in sizes]
    total_text = format_figure_series(
        f"{backend}: total outsourced data size (Mb) over time",
        total_series,
        x_label="time",
        y_label="Mb",
        max_points=12,
    )
    dummy_text = format_figure_series(
        f"{backend}: dummy data size (Mb) over time",
        dummy_series,
        x_label="time",
        y_label="Mb",
        max_points=12,
    )
    return total_text + "\n\n" + dummy_text


def _check_shape(results):
    # On the full workload SET outsources >= ~2.1x DP-Timer's data; DP-ANT's
    # overhead is larger (Algorithm 3's per-step comparison noise makes it
    # fire often at eps=0.5 -- see EXPERIMENTS.md), so it is only required to
    # stay below SET.  Down-scaled smoke runs only assert the ordering.
    set_factor = {"dp-timer": 1.8 if IS_FULL_SCALE else 1.0, "dp-ant": 1.0}
    set_total = results["set"].total_data_megabytes()
    sur_total = results["sur"].total_data_megabytes()
    for strategy in ("dp-timer", "dp-ant"):
        dp_total = results[strategy].total_data_megabytes()
        assert set_total > set_factor[strategy] * dp_total
        # Dummies can only add data; a small end-of-run logical gap may leave
        # the DP total marginally below SUR's, hence the 5% tolerance.
        assert dp_total >= 0.95 * sur_total
        assert results[strategy].dummy_data_megabytes() < results["set"].dummy_data_megabytes()
    assert results["oto"].total_data_megabytes() < sur_total


def test_figure3_oblidb_sizes(benchmark, oblidb_results):
    results = benchmark.pedantic(lambda: oblidb_results, rounds=1, iterations=1)
    emit_report("figure3_oblidb", "Figure 3 (c,d)\n\n" + _size_sections(results, "ObliDB"))
    _check_shape(results)


def test_figure3_crypte_sizes(benchmark, crypte_results):
    results = benchmark.pedantic(lambda: crypte_results, rounds=1, iterations=1)
    emit_report(
        "figure3_crypte", "Figure 3 (a,b)\n\n" + _size_sections(results, "Crypt-epsilon")
    )
    _check_shape(results)
