"""Delta-maintained views benchmark: O(1) maintained answers vs rescans.

Emits ``BENCH_views.json`` at the repository root with two sections:

1. **sync_loop** -- a Figure-2-scale synchronization loop (every sync
   ingests a batch and the analyst re-runs the paper-style test queries)
   through two identical K=2 ObliDB routers: one answering from registered
   delta-maintained views, the other forced onto the rescan path via
   :meth:`set_view_answering`.  Every analyst-visible observable -- answer,
   QET observable, noise flag -- and the aggregate + per-shard ``(t,|γ|)``
   transcripts must be byte-identical; what moves is the *simulated work
   ledger* (:attr:`simulated_work_seconds`: query execution plus view
   upkeep), because each rescan pays ``O(|D_t|)`` per query per sync while
   the maintained path pays an ``O(|batch|)`` delta per sync plus ``O(1)``
   per answer.  The acceptance floor
   (``REPRO_BENCH_MIN_VIEWS_SPEEDUP``, default 5x) is on that total
   simulated-work ratio: model-derived and hardware independent, so it is
   **always enforced**.
2. **measured_wall_clock** -- the same queries repeated against the final
   database state, recording real wall clock per query with views answering
   vs rescanning.  The measured floor
   (``REPRO_BENCH_MIN_VIEWS_MEASURED_SPEEDUP``, default 1.5x) is enforced
   on >= 2 usable CPUs and recorded as ``"skipped_single_cpu"`` otherwise
   -- single-CPU containers still record the honest numbers plus
   ``affinity_cpus`` for context.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit_report, merge_bench_json, usable_cpus
from repro.edb.leakage import update_pattern_observables
from repro.edb.records import Record
from repro.query.ast import WindowedCountQuery
from repro.query.sql import parse_query
from repro.simulation.runner import make_sharded_backend

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_views.json"
#: Total simulated-work floor for the sync loop (hardware independent,
#: always enforced).
MIN_VIEWS_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_VIEWS_SPEEDUP", "5.0"))
#: Measured wall-clock floor per query (gated on >= 2 CPUs).
MIN_MEASURED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_VIEWS_MEASURED_SPEEDUP", "1.5")
)
SYNCS = int(os.environ.get("REPRO_BENCH_VIEWS_SYNCS", "120"))
ROWS_PER_SYNC = int(os.environ.get("REPRO_BENCH_VIEWS_ROWS", "40"))
MEASURED_REPEATS = int(os.environ.get("REPRO_BENCH_VIEWS_REPEATS", "30"))
N_SHARDS = 2


def _queries():
    """Paper-style test queries plus a windowed count (all maintainable)."""
    return [
        parse_query(
            "SELECT COUNT(*) FROM Events WHERE value BETWEEN 25 AND 75",
            label="Q1",
        ),
        parse_query(
            "SELECT sensor_id, COUNT(*) AS Cnt FROM Events GROUP BY sensor_id",
            label="Q2",
        ),
        WindowedCountQuery(table="Events", window=16, mode="sliding", label="QW"),
    ]


def _batch(rng: np.random.Generator, sync: int) -> dict[str, list[Record]]:
    rows = [
        Record(
            table="Events",
            values={
                "sensor_id": int(rng.integers(1, 10)),
                "value": int(rng.integers(0, 100)),
            },
            arrival_time=sync,
        )
        for _ in range(ROWS_PER_SYNC)
    ]
    return {"Events": rows}


def _build_router(answering: bool):
    router = make_sharded_backend("oblidb", N_SHARDS, seed=11)()
    router.setup([])
    for query in _queries():
        router.register_view(query)
    router.set_view_answering(answering)
    return router


def test_sync_loop_simulated_work_and_wall_clock(bench_settings):
    queries = _queries()
    views = _build_router(answering=True)
    rescan = _build_router(answering=False)
    try:
        # -- Figure-2-scale sync loop: ingest, then query, every sync --------
        observed = {True: [], False: []}
        streams = {
            True: np.random.default_rng(42),
            False: np.random.default_rng(42),
        }
        for sync in range(1, SYNCS + 1):
            for answering, router in ((True, views), (False, rescan)):
                router.insert_many(_batch(streams[answering], sync), time=sync)
                for query in queries:
                    result = router.query(query, time=sync)
                    observed[answering].append(
                        (query.name, result.answer, result.qet_seconds,
                         result.noise_injected)
                    )
        assert observed[True] == observed[False], (
            "maintained answers diverged from the rescan oracle"
        )
        transcripts = {
            answering: (
                update_pattern_observables(router.update_history),
                tuple(
                    update_pattern_observables(shard.update_history)
                    for shard in router.shards
                ),
            )
            for answering, router in ((True, views), (False, rescan))
        }
        assert transcripts[True] == transcripts[False], (
            "views changed an update-pattern transcript"
        )
        assert views.maintained_query_count > 0
        assert rescan.maintained_query_count == 0

        work_on = views.simulated_work_seconds
        work_off = rescan.simulated_work_seconds
        work_speedup = work_off / max(work_on, 1e-12)
        assert work_speedup >= MIN_VIEWS_SPEEDUP, (
            f"simulated total-work speedup {work_speedup:.2f}x below the "
            f"{MIN_VIEWS_SPEEDUP}x floor"
        )

        payload = {
            "benchmark": "views_sync_loop",
            "backend": "oblidb",
            "n_shards": N_SHARDS,
            "syncs": SYNCS,
            "rows_per_sync": ROWS_PER_SYNC,
            "final_rows": SYNCS * ROWS_PER_SYNC,
            "queries": [query.name for query in queries],
            "observables_identical": True,
            "transcripts_identical": True,
            "maintained_query_count": views.maintained_query_count,
            "view_maintenance_seconds": round(views.view_maintenance_seconds, 6),
            "rescan_total_work_seconds": round(work_off, 6),
            "maintained_total_work_seconds": round(work_on, 6),
            "simulated_work_speedup": round(work_speedup, 2),
            "min_simulated_work_speedup": MIN_VIEWS_SPEEDUP,
            "simulated_floor": "enforced",
        }
        merge_bench_json(OUTPUT_PATH, "sync_loop", payload)

        # -- measured wall clock against the final state ---------------------
        def _measure(router) -> float:
            start = time.perf_counter()
            for repeat in range(MEASURED_REPEATS):
                for query in queries:
                    router.query(query, time=SYNCS)
            return time.perf_counter() - start

        wall_off = _measure(rescan)
        wall_on = _measure(views)
        measured_speedup = wall_off / max(wall_on, 1e-9)
        cpus = usable_cpus()
        floor = "enforced" if cpus >= 2 else "skipped_single_cpu"
        if floor == "enforced":
            assert measured_speedup >= MIN_MEASURED_SPEEDUP, (
                f"measured views speedup {measured_speedup:.2f}x below the "
                f"{MIN_MEASURED_SPEEDUP}x floor"
            )
        per_query = MEASURED_REPEATS * len(queries)
        measured_payload = {
            "benchmark": "views_measured_wall_clock",
            "repeats": MEASURED_REPEATS,
            "affinity_cpus": cpus,
            "wall_seconds_rescan": round(wall_off, 4),
            "wall_seconds_maintained": round(wall_on, 4),
            "seconds_per_query_rescan": round(wall_off / per_query, 6),
            "seconds_per_query_maintained": round(wall_on / per_query, 6),
            "measured_speedup": round(measured_speedup, 2),
            "min_measured_speedup": MIN_MEASURED_SPEEDUP,
            "measured_floor": floor,
        }
        merge_bench_json(OUTPUT_PATH, "measured_wall_clock", measured_payload)

        emit_report(
            "views_sync_loop",
            f"Delta-maintained views over {N_SHARDS} ObliDB shards, "
            f"{SYNCS} syncs x {ROWS_PER_SYNC} rows "
            f"({SYNCS * ROWS_PER_SYNC} final rows), queries "
            f"{[query.name for query in queries]}\n\n"
            f"observables                identical (answers/QET/noise + "
            f"transcripts)\n"
            f"simulated total work       {work_off:.4f} s -> {work_on:.4f} s "
            f"({work_speedup:.2f}x, floor {MIN_VIEWS_SPEEDUP}x enforced)\n"
            f"measured wall clock/query  "
            f"{wall_off / per_query * 1e3:.3f} ms -> "
            f"{wall_on / per_query * 1e3:.3f} ms "
            f"({measured_speedup:.2f}x, floor {floor})",
        )
    finally:
        views.close()
        rescan.close()
