"""Parallel grid runner vs. the serial path, on a figure-scale sweep.

Runs the Figure-5-shaped sweep -- {dp-timer, dp-ant} x {epsilon axis} on the
Yellow-Cab workload -- three ways:

1. **serial**: every cell in-process, one after another (the pre-runner
   execution model of ``repro.simulation.experiment``);
2. **parallel**: the same cells on a ``GridRunner`` process pool
   (``REPRO_BENCH_WORKERS``, default 4), checkpointing each cell;
3. **resume**: the same grid again against the populated artifact directory
   (the checkpoint/resume path a re-rendered figure takes).

It asserts that all three produce bit-identical per-cell results and writes
``BENCH_runner.json`` at the repository root.

Speedup accounting is honest about hardware: process-level parallelism can
only beat the serial path when more than one CPU is actually available, so
the >= 2x parallel floor (the PR's acceptance bar, checked in CI where
runners have >= 2 vCPUs) is enforced whenever ``len(os.sched_getaffinity)``
>= 2 and can be overridden via ``REPRO_BENCH_MIN_GRID_SPEEDUP``.  On a
single-CPU container the bench still enforces the determinism contract plus
a >= 2x *resume* speedup (which is hardware independent) and requires the
pool not to regress materially over serial.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import usable_cpus, bench_environment, emit_report
from repro.simulation.runner import ExperimentGrid, GridRunner

N_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
GRID_SCALE = float(os.environ.get("REPRO_BENCH_RUNNER_SCALE", "0.5"))
EPSILONS = (0.05, 0.2, 0.8, 3.2)
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runner.json"


def figure_grid() -> ExperimentGrid:
    """A Figure-5-shaped sweep: 2 strategies x 4 epsilons = 8 cells."""
    return ExperimentGrid(
        strategies=("dp-timer", "dp-ant"),
        scenarios=("taxi-yellow",),
        parameters={
            "epsilon": list(EPSILONS),
            "scale": [GRID_SCALE],
            "query_interval": [720],
        },
        base_seed=17,
    )


def test_grid_runner_speedup_and_determinism(bench_settings):
    grid = figure_grid()
    n_cells = len(grid)
    cpus = usable_cpus()

    start = time.perf_counter()
    serial = GridRunner(n_workers=1).run(grid)
    serial_seconds = time.perf_counter() - start

    artifact_dir = Path(tempfile.mkdtemp(prefix="bench_runner_"))
    try:
        start = time.perf_counter()
        parallel = GridRunner(n_workers=N_WORKERS, artifact_dir=artifact_dir).run(grid)
        parallel_seconds = time.perf_counter() - start

        start = time.perf_counter()
        resumed = GridRunner(n_workers=N_WORKERS, artifact_dir=artifact_dir).run(grid)
        resume_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(artifact_dir, ignore_errors=True)

    # Bit-identical per-cell results across worker counts and resume.
    assert list(serial.results) == list(parallel.results) == list(resumed.results)
    for cell_id in serial.results:
        assert parallel[cell_id] == serial[cell_id], f"pool diverged at {cell_id}"
        assert resumed[cell_id] == serial[cell_id], f"resume diverged at {cell_id}"
    assert len(resumed.resumed) == n_cells

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    resume_speedup = serial_seconds / max(resume_seconds, 1e-9)

    # Explicit floor accounting: a 1-CPU container physically cannot show a
    # process-pool speedup, and silently "passing" there would misreport the
    # benchmark as having verified something it did not measure.
    override = os.environ.get("REPRO_BENCH_MIN_GRID_SPEEDUP")
    if override is not None:
        parallel_floor = f"enforced_override>={float(override):g}x"
    elif cpus >= 2:
        parallel_floor = "enforced>=2x"
    else:
        parallel_floor = "skipped_single_cpu"

    payload = {
        "benchmark": "runner_parallel",
        "grid": {
            "strategies": ["dp-timer", "dp-ant"],
            "scenario": "taxi-yellow",
            "epsilons": list(EPSILONS),
            "scale": GRID_SCALE,
            "n_cells": n_cells,
        },
        "n_workers": N_WORKERS,
        "available_cpus": cpus,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "resume_seconds": round(resume_seconds, 4),
        "speedup": round(speedup, 2),
        "resume_speedup": round(resume_speedup, 2),
        "identical_across_worker_counts": True,
        "parallel_floor": parallel_floor,
        "environment": bench_environment(edb_mode="fast"),
        "note": (
            "speedup = serial/parallel wall clock; parallel speedup requires "
            ">= 2 CPUs (the >= 2x floor is enforced in CI), resume_speedup is "
            "hardware independent"
        ),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit_report(
        "runner_parallel",
        f"Grid runner: {n_cells}-cell sweep (2 strategies x {len(EPSILONS)} epsilons, "
        f"taxi-yellow @ scale {GRID_SCALE}), {N_WORKERS} workers, {cpus} CPUs\n\n"
        f"serial (1 worker)    : {serial_seconds:8.3f} s\n"
        f"pool ({N_WORKERS} workers)     : {parallel_seconds:8.3f} s  "
        f"({speedup:.2f}x)\n"
        f"resume (checkpoints) : {resume_seconds:8.3f} s  ({resume_speedup:.2f}x)\n"
        f"per-cell results bit-identical across all three paths\n"
        f"parallel floor: {parallel_floor}",
    )

    if override is not None:
        assert speedup >= float(override), (
            f"expected >= {override}x parallel speedup, measured {speedup:.2f}x"
        )
    elif cpus >= 2:
        # The acceptance floor: a multi-cell sweep with 4 workers must halve
        # the serial wall clock on multi-core hardware.
        assert speedup >= 2.0, (
            f"expected >= 2x parallel speedup on {cpus} CPUs, measured {speedup:.2f}x"
        )
    else:
        # Single CPU: raw parallel speedup is physically unavailable; the
        # subsystem's wall-clock win must come from checkpoint/resume, and the
        # pool must not regress the sweep materially.
        assert resume_speedup >= 2.0, (
            f"expected >= 2x resume speedup, measured {resume_speedup:.2f}x"
        )
        assert parallel_seconds <= serial_seconds * 1.6, (
            "process pool regressed the sweep more than 60% on a single CPU"
        )
