"""Ablation: DP-ANT comparison-noise resampling.

Algorithm 3 as printed draws fresh ``Lap(4/eps1)`` noise for the threshold
comparison at *every* time step.  At the paper's default budget
(epsilon = 0.5, so eps1 = 0.25 and a noise scale of 16 against a threshold of
15) this makes the comparison fire frequently even before theta records have
accumulated, which inflates the number of synchronizations and the dummy
overhead relative to the figures the paper reports (see EXPERIMENTS.md).

This bench compares the printed per-step-resampled variant against a variant
that holds the comparison noise fixed within each round (one draw per
threshold period).  Both satisfy the same epsilon-DP accounting; the held
variant's synchronization count tracks "roughly every theta records" much
more closely, which matches the paper's reported dummy volumes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.generator import poisson_arrivals

SCHEMA = Schema("events", ("sensor_id", "value"))
HORIZON = 8_000
ARRIVAL_RATE = 0.43          # the taxi workload's occupancy
THETA = 15
EPSILON = 0.5


def _run(resample: bool, seed: int):
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(HORIZON, rate=ARRIVAL_RATE, rng=rng)
    strategy = DPANTStrategy(
        dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
        epsilon=EPSILON,
        theta=THETA,
        flush=FlushPolicy(interval=2000, size=15),
        rng=np.random.default_rng(seed + 1),
        resample_comparison_noise=resample,
    )
    strategy.setup([])
    gaps = []
    for t, arrived in enumerate(arrivals, start=1):
        update = (
            Record(values={"sensor_id": 1, "value": float(t)}, arrival_time=t, table="events")
            if arrived
            else None
        )
        strategy.step(t, update)
        gaps.append(strategy.logical_gap)
    received = sum(arrivals)
    return {
        "syncs": strategy.sync_count,
        "records_per_sync": received / max(1, strategy.sync_count),
        "dummies": strategy.synced_dummy_total,
        "mean_gap": float(np.mean(gaps)),
        "epsilon_spent": strategy.accountant.total_epsilon(),
    }


def _run_all():
    return {
        "per-step (paper text)": _run(resample=True, seed=31),
        "held per round": _run(resample=False, seed=31),
    }


def test_ablation_ant_comparison_noise(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [
        "Ablation: DP-ANT comparison-noise resampling "
        f"(eps={EPSILON}, theta={THETA}, arrival rate {ARRIVAL_RATE}/step)",
        "",
        f"{'variant':<24} {'syncs':>7} {'recs/sync':>10} {'dummies':>9} {'mean gap':>9} {'eps':>6}",
        "-" * 70,
    ]
    for variant, stats in outcomes.items():
        lines.append(
            f"{variant:<24} {stats['syncs']:>7} {stats['records_per_sync']:>10.1f} "
            f"{stats['dummies']:>9} {stats['mean_gap']:>9.2f} {stats['epsilon_spent']:>6.2f}"
        )
    lines.append("")
    lines.append(
        "The held-per-round variant synchronizes roughly every theta records and "
        "matches the dummy volumes reported in the paper's Table 5; the per-step "
        "variant (Algorithm 3 verbatim) fires much more often at this budget."
    )
    emit_report("ablation_ant_noise", "\n".join(lines))

    per_step = outcomes["per-step (paper text)"]
    held = outcomes["held per round"]
    # Both variants stay within the configured privacy budget.
    assert per_step["epsilon_spent"] <= EPSILON + 1e-9
    assert held["epsilon_spent"] <= EPSILON + 1e-9
    # The held variant fires less often and produces fewer dummies.
    assert held["syncs"] < per_step["syncs"]
    assert held["dummies"] <= per_step["dummies"]
    # And its inter-sync record count sits near theta.
    assert THETA / 3 <= held["records_per_sync"] <= THETA * 3
