"""Figure 6: trade-offs from the non-privacy parameters at fixed privacy.

Sweeps the DP-Timer period T and the DP-ANT threshold theta over [1, 1000]
with epsilon fixed at 0.5 (ObliDB back-end, query Q2) and reports the average
L1 error and average QET.

Expected shape (paper's Figure 6): the mean query error *increases* with T
and with theta (the owner waits longer before synchronizing), while the QET
*decreases* (fewer synchronizations inject fewer dummy records).
"""

from __future__ import annotations

import os

from benchmarks.conftest import BENCH_QUERY_INTERVAL, BENCH_SCALE, BENCH_SEED, emit_report
from repro.analysis.tradeoff import parameter_tradeoff_series
from repro.simulation.experiment import run_parameter_sweep
from repro.simulation.reporting import format_figure_series

VALUES = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_PARAM_VALUES", "1,10,30,100,300,1000").split(",")
)


def _run(strategy: str):
    return run_parameter_sweep(
        strategy,
        values=VALUES,
        backend="oblidb",
        scale=BENCH_SCALE,
        query_interval=BENCH_QUERY_INTERVAL,
        seed=BENCH_SEED,
    )


def _report_and_check(strategy: str, sweep, parameter_name: str, output_name: str):
    series = parameter_tradeoff_series(sweep, query_name="Q2")
    text = (
        f"Figure 6: avg L1 error vs {parameter_name} ({strategy}, Q2, eps=0.5)\n\n"
        + format_figure_series("avg L1 error", {strategy: series["error"]},
                               x_label=parameter_name, y_label="L1")
        + f"\n\nFigure 6: avg QET vs {parameter_name}\n\n"
        + format_figure_series("avg QET (s)", {strategy: series["qet"]},
                               x_label=parameter_name, y_label="seconds")
    )
    emit_report(output_name, text)

    error = dict(series["error"])
    qet = dict(series["qet"])
    low, high = float(min(VALUES)), float(max(VALUES))
    assert error[high] > error[low]          # waiting longer -> larger error
    assert qet[high] <= qet[low] * 1.05      # fewer syncs -> fewer dummies -> no slower


def test_figure6_timer_period_sweep(benchmark):
    sweep = benchmark.pedantic(lambda: _run("dp-timer"), rounds=1, iterations=1)
    _report_and_check("dp-timer", sweep, "sync interval T", "figure6_timer")


def test_figure6_ant_threshold_sweep(benchmark):
    sweep = benchmark.pedantic(lambda: _run("dp-ant"), rounds=1, iterations=1)
    _report_and_check("dp-ant", sweep, "threshold theta", "figure6_ant")
