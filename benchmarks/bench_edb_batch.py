"""EDB batch-path benchmark: per-record vs batched flushes, both backends.

Measures the three layers the fast path rewrote, and emits ``BENCH_edb.json``
at the repository root:

1. **ORAM flush** -- a flush-sized batch written through the sequential
   per-item protocol (reference) vs the single combined eviction (fast),
   recording wall-clock and the distinct tree nodes touched.  The node-touch
   reduction is deterministic and asserted; it is what makes batched
   ingestion cheaper than per-record ingestion at equal leakage.
2. **Ingestion protocol** -- ``update()`` once per record vs one
   ``insert_many()`` per flush on both back-ends (fast mode), with identical
   resulting state (counts, storage, *per-invocation* history is the
   observable difference the strategy chose to make).
3. **End-to-end** -- a figure-2-style dp-timer cell per back-end in both EDB
   modes via the grid runner, asserting bit-identical results and recording
   the speedup (down-scale with ``REPRO_BENCH_EDB_SCALE`` for CI smoke).
4. **Arena end-to-end** -- the same figure-2-scale fast-mode cell with real
   encryption simulated, A/B-ing the two ciphertext storage layouts under an
   otherwise identical configuration: the contiguous ciphertext arena
   (bulk-encrypted, zero-copy views) against the per-record object store
   that was the only layout before the arena existed.  Results must be
   bit-identical, decrypted contents equal, and the arena run at least
   ``REPRO_BENCH_MIN_ARENA_SPEEDUP``x faster (acceptance floor 1.3x at the
   default scale; CI smoke overrides lower for shared-runner noise).
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit_report, merge_bench_json
from repro.edb.crypte import CryptEpsilon
from repro.edb.oblidb import ObliDB
from repro.edb.oram import PathORAM, ReferencePathORAM
from repro.edb.records import Record
from repro.simulation.runner import CellSpec, make_backend, run_cell
from repro.simulation.simulator import Simulation, SimulationConfig
from repro.workload.scenarios import build_scenario, scenario_queries

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_edb.json"
#: Scale of the end-to-end section (CI smoke uses e.g. 0.1).
EDB_SCALE = float(os.environ.get("REPRO_BENCH_EDB_SCALE", "0.25"))
#: Acceptance floor for the arena-vs-objects figure2-scale speedup.
MIN_ARENA_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_ARENA_SPEEDUP", "1.3"))
FLUSH_SIZE = 64
FLUSHES = 40


def _emit(section: str, payload) -> None:
    merge_bench_json(OUTPUT_PATH, section, payload)


def _records(n: int, table: str = "YellowCab") -> list[Record]:
    rng = np.random.default_rng(0)
    return [
        Record(
            values={"pickupID": int(rng.integers(1, 40)), "pickTime": i},
            arrival_time=i,
            table=table,
        )
        for i in range(n)
    ]


def test_oram_batched_flush_vs_per_record():
    """One combined eviction per flush: fewer node touches, less time."""
    batches = [
        [(flush * FLUSH_SIZE + i, i) for i in range(FLUSH_SIZE)]
        for flush in range(FLUSHES)
    ]

    fast = PathORAM(capacity=65_536, rng=np.random.default_rng(1))
    start = time.perf_counter()
    for batch in batches:
        fast.write_many(batch)
    fast_seconds = time.perf_counter() - start

    reference = ReferencePathORAM(capacity=65_536, rng=np.random.default_rng(1))
    start = time.perf_counter()
    for batch in batches:
        reference.write_many(batch)
    reference_seconds = time.perf_counter() - start

    # Same logical content either way.
    assert fast._position_map == reference._position_map
    assert fast.read_all() == reference.read_all()
    # The combined eviction touches strictly fewer distinct nodes.
    assert fast.stats.nodes_touched < reference.stats.nodes_touched

    payload = {
        "flush_size": FLUSH_SIZE,
        "flushes": FLUSHES,
        "modes_compared": ["reference", "fast"],
        "per_record_seconds": round(reference_seconds, 4),
        "batched_seconds": round(fast_seconds, 4),
        "speedup": round(reference_seconds / max(fast_seconds, 1e-9), 2),
        "per_record_nodes_touched": reference.stats.nodes_touched,
        "batched_nodes_touched": fast.stats.nodes_touched,
        "node_touch_reduction": round(
            reference.stats.nodes_touched / fast.stats.nodes_touched, 2
        ),
    }
    _emit("oram_flush", payload)
    emit_report(
        "edb_oram_flush",
        f"Path ORAM flush ({FLUSHES} flushes x {FLUSH_SIZE} records)\n\n"
        f"per-record evictions : {reference_seconds:8.3f} s, "
        f"{reference.stats.nodes_touched} node touches\n"
        f"combined eviction    : {fast_seconds:8.3f} s, "
        f"{fast.stats.nodes_touched} node touches\n"
        f"speedup {payload['speedup']}x, node touches /{payload['node_touch_reduction']}",
    )


def _ingest_benchmark(backend_name: str, make_edb):
    per_flush = _records(FLUSH_SIZE * FLUSHES)

    per_record = make_edb()
    per_record.setup([])
    start = time.perf_counter()
    t = 1
    for record in per_flush:
        per_record.update([record], time=t)
        t += 1
    per_record_seconds = time.perf_counter() - start

    batched = make_edb()
    batched.setup([])
    start = time.perf_counter()
    for flush in range(FLUSHES):
        rows = per_flush[flush * FLUSH_SIZE : (flush + 1) * FLUSH_SIZE]
        batched.insert_many({"YellowCab": rows}, time=flush + 1)
    batched_seconds = time.perf_counter() - start

    assert batched.outsourced_count == per_record.outsourced_count
    assert batched.storage_bytes == per_record.storage_bytes
    # The batched path reports one Update invocation per flush -- exactly the
    # (time, volume) transcript the strategy decided to reveal.
    assert len(batched.update_history) == FLUSHES + 1
    return {
        "backend": backend_name,
        "edb_mode": "fast",
        "records": len(per_flush),
        "per_record_seconds": round(per_record_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(per_record_seconds / max(batched_seconds, 1e-9), 2),
    }


def test_ingestion_per_record_vs_batched_both_backends():
    """insert_many vs per-record update on ObliDB (ORAM mode) and Crypt-eps."""
    results = [
        _ingest_benchmark(
            "oblidb-oram",
            lambda: ObliDB(
                storage_mode="oram",
                oram_capacity=65_536,
                rng=np.random.default_rng(2),
            ),
        ),
        _ingest_benchmark(
            "crypte", lambda: CryptEpsilon(rng=np.random.default_rng(3))
        ),
    ]
    _emit("ingestion", results)
    lines = [
        f"{r['backend']:12s}: per-record {r['per_record_seconds']:7.3f} s, "
        f"batched {r['batched_seconds']:7.3f} s ({r['speedup']}x)"
        for r in results
    ]
    emit_report(
        "edb_ingestion_batch",
        f"Batched vs per-record ingestion ({FLUSHES} flushes x {FLUSH_SIZE})\n\n"
        + "\n".join(lines),
    )


def _run_encrypted_figure2(ciphertext_store: str):
    """One figure2-scale fast-mode dp-timer run with real encryption.

    Both arms share workload, queries, seeds and the fast columnar/ORAM
    implementation; only the ciphertext storage layout differs, so the wall
    clock delta is exactly the arena's contribution.
    """
    created = []

    def factory():
        edb = make_backend(
            "oblidb",
            seed=12,
            simulate_encryption=True,
            ciphertext_store=ciphertext_store,
        )()
        created.append(edb)
        return edb

    workloads = build_scenario("taxi-june", seed=2020, scale=EDB_SCALE)
    simulation = Simulation(
        edb_factory=factory,
        workloads=workloads,
        queries=list(scenario_queries("taxi-june")),
        config=SimulationConfig(strategy="dp-timer", query_interval=360, seed=11),
    )
    start = time.perf_counter()
    result = simulation.run()
    seconds = time.perf_counter() - start
    return result, created[0], seconds


def test_arena_vs_object_ciphertext_store_figure2():
    """Figure2-scale fast-mode run: ciphertext arena vs per-record objects."""
    build_scenario("taxi-june", seed=2020, scale=EDB_SCALE)  # warm cache

    object_result, object_edb, object_seconds = _run_encrypted_figure2("objects")
    arena_result, arena_edb, arena_seconds = _run_encrypted_figure2("arena")

    # Identical runs, identical decrypted server state.
    assert arena_result.to_dict() == object_result.to_dict()
    table = "YellowCab"
    arena_rows = arena_edb.cipher.decrypt_many(arena_edb.ciphertexts(table))
    object_rows = object_edb.cipher.decrypt_many(object_edb.ciphertexts(table))
    assert [r.values for r in arena_rows] == [r.values for r in object_rows]
    arena = arena_edb.ciphertext_arena(table)
    assert arena is not None and len(arena) == len(arena_rows)

    speedup = object_seconds / max(arena_seconds, 1e-9)
    payload = {
        "backend": "oblidb",
        "edb_mode": "fast",
        "scale": EDB_SCALE,
        "simulate_encryption": True,
        "stores_compared": ["objects", "arena"],
        "objects_seconds": round(object_seconds, 4),
        "arena_seconds": round(arena_seconds, 4),
        "speedup": round(speedup, 2),
        "ciphertexts": len(arena_rows),
        "arena_grow_count": arena.grow_count,
        "sync_count": arena_result.sync_count,
        "results_bit_identical": True,
    }
    _emit("arena_figure2", payload)
    emit_report(
        "edb_arena_figure2",
        f"Figure2-scale dp-timer with simulated encryption (scale={EDB_SCALE})\n\n"
        f"object-backed ciphertexts : {object_seconds:7.3f} s\n"
        f"ciphertext arena          : {arena_seconds:7.3f} s\n"
        f"speedup {speedup:.2f}x over {len(arena_rows)} ciphertexts "
        f"(floor {MIN_ARENA_SPEEDUP}x); results bit-identical",
    )
    assert speedup >= MIN_ARENA_SPEEDUP, (
        f"expected >= {MIN_ARENA_SPEEDUP}x from the ciphertext arena, "
        f"measured {speedup:.2f}x"
    )


def test_end_to_end_fast_vs_reference_both_backends():
    """Figure-2-style dp-timer cells per back-end, fast vs reference mode."""
    results = []
    for backend in ("oblidb", "crypte"):
        spec = CellSpec(
            strategy="dp-timer",
            backend=backend,
            scenario="taxi-june",
            scale=EDB_SCALE,
            query_interval=360,
            sim_seed=11,
            backend_seed=12,
            workload_seed=2020,
        )
        run_cell(dataclasses.replace(spec, horizon=10))  # warm scenario cache

        start = time.perf_counter()
        reference = run_cell(dataclasses.replace(spec, edb_mode="reference"))
        reference_seconds = time.perf_counter() - start

        start = time.perf_counter()
        fast = run_cell(dataclasses.replace(spec, edb_mode="fast"))
        fast_seconds = time.perf_counter() - start

        assert fast.to_dict() == reference.to_dict(), backend
        results.append(
            {
                "backend": backend,
                "scale": EDB_SCALE,
                "modes_compared": ["reference", "fast"],
                "reference_seconds": round(reference_seconds, 4),
                "fast_seconds": round(fast_seconds, 4),
                "speedup": round(reference_seconds / max(fast_seconds, 1e-9), 2),
                "sync_count": fast.sync_count,
            }
        )
    _emit("end_to_end", results)
    lines = [
        f"{r['backend']:8s}: reference {r['reference_seconds']:7.3f} s, "
        f"fast {r['fast_seconds']:7.3f} s ({r['speedup']}x)"
        for r in results
    ]
    emit_report(
        "edb_end_to_end",
        f"End-to-end dp-timer, fast vs reference EDB (scale={EDB_SCALE})\n\n"
        + "\n".join(lines),
    )
