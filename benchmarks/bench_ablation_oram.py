"""Ablation: ObliDB storage mode (flat oblivious scans vs Path ORAM).

ObliDB can keep tables as flat arrays scanned obliviously or inside an ORAM.
DP-Sync is agnostic to that choice; this bench quantifies what the ORAM layer
costs in physical block I/O for the insert path, which is the part DP-Sync
exercises (one Update per synchronization).

Expected shape: per inserted record, the ORAM touches O(log N) buckets of
Z=4 blocks for the path read and the same for the write-back, so the physical
I/O per record is roughly an order of magnitude above flat storage's single
append -- while answers and update patterns are identical in both modes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record
from repro.query.ast import CountQuery

NUM_RECORDS = 2_000


def _records():
    return [
        Record(
            values={"pickupID": (i % 265) + 1, "pickTime": i},
            arrival_time=i,
            table="YellowCab",
        )
        for i in range(NUM_RECORDS)
    ]


def _run_mode(mode: str):
    edb = ObliDB(storage_mode=mode, oram_capacity=4096, rng=np.random.default_rng(3))
    records = _records()
    edb.setup(records[:100])
    for start in range(100, NUM_RECORDS, 100):
        edb.update(records[start : start + 100], time=start)
    answer = edb.query(CountQuery("YellowCab", label="count-all")).answer
    oram = edb.oram_for("YellowCab")
    stats = {
        "answer": answer,
        "blocks_read": oram.stats.blocks_read if oram else 0,
        "blocks_written": oram.stats.blocks_written if oram else 0,
        "stash_peak": oram.stats.stash_peak if oram else 0,
    }
    return stats


def _run_all():
    return {mode: _run_mode(mode) for mode in ("flat", "oram")}


def test_ablation_oblidb_storage_mode(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = ["Ablation: ObliDB flat vs ORAM storage (insert-path physical I/O)", ""]
    lines.append(f"{'mode':<6} {'answer':>8} {'blocks read':>12} {'blocks written':>15} {'stash peak':>11}")
    lines.append("-" * 58)
    for mode, stats in outcomes.items():
        lines.append(
            f"{mode:<6} {stats['answer']:>8} {stats['blocks_read']:>12} "
            f"{stats['blocks_written']:>15} {stats['stash_peak']:>11}"
        )
    per_record = outcomes["oram"]["blocks_written"] / NUM_RECORDS
    lines.append("")
    lines.append(f"ORAM physical blocks written per inserted record: {per_record:.1f}")
    emit_report("ablation_oram", "\n".join(lines))

    # Answers are identical regardless of the storage mode.
    assert outcomes["flat"]["answer"] == outcomes["oram"]["answer"] == NUM_RECORDS
    # The ORAM pays O(log N) physical blocks per logical insert.
    assert outcomes["oram"]["blocks_written"] > 10 * NUM_RECORDS
    assert outcomes["flat"]["blocks_written"] == 0
