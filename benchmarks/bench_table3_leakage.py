"""Table 3: leakage groups and corresponding encrypted-database schemes.

Regenerates the classification table and verifies the DP-Sync compatibility
rule of Section 6 (L-0 and L-DP compatible; L-1 needs padding; L-2 excluded).
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.edb.leakage import (
    SCHEME_REGISTRY,
    LeakageClass,
    compatible_with_dpsync,
    leakage_group_table,
)
from repro.simulation.reporting import format_table3


def _build_table3():
    table = leakage_group_table()
    compatibility = {scheme.name: compatible_with_dpsync(scheme) for scheme in SCHEME_REGISTRY}
    return table, compatibility


def test_table3_leakage_groups(benchmark):
    table, compatibility = benchmark.pedantic(_build_table3, rounds=1, iterations=1)

    lines = ["Table 3 -- Leakage groups and example schemes", ""]
    lines.append(format_table3())
    lines.append("")
    lines.append("DP-Sync compatibility per scheme:")
    for scheme in SCHEME_REGISTRY:
        marker = "yes" if compatibility[scheme.name] else "no"
        lines.append(
            f"  {scheme.name:<28} {scheme.leakage_class.value:<5} compatible: {marker}"
        )
    emit_report("table3_leakage", "\n".join(lines))

    assert set(table) == set(LeakageClass)
    assert all(compatibility[name] for name in table[LeakageClass.L0])
    assert all(compatibility[name] for name in table[LeakageClass.LDP])
    assert not any(compatibility[name] for name in table[LeakageClass.L2])
