"""Scatter-planner benchmark: pruned single-partition queries vs fan-out.

Emits ``BENCH_planner.json`` at the repository root with three sections:

1. **pruned_query** -- a spread ``Users`` table and a tiny single-partition
   ``Audit`` table (all of whose records hash-route to one shard at the
   chosen route seed) are ingested into planner-off and planner-on K=4
   ObliDB routers.  The gathered :class:`~repro.edb.base.QueryResult`\\ s
   must be identical -- answer, QET observable, scan counts -- while the
   *total simulated shard work actually executed* (the sum of per-shard
   QETs, which fan-out spends on shards that provably hold nothing) drops
   by the pruning factor.  The acceptance floor
   (``REPRO_BENCH_MIN_PLANNER_SPEEDUP``, default 2x) is on that simulated
   total-work ratio: it is model-derived and hardware independent, so it is
   **always enforced**.  The gathered QET (max over shards) is asserted
   equal rather than faster: pruning removes floor-cost work from idle
   shards, it never changes the critical path.
2. **measured_wall_clock** -- the same pruned query repeated through both
   routers, recording real coordinator wall clock per gathered query.  The
   measured floor (``REPRO_BENCH_MIN_PLANNER_MEASURED_SPEEDUP``, default
   1.2x) is enforced on >= 2 usable CPUs and recorded as
   ``"skipped_single_cpu"`` otherwise -- single-CPU containers still record
   the honest numbers plus ``affinity_cpus`` for context.
3. **explain_sample** -- the planner's :meth:`explain` report for the
   pruned query after the measured repeats: the chosen plan, estimated vs
   measured cost, why the fan-out alternatives lost, and the calibrator
   state the measured-feedback loop has accumulated.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import (
    bench_environment,
    emit_report,
    merge_bench_json,
    usable_cpus,
)
from repro.edb.records import Record
from repro.simulation.runner import make_sharded_backend
from repro.query.sql import parse_query

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"
#: Simulated total-shard-work floor for the pruned query (hardware
#: independent, always enforced).
MIN_PLANNER_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_PLANNER_SPEEDUP", "2.0"))
#: Measured wall-clock floor for the pruned query (gated on >= 2 CPUs).
MIN_MEASURED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PLANNER_MEASURED_SPEEDUP", "1.2")
)
USERS_ROWS = int(os.environ.get("REPRO_BENCH_PLANNER_ROWS", "12000"))
MEASURED_REPEATS = int(os.environ.get("REPRO_BENCH_PLANNER_REPEATS", "40"))
N_SHARDS = 4
#: Route seed chosen so the 3-record ``Audit`` table hash-routes entirely to
#: shard 0 while ``Users`` spreads across all four shards (the benchmark
#: asserts both, so a routing change fails loudly instead of skewing).
ROUTE_SEED = 7
AUDIT_ROWS = 3


def _records() -> dict[str, list[Record]]:
    rng = np.random.default_rng(23)
    users = rng.integers(1, 100_000, size=USERS_ROWS)
    regions = rng.integers(1, 32, size=USERS_ROWS)
    return {
        "Users": [
            Record(table="Users", values={"value": int(u), "region": int(r)})
            for u, r in zip(users, regions)
        ],
        "Audit": [
            Record(table="Audit", values={"value": i, "region": 1})
            for i in range(AUDIT_ROWS)
        ],
    }


def _build_routers():
    """Planner-off and planner-on K=4 routers over identical shard fleets."""
    routers = {}
    for planner in ("off", "on"):
        router = make_sharded_backend(
            "oblidb", N_SHARDS, seed=ROUTE_SEED, planner=planner
        )()
        router.setup([])
        routers[planner] = router
    batches = _records()
    for router in routers.values():
        router.insert_many(batches, time=1)
    return routers["off"], routers["on"]


def test_pruned_query_simulated_work_and_wall_clock(bench_settings):
    pruned_query = parse_query(
        "SELECT COUNT(*) FROM Audit WHERE value BETWEEN 0 AND 100", label="Q-audit"
    )
    spread_query = parse_query(
        "SELECT region, COUNT(*) FROM Users GROUP BY region", label="Q-users"
    )

    off, on = _build_routers()
    try:
        audit_counts = on.table_shard_counts("Audit")
        touched = [index for index, count in enumerate(audit_counts) if count]
        assert touched == [0], (
            f"route seed {ROUTE_SEED} no longer isolates Audit: {audit_counts}"
        )
        assert all(on.table_shard_counts("Users")), "Users should spread everywhere"

        # -- gathered observables identical, executed shard work pruned ------
        off_result = off.query(pruned_query, time=2)
        on_result = on.query(pruned_query, time=2)
        assert on_result == off_result, "pruning changed a gathered observable"

        # Fan-out executes every shard; the per-shard QETs it spends are what
        # the planner's pruning saves, so sum them as the off-path work.
        off_work = sum(
            shard.query(pruned_query, time=2).qet_seconds for shard in off.shards
        )
        plan = on.planner.last_plan(pruned_query)
        on_work = sum(plan.executed_qet_seconds)
        assert plan.chosen.key.startswith("prune/")
        work_speedup = off_work / max(on_work, 1e-12)
        assert work_speedup >= MIN_PLANNER_SPEEDUP, (
            f"simulated total-work speedup {work_speedup:.2f}x below the "
            f"{MIN_PLANNER_SPEEDUP}x floor"
        )

        # Sanity: a table that lives everywhere keeps the fan-out plan.
        spread_off = off.query(spread_query, time=2)
        spread_on = on.query(spread_query, time=2)
        assert spread_on == spread_off
        spread_plan = on.planner.last_plan(spread_query)
        assert spread_plan.chosen.key.startswith("fanout/")

        payload = {
            "benchmark": "planner_pruned_query",
            "backend": "oblidb",
            "n_shards": N_SHARDS,
            "route_seed": ROUTE_SEED,
            "users_rows": USERS_ROWS,
            "audit_rows": AUDIT_ROWS,
            "audit_shards_touched": touched,
            "gathered_observables_identical": True,
            "gathered_qet_seconds": round(on_result.qet_seconds, 6),
            "fanout_total_work_seconds": round(off_work, 6),
            "pruned_total_work_seconds": round(on_work, 6),
            "simulated_work_speedup": round(work_speedup, 2),
            "min_simulated_work_speedup": MIN_PLANNER_SPEEDUP,
            "simulated_floor": "enforced",
            "spread_query_plan": spread_plan.chosen.key,
            "pruned_query_plan": plan.chosen.key,
        }
        merge_bench_json(OUTPUT_PATH, "pruned_query", payload)

        # -- measured wall clock ---------------------------------------------
        def _measure(router) -> float:
            router.measured.reset()
            start = time.perf_counter()
            for repeat in range(MEASURED_REPEATS):
                router.query(pruned_query, time=2 + repeat)
            return time.perf_counter() - start

        wall_off = _measure(off)
        wall_on = _measure(on)
        measured_speedup = wall_off / max(wall_on, 1e-9)
        cpus = usable_cpus()
        floor = "enforced" if cpus >= 2 else "skipped_single_cpu"
        if floor == "enforced":
            assert measured_speedup >= MIN_MEASURED_SPEEDUP, (
                f"measured pruned-query speedup {measured_speedup:.2f}x below "
                f"the {MIN_MEASURED_SPEEDUP}x floor"
            )
        measured_payload = {
            "benchmark": "planner_measured_wall_clock",
            "repeats": MEASURED_REPEATS,
            "affinity_cpus": cpus,
            "wall_seconds_planner_off": round(wall_off, 4),
            "wall_seconds_planner_on": round(wall_on, 4),
            "seconds_per_query_off": round(wall_off / MEASURED_REPEATS, 6),
            "seconds_per_query_on": round(wall_on / MEASURED_REPEATS, 6),
            "measured_speedup": round(measured_speedup, 2),
            "min_measured_speedup": MIN_MEASURED_SPEEDUP,
            "measured_floor": floor,
        }
        merge_bench_json(OUTPUT_PATH, "measured_wall_clock", measured_payload)

        # -- explain() sample (post-repeats, so the calibrator has state) ----
        explain = on.explain(pruned_query)
        merge_bench_json(
            OUTPUT_PATH,
            "explain_sample",
            {"benchmark": "planner_explain_sample", "explain": explain},
        )

        emit_report(
            "planner_pruned_query",
            f"Pruned single-partition query over {N_SHARDS} ObliDB shards "
            f"({USERS_ROWS} Users rows spread, {AUDIT_ROWS} Audit rows on "
            f"shard {touched[0]})\n\n"
            f"gathered observables        identical (answer/QET/scans)\n"
            f"simulated total shard work  {off_work:.4f} s -> {on_work:.4f} s "
            f"({work_speedup:.2f}x, floor {MIN_PLANNER_SPEEDUP}x enforced)\n"
            f"measured wall clock/query   "
            f"{wall_off / MEASURED_REPEATS * 1e3:.3f} ms -> "
            f"{wall_on / MEASURED_REPEATS * 1e3:.3f} ms "
            f"({measured_speedup:.2f}x, floor {floor})\n"
            f"chosen plan                 {plan.chosen.key} "
            f"(spread query kept {spread_plan.chosen.key})",
        )
    finally:
        off.close()
        on.close()
