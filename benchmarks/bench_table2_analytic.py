"""Table 2: analytic comparison of synchronization strategies.

Regenerates the paper's Table 2 (group privacy, logical-gap bound and total
outsourced records per strategy) both symbolically and numerically
instantiated at the paper's default parameters.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.dp.theory import numeric_comparison, strategy_comparison_table
from repro.simulation.reporting import format_table2
from repro.workload.nyc_taxi import JUNE_2020_MINUTES, YELLOW_TARGET_RECORDS


def _build_table2():
    symbolic = strategy_comparison_table()
    numeric = numeric_comparison(
        epsilon=0.5,
        t=JUNE_2020_MINUTES,
        k=JUNE_2020_MINUTES // 30,          # DP-Timer syncs, T = 30
        logical_size=YELLOW_TARGET_RECORDS,
        initial_size=1,
        flush_interval=2000,
        flush_size=15,
    )
    return symbolic, numeric


def test_table2_analytic_comparison(benchmark):
    symbolic, numeric = benchmark.pedantic(_build_table2, rounds=1, iterations=1)

    lines = ["Table 2 -- Comparison of synchronization strategies", ""]
    lines.append(format_table2())
    lines.append("")
    lines.append("Numeric instantiation (eps=0.5, T=30, f=2000, s=15, beta=0.05):")
    header = f"{'Strategy':<10} {'logical gap bound':>20} {'outsourced records':>22}"
    lines.append(header)
    lines.append("-" * len(header))
    for strategy, values in numeric.items():
        lines.append(
            f"{strategy:<10} {values['logical_gap']:>20.1f} {values['outsourced']:>22.1f}"
        )
    emit_report("table2_analytic", "\n".join(lines))

    assert [row.strategy for row in symbolic] == ["SUR", "OTO", "SET", "DP-Timer", "DP-ANT"]
    # The analytic ordering the paper's table conveys:
    assert numeric["SET"]["outsourced"] > numeric["DP-Timer"]["outsourced"]
    assert numeric["SET"]["outsourced"] > numeric["DP-ANT"]["outsourced"]
    assert numeric["OTO"]["logical_gap"] > numeric["DP-Timer"]["logical_gap"]
    assert numeric["SUR"]["logical_gap"] == 0.0
