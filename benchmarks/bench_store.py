"""Durable encrypted store: snapshot / recovery / rotation wall clock.

Emits ``BENCH_store.json`` at the repository root with one section:

* ``durable_store`` -- for an ObliDB back-end holding
  ``REPRO_BENCH_STORE_RECORDS`` outsourced ciphertexts:

  - ``snapshot_seconds`` / ``snapshot_mb_s``: serializing the back-end
    (arenas as raw bytes, position maps checksummed) plus the sealed,
    fsync'd, atomically-committed :class:`~repro.edb.store.EncryptedStore`
    write;
  - ``restore_seconds``: cold recovery -- manifest + checksum verification,
    unsealing, and rebuilding a queryable back-end;
  - ``generation_save_seconds``: one :class:`~repro.edb.store.SnapshotStore`
    generation (write + prune), the per-checkpoint cost a persisted
    simulation pays;
  - ``rotation_seconds`` / ``rotation_rows_per_s``: in-place key rotation
    over every arena row (verify old tag, re-key, re-tag).

The numbers are informational (stamped with :func:`bench_environment`);
the assertions only pin correctness -- the restored twin answers with the
same counts and rotation preserves payloads -- so the bench never flakes
on a slow container.

Knobs: ``REPRO_BENCH_STORE_RECORDS`` (default 4000),
``REPRO_BENCH_STORE_GENERATIONS`` (default 3).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import bench_environment, emit_report, merge_bench_json
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema
from repro.edb.store import (
    EncryptedStore,
    SnapshotStore,
    restore_backend,
    snapshot_backend,
)

SCHEMA = Schema(name="events", attributes=("key", "value"))
N_RECORDS = int(os.environ.get("REPRO_BENCH_STORE_RECORDS", "4000"))
N_GENERATIONS = int(os.environ.get("REPRO_BENCH_STORE_GENERATIONS", "3"))
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _records(n: int) -> list[Record]:
    return [
        Record(
            values={"key": i % 97, "value": float(i)},
            arrival_time=1 + i % 500,
            table="events",
        )
        for i in range(n)
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _run() -> dict:
    edb = ObliDB(rng=np.random.default_rng(7), simulate_encryption=True)
    edb.setup(_records(N_RECORDS))
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        tmp = Path(tmp)

        blob, serialize_s = _timed(lambda: snapshot_backend(edb))

        def commit():
            store = EncryptedStore(tmp / "store", passphrase="bench")
            store.write_blob("edb.pkl", blob)
            return store.commit({"kind": "bench"})

        _, commit_s = _timed(commit)
        snapshot_s = serialize_s + commit_s
        snapshot_mb = len(blob) / 1e6

        def recover():
            store = EncryptedStore(tmp / "store", passphrase="bench")
            store.manifest()  # checksum + seal verification
            return restore_backend(store.read_blob("edb.pkl"))

        restored, restore_s = _timed(recover)
        assert restored.real_count == edb.real_count
        assert restored.outsourced_count == edb.outsourced_count

        snap = SnapshotStore(tmp / "snaps", passphrase="bench")
        generation_times = []
        for seq in range(N_GENERATIONS):
            _, save_s = _timed(
                lambda: snap.save({"edb.pkl": blob}, {"kind": "bench", "tick": seq})
            )
            generation_times.append(save_s)
        latest, load_s = _timed(snap.load_latest)
        assert latest is not None
        assert latest.manifest()["meta"]["tick"] == N_GENERATIONS - 1
        snap.clear()

    old_cipher = edb.cipher
    sample = edb.ciphertexts("events")[0]
    payload_before = old_cipher.decrypt(sample).values
    _, rotation_s = _timed(edb.rotate_key)
    assert edb.cipher.key != old_cipher.key
    assert edb.cipher.decrypt(edb.ciphertexts("events")[0]).values == payload_before

    rows = edb.outsourced_count
    return {
        "records": N_RECORDS,
        "outsourced_rows": rows,
        "snapshot_bytes": len(blob),
        "snapshot_seconds": snapshot_s,
        "snapshot_mb_s": snapshot_mb / snapshot_s if snapshot_s else None,
        "restore_seconds": restore_s,
        "generation_save_seconds": sum(generation_times) / len(generation_times),
        "generations_kept": 2,
        "load_latest_seconds": load_s,
        "rotation_seconds": rotation_s,
        "rotation_rows_per_s": rows / rotation_s if rotation_s else None,
    }


def test_store_snapshot_restore_rotation(benchmark):
    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"Durable store wall clock ({outcome['outsourced_rows']} ciphertext rows, "
        f"{outcome['snapshot_bytes'] / 1e6:.1f} MB snapshot, sealed + fsync'd)",
        "",
        f"  snapshot (serialize + atomic commit)  {outcome['snapshot_seconds'] * 1e3:9.1f} ms"
        f"  ({outcome['snapshot_mb_s']:.0f} MB/s)",
        f"  cold recovery (verify + rebuild)      {outcome['restore_seconds'] * 1e3:9.1f} ms",
        f"  checkpoint generation (keep=2 prune)  {outcome['generation_save_seconds'] * 1e3:9.1f} ms",
        f"  load latest generation                {outcome['load_latest_seconds'] * 1e3:9.1f} ms",
        f"  in-place key rotation                 {outcome['rotation_seconds'] * 1e3:9.1f} ms"
        f"  ({outcome['rotation_rows_per_s']:.0f} rows/s)",
    ]
    emit_report("store_durability", "\n".join(lines))

    merge_bench_json(
        OUTPUT_PATH,
        "durable_store",
        {**outcome, "environment": bench_environment()},
    )
