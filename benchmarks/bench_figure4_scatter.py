"""Figure 4: accuracy-vs-performance scatter of the strategies (query Q2).

Regenerates the two panels of Figure 4: for each back-end, every strategy is
placed at (mean QET, mean L1 error) for the default query Q2.

Expected shape: SET sits in the lower-right corner (accurate but slow), OTO
in the upper-left (fast but useless), SUR in the lower-left (ideal but no
privacy), and the DP strategies cluster near SUR in the lower-left -- the
paper's "optimized for the dual objectives" observation.
"""

from __future__ import annotations

from benchmarks.conftest import IS_FULL_SCALE, emit_report
from repro.analysis.tradeoff import tradeoff_scatter


def _scatter_text(scatter, backend):
    lines = [f"{backend}: mean QET (s) vs mean L1 error for Q2", "-" * 50]
    lines.append(f"{'strategy':<12} {'mean QET (s)':>14} {'mean L1 error':>16}")
    for strategy, (qet, err) in scatter.items():
        lines.append(f"{strategy:<12} {qet:>14.3f} {err:>16.3f}")
    return "\n".join(lines)


def _check_quadrants(scatter):
    # Ratios that hold at the paper's full workload; smoke runs at smaller
    # scales only assert the orderings.
    oto_vs_set_factor = 100.0 if IS_FULL_SCALE else 2.0
    dp_vs_oto_factor = 50.0 if IS_FULL_SCALE else 2.0
    sur_qet, sur_err = scatter["sur"]
    set_qet, set_err = scatter["set"]
    oto_qet, oto_err = scatter["oto"]
    assert set_qet > sur_qet                                   # SET pays performance
    assert oto_err > oto_vs_set_factor * max(set_err, 1e-6)    # OTO pays accuracy
    assert oto_qet < sur_qet                                   # ... but is fast
    for strategy in ("dp-timer", "dp-ant"):
        dp_qet, dp_err = scatter[strategy]
        assert dp_qet < set_qet                                # DP cheaper than SET
        assert dp_err < oto_err / dp_vs_oto_factor             # DP far more accurate than OTO


def test_figure4_oblidb_scatter(benchmark, oblidb_results):
    results = benchmark.pedantic(lambda: oblidb_results, rounds=1, iterations=1)
    scatter = tradeoff_scatter(results, query_name="Q2")
    emit_report("figure4_oblidb", "Figure 4a\n\n" + _scatter_text(scatter, "ObliDB"))
    _check_quadrants(scatter)


def test_figure4_crypte_scatter(benchmark, crypte_results):
    results = benchmark.pedantic(lambda: crypte_results, rounds=1, iterations=1)
    scatter = tradeoff_scatter(results, query_name="Q2")
    emit_report("figure4_crypte", "Figure 4b\n\n" + _scatter_text(scatter, "Crypt-epsilon"))
    _check_quadrants(scatter)
