"""Shared configuration and cached experiment runs for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
end-to-end comparison (Table 5) backs Figures 2-4 as well, so its results are
computed once per session and shared.

Environment knobs (all optional):

* ``REPRO_BENCH_SCALE``  -- workload scale in (0, 1]; 1.0 (default) is the
  paper's full June-2020 workload (43,200 time units).  Use e.g. 0.1 for a
  quick smoke run of the whole harness.
* ``REPRO_BENCH_QUERY_INTERVAL`` -- time units between query issuances
  (default 360, i.e. every six hours as in the paper).
* ``REPRO_BENCH_SEED`` -- experiment seed (default 0).
* ``REPRO_BENCH_WORKERS`` -- worker processes for the end-to-end grid cells
  (default 1 = the serial path; per-cell results are identical either way).
"""

from __future__ import annotations

import os

import pytest

from repro.simulation.experiment import (
    DEFAULT_QUERY_INTERVAL,
    EndToEndConfig,
    run_end_to_end,
)

from pathlib import Path

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_QUERY_INTERVAL = int(
    os.environ.get("REPRO_BENCH_QUERY_INTERVAL", str(DEFAULT_QUERY_INTERVAL))
)
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: The paper's headline ratios (520x accuracy, 5.72x QET, 2.1x data, ...) only
#: materialize on the full-size workload; down-scaled smoke runs check the
#: orderings with looser factors.
IS_FULL_SCALE = BENCH_SCALE >= 0.5

_END_TO_END_CACHE: dict[str, dict] = {}


def end_to_end_results(backend: str) -> dict:
    """Run (or fetch the cached) end-to-end comparison for one back-end."""
    if backend not in _END_TO_END_CACHE:
        config = EndToEndConfig(
            backend=backend,
            scale=BENCH_SCALE,
            query_interval=BENCH_QUERY_INTERVAL,
            seed=BENCH_SEED,
        )
        _END_TO_END_CACHE[backend] = run_end_to_end(config, n_workers=BENCH_WORKERS)
    return _END_TO_END_CACHE[backend]


@pytest.fixture(scope="session")
def oblidb_results() -> dict:
    """Per-strategy results of the ObliDB end-to-end comparison."""
    return end_to_end_results("oblidb")


@pytest.fixture(scope="session")
def crypte_results() -> dict:
    """Per-strategy results of the Crypt-epsilon end-to-end comparison."""
    return end_to_end_results("crypte")


@pytest.fixture(scope="session")
def bench_settings() -> dict:
    """The effective benchmark configuration (echoed into reports)."""
    return {
        "scale": BENCH_SCALE,
        "query_interval": BENCH_QUERY_INTERVAL,
        "seed": BENCH_SEED,
        "workers": BENCH_WORKERS,
    }


OUTPUT_DIR = Path(__file__).parent / "output"


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Delegates to :func:`repro.util.mp.usable_cpus` -- the single source of
    the CPU-detection rule, shared with the shard executors' footgun
    warning -- so every wall-clock speedup floor gates on the same number.
    """
    from repro.util.mp import usable_cpus as _usable_cpus

    return _usable_cpus()


def bench_environment(**extra) -> dict:
    """Hardware + mode flags stamped into every ``BENCH_*.json`` payload.

    Wall-clock ratios are meaningless without knowing what they ran on: a
    1-CPU container cannot show process-pool speedups, and a ``reference``
    EDB mode changes every absolute number.  Benchmarks pass payload-specific
    mode flags through ``extra``.
    """
    env = {
        "cpu_count": os.cpu_count(),
        "affinity_cpus": usable_cpus(),
        "bench_scale": BENCH_SCALE,
        "bench_seed": BENCH_SEED,
        "bench_workers": BENCH_WORKERS,
    }
    env.update(extra)
    return env


def merge_bench_json(path: Path, section: str, payload) -> None:
    """Update one named section of a BENCH_*.json file, preserving the rest.

    Benchmark files contribute independent sections to a shared JSON (e.g.
    ``BENCH_engine.json`` holds both the engine-vs-legacy and the EDB
    fast-path comparisons), so each test merges rather than overwrites; an
    unreadable existing file is replaced instead of crashing the bench.
    Every dict payload is stamped with :func:`bench_environment` unless the
    benchmark recorded its own.
    """
    import json

    if isinstance(payload, dict) and "environment" not in payload:
        payload = {**payload, "environment": bench_environment()}
    elif isinstance(payload, list):
        payload = {"results": payload, "environment": bench_environment()}
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    # Drop pre-sectioned flat keys (old single-benchmark format) so a stale
    # checkout never ends up with conflicting top-level and per-section data.
    merged = {k: v for k, v in merged.items() if isinstance(v, (dict, list))}
    merged[section] = payload
    path.write_text(json.dumps(merged, indent=2) + "\n")


def emit_report(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it under benchmarks/output/.

    Pytest captures stdout by default, so every benchmark also writes its
    rendered report to ``benchmarks/output/<name>.txt`` -- that file is the
    artifact to compare against the paper (see EXPERIMENTS.md).
    """
    header = (
        f"[workload scale={BENCH_SCALE}, query interval={BENCH_QUERY_INTERVAL}, "
        f"seed={BENCH_SEED}]"
    )
    body = f"{header}\n\n{text}\n"
    print()
    print(body)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(body)
