"""Ablation: DP-ANT privacy-budget split between comparisons and fetches.

Algorithm 3 splits the budget evenly: epsilon/2 for the sparse-vector
comparisons (threshold + per-step counts) and epsilon/2 for the Perturb
fetch.  This bench varies that split at a fixed total budget and measures the
resulting logical gap and dummy overhead on a steady workload.

Expected shape: giving very little budget to the comparison side makes the
threshold test extremely noisy (many spurious or missed crossings), while
starving the fetch side makes every release size very noisy (more dummies or
more left-behind records).  The balanced split is a reasonable middle ground
-- which is why the paper uses it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit_report
from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.generator import poisson_arrivals

SCHEMA = Schema("events", ("sensor_id", "value"))
HORIZON = 5_000
SPLITS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _run(split: float, seed: int):
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(HORIZON, rate=0.45, rng=rng)
    strategy = DPANTStrategy(
        dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
        epsilon=0.5,
        theta=15,
        flush=FlushPolicy(interval=2000, size=15),
        rng=np.random.default_rng(seed + 1),
        budget_split=split,
    )
    strategy.setup([])
    gaps = []
    for t, arrived in enumerate(arrivals, start=1):
        update = (
            Record(values={"sensor_id": 1, "value": float(t)}, arrival_time=t, table="events")
            if arrived
            else None
        )
        strategy.step(t, update)
        gaps.append(strategy.logical_gap)
    return {
        "mean_gap": float(np.mean(gaps)),
        "max_gap": int(np.max(gaps)),
        "dummies": strategy.synced_dummy_total,
        "syncs": strategy.sync_count,
        "epsilon_spent": strategy.accountant.total_epsilon(),
    }


def _run_all():
    return {split: _run(split, seed=23) for split in SPLITS}


def test_ablation_ant_budget_split(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = ["Ablation: DP-ANT budget split (eps1 fraction for comparisons)", ""]
    lines.append(
        f"{'split':>6} {'mean gap':>10} {'max gap':>9} {'dummies':>9} {'syncs':>7} {'eps spent':>10}"
    )
    lines.append("-" * 58)
    for split, stats in outcomes.items():
        lines.append(
            f"{split:>6.2f} {stats['mean_gap']:>10.2f} {stats['max_gap']:>9} "
            f"{stats['dummies']:>9} {stats['syncs']:>7} {stats['epsilon_spent']:>10.2f}"
        )
    emit_report("ablation_budget_split", "\n".join(lines))

    # Every split must stay within the configured total budget.
    assert all(abs(stats["epsilon_spent"] - 0.5) < 1e-9 for stats in outcomes.values())
    # The balanced split should not be grossly worse than the best split on
    # either axis (it is the paper's default for a reason).
    best_gap = min(stats["mean_gap"] for stats in outcomes.values())
    assert outcomes[0.5]["mean_gap"] <= 3.0 * best_gap + 5.0
