"""Hot-path profiling harness: where do the flagship workloads spend time?

Every perf PR should start from data, not intuition.  This harness runs the
two flagship workloads under ``cProfile`` and persists the top-20
cumulative-time functions:

1. **figure2** -- the figure-2-style dp-timer cell (taxi-june) that the EDB
   fast-path benchmarks measure, with real encryption simulated so the
   ciphertext path shows up in the profile;
2. **fleet_k4** -- the 2-owner x 4-shard million-users fleet cell behind
   ``BENCH_fleet.json``.

Artifacts land in ``benchmarks/output/``:

* ``profile_<name>.txt``  -- the rendered ``pstats`` table (top 20 by
  cumulative time), the file to read before touching a hot loop;
* ``profile_<name>.json`` -- the same entries as structured data
  (``file:line(function)``, call counts, tottime, cumtime) so future PRs can
  diff profiles mechanically.

Knobs:

* ``REPRO_PROFILE_SCALE`` -- workload scale (default 0.25, the figure2 bench
  scale).  CI's perf-smoke job runs a small scale purely to check the harness
  stays runnable ("check mode"); absolute times at tiny scales are noise.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
from pathlib import Path

from benchmarks.conftest import OUTPUT_DIR, bench_environment, emit_report
from repro.simulation.runner import CellSpec, run_cell

PROFILE_SCALE = float(os.environ.get("REPRO_PROFILE_SCALE", "0.25"))
TOP_N = 20

FIGURE2_SPEC = CellSpec(
    strategy="dp-timer",
    backend="oblidb",
    scenario="taxi-june",
    scale=PROFILE_SCALE,
    query_interval=360,
    simulate_encryption=True,
    sim_seed=11,
    backend_seed=12,
    workload_seed=2020,
)

FLEET_K4_SPEC = CellSpec(
    strategy="dp-timer",
    backend="oblidb",
    scenario="million-users",
    scale=min(1.0, PROFILE_SCALE * 2.4),
    query_interval=720,
    n_owners=2,
    n_shards=4,
    sim_seed=13,
    backend_seed=1,
    workload_seed=7,
)


def _top_functions(stats: pstats.Stats, limit: int = TOP_N) -> list[dict]:
    """The ``limit`` hottest functions by cumulative time, as plain dicts."""
    rows = []
    for (filename, line, function), (
        primitive_calls,
        total_calls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            {
                "function": f"{Path(filename).name}:{line}({function})",
                "calls": total_calls,
                "primitive_calls": primitive_calls,
                "tottime_seconds": round(tottime, 6),
                "cumtime_seconds": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: row["cumtime_seconds"], reverse=True)
    return rows[:limit]


def _profile_cell(name: str, spec: CellSpec) -> list[dict]:
    """Profile one cell run; write txt + json artifacts, return the top rows."""
    import dataclasses

    # Warm the per-process scenario cache so the profile shows the engine and
    # EDB, not one-off workload construction.
    run_cell(dataclasses.replace(spec, horizon=10))

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_cell(spec)
    profiler.disable()
    assert result.sync_count > 0  # the profiled run actually did work

    rendered = io.StringIO()
    stats = pstats.Stats(profiler, stream=rendered)
    stats.sort_stats("cumulative").print_stats(TOP_N)
    top = _top_functions(stats)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"profile_{name}.txt").write_text(rendered.getvalue())
    payload = {
        "workload": name,
        "spec": spec.to_dict(),
        "top_functions": top,
        "environment": bench_environment(profile_scale=PROFILE_SCALE),
    }
    (OUTPUT_DIR / f"profile_{name}.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return top


def _check(name: str, top: list[dict]) -> None:
    assert len(top) == TOP_N
    assert all(row["cumtime_seconds"] >= 0.0 for row in top)
    assert (OUTPUT_DIR / f"profile_{name}.txt").exists()
    assert (OUTPUT_DIR / f"profile_{name}.json").exists()
    emit_report(
        f"profile_{name}",
        f"Top-{TOP_N} cumulative functions ({name}, scale={PROFILE_SCALE})\n\n"
        + "\n".join(
            f"{row['cumtime_seconds']:9.4f} s  {row['calls']:>8} calls  "
            f"{row['function']}"
            for row in top
        ),
    )


def test_profile_figure2_hotpath():
    """Profile the figure2-scale encrypted dp-timer run."""
    _check("figure2", _profile_cell("figure2", FIGURE2_SPEC))


def test_profile_fleet_k4_hotpath():
    """Profile the 2-owner x 4-shard fleet run."""
    _check("fleet_k4", _profile_cell("fleet_k4", FLEET_K4_SPEC))
