"""Table 5: aggregated statistics of the end-to-end comparison (Section 8.1).

Runs all five synchronization strategies against both back-ends (ObliDB and
Crypt-epsilon) on the taxi workload and prints the paper's Table 5 layout:
mean/max L1 error and mean QET per query, mean logical gap, and total/dummy
outsourced data.  Also recomputes the abstract's headline claims.

Expected shape (paper values for reference):

* SUR/SET errors ~0; OTO errors in the thousands (unbounded growth);
* DP strategies: bounded errors (tens), logical gap ~3-11 records;
* SET total data >= ~2.1x the DP strategies'; DP within ~6% of SUR;
* SET mean QET >= ~2.2x DP on Q1/Q2 and up to ~5.7x on the join Q3.
"""

from __future__ import annotations

from benchmarks.conftest import emit_report
from repro.simulation.reporting import format_headline_claims, format_table5


def test_table5_oblidb(benchmark, oblidb_results):
    results = benchmark.pedantic(lambda: oblidb_results, rounds=1, iterations=1)
    text = format_table5({"ObliDB": results})
    text += "\n" + format_headline_claims(results)
    emit_report("table5_oblidb", text)

    dp = ("dp-timer", "dp-ant")
    for query in ("Q1", "Q2", "Q3"):
        for strategy in dp:
            assert results["oto"].mean_l1_error(query) > results[strategy].mean_l1_error(query)
            assert results["set"].mean_qet(query) > results[strategy].mean_qet(query)
    for strategy in dp:
        assert results[strategy].total_data_megabytes() < results["set"].total_data_megabytes()


def test_table5_crypte(benchmark, crypte_results):
    results = benchmark.pedantic(lambda: crypte_results, rounds=1, iterations=1)
    text = format_table5({"Crypt-epsilon": results})
    text += "\n" + format_headline_claims(results)
    emit_report("table5_crypte", text)

    dp = ("dp-timer", "dp-ant")
    for query in ("Q1", "Q2"):
        for strategy in dp:
            assert results["oto"].mean_l1_error(query) > results[strategy].mean_l1_error(query)
            assert results["set"].mean_qet(query) > results[strategy].mean_qet(query)
    # Crypt-epsilon injects answer noise, so even SUR/SET have non-zero error.
    assert results["sur"].mean_l1_error("Q1") > 0.0
