"""Cost-based scatter planner: plan choice, calibration, and invariance.

The planner's contract, pinned here:

* **Plan invariance** -- every plan alternative (full fan-out, shard
  pruning, either per-shard executor, either join probe order) yields a
  gathered :class:`~repro.edb.base.QueryResult` and aggregate + per-shard
  transcripts byte-identical to the ``planner="off"`` path, for K in
  {1, 2, 4} on both back-ends (Hypothesis property, forced via the
  plan-override hook).
* **Pruning is metadata-driven and leakage-gated** -- the router's routed
  per-shard counts prove which shards can hold a table; pruning is only
  enumerated on exact back-ends (never on L-DP Crypt-epsilon, whose empty
  shards still contribute noise draws).
* **The measured-feedback loop** -- the calibrator learns a per-(shape,
  backend, executor) runtime ratio from observed plans and corrects
  predictions, with graceful cold-start fallbacks.
* **Join probe ordering** -- the predicted-smaller side probes first and
  its merged histogram cardinality yields a UES-style upper bound on the
  gathered join count.
* Satellite bugfixes: :func:`join_count_from_histograms` no longer
  truncates noisy histograms through ``int()``, and
  :class:`~repro.edb.router.WallClockStats` counts Setup attempts on the
  same basis as every other protocol surface.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.crypte import CryptEpsilon
from repro.edb.leakage import update_pattern_observables
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.edb.router import ShardRouter
from repro.fleet.deployment import Deployment
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.planner import (
    PLANNER_MODES,
    QueryPlanner,
    RuntimeCalibrator,
    resolve_planner_mode,
)
from repro.query.predicates import RangePredicate, TruePredicate
from repro.query.scatter import (
    join_count_from_histograms,
    join_upper_bound,
    ordered_join_probes,
)

TABLES = ("Alpha", "Beta")
SCHEMAS = {name: Schema(name=name, attributes=("key", "value")) for name in TABLES}


def _record(table: str, key: int, value: int, dummy: bool, time: int) -> Record:
    if dummy:
        return make_dummy_record(SCHEMAS[table], arrival_time=time)
    return Record(values={"key": key, "value": value}, arrival_time=time, table=table)


def _shards(n: int, cls=ObliDB, seed: int = 0):
    return [cls(rng=np.random.default_rng(seed + index)) for index in range(n)]


def _queries(include_join: bool = True):
    queries = [
        CountQuery(
            table="Alpha", predicate=RangePredicate("value", 0, 20), label="q-count"
        ),
        GroupByCountQuery(
            table="Beta",
            group_attribute="key",
            predicate=TruePredicate(),
            label="q-group",
        ),
    ]
    if include_join:
        queries.append(
            JoinCountQuery(
                left_table="Alpha",
                right_table="Beta",
                left_attribute="key",
                right_attribute="key",
                label="q-join",
            )
        )
    return queries


# ---------------------------------------------------------------------------
# Mode + calibrator units
# ---------------------------------------------------------------------------


def test_resolve_planner_mode():
    assert resolve_planner_mode("ON") == "on"
    assert resolve_planner_mode("off") == "off"
    assert PLANNER_MODES == ("off", "on")
    with pytest.raises(ValueError, match="planner mode"):
        resolve_planner_mode("auto")


def test_calibrator_learns_per_key_ratio():
    cal = RuntimeCalibrator(min_samples=2)
    key = ("count", "ObliDB", "columnar")
    assert cal.predict(key, 2.0) == (2.0, False)  # cold start: raw work
    cal.observe(key, 1.0, 3.0)
    cal.observe(key, 1.0, 3.0)
    assert cal.ratio(key) == pytest.approx(3.0)
    predicted, calibrated = cal.predict(key, 2.0)
    assert calibrated and predicted == pytest.approx(6.0)
    assert cal.samples(key) == 2


def test_calibrator_global_fallback_and_guards():
    cal = RuntimeCalibrator(min_samples=2)
    seen = ("group-by", "ObliDB", "columnar")
    other = ("count", "ObliDB", "rows")
    cal.observe(seen, 2.0, 1.0)
    cal.observe(seen, 2.0, 1.0)
    # Unknown key borrows the pooled ratio (0.5) rather than staying raw.
    predicted, calibrated = cal.predict(other, 4.0)
    assert calibrated and predicted == pytest.approx(2.0)
    # Degenerate samples are dropped, not folded in.
    cal.observe(other, 0.0, 1.0)
    cal.observe(other, 1.0, -1.0)
    assert cal.samples(other) == 0


# ---------------------------------------------------------------------------
# Plan choice
# ---------------------------------------------------------------------------


def _single_partition_router(K: int = 4, planner="on") -> ShardRouter:
    """Alpha spread over all shards, Beta routed to a strict subset."""
    router = ShardRouter(
        _shards(K), route_seed=3, executor="serial", planner=planner
    )
    router.setup(
        [_record("Alpha", i % 7, i % 40, False, 0) for i in range(60)]
        + [_record("Beta", i % 3, i, False, 0) for i in range(2)],
        time=0,
    )
    return router


def test_planner_prunes_single_partition_table():
    router = _single_partition_router()
    counts = router.table_shard_counts("Beta")
    holding = tuple(i for i, c in enumerate(counts) if c)
    assert 0 < len(holding) < router.n_shards, counts
    query = GroupByCountQuery(
        table="Beta", group_attribute="key", predicate=TruePredicate(), label="qB"
    )
    result = router.query(query, time=1)
    plan = router.planner.last_plan(query)
    assert plan.chosen.key.startswith("prune/")
    assert plan.chosen.shard_indices == holding
    assert len(plan.executed_qet_seconds) == len(holding)
    # The pruned plan executed strictly less total simulated work than the
    # fan-out alternative, yet the gathered QET observable is the fan-out max.
    fanout = [a for a in plan.alternatives if a.key.startswith("fanout/")][0]
    assert plan.chosen.simulated_work_seconds < fanout.simulated_work_seconds
    off = _single_partition_router(planner="off")
    assert off.query(query, time=1) == result


def test_planner_prunes_to_shard_zero_for_unknown_table():
    router = _single_partition_router()
    query = CountQuery(table="Gamma", predicate=TruePredicate(), label="qG")
    result = router.query(query, time=1)
    plan = router.planner.last_plan(query)
    assert plan.chosen.shard_indices == (0,)
    assert result.answer == 0


def test_planner_never_prunes_on_ldp_backend():
    router = ShardRouter(
        _shards(4, CryptEpsilon), route_seed=3, executor="serial", planner="on"
    )
    router.setup([_record("Beta", i % 3, i, False, 0) for i in range(4)], time=0)
    query = GroupByCountQuery(
        table="Beta", group_attribute="key", predicate=TruePredicate(), label="qB"
    )
    router.query(query, time=1)
    plan = router.planner.last_plan(query)
    assert all(alt.key.startswith("fanout/") for alt in plan.alternatives)
    assert plan.chosen.shard_indices == tuple(range(4))


def test_join_probes_smaller_side_first_with_bound():
    router = _single_partition_router()
    join = JoinCountQuery(
        left_table="Alpha",
        right_table="Beta",
        left_attribute="key",
        right_attribute="key",
        label="qJ",
    )
    result = router.query(join, time=1)
    plan = router.planner.last_plan(join)
    # Beta is the smaller side, so its probe runs first...
    assert plan.chosen.first_side == "right"
    # ...and its merged cardinality bounds the gathered join count.
    assert plan.first_probe_cardinality == 2
    assert result.answer <= plan.join_upper_bound
    router.close()


def test_query_executor_surfaces_by_mode():
    fast = ObliDB(rng=np.random.default_rng(0))
    reference = ObliDB(rng=np.random.default_rng(0), mode="reference")
    assert fast.query_executors == ("columnar", "rows")
    assert reference.query_executors == ("rows",)
    fast.setup([_record("Alpha", i % 5, i, False, 0) for i in range(20)])
    query = CountQuery(
        table="Alpha", predicate=RangePredicate("value", 0, 10), label="q"
    )
    assert fast.query(query, time=1) == fast.query(query, time=1, executor="rows")
    assert fast.query(query, time=1) == fast.query(query, time=1, executor="columnar")
    with pytest.raises(ValueError, match="query executor"):
        fast.query(query, time=1, executor="gpu")


def test_override_hook_forcing_and_unknown_key():
    forced_keys = []

    def force_rows(query, alternatives):
        for alt in alternatives:
            if alt.executor == "rows":
                forced_keys.append(alt.key)
                return alt.key
        return None

    router = ShardRouter(
        _shards(2),
        route_seed=1,
        executor="serial",
        planner=QueryPlanner(override=force_rows),
    )
    router.setup([_record("Alpha", i % 5, i, False, 0) for i in range(12)], time=0)
    query = CountQuery(table="Alpha", predicate=TruePredicate(), label="q")
    router.query(query, time=1)
    plan = router.planner.last_plan(query)
    assert plan.forced and plan.chosen.executor == "rows"
    assert forced_keys and plan.chosen.key == forced_keys[-1]

    router.planner.override = lambda q, alts: "no-such-plan"
    with pytest.raises(KeyError, match="no-such-plan"):
        router.query(query, time=2)


def test_explain_reports_costs_and_losers():
    router = _single_partition_router()
    query = GroupByCountQuery(
        table="Beta", group_attribute="key", predicate=TruePredicate(), label="qB"
    )
    assert router.explain(query) is None  # never planned yet
    router.query(query, time=1)
    report = router.explain(query)
    assert report["chosen"].startswith("prune/")
    assert report["measured_seconds"] is not None
    assert report["estimated_seconds"] >= 0.0
    assert report["executed_work_seconds"] > 0.0
    losers = [a for a in report["alternatives"] if not a["chosen"]]
    assert losers and all("why_lost" in a for a in losers)
    [winner] = [a for a in report["alternatives"] if a["chosen"]]
    assert "why" in winner
    assert report["calibration"]["samples"] == 1
    # explain() accepts the query name too, and unknown names return None.
    assert router.explain("qB") == report
    assert router.explain("never-ran") is None


def test_calibrator_feedback_reaches_predictions():
    router = _single_partition_router()
    query = CountQuery(table="Alpha", predicate=TruePredicate(), label="qA")
    first = router.explain  # noqa: F841 - readability
    router.query(query, time=1)
    router.query(query, time=2)
    router.query(query, time=3)
    report = router.explain(query)
    assert report["calibration"]["samples"] == 3
    assert report["calibration"]["ratio"] is not None
    # With a learned ratio, predictions are marked calibrated.
    [winner] = [a for a in report["alternatives"] if a["chosen"]]
    assert winner["calibrated"]


def test_deployment_forwards_explain():
    router = _single_partition_router()
    deployment = Deployment(router)
    query = CountQuery(table="Alpha", predicate=TruePredicate(), label="qA")
    router.query(query, time=1)
    assert deployment.explain(query) == router.explain(query)
    plain = Deployment(ObliDB(rng=np.random.default_rng(0)))
    assert plain.explain(query) is None


def test_ordered_join_probes_validates_side():
    join = JoinCountQuery(
        left_table="Alpha",
        right_table="Beta",
        left_attribute="key",
        right_attribute="key",
        label="qJ",
    )
    (first, first_side), (second, second_side) = ordered_join_probes(join, "right")
    assert (first_side, second_side) == ("right", "left")
    assert first.table == "Beta" and second.table == "Alpha"
    with pytest.raises(ValueError, match="first_side"):
        ordered_join_probes(join, "middle")


# ---------------------------------------------------------------------------
# Satellite bugfixes
# ---------------------------------------------------------------------------


def test_join_count_histograms_keeps_integer_exactness():
    assert join_count_from_histograms({1: 2, 2: 3}, {1: 4, 3: 9}) == 8
    assert isinstance(join_count_from_histograms({1: 2}, {1: 4}), int)


def test_join_count_histograms_preserves_noisy_floats():
    # A histogram carrying unrounded DP noise must not be truncated: the
    # old int() cast silently biased the gathered count toward zero.
    noisy = join_count_from_histograms({1: 1.7}, {1: 1})
    assert isinstance(noisy, float)
    assert noisy == pytest.approx(1.7)
    assert join_count_from_histograms({1: 0.4, 2: 1.2}, {1: 2, 2: 1}) == pytest.approx(
        2.0
    )


def test_join_upper_bound_helper():
    assert join_upper_bound({1: 2, 2: 3}, 10) == 50
    assert isinstance(join_upper_bound({1: 1.5}, 2), float)


def test_wall_clock_stats_count_setup_attempts():
    router = ShardRouter(_shards(2), route_seed=0, executor="serial")
    records = [_record("Alpha", i % 5, i, False, 0) for i in range(8)]
    router.setup(records, time=0)
    assert router.measured.setup_calls == 1
    # A failed Setup attempt (shards already initialized) still counts --
    # calls/seconds share one attempt basis across the protocol surface.
    with pytest.raises(RuntimeError):
        router.setup(records, time=0)
    assert router.measured.setup_calls == 2
    assert router.measured.setup_seconds > 0.0
    router.measured.reset()
    assert router.measured.setup_calls == 0
    assert router.measured.setup_seconds == 0.0


# ---------------------------------------------------------------------------
# Plan invariance (Hypothesis property, forced alternatives)
# ---------------------------------------------------------------------------

# One batch: (table index, key, value, is_dummy) per record.
_contents = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, len(TABLES) - 1),
            st.integers(0, 4),
            st.integers(0, 30),
            st.booleans(),
        ),
        min_size=1,
        max_size=5,
    ),
    min_size=1,
    max_size=3,
)


def _build(K: int, cls, planner) -> ShardRouter:
    return ShardRouter(
        _shards(K, cls, seed=11), route_seed=7, executor="serial", planner=planner
    )


def _run(router: ShardRouter, batches, queries) -> list:
    """Ingest the batches, querying at every checkpoint; return the trace."""
    trace = []
    router.setup([], time=0)
    for time, batch in enumerate(batches, start=1):
        records = [
            _record(TABLES[t], key, value, dummy, time)
            for t, key, value, dummy in batch
        ]
        router.update(records, time=time)
        for query in queries:
            trace.append(router.query(query, time=time))
    return trace


@settings(max_examples=8, deadline=None)
@given(batches=_contents)
def test_plan_invariance_property(batches):
    """Any forced plan choice replays the planner-off observables exactly:
    full QueryResults at every checkpoint, the aggregate transcript, and the
    per-shard transcripts -- K in {1, 2, 4}, both back-ends."""
    for cls in (ObliDB, CryptEpsilon):
        include_join = cls is ObliDB
        queries = _queries(include_join=include_join)
        for K in (1, 2, 4):
            off = _build(K, cls, "off")
            baseline = _run(off, batches, queries)
            history = update_pattern_observables(off.update_history)
            per_shard = off.per_shard_observables()

            # Discover how many alternatives each query enumerates, then
            # force every alternative index in turn on a fresh router.
            seen_alternatives: dict[str, int] = {}

            def record(query, alternatives):
                seen_alternatives[query.name] = len(alternatives)
                return None

            probe = _build(K, cls, QueryPlanner(override=record))
            assert _run(probe, batches, queries) == baseline
            max_alternatives = max(seen_alternatives.values())

            for index in range(max_alternatives):
                forced = _build(
                    K,
                    cls,
                    QueryPlanner(
                        override=lambda q, alts, i=index: alts[i % len(alts)]
                    ),
                )
                assert _run(forced, batches, queries) == baseline
                assert update_pattern_observables(forced.update_history) == history
                assert forced.per_shard_observables() == per_shard
