"""Tests for the simulated record encryption.

The property DP-Sync relies on is that encrypted dummy records are
indistinguishable from encrypted real records: same ciphertext size, no
plaintext-dependent structure, round-trip correctness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.crypto import (
    CIPHERTEXT_SIZE,
    ArenaRecord,
    CiphertextArena,
    EncryptedRecord,
    RecordCipher,
    _xor,
)
from repro.edb.records import Record, Schema, make_dummy_record


@pytest.fixture
def cipher() -> RecordCipher:
    return RecordCipher(key=b"0" * 32)


class TestRecordCipher:
    def test_round_trip(self, cipher):
        record = Record(values={"a": 5, "b": "hello"}, arrival_time=9, table="t")
        encrypted = cipher.encrypt(record)
        decrypted = cipher.decrypt(encrypted)
        assert decrypted.values == record.values
        assert decrypted.arrival_time == record.arrival_time
        assert decrypted.is_dummy == record.is_dummy
        assert decrypted.table == record.table

    def test_round_trip_dummy(self, cipher):
        schema = Schema("t", ("a", "b"))
        dummy = make_dummy_record(schema, arrival_time=3)
        decrypted = cipher.decrypt(cipher.encrypt(dummy))
        assert decrypted.is_dummy

    def test_fixed_ciphertext_size(self, cipher):
        schema = Schema("t", ("a", "b"))
        real = Record(values={"a": 123456, "b": "payload-string"}, table="t")
        dummy = make_dummy_record(schema)
        sizes = {
            len(cipher.encrypt(real).ciphertext),
            len(cipher.encrypt(dummy).ciphertext),
            len(cipher.encrypt(Record(values={"x": 1})).ciphertext),
        }
        assert sizes == {CIPHERTEXT_SIZE}

    def test_same_plaintext_encrypts_differently(self, cipher):
        record = Record(values={"a": 1}, table="t")
        first = cipher.encrypt(record)
        second = cipher.encrypt(record)
        assert first.ciphertext != second.ciphertext

    def test_handles_are_unique(self, cipher):
        record = Record(values={"a": 1})
        handles = {cipher.encrypt(record).handle for _ in range(20)}
        assert len(handles) == 20

    def test_tampering_detected(self, cipher):
        record = Record(values={"a": 1})
        encrypted = cipher.encrypt(record)
        tampered_bytes = bytearray(encrypted.ciphertext)
        tampered_bytes[20] ^= 0xFF
        tampered = EncryptedRecord(ciphertext=bytes(tampered_bytes), handle=encrypted.handle)
        with pytest.raises(ValueError):
            cipher.decrypt(tampered)

    def test_wrong_key_fails_authentication(self):
        record = Record(values={"a": 1})
        alice = RecordCipher(key=b"a" * 32)
        bob = RecordCipher(key=b"b" * 32)
        encrypted = alice.encrypt(record)
        with pytest.raises(ValueError):
            bob.decrypt(encrypted)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            RecordCipher(key=b"short")

    def test_oversized_record_rejected(self, cipher):
        record = Record(values={"blob": "x" * 500})
        with pytest.raises(ValueError):
            cipher.encrypt(record)

    def test_invalid_ciphertext_length_rejected(self):
        with pytest.raises(ValueError):
            EncryptedRecord(ciphertext=b"too-short", handle=0)


class TestXor:
    def test_single_record_contract_returns_bytes(self):
        out = _xor(b"\x01\x02\x03", b"\xff\x00\x0f")
        assert isinstance(out, bytes)
        assert out == b"\xfe\x02\x0c"

    def test_batched_contract_writes_into_out_buffer(self):
        out = np.empty(3, dtype=np.uint8)
        returned = _xor(b"\x01\x02\x03", b"\xff\x00\x0f", out=out)
        assert returned is out
        assert out.tobytes() == b"\xfe\x02\x0c"


class TestArenaBulkPaths:
    def _records(self, n: int, start: int = 0) -> list[Record]:
        return [
            Record(values={"a": start + i, "b": f"r{i}"}, arrival_time=i, table="t")
            for i in range(n)
        ]

    def test_bulk_encrypt_round_trips_through_single_decrypt(self, cipher):
        records = self._records(20)
        arena = CiphertextArena(initial_capacity=2)
        handles = cipher.encrypt_many_into(records, arena)
        assert handles == list(range(20))
        for view, record in zip(arena.records(), records):
            decrypted = cipher.decrypt(view)
            assert decrypted.values == record.values
            assert decrypted.arrival_time == record.arrival_time

    def test_decrypt_many_matches_per_record_decrypt(self, cipher):
        records = self._records(15)
        encrypted = cipher.encrypt_many(records)
        batch = cipher.decrypt_many(encrypted)
        singles = [cipher.decrypt(e) for e in encrypted]
        assert [r.values for r in batch] == [r.values for r in singles]

    def test_handles_continue_across_layouts(self, cipher):
        """Object-path and arena-path encryptions share one handle sequence."""
        first = cipher.encrypt(Record(values={"a": 1}))
        arena = CiphertextArena()
        handles = cipher.encrypt_many_into(self._records(3), arena)
        last = cipher.encrypt(Record(values={"a": 2}))
        assert first.handle == 0
        assert handles == [1, 2, 3]
        assert last.handle == 4
        assert [v.handle for v in arena.records()] == [1, 2, 3]

    def test_bulk_tampering_detected(self, cipher):
        arena = CiphertextArena()
        cipher.encrypt_many_into(self._records(4), arena)
        tampered = arena.as_array().copy()
        tampered[2, 40] ^= 0xFF
        fakes = [
            EncryptedRecord(ciphertext=row.tobytes(), handle=i)
            for i, row in enumerate(tampered)
        ]
        with pytest.raises(ValueError):
            cipher.decrypt_many(fakes)

    def test_arena_views_are_zero_copy_and_fixed_size(self, cipher):
        arena = CiphertextArena()
        cipher.encrypt_many_into(self._records(2), arena)
        view = arena.record(0)
        assert isinstance(view, ArenaRecord)
        assert view.size_bytes == CIPHERTEXT_SIZE
        assert isinstance(view.ciphertext, memoryview)
        assert view.ciphertext.readonly
        assert view.to_encrypted_record() == view

    def test_empty_batch_is_a_no_op(self, cipher):
        arena = CiphertextArena()
        assert cipher.encrypt_many_into([], arena) == []
        assert cipher.decrypt_many([]) == []
        assert len(arena) == 0

    def test_oversized_record_rejected_before_any_arena_write(self, cipher):
        arena = CiphertextArena()
        bad = [Record(values={"a": 1}), Record(values={"blob": "x" * 500})]
        with pytest.raises(ValueError):
            cipher.encrypt_many_into(bad, arena)
        assert len(arena) == 0

    def test_arena_row_bounds_checked(self, cipher):
        arena = CiphertextArena()
        cipher.encrypt_many_into(self._records(1), arena)
        with pytest.raises(IndexError):
            arena.row(1)
        with pytest.raises(IndexError):
            arena.record(-1)

    def test_arena_doubles_capacity_and_compacts(self, cipher):
        arena = CiphertextArena(initial_capacity=1)
        cipher.encrypt_many_into(self._records(9), arena)
        assert arena.capacity == 16
        assert arena.grow_count >= 1
        arena.compact()
        assert arena.capacity == 9
        assert len(arena) == 9


class TestIndistinguishability:
    def test_dummy_vs_real_ciphertext_lengths_identical(self):
        """The server-observable footprint never depends on the dummy flag."""
        cipher = RecordCipher()
        schema = Schema("YellowCab", ("pickupID", "pickTime"))
        real = Record(values={"pickupID": 75, "pickTime": 120}, table=schema.name)
        dummy = make_dummy_record(schema)
        real_sizes = [cipher.encrypt(real).size_bytes for _ in range(10)]
        dummy_sizes = [cipher.encrypt(dummy).size_bytes for _ in range(10)]
        assert set(real_sizes) == set(dummy_sizes) == {CIPHERTEXT_SIZE}

    def test_ciphertext_bytes_look_uniform(self):
        """Byte-level sanity check: ciphertext bodies are not constant."""
        cipher = RecordCipher()
        record = Record(values={"a": 1})
        bodies = [cipher.encrypt(record).ciphertext for _ in range(5)]
        assert len({body[:64] for body in bodies}) == 5

    @given(
        pickup=st.integers(min_value=1, max_value=265),
        minute=st.integers(min_value=0, max_value=43_200),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_over_taxi_domain(self, pickup, minute):
        cipher = RecordCipher(key=b"k" * 32)
        record = Record(
            values={"pickupID": pickup, "pickTime": minute},
            arrival_time=minute,
            table="YellowCab",
        )
        decrypted = cipher.decrypt(cipher.encrypt(record))
        assert decrypted.values == {"pickupID": pickup, "pickTime": minute}
