"""Unit tests for the self-healing shard supervisor and its plumbing.

The byte-identity of supervised recovery against fault-free twins lives in
``tests/test_chaos_recovery.py``; this suite pins the building blocks:

* the unified per-command pipe deadline (``REPRO_SHARD_TIMEOUT_S`` /
  constructor arg) and the typed timeout it produces;
* deterministic backoff jitter (same seed => same sleep schedule);
* the crash-safe :class:`~repro.edb.store.ReplayLog` write protocol
  (orphan records past HEAD are invisible; torn tmp files never resolve);
* the degradation policies (``recover`` / ``raise`` / ``degrade``) and the
  health counters they move;
* monotonic worker stats across rebuild generations.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema
from repro.edb.router import ShardRouter, WallClockStats
from repro.edb.shard_worker import (
    DEFAULT_SHARD_TIMEOUT_S,
    ShardWorkerClient,
    ShardWorkerTimeout,
    TransientShardError,
    default_shard_timeout,
)
from repro.edb.store import ReplayLog
from repro.fleet.supervisor import (
    ShardSupervisor,
    SupervisedShard,
    SupervisorConfig,
    resolve_supervisor_mode,
)
from repro.query.ast import CountQuery
from repro.testing.chaos import ChaosWorkerFault, FaultSchedule, parse_fault_schedule

SCHEMA = Schema(name="events", attributes=("key", "value"))
QUERY = CountQuery(table="events", label="Q1")


def _records(n: int, start: int = 0, time: int = 1) -> list[Record]:
    return [
        Record(
            values={"key": (start + i) % 7, "value": start + i},
            arrival_time=time,
            table="events",
        )
        for i in range(n)
    ]


def _edb(seed: int = 7) -> ObliDB:
    return ObliDB(rng=np.random.default_rng(seed))


def _supervised(
    tmp_path,
    config: SupervisorConfig | None = None,
    schedule: FaultSchedule | None = None,
    executor: str = "serial",
    health: WallClockStats | None = None,
    seed: int = 7,
) -> SupervisedShard:
    return SupervisedShard(
        _edb(seed),
        0,
        config or SupervisorConfig(),
        schedule,
        executor,
        health if health is not None else WallClockStats(),
        threading.Lock(),
        tmp_path,
    )


# -- the unified pipe deadline -------------------------------------------------


def test_default_shard_timeout_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_TIMEOUT_S", raising=False)
    assert default_shard_timeout() == DEFAULT_SHARD_TIMEOUT_S
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT_S", "12.5")
    assert default_shard_timeout() == 12.5
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT_S", "0")
    with pytest.raises(ValueError):
        default_shard_timeout()
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT_S", "-3")
    with pytest.raises(ValueError):
        default_shard_timeout()


def test_wedged_worker_times_out_with_typed_error():
    """A worker that oversleeps its reply turns into ShardWorkerTimeout
    naming the shard, the command and the deadline -- never a hang."""
    import multiprocessing

    context = multiprocessing.get_context("fork")
    client = ShardWorkerClient(_edb(), 0, context, timeout_s=0.3)
    try:
        client.setup(_records(5))
        client.chaos_delay(5.0)  # arm: oversleep the next real command
        with pytest.raises(ShardWorkerTimeout) as excinfo:
            client.query(QUERY, time=1)
        assert excinfo.value.shard_index == 0
        assert excinfo.value.command == "query"
        assert excinfo.value.timeout_s == 0.3
        assert "0.3s" in str(excinfo.value)
    finally:
        # The worker is desynchronized on purpose; a supervisor would kill
        # and rebuild it, which is what close() degenerates to here.
        client.process.kill()
        client.process.join(timeout=5.0)
        client.close()


def test_supervisor_config_validation_and_meta_roundtrip(tmp_path):
    with pytest.raises(ValueError):
        SupervisorConfig(on_shard_failure="panic")
    with pytest.raises(ValueError):
        SupervisorConfig(max_retries=-1)
    with pytest.raises(ValueError):
        SupervisorConfig(timeout_s=0.0)
    with pytest.raises(ValueError):
        resolve_supervisor_mode("maybe")
    assert resolve_supervisor_mode("ON") == "on"
    config = SupervisorConfig(
        timeout_s=1.5, max_retries=5, seed=3, directory=str(tmp_path)
    )
    rebuilt = SupervisorConfig.from_meta(config.to_meta())
    # The scratch directory is machine-local and never round-trips.
    assert rebuilt == SupervisorConfig(timeout_s=1.5, max_retries=5, seed=3)


# -- deterministic backoff -----------------------------------------------------


def test_backoff_schedule_is_deterministic_per_seed_and_shard():
    """The jitter stream is SeedSequence([seed, shard])-derived: the same
    coordinates replay the same sleep schedule; different shards diverge."""
    config = SupervisorConfig(seed=11, backoff_base_s=0.05, backoff_cap_s=2.0)

    def schedule(shard_index: int) -> list[float]:
        rng = np.random.default_rng(
            np.random.SeedSequence([int(config.seed), int(shard_index)])
        )
        sleeps = []
        for attempt in (1, 2, 3, 4, 5, 6, 7):
            base = config.backoff_base_s * (2.0 ** (attempt - 1))
            delay = min(config.backoff_cap_s, base)
            sleeps.append(delay * (0.5 + 0.5 * float(rng.random())))
        return sleeps

    assert schedule(0) == schedule(0)
    assert schedule(0) != schedule(1)
    # Exponential growth capped at backoff_cap_s, jitter within [0.5, 1.0).
    sleeps = schedule(0)
    for attempt, sleep in enumerate(sleeps, start=1):
        delay = min(config.backoff_cap_s, config.backoff_base_s * 2 ** (attempt - 1))
        assert 0.5 * delay <= sleep < delay


def test_wrapper_backoff_draws_from_the_seeded_stream(tmp_path, monkeypatch):
    config = SupervisorConfig(seed=11, backoff_base_s=0.05, backoff_cap_s=2.0)
    slept: list[float] = []
    monkeypatch.setattr(
        "repro.fleet.supervisor._time.sleep", lambda s: slept.append(s)
    )
    schedule = parse_fault_schedule("raise@1,raise@2,raise@3")
    shard = _supervised(tmp_path, config=config, schedule=schedule)
    try:
        shard.setup(_records(6))  # fault 1 -> one backoff + recovery
        shard.update(_records(3, start=6), 1)  # fault 2
        shard.update(_records(3, start=9), 2)  # fault 3
    finally:
        shard.close()
    rng = np.random.default_rng(np.random.SeedSequence([11, 0]))
    expected = [0.05 * (0.5 + 0.5 * float(rng.random())) for _ in range(3)]
    assert slept == expected


# -- ReplayLog crash safety ----------------------------------------------------


def test_replay_log_append_entries_prune(tmp_path):
    log = ReplayLog(tmp_path / "journal")
    for tag, command in [(0, "setup"), (0, "update"), (1, "update"), (2, "query")]:
        log.append({"tag": tag, "command": command, "args": ()})
    assert len(log) == 4
    assert [e["command"] for e in log.entries()] == [
        "setup", "update", "update", "query",
    ]
    assert [e["command"] for e in log.entries(min_tag=1)] == ["update", "query"]
    assert log.prune(min_tag=1) == 2
    assert len(log) == 2
    # A fresh reader sees exactly the live range.
    reread = ReplayLog(tmp_path / "journal")
    assert [e["tag"] for e in reread.entries()] == [1, 2]


def test_replay_log_orphan_record_past_head_is_invisible(tmp_path):
    """A crash after the record write but before the HEAD update leaves an
    orphan file the live range never covers; the next append atomically
    overwrites it."""
    log = ReplayLog(tmp_path / "journal")
    log.append({"tag": 0, "command": "setup", "args": ()})
    # Simulate the torn second append: record durable, HEAD never updated.
    import pickle

    orphan = log._record_path(1)
    orphan.write_bytes(pickle.dumps({"tag": 9, "command": "garbage", "args": ()}))

    reread = ReplayLog(tmp_path / "journal")
    assert len(reread) == 1
    assert [e["command"] for e in reread.entries()] == ["setup"]
    serial = reread.append({"tag": 1, "command": "update", "args": ()})
    assert serial == 1  # the orphan's slot, overwritten atomically
    assert [e["command"] for e in reread.entries()] == ["setup", "update"]


def test_replay_log_tmp_files_never_resolve(tmp_path):
    log = ReplayLog(tmp_path / "journal")
    log.append({"tag": 0, "command": "setup", "args": ()})
    (tmp_path / "journal" / "records" / "0000000007.pkl.tmp").write_bytes(b"torn")
    reread = ReplayLog(tmp_path / "journal")
    assert [e["command"] for e in reread.entries()] == ["setup"]


def test_replay_log_staged_entries_are_visible_but_not_durable(tmp_path):
    """stage() feeds the live coordinator's replay immediately; only
    flush() makes entries survive a process restart -- records first,
    HEAD manifest last."""
    log = ReplayLog(tmp_path / "journal")
    log.append({"tag": 0, "command": "setup", "args": ()})
    for command in ("update", "query"):
        log.stage({"tag": 0, "command": command, "args": ()})
    # Staged entries replay from memory...
    assert [e["command"] for e in log.entries()] == ["setup", "update", "query"]
    # ...but a fresh reader (coordinator restart) only sees the durable prefix.
    assert [e["command"] for e in ReplayLog(tmp_path / "journal").entries()] == [
        "setup"
    ]
    assert log.flush() == 2
    assert log.flush() == 0  # idempotent once drained
    assert [e["command"] for e in ReplayLog(tmp_path / "journal").entries()] == [
        "setup", "update", "query",
    ]


def test_replay_log_prune_of_staged_entries_keeps_head_well_formed(tmp_path):
    log = ReplayLog(tmp_path / "journal")
    log.stage({"tag": 0, "command": "setup", "args": ()})
    log.stage({"tag": 1, "command": "update", "args": ()})
    assert log.prune(min_tag=1) == 1  # drops a never-flushed entry
    assert [e["tag"] for e in log.entries()] == [1]
    log.flush()
    reread = ReplayLog(tmp_path / "journal")
    assert [e["tag"] for e in reread.entries()] == [1]


def test_replay_log_sealed_at_rest(tmp_path):
    log = ReplayLog(tmp_path / "journal", passphrase="pw")
    log.append({"tag": 0, "command": "setup", "args": ("secret",)})
    raw = log._record_path(0).read_bytes()
    assert b"secret" not in raw
    reread = ReplayLog(tmp_path / "journal", passphrase="pw")
    assert reread.entries()[0]["args"] == ("secret",)


# -- degradation policies ------------------------------------------------------


def test_raise_policy_fails_fast(tmp_path):
    schedule = parse_fault_schedule("raise@2")
    shard = _supervised(
        tmp_path,
        config=SupervisorConfig(on_shard_failure="raise"),
        schedule=schedule,
    )
    try:
        shard.setup(_records(6))
        with pytest.raises(ChaosWorkerFault):
            shard.update(_records(3, start=6), 1)
    finally:
        shard.close()


def test_degrade_policy_takes_shard_out_of_rotation(tmp_path, monkeypatch):
    """Once retries are exhausted under on_shard_failure='degrade', the
    shard answers neutrally (zero-volume ingests, zero-count queries) and
    the health ledger says so."""
    monkeypatch.setattr("repro.fleet.supervisor._time.sleep", lambda s: None)
    health = WallClockStats()

    # A *persistent* failure (unlike a consume-once chaos fault): updates at
    # t=1 keep failing even on the freshly rebuilt shard, so the retry
    # budget genuinely exhausts.
    original_update = ObliDB.update

    def poisoned(self, records, time):
        if time == 1:
            raise TransientShardError(0, "update", "persistently poisoned")
        return original_update(self, records, time)

    monkeypatch.setattr(ObliDB, "update", poisoned)

    shard = _supervised(
        tmp_path,
        config=SupervisorConfig(on_shard_failure="degrade", max_retries=1),
        health=health,
    )
    try:
        setup_result = shard.setup(_records(6))
        assert setup_result.records_added > 0
        degraded_result = shard.update(_records(3, start=6), 1)
        assert shard.degraded
        assert degraded_result.records_added == 0
        assert degraded_result.time == 1

        answer = shard.query(QUERY, time=2)
        assert answer.answer == 0
        assert answer.qet_seconds == 0.0
        assert not answer.noise_injected
        # Neutral state reads keep the router's sweeps running.
        assert shard.is_setup
        assert shard.update_history == ()
        assert shard.outsourced_count == 0
        assert shard.table_size("events") == 0
        assert shard.supports(QUERY)

        assert health.degraded_shards == 1
        assert health.dropped_batches == 2  # the torn update + the query
        assert health.retries >= 1
    finally:
        shard.close()


def test_recover_policy_reraises_after_retry_budget(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.fleet.supervisor._time.sleep", lambda s: None)

    def poisoned(self, records, time=0):
        raise TransientShardError(0, "setup", "persistently poisoned")

    monkeypatch.setattr(ObliDB, "setup", poisoned)
    health = WallClockStats()
    shard = _supervised(
        tmp_path,
        config=SupervisorConfig(on_shard_failure="recover", max_retries=2),
        health=health,
    )
    try:
        with pytest.raises(TransientShardError):
            shard.setup(_records(6))
        assert health.retries == 2
        assert health.recoveries == 2
        assert not shard.degraded
    finally:
        shard.close()


# -- recovery bookkeeping ------------------------------------------------------


def test_recovery_replays_journal_and_counts_health(tmp_path, monkeypatch):
    """An injected mid-batch fault rebuilds the shard from snapshot+journal;
    the observables match an unfaulted twin and the health ledger records
    exactly one recovery with the replayed batch count."""
    monkeypatch.setattr("repro.fleet.supervisor._time.sleep", lambda s: None)
    health = WallClockStats()
    shard = _supervised(
        tmp_path, schedule=parse_fault_schedule("raise@4"), health=health
    )
    twin = _edb(seed=7)
    try:
        for target in (shard, twin):
            target.setup(_records(10))
            target.update(_records(3, start=10), 1)
            target.update(_records(3, start=13), 2)
            target.update(_records(3, start=16), 3)  # shard: faulted + healed
        assert shard.update_history == tuple(twin.update_history)
        assert shard.outsourced_count == twin.outsourced_count
        assert shard.query(QUERY, time=4).answer == twin.query(QUERY, time=4).answer
        assert health.recoveries == 1
        assert health.retries == 1
        # Generation 0 is pre-setup, so the replay covers every mutating
        # command journaled before the fault: setup + two updates.
        assert health.replayed_batches == 3
        assert health.recovery_seconds > 0.0
    finally:
        shard.close()


def test_snapshot_cadence_bounds_replay(tmp_path, monkeypatch):
    """With snapshot_every=2 the rebuild replays at most ~2 batches, not the
    whole history."""
    monkeypatch.setattr("repro.fleet.supervisor._time.sleep", lambda s: None)
    health = WallClockStats()
    shard = _supervised(
        tmp_path,
        config=SupervisorConfig(snapshot_every=2),
        schedule=parse_fault_schedule("raise@6"),
        health=health,
    )
    twin = _edb(seed=7)
    try:
        for target in (shard, twin):
            target.setup(_records(10))
            for t in range(1, 6):
                target.update(_records(2, start=10 + 2 * t), t)
        assert shard.update_history == tuple(twin.update_history)
        assert health.recoveries == 1
        assert health.replayed_batches <= 2
    finally:
        shard.close()


def test_supervised_stats_stay_monotonic_across_rebuilds(monkeypatch):
    """Killing and healing a process-executor shard must not reset its
    (busy, overhead, commands) counters -- the router's delta absorption
    depends on monotonicity."""
    monkeypatch.setattr("repro.fleet.supervisor._time.sleep", lambda s: None)
    router = ShardRouter(
        [ObliDB(rng=np.random.default_rng(40 + i)) for i in range(2)],
        route_seed=3,
        executor="processes",
        supervisor=SupervisorConfig(timeout_s=10.0),
    )
    try:
        router.setup(_records(20))
        before = router.shards[0].stats()
        router.shards[0].process.kill()
        router.shards[0].process.join(timeout=5.0)
        router.query(QUERY, time=1)  # heals shard 0 mid-sweep
        after = router.shards[0].stats()
        assert router.measured.recoveries == 1
        assert after[2] > before[2]  # command count kept growing
        assert after[0] >= before[0] and after[1] >= before[1]
    finally:
        router.close()


def test_supervisor_scratch_directory_lifecycle(tmp_path):
    config = SupervisorConfig(directory=str(tmp_path / "scratch"))
    supervisor = ShardSupervisor(
        config, None, "serial", WallClockStats(), context=None
    )
    wrapped = supervisor.wrap([_edb(seed=1), _edb(seed=2)])
    assert (tmp_path / "scratch" / "shard-000" / "snapshots").is_dir()
    assert (tmp_path / "scratch" / "shard-001" / "journal").is_dir()
    supervisor.close()
    # Per-shard scratch is removed; a user-supplied base directory is kept.
    assert not (tmp_path / "scratch" / "shard-000").exists()
    assert (tmp_path / "scratch").exists()
    assert all(s.live is None for s in wrapped)
