"""Tests for the EncryptedDatabase base protocol and the two back-ends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edb.base import EncryptedDatabase, UnsupportedQueryError
from repro.edb.cost_model import OBLIDB_COSTS
from repro.edb.crypte import CryptEpsilon
from repro.edb.leakage import LeakageClass
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.predicates import RangePredicate

SCHEMA = Schema("YellowCab", ("pickupID", "pickTime"))
GREEN = Schema("GreenTaxi", ("pickupID", "pickTime"))


def make_records(n: int, table: Schema = SCHEMA, start: int = 1) -> list[Record]:
    return [
        Record(
            values={"pickupID": (i % 265) + 1, "pickTime": start + i},
            arrival_time=start + i,
            table=table.name,
        )
        for i in range(n)
    ]


Q1 = CountQuery("YellowCab", RangePredicate("pickupID", 50, 100), label="Q1")
Q2 = GroupByCountQuery("YellowCab", "pickupID", label="Q2")
Q3 = JoinCountQuery("YellowCab", "GreenTaxi", "pickTime", "pickTime", label="Q3")


class TestProtocolLifecycle:
    def test_update_before_setup_raises(self):
        edb = ObliDB()
        with pytest.raises(RuntimeError):
            edb.update(make_records(1), time=1)

    def test_query_before_setup_raises(self):
        edb = ObliDB()
        with pytest.raises(RuntimeError):
            edb.query(Q1)

    def test_double_setup_raises(self):
        edb = ObliDB()
        edb.setup(make_records(2))
        with pytest.raises(RuntimeError):
            edb.setup(make_records(2))

    def test_setup_then_update_then_query(self):
        edb = ObliDB(rng=np.random.default_rng(0))
        edb.setup(make_records(5))
        edb.update(make_records(3, start=10), time=10)
        result = edb.query(Q2, time=10)
        assert sum(result.answer.values()) == 8
        assert edb.outsourced_count == 8
        assert edb.real_count == 8

    def test_update_history_is_the_update_pattern(self):
        edb = ObliDB()
        edb.setup(make_records(4))
        edb.update(make_records(2, start=10), time=10)
        edb.update(make_records(3, start=20), time=20)
        history = edb.update_history
        assert [h.time for h in history] == [0, 10, 20]
        assert [h.total_added for h in history] == [4, 2, 3]

    def test_dummy_accounting(self):
        edb = ObliDB()
        dummies = [make_dummy_record(SCHEMA, t) for t in range(3)]
        edb.setup(make_records(5) + dummies)
        assert edb.outsourced_count == 8
        assert edb.dummy_count == 3
        assert edb.real_count == 5
        assert edb.table_dummy_count("YellowCab") == 3

    def test_storage_bytes_grow_with_records(self):
        edb = ObliDB()
        edb.setup(make_records(10))
        assert edb.storage_bytes == pytest.approx(10 * OBLIDB_COSTS.record_storage_bytes)

    def test_simulated_encryption_stores_ciphertexts(self):
        edb = ObliDB(simulate_encryption=True)
        edb.setup(make_records(4))
        ciphertexts = edb.ciphertexts("YellowCab")
        assert len(ciphertexts) == 4
        sizes = {c.size_bytes for c in ciphertexts}
        assert len(sizes) == 1  # fixed ciphertext size

    def test_encryption_disabled_stores_no_ciphertexts(self):
        edb = ObliDB(simulate_encryption=False)
        edb.setup(make_records(4))
        assert edb.ciphertexts("YellowCab") == ()


class TestObliDB:
    def test_leakage_profile_is_l0_and_compatible(self):
        edb = ObliDB()
        profile = edb.leakage_profile
        assert profile.query_class is LeakageClass.L0
        assert profile.is_dpsync_compatible()

    def test_answers_are_exact_over_real_records(self):
        edb = ObliDB()
        records = make_records(50)
        edb.setup(records)
        expected = sum(1 for r in records if 50 <= r["pickupID"] <= 100)
        assert edb.query(Q1).answer == expected

    def test_dummies_do_not_change_answers(self):
        edb = ObliDB()
        records = make_records(50)
        dummies = [make_dummy_record(SCHEMA, t) for t in range(30)]
        edb.setup(records + dummies)
        expected = sum(1 for r in records if 50 <= r["pickupID"] <= 100)
        assert edb.query(Q1).answer == expected

    def test_dummies_do_increase_qet(self):
        lean = ObliDB()
        lean.setup(make_records(50))
        padded = ObliDB()
        padded.setup(make_records(50) + [make_dummy_record(SCHEMA, t) for t in range(200)])
        assert padded.query(Q2).qet_seconds > lean.query(Q2).qet_seconds

    def test_join_query_over_two_tables(self):
        edb = ObliDB()
        yellow = make_records(30)
        green = [
            Record(
                values={"pickupID": 1, "pickTime": r["pickTime"]},
                arrival_time=r.arrival_time,
                table="GreenTaxi",
            )
            for r in yellow[:12]
        ]
        edb.setup(yellow + green)
        assert edb.query(Q3).answer == 12

    def test_invalid_storage_mode(self):
        with pytest.raises(ValueError):
            ObliDB(storage_mode="invalid")

    def test_oram_mode_populates_per_table_orams(self):
        edb = ObliDB(storage_mode="oram", oram_capacity=256, rng=np.random.default_rng(1))
        edb.setup(make_records(20))
        oram = edb.oram_for("YellowCab")
        assert oram is not None
        assert len(oram) == 20
        assert edb.oram_for("GreenTaxi") is None

    def test_flat_mode_has_no_oram(self):
        edb = ObliDB(storage_mode="flat")
        edb.setup(make_records(5))
        assert edb.oram_for("YellowCab") is None


class TestCryptEpsilon:
    def test_leakage_profile_is_ldp_and_compatible(self):
        edb = CryptEpsilon()
        assert edb.leakage_profile.query_class is LeakageClass.LDP
        assert edb.leakage_profile.is_dpsync_compatible()

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            CryptEpsilon(query_epsilon=0.0)

    def test_answers_are_noisy_but_close(self):
        edb = CryptEpsilon(query_epsilon=3.0, rng=np.random.default_rng(2))
        records = make_records(200)
        edb.setup(records)
        expected = sum(1 for r in records if 50 <= r["pickupID"] <= 100)
        result = edb.query(Q1)
        assert result.noise_injected
        assert abs(result.answer - expected) <= 10

    def test_noise_scale_depends_on_query_epsilon(self):
        tight_errors = []
        loose_errors = []
        records = make_records(100)
        expected = sum(1 for r in records if 50 <= r["pickupID"] <= 100)
        for seed in range(40):
            tight = CryptEpsilon(query_epsilon=10.0, rng=np.random.default_rng(seed))
            tight.setup(make_records(100))
            tight_errors.append(abs(tight.query(Q1).answer - expected))
            loose = CryptEpsilon(query_epsilon=0.2, rng=np.random.default_rng(seed))
            loose.setup(make_records(100))
            loose_errors.append(abs(loose.query(Q1).answer - expected))
        assert sum(loose_errors) > sum(tight_errors)

    def test_grouped_answers_are_noisy_per_group(self):
        edb = CryptEpsilon(query_epsilon=3.0, rng=np.random.default_rng(3))
        edb.setup(make_records(150))
        answer = edb.query(Q2).answer
        assert isinstance(answer, dict)
        assert all(v >= 0 for v in answer.values())

    def test_join_unsupported(self):
        edb = CryptEpsilon()
        edb.setup(make_records(5))
        assert not edb.supports(Q3)
        with pytest.raises(UnsupportedQueryError):
            edb.query(Q3)

    def test_answers_never_negative(self):
        edb = CryptEpsilon(query_epsilon=0.05, rng=np.random.default_rng(4))
        edb.setup(make_records(3))
        for _ in range(30):
            assert edb.query(Q1).answer >= 0

    def test_unrounded_answers_supported(self):
        edb = CryptEpsilon(round_answers=False, rng=np.random.default_rng(5))
        edb.setup(make_records(20))
        assert isinstance(edb.query(Q1).answer, float)


class TestSharedEDBMultiTable:
    def test_two_tables_share_one_edb(self):
        edb = ObliDB()
        yellow = make_records(10)
        edb.setup(yellow)
        green = [
            Record(
                values={"pickupID": 3, "pickTime": 100 + i},
                arrival_time=100 + i,
                table="GreenTaxi",
            )
            for i in range(7)
        ]
        edb.update(green, time=1)
        assert edb.table_size("YellowCab") == 10
        assert edb.table_size("GreenTaxi") == 7
        assert edb.outsourced_count == 17
