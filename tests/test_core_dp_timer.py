"""Tests for the DP-Timer strategy (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.dp.theory import timer_logical_gap_bound
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def real(i):
    return Record(values={"sensor_id": i % 5, "value": i}, arrival_time=i, table="events")


def make_timer(epsilon=0.5, period=30, flush=None, seed=0):
    return DPTimerStrategy(
        dummy_factory,
        epsilon=epsilon,
        period=period,
        flush=flush if flush is not None else FlushPolicy.disabled(),
        rng=np.random.default_rng(seed),
    )


def drive(strategy, horizon, arrival_every=2):
    decisions = []
    for t in range(1, horizon + 1):
        update = real(t) if t % arrival_every == 0 else None
        decisions.append((t, strategy.step(t, update)))
    return decisions


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_timer(epsilon=0.0)
        with pytest.raises(ValueError):
            make_timer(period=0)

    def test_parameters_exposed(self):
        strategy = make_timer(epsilon=0.7, period=42)
        assert strategy.epsilon == 0.7
        assert strategy.period == 42
        assert not strategy.flush_policy.enabled


class TestSchedule:
    def test_syncs_only_on_multiples_of_period(self):
        strategy = make_timer(period=30, seed=1)
        strategy.setup([])
        decisions = drive(strategy, 300)
        sync_times = [t for t, d in decisions if d.should_sync]
        assert all(t % 30 == 0 for t in sync_times)

    def test_schedule_is_data_independent(self):
        """The *times* of synchronization never depend on the data."""
        dense = make_timer(period=20, seed=2)
        dense.setup([])
        sparse = make_timer(period=20, seed=3)
        sparse.setup([])
        dense_times = [
            t for t, d in ((t, dense.step(t, real(t))) for t in range(1, 201)) if d.should_sync
        ]
        sparse_times = [
            t for t, d in ((t, sparse.step(t, None)) for t in range(1, 201)) if d.should_sync
        ]
        # Dense streams sync at (nearly) every period; sparse streams may skip
        # a period when the noisy count is non-positive -- but any time that
        # does appear must be a period multiple in both cases.
        assert all(t % 20 == 0 for t in dense_times)
        assert all(t % 20 == 0 for t in sparse_times)

    def test_flush_times_also_sync(self):
        strategy = make_timer(period=30, flush=FlushPolicy(interval=100, size=5), seed=4)
        strategy.setup([])
        decisions = drive(strategy, 200)
        flush_decisions = [d for t, d in decisions if d.should_sync and "flush" in d.reason]
        assert flush_decisions
        assert all(d.volume >= 5 for d in flush_decisions)


class TestVolumes:
    def test_volumes_are_noisy_counts(self):
        strategy = make_timer(epsilon=1.0, period=10, seed=5)
        strategy.setup([])
        decisions = drive(strategy, 500, arrival_every=2)
        volumes = [d.volume for _, d in decisions if d.should_sync]
        # Each window receives 5 records; noisy volumes should center near 5.
        assert 3.0 <= float(np.mean(volumes)) <= 7.0
        assert len(set(volumes)) > 1  # noise actually varies

    def test_dummy_padding_when_noise_exceeds_cache(self):
        strategy = make_timer(epsilon=0.2, period=10, seed=6)
        strategy.setup([])
        decisions = drive(strategy, 500, arrival_every=5)
        assert strategy.synced_dummy_total > 0

    def test_records_uploaded_in_fifo_order(self):
        strategy = make_timer(epsilon=5.0, period=10, seed=7)
        strategy.setup([])
        uploaded = []
        for t in range(1, 301):
            decision = strategy.step(t, real(t))
            uploaded.extend(r["value"] for r in decision.records if not r.is_dummy)
        assert uploaded == sorted(uploaded)


class TestCountModes:
    def test_invalid_count_mode_rejected(self):
        with pytest.raises(ValueError):
            DPTimerStrategy(dummy_factory, count_mode="bogus")

    def test_default_is_window_mode(self):
        assert make_timer().count_mode == "window"

    def test_cache_mode_keeps_backlog_small(self):
        """Perturbing the cache length drains deferred records continually,
        so the mean gap stays near the per-window arrival count."""

        def run(count_mode, seed=11):
            strategy = DPTimerStrategy(
                dummy_factory,
                epsilon=0.5,
                period=10,
                flush=FlushPolicy.disabled(),
                rng=np.random.default_rng(seed),
                count_mode=count_mode,
            )
            strategy.setup([])
            gaps = []
            for t in range(1, 2001):
                strategy.step(t, real(t) if t % 2 == 0 else None)
                gaps.append(strategy.logical_gap)
            return float(np.mean(gaps))

        assert run("cache") < run("window")
        assert run("cache") < 15


class TestPrivacyAccounting:
    def test_total_epsilon_never_exceeds_budget(self):
        strategy = make_timer(epsilon=0.5, period=30, flush=FlushPolicy(100, 5), seed=8)
        strategy.setup([real(0)])
        drive(strategy, 1000)
        assert strategy.accountant.total_epsilon() == pytest.approx(0.5)

    def test_each_window_is_its_own_partition(self):
        strategy = make_timer(epsilon=0.5, period=10, seed=9)
        strategy.setup([])
        drive(strategy, 100)
        partitions = strategy.accountant.per_partition()
        windows = [p for p in partitions if p.startswith("window-")]
        assert len(windows) == 10
        assert all(partitions[w] == pytest.approx(0.5) for w in windows)


class TestAccuracyBound:
    def test_logical_gap_respects_theorem6(self):
        """The gap (minus the current window's arrivals) stays within the
        Theorem 6 bound for the vast majority of synchronization points."""
        epsilon, period, beta = 0.5, 20, 0.05
        violations = 0
        checks = 0
        for seed in range(5):
            strategy = make_timer(epsilon=epsilon, period=period, seed=seed)
            strategy.setup([])
            received_since_sync = 0
            for t in range(1, 1001):
                update = real(t) if t % 2 == 0 else None
                if update is not None:
                    received_since_sync += 1
                decision = strategy.step(t, update)
                if decision.should_sync:
                    received_since_sync = 0
                if t % period == 0:
                    k = t // period
                    bound = timer_logical_gap_bound(epsilon, k, beta)
                    excess = strategy.logical_gap - received_since_sync
                    checks += 1
                    if excess > bound:
                        violations += 1
        assert checks > 0
        assert violations / checks <= 2 * beta
