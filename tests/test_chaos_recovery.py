"""Headline chaos differentials: recovery is byte-invisible in every
paper-level observable.

For every fault schedule, at K in {1, 2, 4} shards, on both back-ends
(ObliDB exact answers, Crypt-epsilon L-DP noise), a supervised run that
crashes and heals mid-flight produces *byte-identical* results to a
fault-free unsupervised twin: update results, query answers, QET, noise
flags, and the aggregate and per-shard ``(t, |γ|)`` update-pattern
transcripts.  The recovery cost is visible only in the measured wall-clock
ledger's health counters.

The L-DP back-end is the sharp half of the differential: it consumes one
RNG draw per query, so recovery must replay *queries* (not just ingests)
to advance the rebuilt noise stream exactly as far as the dead shard's.
"""

from __future__ import annotations

import pytest

from repro.edb.router import ShardRouter
from repro.edb.records import Record
from repro.fleet.supervisor import SupervisorConfig
from repro.query.ast import CountQuery
from repro.simulation.runner import CellSpec, make_backend
from repro.testing.chaos import parse_fault_schedule, random_fault_schedule

QUERY = CountQuery(table="events", label="Q1")

#: Fast chaos policy: short pipe deadline (the delay/drop kinds wait it
#: out) and near-zero backoff so the differential runs in seconds.
CHAOS_CONFIG = SupervisorConfig(timeout_s=2.0, backoff_base_s=0.01)

BACKENDS = ("oblidb", "crypte")


def _records(n: int, start: int = 0, time: int = 0) -> list[Record]:
    return [
        Record(
            values={"key": (start + i) % 7, "value": start + i},
            arrival_time=time,
            table="events",
        )
        for i in range(n)
    ]


def _router(
    backend: str,
    n_shards: int,
    executor: str = "serial",
    supervisor=None,
    faults: str = "",
    simulate_encryption: bool = False,
) -> ShardRouter:
    shards = [
        make_backend(
            backend, seed=40 + index, simulate_encryption=simulate_encryption
        )()
        for index in range(n_shards)
    ]
    return ShardRouter(
        shards,
        route_seed=9,
        executor=executor,
        supervisor=supervisor,
        faults=faults,
    )


def _drive(router: ShardRouter, ticks: int = 5):
    """Setup + ``ticks`` update/query rounds; every observable, verbatim."""
    observed = []
    setup = router.setup(_records(10, time=0))
    observed.append(
        (
            "setup",
            setup.time,
            setup.records_added,
            setup.dummies_added,
            setup.bytes_added,
        )
    )
    for t in range(1, ticks + 1):
        update = router.update(_records(3, start=10 + 3 * t, time=t), t)
        result = router.query(QUERY, time=t)
        observed.append(
            (
                t,
                update.records_added,
                update.dummies_added,
                update.bytes_added,
                result.query_name,
                result.answer,
                result.qet_seconds,
                result.records_scanned,
                result.noise_injected,
            )
        )
    transcripts = (tuple(router.update_history), router.per_shard_observables())
    return observed, transcripts


def _differential(backend, n_shards, faults, executor="serial", **router_kwargs):
    reference = _router(backend, n_shards, executor=executor, **router_kwargs)
    chaotic = _router(
        backend,
        n_shards,
        executor=executor,
        supervisor=CHAOS_CONFIG,
        faults=faults,
        **router_kwargs,
    )
    try:
        assert _drive(chaotic) == _drive(reference)
    finally:
        health = chaotic.measured.health()
        reference.close()
        chaotic.close()
    return health


# -- the headline grid ---------------------------------------------------------

_SCHEDULES = {
    1: "raise@2,tornsnap@5",
    2: "raise:1@2,tornsnap:0@4",
    4: "raise:3@2,tornsnap:1@3,raise:0@5,tornsnap:2@6",
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", sorted(_SCHEDULES))
def test_recovery_is_byte_invisible_across_k_and_backends(backend, n_shards):
    """K in {1, 2, 4} x {ObliDB, Crypt-epsilon}: every observable of a
    crashed-and-healed run equals the fault-free twin's, bit for bit."""
    health = _differential(backend, n_shards, _SCHEDULES[n_shards])
    expected = len(parse_fault_schedule(_SCHEDULES[n_shards]))
    assert health["recoveries"] == expected
    assert health["degraded_shards"] == 0
    assert health["replayed_batches"] > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_six_fault_kinds_heal_on_the_process_executor(backend):
    """One run through every fault kind -- kill, delay, drop, lostshm,
    raise, tornsnap -- against persistent worker processes with real
    shared-memory arenas; still byte-identical to the fault-free twin."""
    faults = "delay:0@2,kill:1@3,drop:1@4,lostshm:0@5,raise:1@6,tornsnap:0@7"
    health = _differential(
        backend,
        2,
        faults,
        executor="processes",
        simulate_encryption=True,
    )
    assert health["recoveries"] == 6
    assert health["degraded_shards"] == 0


def test_process_only_kinds_are_skipped_in_process_less_executors():
    """kill/delay/drop/lostshm need a worker process; on threads they are
    silently skipped while raise/tornsnap still fire and heal."""
    faults = "kill:0@2,delay:1@3,drop:0@4,lostshm:1@5,raise:1@6,tornsnap:0@7"
    health = _differential("oblidb", 2, faults, executor="threads")
    assert health["recoveries"] == 2  # raise + tornsnap only


@pytest.mark.parametrize("backend", BACKENDS)
def test_supervision_without_faults_is_free_of_observable_effects(backend):
    """supervisor='on' with no faults: byte-identical results and an
    all-zero health ledger (the <= 1.05x wall-clock overhead companion is
    pinned by benchmarks/bench_faults.py)."""
    reference = _router(backend, 2, executor="serial")
    supervised = _router(backend, 2, executor="serial", supervisor="on")
    try:
        assert _drive(supervised) == _drive(reference)
        health = supervised.measured.health()
        assert health == {
            "recoveries": 0,
            "retries": 0,
            "replayed_batches": 0,
            "recovery_seconds": 0.0,
            "degraded_shards": 0,
            "dropped_batches": 0,
        }
    finally:
        reference.close()
        supervised.close()


# -- schedule plumbing ---------------------------------------------------------


def test_random_fault_schedule_replays_from_the_seed():
    first = random_fault_schedule(seed=42, n_shards=4, n_faults=5)
    second = random_fault_schedule(seed=42, n_shards=4, n_faults=5)
    assert first.spec() == second.spec()
    assert random_fault_schedule(seed=43, n_shards=4, n_faults=5).spec() != first.spec()
    for fault in first.pending:
        assert 0 <= fault.shard < 4
        assert fault.at_command >= 1


def test_fault_schedule_grid_syntax_round_trips():
    schedule = parse_fault_schedule(" kill:1@3 , raise@5 ,tornsnap:2@1")
    assert schedule.spec() == "kill:1@3,raise@5,tornsnap:2@1"
    assert parse_fault_schedule("").spec() == ""
    with pytest.raises(ValueError):
        parse_fault_schedule("kill:1")  # missing @<command>
    with pytest.raises(ValueError):
        parse_fault_schedule("explode@3")  # unknown kind
    with pytest.raises(ValueError):
        parse_fault_schedule("kill@0")  # at_command is 1-based


def test_cellspec_validates_the_robustness_axes():
    base = dict(strategy="dp-timer", backend="oblidb", scenario="taxi-yellow")
    cell = CellSpec(**base, supervisor="ON", faults=" raise@2 , kill:1@3 ")
    assert cell.supervisor == "on"
    assert cell.faults == "raise@2,kill:1@3"
    with pytest.raises(ValueError):
        CellSpec(**base, supervisor="maybe")
    with pytest.raises(ValueError):
        CellSpec(**base, faults="bogus@")
