"""Tests for query objects and their lowering to relational plans."""

from __future__ import annotations

import pytest

from repro.query.ast import (
    AggregationKind,
    CountNode,
    CountQuery,
    FilterNode,
    GroupByCountNode,
    GroupByCountQuery,
    JoinCountQuery,
    JoinNode,
    ScanNode,
)
from repro.query.predicates import RangePredicate, TruePredicate


class TestCountQuery:
    def test_kind_and_tables(self):
        query = CountQuery("YellowCab", RangePredicate("pickupID", 50, 100), label="Q1")
        assert query.kind is AggregationKind.SCALAR_COUNT
        assert query.tables == ("YellowCab",)
        assert query.name == "Q1"

    def test_plan_shape(self):
        query = CountQuery("T")
        plan = query.to_plan()
        assert isinstance(plan, CountNode)
        assert isinstance(plan.child, FilterNode)
        assert isinstance(plan.child.child, ScanNode)
        assert plan.child.child.table == "T"

    def test_default_predicate_is_true(self):
        query = CountQuery("T")
        assert isinstance(query.predicate, TruePredicate)

    def test_default_label(self):
        assert CountQuery("T").name == "CountQuery"


class TestGroupByCountQuery:
    def test_kind(self):
        query = GroupByCountQuery("YellowCab", "pickupID", label="Q2")
        assert query.kind is AggregationKind.GROUPED_COUNT
        assert query.tables == ("YellowCab",)

    def test_plan_shape(self):
        plan = GroupByCountQuery("T", "g").to_plan()
        assert isinstance(plan, GroupByCountNode)
        assert plan.group_attribute == "g"
        assert isinstance(plan.child, FilterNode)


class TestJoinCountQuery:
    def test_kind_and_tables(self):
        query = JoinCountQuery("A", "B", "x", "y", label="Q3")
        assert query.kind is AggregationKind.SCALAR_COUNT
        assert query.tables == ("A", "B")

    def test_plan_shape(self):
        plan = JoinCountQuery("A", "B", "x", "y").to_plan()
        assert isinstance(plan, CountNode)
        join = plan.child
        assert isinstance(join, JoinNode)
        assert join.left_attribute == "x"
        assert join.right_attribute == "y"
        assert isinstance(join.left, FilterNode)
        assert isinstance(join.right, FilterNode)


class TestPlanNodes:
    def test_children_traversal(self):
        plan = JoinCountQuery("A", "B", "x", "y").to_plan()
        # Walk the tree and count scan leaves.
        stack = [plan]
        scans = 0
        while stack:
            node = stack.pop()
            if isinstance(node, ScanNode):
                scans += 1
            stack.extend(node.children())
        assert scans == 2

    def test_leaf_has_no_children(self):
        assert ScanNode("T").children() == ()

    def test_plans_are_immutable(self):
        plan = ScanNode("T")
        with pytest.raises(AttributeError):
            plan.table = "other"
