"""Statistical tests of the update-pattern DP guarantee (Definition 5).

These tests run the *actual strategy implementations* (not the Table 4
abstractions) on neighboring growing databases and verify that what the
server observes -- the update pattern -- cannot distinguish them:

* for DP-Timer, the synchronization times are identical by construction and
  the volume distributions on a window differing by one record must satisfy
  the e^epsilon likelihood-ratio bound;
* for DP-ANT, the distribution over the number of synchronizations (the only
  data-dependent part of the schedule) must also respect the bound;
* for SET/OTO, the patterns are exactly identical (0-DP);
* for SUR, the patterns are trivially distinguishable (the negative control).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.naive import SETStrategy, SURStrategy
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def record(t):
    return Record(values={"sensor_id": 1, "value": float(t)}, arrival_time=t, table="events")


def run_pattern(strategy, arrivals):
    """Run a strategy over a boolean arrival stream; return (times, volumes)."""
    strategy.setup([])
    times, volumes = [], []
    for t, arrived in enumerate(arrivals, start=1):
        decision = strategy.step(t, record(t) if arrived else None)
        if decision.should_sync and decision.volume:
            times.append(t)
            volumes.append(decision.volume)
    return tuple(times), tuple(volumes)


# Two neighboring streams: identical except one extra arrival at t=5.
STREAM_A = [t in {2, 5, 8, 11, 14, 17} for t in range(1, 21)]
STREAM_B = [t in {2, 8, 11, 14, 17} for t in range(1, 21)]


class TestDPTimerPattern:
    def test_sync_times_identical_on_neighbors(self):
        for seed in range(20):
            timer_a = DPTimerStrategy(
                dummy_factory, epsilon=1.0, period=10,
                flush=FlushPolicy.disabled(), rng=np.random.default_rng(seed),
            )
            timer_b = DPTimerStrategy(
                dummy_factory, epsilon=1.0, period=10,
                flush=FlushPolicy.disabled(), rng=np.random.default_rng(seed + 1000),
            )
            times_a, _ = run_pattern(timer_a, STREAM_A)
            times_b, _ = run_pattern(timer_b, STREAM_B)
            assert all(t % 10 == 0 for t in times_a + times_b)

    def test_volume_likelihood_ratio_within_epsilon(self):
        epsilon = 1.0
        trials = 4000
        rng_pool = np.random.default_rng(0)

        def first_window_volume(stream):
            timer = DPTimerStrategy(
                dummy_factory, epsilon=epsilon, period=20,
                flush=FlushPolicy.disabled(),
                rng=np.random.default_rng(int(rng_pool.integers(0, 2**31))),
            )
            _, volumes = run_pattern(timer, stream)
            return volumes[0] if volumes else 0

        a = np.array([first_window_volume(STREAM_A) for _ in range(trials)])
        b = np.array([first_window_volume(STREAM_B) for _ in range(trials)])
        # Coarse buckets keep per-bucket counts high enough for a stable ratio.
        for low, high in [(0, 5), (5, 8), (8, 100)]:
            pa = float(np.mean((a >= low) & (a < high))) + 1e-3
            pb = float(np.mean((b >= low) & (b < high))) + 1e-3
            assert pa / pb <= math.exp(epsilon) * 1.6
            assert pa / pb >= math.exp(-epsilon) / 1.6


class TestDPANTPattern:
    def test_sync_count_distribution_close_on_neighbors(self):
        epsilon = 1.0
        trials = 1500
        rng_pool = np.random.default_rng(1)

        def sync_count(stream):
            ant = DPANTStrategy(
                dummy_factory, epsilon=epsilon, theta=4,
                flush=FlushPolicy.disabled(),
                rng=np.random.default_rng(int(rng_pool.integers(0, 2**31))),
            )
            times, _ = run_pattern(ant, stream)
            return len(times)

        a = np.array([sync_count(STREAM_A) for _ in range(trials)])
        b = np.array([sync_count(STREAM_B) for _ in range(trials)])
        # The mean number of crossings may differ only slightly; a gross gap
        # would indicate the pattern leaks the extra record directly.
        assert abs(float(a.mean()) - float(b.mean())) < 0.5


class TestNaivePatterns:
    def test_set_patterns_identical_on_neighbors(self):
        set_a = SETStrategy(dummy_factory)
        set_b = SETStrategy(dummy_factory)
        pattern_a = run_pattern(set_a, STREAM_A)
        pattern_b = run_pattern(set_b, STREAM_B)
        assert pattern_a == pattern_b

    def test_sur_patterns_differ_on_neighbors(self):
        sur_a = SURStrategy(dummy_factory)
        sur_b = SURStrategy(dummy_factory)
        times_a, _ = run_pattern(sur_a, STREAM_A)
        times_b, _ = run_pattern(sur_b, STREAM_B)
        assert times_a != times_b
        assert 5 in times_a and 5 not in times_b
