"""Tests for the leakage classification (Section 6, Table 3)."""

from __future__ import annotations

import pytest

from repro.edb.leakage import (
    SCHEME_REGISTRY,
    LeakageClass,
    LeakageProfile,
    SchemeInfo,
    classify_scheme,
    compatible_with_dpsync,
    leakage_group_table,
)


class TestLeakageClass:
    def test_all_four_groups_exist(self):
        assert {c.value for c in LeakageClass} == {"L-0", "L-DP", "L-1", "L-2"}

    def test_descriptions_are_informative(self):
        for leakage_class in LeakageClass:
            assert len(leakage_class.description) > 10


class TestSchemeRegistry:
    def test_contains_papers_examples(self):
        names = {scheme.name for scheme in SCHEME_REGISTRY}
        for expected in ("ObliDB", "Crypt-epsilon", "CryptDB", "StealthDB", "Shrinkwrap"):
            assert expected in names

    def test_classify_known_schemes(self):
        assert classify_scheme("ObliDB") is LeakageClass.L0
        assert classify_scheme("crypt-epsilon") is LeakageClass.LDP
        assert classify_scheme("StealthDB") is LeakageClass.L1
        assert classify_scheme("CryptDB") is LeakageClass.L2

    def test_classify_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            classify_scheme("NotARealDatabase")

    def test_leakage_group_table_covers_registry(self):
        table = leakage_group_table()
        total = sum(len(v) for v in table.values())
        assert total == len(SCHEME_REGISTRY)
        assert "ObliDB" in table[LeakageClass.L0]
        assert "Crypt-epsilon" in table[LeakageClass.LDP]
        assert "CryptDB" in table[LeakageClass.L2]


class TestCompatibilityRule:
    def test_l0_and_ldp_compatible(self):
        assert compatible_with_dpsync("ObliDB")
        assert compatible_with_dpsync("Crypt-epsilon")

    def test_l1_and_l2_incompatible(self):
        assert not compatible_with_dpsync("StealthDB")
        assert not compatible_with_dpsync("CryptDB")

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            compatible_with_dpsync("NotARealDatabase")

    def test_static_scheme_incompatible_even_if_l0(self):
        static = SchemeInfo("StaticScheme", LeakageClass.L0, supports_updates=False)
        assert not compatible_with_dpsync(static)

    def test_batched_encryption_incompatible(self):
        batched = SchemeInfo("BatchedHE", LeakageClass.L0, atomic_encryption=False)
        assert not compatible_with_dpsync(batched)


class TestLeakageProfile:
    def test_l0_profile_compatible(self):
        profile = LeakageProfile(scheme="ObliDB", query_class=LeakageClass.L0)
        assert profile.is_dpsync_compatible()

    def test_profile_with_extra_update_leakage_incompatible(self):
        profile = LeakageProfile(
            scheme="LeakyDB",
            query_class=LeakageClass.L0,
            update_leaks_only_pattern=False,
        )
        assert not profile.is_dpsync_compatible()

    def test_access_pattern_leak_incompatible(self):
        profile = LeakageProfile(
            scheme="SSE",
            query_class=LeakageClass.L2,
            reveals_access_pattern=True,
        )
        assert not profile.is_dpsync_compatible()

    def test_volume_leaking_l1_incompatible(self):
        profile = LeakageProfile(
            scheme="SisoSPIR",
            query_class=LeakageClass.L1,
            reveals_exact_volume=True,
        )
        assert not profile.is_dpsync_compatible()
