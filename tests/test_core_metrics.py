"""Tests for the accuracy / efficiency metrics of Section 4.5."""

from __future__ import annotations

import pytest

from repro.core.metrics import dummy_overhead, logical_gap, megabytes, query_error
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("t", ("a",))


class TestLogicalGap:
    def test_counts(self):
        assert logical_gap(10, 7) == 3
        assert logical_gap(5, 5) == 0
        assert logical_gap(3, 9) == 0  # never negative

    def test_record_collections(self):
        received = [Record(values={"a": i}, table="t") for i in range(6)]
        outsourced = received[:4] + [make_dummy_record(SCHEMA)]
        assert logical_gap(received, outsourced) == 2

    def test_mixed_arguments(self):
        received = [Record(values={"a": i}, table="t") for i in range(4)]
        assert logical_gap(received, 1) == 3
        assert logical_gap(4, received[:2]) == 2


class TestQueryError:
    def test_scalar(self):
        assert query_error(100, 93) == 7.0

    def test_grouped(self):
        assert query_error({"a": 3, "b": 2}, {"a": 1, "c": 4}) == 2 + 2 + 4


class TestDummyOverheadAndUnits:
    def test_dummy_overhead(self):
        assert dummy_overhead(120, 100) == 20
        assert dummy_overhead(10, 10) == 0
        with pytest.raises(ValueError):
            dummy_overhead(5, 9)

    def test_megabytes(self):
        assert megabytes(2_500_000) == pytest.approx(2.5)
        assert megabytes(0) == 0.0
