"""Shared-memory ciphertext arenas: interleaving equivalence (Hypothesis).

:class:`~repro.edb.crypto.SharedCiphertextArena` claims to be a drop-in
backend for :class:`~repro.edb.crypto.CiphertextArena`: same append/growth/
compaction semantics, except the rows live in a named POSIX segment another
process can attach.  The property pinned here is the one the process shard
executor leans on: under *random interleavings* of ``encrypt_many_into``,
capacity growth and ``compact`` across a creator ("worker") / attacher
("coordinator") pair,

* the shared arena stays byte-identical to a plain single-process arena fed
  the same plaintexts and nonce stream (rows, handles, insertion order);
* every :class:`~repro.edb.crypto.ArenaSegmentHandle` minted at any point --
  including before growths that moved the rows into a fresh segment --
  resolves through an :class:`~repro.edb.crypto.ArenaSegmentCache` to the
  same bytes; and
* the resolved zero-copy rows round-trip through
  :meth:`~repro.edb.crypto.RecordCipher.decrypt` to the original records.

Nonce determinism: both ciphers share a key, and ``os.urandom`` is patched
with a stub that serves every drawn value exactly twice, so the local and
shared encryptions of one batch (strictly alternated) consume identical
nonces -- making byte-level comparison meaningful.  Arena *names* stay
unique under the patch because they embed a process-wide counter.
"""

from __future__ import annotations

from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.crypto import (
    ArenaSegmentCache,
    CiphertextArena,
    RecordCipher,
    SharedCiphertextArena,
)
from repro.edb.records import Record

KEY = bytes(range(32))

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("encrypt"), st.integers(min_value=1, max_value=24)),
        st.just(("compact",)),
        st.just(("read",)),
    ),
    min_size=1,
    max_size=12,
)


class _TwinNonces:
    """``os.urandom`` stub serving every drawn value exactly twice.

    The driver encrypts each batch into the local arena first and the shared
    arena immediately after; pairing the draws by size hands both ciphers
    identical nonce bytes, so equal plaintexts yield equal ciphertexts.
    """

    def __init__(self, seed: int) -> None:
        import numpy as np

        self._rng = np.random.default_rng(seed)
        self._stash: dict[int, bytes] = {}

    def __call__(self, n: int) -> bytes:
        stashed = self._stash.pop(n, None)
        if stashed is not None:
            return stashed
        value = self._rng.bytes(n)
        self._stash[n] = value
        return value


def _records(start: int, n: int) -> list[Record]:
    return [
        Record(
            values={"key": (start + i) % 5, "value": start + i},
            arrival_time=1 + (start + i) % 9,
            table="events",
        )
        for i in range(n)
    ]


@given(ops=OPS, nonce_seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_shared_arena_interleavings_match_single_process_arena(ops, nonce_seed):
    local_cipher = RecordCipher(key=KEY)
    shared_cipher = RecordCipher(key=KEY)
    local = CiphertextArena(initial_capacity=2)
    shared = SharedCiphertextArena(initial_capacity=2)
    cache = ArenaSegmentCache()
    #: Segment handles minted right after each append, before any later
    #: growth/compaction -- all must still resolve at every read point.
    minted: list = []
    total = 0
    try:
        with mock.patch("repro.edb.crypto.os.urandom", _TwinNonces(nonce_seed)):
            for op in ops:
                if op[0] == "encrypt":
                    batch = _records(total, op[1])
                    local_handles = local_cipher.encrypt_many_into(batch, local)
                    shared_handles = shared_cipher.encrypt_many_into(batch, shared)
                    assert shared_handles == local_handles
                    minted.extend(
                        shared.handle_for(index)
                        for index in range(total, total + op[1])
                    )
                    total += op[1]
                elif op[0] == "compact":
                    local.compact()
                    shared.compact()
                else:
                    _check_reads(local, shared, cache, minted, shared_cipher, total)
        # Every example ends with a full read so trailing ops are verified.
        _check_reads(local, shared, cache, minted, shared_cipher, total)
    finally:
        cache.close()
        shared.release()


def _check_reads(local, shared, cache, minted, cipher, total):
    assert len(shared) == len(local) == total == len(minted)
    state = shared.export_state()
    assert state["size"] == total
    view = cache.publish(state)
    for index, handle in enumerate(minted):
        # Row indices are invariant under growth and compaction, so stale
        # handles resolve against the *current* segment.
        resolved = cache.resolve(handle)
        assert bytes(resolved.ciphertext) == bytes(local.row(index))
        assert resolved.handle == local.handle_at(index)
    if total:
        # Round-trip decryption of the attached zero-copy rows.
        decrypted = cipher.decrypt_many(view.records())
        expected = _records(0, total)
        assert [r.values for r in decrypted] == [r.values for r in expected]
        assert [r.arrival_time for r in decrypted] == [
            r.arrival_time for r in expected
        ]


def test_shared_arena_release_is_idempotent():
    arena = SharedCiphertextArena(initial_capacity=4)
    cipher = RecordCipher(key=KEY)
    cipher.encrypt_many_into(_records(0, 10), arena)  # forces growth too
    assert arena.generation >= 2
    arena.release()
    arena.release()


def _segment_exists(name: str) -> bool:
    import os

    return os.path.exists(f"/dev/shm/{name}")


def test_dropped_arena_is_reaped_by_finalizer():
    """An arena dropped without ``release()`` must not leak its segment.

    Cleanup is ``weakref.finalize``-based (not ``__del__``), so it runs
    deterministically at garbage collection and at interpreter exit even
    when the arena is caught in a reference cycle.
    """
    import gc

    arena = SharedCiphertextArena(initial_capacity=4)
    RecordCipher(key=KEY).encrypt_many_into(_records(0, 10), arena)
    segment_name = arena.segment_name
    assert _segment_exists(segment_name)
    # A reference cycle would defeat __del__-ordering; finalize is immune.
    arena.cycle = arena
    del arena
    gc.collect()
    assert not _segment_exists(segment_name)


def test_attached_view_close_is_idempotent_and_finalized():
    import gc

    arena = SharedCiphertextArena(initial_capacity=4)
    cipher = RecordCipher(key=KEY)
    cipher.encrypt_many_into(_records(0, 4), arena)
    try:
        cache = ArenaSegmentCache()
        view = cache.publish(arena.export_state())
        assert len(view) == 4
        cache.close()
        cache.close()  # idempotent
        assert len(view) == 0  # detached
        # A view dropped without close() is finalized at collection.
        dangling = cache.publish(arena.export_state())
        del cache, dangling
        gc.collect()
    finally:
        arena.release()
