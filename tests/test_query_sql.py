"""Tests for the small SQL front-end, including the paper's Q1/Q2/Q3."""

from __future__ import annotations

import pytest

from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.predicates import (
    AndPredicate,
    EqualityPredicate,
    RangePredicate,
    TruePredicate,
)
from repro.query.sql import SQLParseError, parse_query

Q1 = "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100"
Q2 = "SELECT pickupID, COUNT(*) AS PickupCnt FROM YellowCab GROUP BY pickupID"
Q3 = (
    "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi "
    "ON YellowCab.pickTime = GreenTaxi.pickTime"
)


class TestPaperQueries:
    def test_q1_parses_to_range_count(self):
        query = parse_query(Q1, label="Q1")
        assert isinstance(query, CountQuery)
        assert query.table == "YellowCab"
        assert isinstance(query.predicate, RangePredicate)
        assert query.predicate.attribute == "pickupID"
        assert (query.predicate.low, query.predicate.high) == (50, 100)
        assert query.name == "Q1"

    def test_q2_parses_to_groupby_count(self):
        query = parse_query(Q2, label="Q2")
        assert isinstance(query, GroupByCountQuery)
        assert query.table == "YellowCab"
        assert query.group_attribute == "pickupID"
        assert isinstance(query.predicate, TruePredicate)

    def test_q3_parses_to_join_count(self):
        query = parse_query(Q3, label="Q3")
        assert isinstance(query, JoinCountQuery)
        assert query.left_table == "YellowCab"
        assert query.right_table == "GreenTaxi"
        assert query.left_attribute == "pickTime"
        assert query.right_attribute == "pickTime"


class TestGeneralParsing:
    def test_plain_count(self):
        query = parse_query("SELECT COUNT(*) FROM T")
        assert isinstance(query, CountQuery)
        assert isinstance(query.predicate, TruePredicate)

    def test_trailing_semicolon_and_whitespace(self):
        query = parse_query("  select count(*) from t ;  ")
        assert isinstance(query, CountQuery)
        assert query.table == "t"

    def test_equality_predicate_numeric(self):
        query = parse_query("SELECT COUNT(*) FROM T WHERE a = 7")
        assert isinstance(query.predicate, EqualityPredicate)
        assert query.predicate.value == 7

    def test_equality_predicate_string(self):
        query = parse_query("SELECT COUNT(*) FROM T WHERE name = 'zone'")
        assert query.predicate.value == "zone"

    def test_conjunction_of_clauses(self):
        query = parse_query(
            "SELECT COUNT(*) FROM T WHERE a BETWEEN 1 AND 5 AND b = 2"
        )
        assert isinstance(query.predicate, AndPredicate)
        kinds = {type(child) for child in query.predicate.children}
        assert kinds == {RangePredicate, EqualityPredicate}

    def test_groupby_with_where(self):
        query = parse_query(
            "SELECT zone, COUNT(*) FROM T WHERE zone BETWEEN 1 AND 10 GROUP BY zone"
        )
        assert isinstance(query, GroupByCountQuery)
        assert isinstance(query.predicate, RangePredicate)

    def test_join_with_reversed_on_clause(self):
        query = parse_query(
            "SELECT COUNT(*) FROM A INNER JOIN B ON B.y = A.x"
        )
        assert query.left_table == "A"
        assert query.left_attribute == "x"
        assert query.right_attribute == "y"

    def test_float_bounds(self):
        query = parse_query("SELECT COUNT(*) FROM T WHERE a BETWEEN 0.5 AND 1.5")
        assert query.predicate.low == 0.5
        assert query.predicate.high == 1.5

    def test_default_labels(self):
        assert parse_query("SELECT COUNT(*) FROM T").name == "CountQuery"


class TestRejections:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT * FROM T",
            "SELECT SUM(a) FROM T",
            "DELETE FROM T",
            "SELECT COUNT(*) FROM T WHERE a LIKE 'x%'",
            "SELECT a, COUNT(*) FROM T GROUP BY b",
            "SELECT COUNT(*) FROM A INNER JOIN B ON C.x = D.y",
            "SELECT COUNT(*) FROM T WHERE a > 5",
        ],
    )
    def test_unsupported_shapes_raise(self, bad):
        with pytest.raises(SQLParseError):
            parse_query(bad)
