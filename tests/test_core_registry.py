"""Tests for the strategy registry / factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import CacheMode
from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.naive import OTOStrategy, SETStrategy, SURStrategy
from repro.core.strategies.registry import available_strategies, make_strategy
from repro.edb.records import Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


class TestRegistry:
    def test_available_strategies(self):
        assert set(available_strategies()) == {"sur", "oto", "set", "dp-timer", "dp-ant"}

    @pytest.mark.parametrize(
        ("name", "cls"),
        [
            ("sur", SURStrategy),
            ("oto", OTOStrategy),
            ("set", SETStrategy),
            ("dp-timer", DPTimerStrategy),
            ("dp-ant", DPANTStrategy),
        ],
    )
    def test_factory_builds_correct_class(self, name, cls):
        strategy = make_strategy(name, dummy_factory)
        assert isinstance(strategy, cls)

    def test_name_normalization(self):
        assert isinstance(make_strategy("DP_TIMER", dummy_factory), DPTimerStrategy)
        assert isinstance(make_strategy("Dp-Ant", dummy_factory), DPANTStrategy)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_strategy("magic", dummy_factory)

    def test_dp_parameters_forwarded(self):
        flush = FlushPolicy(interval=500, size=3)
        timer = make_strategy(
            "dp-timer", dummy_factory, epsilon=0.9, period=77, flush=flush
        )
        assert timer.epsilon == 0.9
        assert timer.period == 77
        assert timer.flush_policy == flush
        ant = make_strategy("dp-ant", dummy_factory, epsilon=0.9, theta=99, flush=flush)
        assert ant.epsilon == 0.9
        assert ant.theta == 99

    def test_cache_mode_forwarded(self):
        strategy = make_strategy("set", dummy_factory, cache_mode=CacheMode.LIFO)
        assert strategy.cache.mode is CacheMode.LIFO

    def test_rng_forwarded_makes_runs_reproducible(self):
        def build():
            return make_strategy(
                "dp-timer", dummy_factory, rng=np.random.default_rng(42), epsilon=1.0, period=5
            )

        first, second = build(), build()
        first.setup([])
        second.setup([])
        volumes_first, volumes_second = [], []
        for t in range(1, 101):
            volumes_first.append(first.step(t, None).volume)
            volumes_second.append(second.step(t, None).volume)
        assert volumes_first == volumes_second
