"""Integration tests for the design principles P1-P4.

* P1 -- bounded DP guarantee on the update pattern (accountant-level check);
* P2 -- configurable privacy/accuracy/performance (monotone trends);
* P3 -- eventual consistency: once arrivals stop, the gap closes, and records
  are uploaded in arrival order (FIFO);
* P4 -- interoperability: the same strategy runs unchanged on both back-ends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import DPSync
from repro.core.strategies.flush import FlushPolicy
from repro.edb.crypte import CryptEpsilon
from repro.edb.oblidb import ObliDB
from repro.edb.records import Schema

SCHEMA = Schema("events", ("sensor_id", "value"))


def feed(dpsync, horizon, arrival_every=2, start=1):
    for t in range(start, start + horizon):
        update = (
            {"sensor_id": t % 7, "value": float(t)} if t % arrival_every == 0 else None
        )
        dpsync.receive(t, update)


class TestP1BoundedPrivacy:
    @pytest.mark.parametrize("strategy", ["dp-timer", "dp-ant"])
    def test_accounted_epsilon_equals_configured_budget(self, strategy):
        dpsync = DPSync(
            SCHEMA,
            edb=ObliDB(),
            strategy=strategy,
            epsilon=0.5,
            period=20,
            theta=10,
            flush=FlushPolicy(interval=100, size=5),
            rng=np.random.default_rng(0),
        )
        dpsync.start([{"sensor_id": 0, "value": 0.0}])
        feed(dpsync, 800, arrival_every=1)
        assert dpsync.strategy.accountant.total_epsilon() == pytest.approx(0.5)

    def test_naive_strategies_report_extreme_epsilon(self):
        sur = DPSync(SCHEMA, edb=ObliDB(), strategy="sur")
        set_ = DPSync(SCHEMA, edb=ObliDB(), strategy="set")
        assert sur.epsilon == float("inf")
        assert set_.epsilon == 0.0


class TestP2Configurability:
    def test_larger_T_means_larger_error_smaller_volume(self):
        """Figure 6 trend on a small workload: the *average* gap grows with T
        (the end-of-run gap is noisy, so the mean over time is compared)."""
        mean_gaps = []
        for period in (5, 200):
            dpsync = DPSync(
                SCHEMA,
                edb=ObliDB(),
                strategy="dp-timer",
                epsilon=0.5,
                period=period,
                flush=FlushPolicy.disabled(),
                rng=np.random.default_rng(1),
            )
            dpsync.start([])
            gaps = []
            for t in range(1, 601):
                update = {"sensor_id": t % 7, "value": float(t)} if t % 2 == 0 else None
                dpsync.receive(t, update)
                gaps.append(dpsync.logical_gap)
            mean_gaps.append(sum(gaps) / len(gaps))
        assert mean_gaps[1] > mean_gaps[0]

    def test_larger_theta_means_fewer_syncs(self):
        sync_counts = []
        for theta in (5, 200):
            dpsync = DPSync(
                SCHEMA,
                edb=ObliDB(),
                strategy="dp-ant",
                epsilon=0.5,
                theta=theta,
                flush=FlushPolicy.disabled(),
                rng=np.random.default_rng(2),
            )
            dpsync.start([])
            feed(dpsync, 600, arrival_every=1)
            sync_counts.append(dpsync.strategy.sync_count)
        assert sync_counts[0] > sync_counts[1]


class TestP3EventualConsistency:
    @pytest.mark.parametrize("strategy", ["dp-timer", "dp-ant"])
    def test_gap_closes_after_arrivals_stop(self, strategy):
        """Once the owner stops receiving data, the flush mechanism drains the
        cache, so eventually there are no logical gaps."""
        dpsync = DPSync(
            SCHEMA,
            edb=ObliDB(),
            strategy=strategy,
            epsilon=0.5,
            period=20,
            theta=10,
            flush=FlushPolicy(interval=50, size=10),
            rng=np.random.default_rng(3),
        )
        dpsync.start([])
        feed(dpsync, 300, arrival_every=1)              # active phase
        feed(dpsync, 700, arrival_every=10**9, start=301)  # quiet phase
        assert dpsync.logical_gap == 0

    @pytest.mark.parametrize("strategy", ["dp-timer", "dp-ant", "sur", "set"])
    def test_records_reach_server_in_arrival_order(self, strategy):
        dpsync = DPSync(
            SCHEMA,
            edb=ObliDB(),
            strategy=strategy,
            epsilon=1.0,
            period=15,
            theta=8,
            flush=FlushPolicy(interval=60, size=5),
            rng=np.random.default_rng(4),
        )
        dpsync.start([])
        feed(dpsync, 400, arrival_every=2)
        edb = dpsync.edb
        # The EDB stores records in insertion order; their original arrival
        # times must be non-decreasing (FIFO upload = order preservation).
        stored = edb._executor.tables.get("events", [])
        arrival_times = [r.arrival_time for r in stored if not r.is_dummy]
        assert arrival_times == sorted(arrival_times)


class TestP4Interoperability:
    @pytest.mark.parametrize("edb_factory", [ObliDB, CryptEpsilon])
    def test_same_strategy_runs_on_both_backends(self, edb_factory):
        edb = edb_factory(rng=np.random.default_rng(5))
        dpsync = DPSync(
            SCHEMA,
            edb=edb,
            strategy="dp-timer",
            epsilon=0.5,
            period=25,
            rng=np.random.default_rng(6),
        )
        dpsync.start([])
        feed(dpsync, 300, arrival_every=2)
        observation = dpsync.query("SELECT COUNT(*) FROM events")
        assert observation.qet_seconds > 0
        assert edb.leakage_profile.is_dpsync_compatible()

    def test_update_volumes_identical_across_backends_for_same_seed(self):
        """DP-Sync makes no changes to the EDB: the synchronization behaviour
        (and hence the update pattern) depends only on the strategy RNG."""
        patterns = []
        for factory in (ObliDB, CryptEpsilon):
            dpsync = DPSync(
                SCHEMA,
                edb=factory(),
                strategy="dp-timer",
                epsilon=0.5,
                period=25,
                rng=np.random.default_rng(7),
            )
            dpsync.start([])
            feed(dpsync, 300, arrival_every=3)
            patterns.append(dpsync.update_pattern.as_tuples())
        assert patterns[0] == patterns[1]
