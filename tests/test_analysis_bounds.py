"""Tests for the empirical-vs-theoretical bound checks (Theorems 6-9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bounds import BoundCheck, check_ant_bounds, check_timer_bounds
from repro.core.strategies.flush import FlushPolicy
from repro.workload.generator import build_growing_database, poisson_arrivals
from repro.workload.stream import GrowingDatabase
from repro.edb.records import Schema

SCHEMA = Schema("events", ("sensor_id", "value"))


@pytest.fixture(scope="module")
def workload() -> GrowingDatabase:
    rng = np.random.default_rng(0)
    arrivals = poisson_arrivals(2000, 0.45, rng)

    def sampler(t, generator):
        return {"sensor_id": int(generator.integers(0, 10)), "value": float(t)}

    return build_growing_database(SCHEMA, arrivals, sampler, rng)


class TestTimerBounds:
    def test_gap_bound_holds_with_high_probability(self, workload):
        gap_checks, size_checks = check_timer_bounds(
            workload,
            epsilon=0.5,
            period=25,
            flush=FlushPolicy(interval=400, size=10),
            beta=0.05,
            rng=np.random.default_rng(1),
        )
        assert gap_checks and size_checks
        gap_violations = sum(1 for c in gap_checks if not c.holds)
        size_violations = sum(1 for c in size_checks if not c.holds)
        assert gap_violations / len(gap_checks) <= 0.15
        assert size_violations / len(size_checks) <= 0.15

    def test_check_objects_are_well_formed(self, workload):
        gap_checks, _ = check_timer_bounds(
            workload, epsilon=1.0, period=50, rng=np.random.default_rng(2)
        )
        for check in gap_checks:
            assert isinstance(check, BoundCheck)
            assert check.bound > 0
            assert check.observed >= 0
            assert check.holds == (check.observed <= check.bound)

    def test_tighter_epsilon_means_larger_bound(self, workload):
        loose_gap, _ = check_timer_bounds(
            workload, epsilon=0.1, period=50, rng=np.random.default_rng(3)
        )
        tight_gap, _ = check_timer_bounds(
            workload, epsilon=2.0, period=50, rng=np.random.default_rng(3)
        )
        assert loose_gap[0].bound > tight_gap[0].bound


class TestANTBounds:
    def test_gap_bound_holds_with_high_probability(self, workload):
        gap_checks, size_checks = check_ant_bounds(
            workload,
            epsilon=0.5,
            theta=15,
            flush=FlushPolicy(interval=400, size=10),
            beta=0.05,
            rng=np.random.default_rng(4),
        )
        assert gap_checks and size_checks
        assert sum(1 for c in gap_checks if not c.holds) / len(gap_checks) <= 0.15
        # The Theorem 9 size bound ignores the non-negative padding bias of a
        # real implementation (a noisy fetch can add dummies but a negative
        # one never removes records), so the empirical size may exceed the
        # analytical bound by a modest margin; it must stay within ~35% of it.
        assert all(c.observed <= 1.35 * c.bound for c in size_checks)

    def test_custom_observation_times(self, workload):
        gap_checks, _ = check_ant_bounds(
            workload,
            epsilon=1.0,
            theta=10,
            observe_times=[500, 1000, 2000],
            rng=np.random.default_rng(5),
        )
        assert [c.time for c in gap_checks] == [500, 1000, 2000]
