"""Tests for the owner's local cache (Section 3.2.1 semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CacheMode, LocalCache
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def real(i):
    return Record(values={"sensor_id": i, "value": i}, arrival_time=i, table="events")


class TestBasicOperations:
    def test_len_write_read(self):
        cache = LocalCache(dummy_factory)
        assert len(cache) == 0
        cache.write(real(1))
        cache.write(real(2))
        assert len(cache) == 2
        popped = cache.read(2)
        assert [r["sensor_id"] for r in popped] == [1, 2]
        assert len(cache) == 0

    def test_read_pads_with_dummies(self):
        cache = LocalCache(dummy_factory)
        cache.write(real(1))
        popped = cache.read(4, current_time=9)
        assert len(popped) == 4
        assert sum(1 for r in popped if r.is_dummy) == 3
        assert all(r.arrival_time == 9 for r in popped if r.is_dummy)
        assert cache.total_dummies_issued == 3

    def test_read_zero_returns_empty(self):
        cache = LocalCache(dummy_factory)
        cache.write(real(1))
        assert cache.read(0) == []
        assert len(cache) == 1

    def test_negative_read_rejected(self):
        cache = LocalCache(dummy_factory)
        with pytest.raises(ValueError):
            cache.read(-1)

    def test_writing_dummy_rejected(self):
        cache = LocalCache(dummy_factory)
        with pytest.raises(ValueError):
            cache.write(make_dummy_record(SCHEMA))

    def test_extend_and_peek(self):
        cache = LocalCache(dummy_factory)
        cache.extend([real(1), real(2), real(3)])
        assert [r["sensor_id"] for r in cache.peek_all()] == [1, 2, 3]
        assert len(cache) == 3  # peek is non-destructive

    def test_drain_pops_everything_without_dummies(self):
        cache = LocalCache(dummy_factory)
        cache.extend([real(1), real(2)])
        drained = cache.drain()
        assert len(drained) == 2
        assert not any(r.is_dummy for r in drained)
        assert len(cache) == 0

    def test_counters(self):
        cache = LocalCache(dummy_factory)
        cache.extend([real(i) for i in range(5)])
        cache.read(3)
        assert cache.total_written == 5
        assert cache.total_read == 3
        assert cache.total_dummies_issued == 0


class TestOrderingDisciplines:
    def test_fifo_preserves_arrival_order(self):
        cache = LocalCache(dummy_factory, mode=CacheMode.FIFO)
        cache.extend([real(i) for i in range(5)])
        first = cache.read(2)
        second = cache.read(3)
        assert [r["sensor_id"] for r in first + second] == [0, 1, 2, 3, 4]

    def test_lifo_returns_most_recent_first(self):
        cache = LocalCache(dummy_factory, mode=CacheMode.LIFO)
        cache.extend([real(i) for i in range(5)])
        popped = cache.read(3)
        assert [r["sensor_id"] for r in popped] == [4, 3, 2]

    def test_mode_property(self):
        assert LocalCache(dummy_factory).mode is CacheMode.FIFO
        assert LocalCache(dummy_factory, mode=CacheMode.LIFO).mode is CacheMode.LIFO


class TestCacheProperties:
    @given(
        writes=st.integers(min_value=0, max_value=50),
        read_size=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=200, deadline=None)
    def test_read_always_returns_exactly_n(self, writes, read_size):
        """read(σ, n) returns exactly n records (real + dummy padding)."""
        cache = LocalCache(dummy_factory)
        cache.extend([real(i) for i in range(writes)])
        popped = cache.read(read_size)
        assert len(popped) == read_size
        real_count = sum(1 for r in popped if not r.is_dummy)
        assert real_count == min(writes, read_size)
        assert len(cache) == max(0, writes - read_size)

    @given(ops=st.lists(st.integers(min_value=0, max_value=10), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_conservation_of_real_records(self, ops):
        """Real records are never created or destroyed by the cache."""
        cache = LocalCache(dummy_factory)
        written = 0
        read_real = 0
        for index, op in enumerate(ops):
            if op <= 5:
                cache.write(real(index))
                written += 1
            else:
                popped = cache.read(op - 5)
                read_real += sum(1 for r in popped if not r.is_dummy)
        assert written == read_real + len(cache)
