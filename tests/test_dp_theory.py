"""Tests for the Theorem 6-9 bounds and the Table 2 comparison."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.theory import (
    StrategyBounds,
    ant_logical_gap_bound,
    ant_outsourced_bound,
    flush_dummy_bound,
    numeric_comparison,
    strategy_comparison_table,
    timer_logical_gap_bound,
    timer_outsourced_bound,
)


class TestTimerBounds:
    def test_matches_theorem6_formula(self):
        epsilon, k, beta = 0.5, 16, 0.05
        expected = (2.0 / epsilon) * math.sqrt(k * math.log(1 / beta))
        assert timer_logical_gap_bound(epsilon, k, beta) == pytest.approx(expected)

    def test_monotonicity(self):
        assert timer_logical_gap_bound(0.5, 10, 0.05) < timer_logical_gap_bound(0.5, 40, 0.05)
        assert timer_logical_gap_bound(1.0, 10, 0.05) < timer_logical_gap_bound(0.1, 10, 0.05)
        assert timer_logical_gap_bound(0.5, 10, 0.01) > timer_logical_gap_bound(0.5, 10, 0.2)

    def test_outsourced_bound_adds_flush_term(self):
        base = timer_outsourced_bound(1000, 0.5, 10, 4000, 2000, 15, 0.05)
        no_flush = timer_outsourced_bound(1000, 0.5, 10, 4000, 2000, 0, 0.05)
        assert base - no_flush == pytest.approx(15 * 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            timer_logical_gap_bound(0.0, 5, 0.05)
        with pytest.raises(ValueError):
            timer_logical_gap_bound(0.5, 0, 0.05)


class TestANTBounds:
    def test_matches_theorem8_formula(self):
        epsilon, t, beta = 0.5, 1000, 0.05
        expected = 16.0 * (math.log(t) + math.log(2 / beta)) / epsilon
        assert ant_logical_gap_bound(epsilon, t, beta) == pytest.approx(expected)

    def test_grows_logarithmically_in_time(self):
        small = ant_logical_gap_bound(0.5, 100, 0.05)
        large = ant_logical_gap_bound(0.5, 10_000, 0.05)
        assert large > small
        assert large - small == pytest.approx(16.0 / 0.5 * math.log(100), rel=1e-9)

    def test_outsourced_bound(self):
        value = ant_outsourced_bound(500, 1.0, 2000, 1000, 10, 0.1)
        expected = 500 + ant_logical_gap_bound(1.0, 2000, 0.1) + 10 * 2
        assert value == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            ant_logical_gap_bound(-1.0, 10, 0.05)
        with pytest.raises(ValueError):
            ant_logical_gap_bound(0.5, 0, 0.05)
        with pytest.raises(ValueError):
            ant_logical_gap_bound(0.5, 10, 1.5)


class TestFlushTerm:
    def test_eta_formula(self):
        assert flush_dummy_bound(4300, 2000, 15) == 15 * 2
        assert flush_dummy_bound(1999, 2000, 15) == 0
        assert flush_dummy_bound(0, 2000, 15) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            flush_dummy_bound(10, 0, 15)
        with pytest.raises(ValueError):
            flush_dummy_bound(-1, 2000, 15)
        with pytest.raises(ValueError):
            flush_dummy_bound(10, 2000, -1)

    @given(
        t=st.integers(min_value=0, max_value=100_000),
        f=st.integers(min_value=1, max_value=10_000),
        s=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=200, deadline=None)
    def test_eta_never_exceeds_linear_growth(self, t, f, s):
        assert flush_dummy_bound(t, f, s) <= s * t / f + s


class TestTable2:
    def test_has_all_five_strategies(self):
        table = strategy_comparison_table()
        names = [row.strategy for row in table]
        assert names == ["SUR", "OTO", "SET", "DP-Timer", "DP-ANT"]
        assert all(isinstance(row, StrategyBounds) for row in table)

    def test_privacy_column(self):
        table = {row.strategy: row for row in strategy_comparison_table()}
        assert table["SUR"].group_privacy == "inf-DP"
        assert table["OTO"].group_privacy == "0-DP"
        assert table["SET"].group_privacy == "0-DP"
        assert table["DP-Timer"].group_privacy == "eps-DP"
        assert table["DP-ANT"].group_privacy == "eps-DP"

    def test_numeric_comparison_shape(self):
        numbers = numeric_comparison(
            epsilon=0.5,
            t=43_200,
            k=1440,
            logical_size=18_429,
            initial_size=1,
            flush_interval=2000,
            flush_size=15,
        )
        assert set(numbers) == {"SUR", "OTO", "SET", "DP-Timer", "DP-ANT"}
        assert numbers["SUR"]["logical_gap"] == 0.0
        assert numbers["SET"]["outsourced"] == pytest.approx(1 + 43_200)
        assert numbers["OTO"]["logical_gap"] == pytest.approx(18_428)
        # DP strategies: bounded overhead, far below SET's.
        assert numbers["DP-Timer"]["outsourced"] < numbers["SET"]["outsourced"]
        assert numbers["DP-ANT"]["outsourced"] < numbers["SET"]["outsourced"]
        assert numbers["DP-Timer"]["logical_gap"] > 0
