"""Tests for records, schemas and dummy records."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.records import (
    DUMMY_SENTINEL,
    Record,
    Schema,
    count_dummy,
    count_real,
    make_dummy_record,
)


class TestSchema:
    def test_basic_construction(self):
        schema = Schema("trips", ("pickupID", "pickTime"), key="pickupID")
        assert schema.name == "trips"
        assert schema.attributes == ("pickupID", "pickTime")
        assert schema.key == "pickupID"

    def test_rejects_empty_name_or_attributes(self):
        with pytest.raises(ValueError):
            Schema("", ("a",))
        with pytest.raises(ValueError):
            Schema("t", ())

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError):
            Schema("t", ("a", "a"))

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            Schema("t", ("a", "b"), key="c")

    def test_validate_accepts_exact_attribute_set(self):
        schema = Schema("t", ("a", "b"))
        schema.validate({"a": 1, "b": 2})

    def test_validate_rejects_missing_and_extra(self):
        schema = Schema("t", ("a", "b"))
        with pytest.raises(ValueError):
            schema.validate({"a": 1})
        with pytest.raises(ValueError):
            schema.validate({"a": 1, "b": 2, "c": 3})


class TestRecord:
    def test_field_access(self):
        record = Record(values={"a": 1, "b": "x"}, arrival_time=5, table="t")
        assert record["a"] == 1
        assert record.get("b") == "x"
        assert record.get("missing", 42) == 42

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(ValueError):
            Record(values={"a": 1}, arrival_time=-1)

    def test_identity_semantics(self):
        first = Record(values={"a": 1})
        second = Record(values={"a": 1})
        assert first != second
        assert first == first
        assert len({first, second}) == 2

    def test_values_are_copied(self):
        source = {"a": 1}
        record = Record(values=source)
        source["a"] = 99
        assert record["a"] == 1

    def test_with_values_creates_new_record(self):
        record = Record(values={"a": 1, "b": 2}, arrival_time=3, table="t")
        updated = record.with_values(a=10)
        assert updated["a"] == 10
        assert updated["b"] == 2
        assert updated.arrival_time == 3
        assert updated.record_id != record.record_id

    def test_record_ids_are_unique_and_increasing(self):
        records = [Record(values={"a": i}) for i in range(50)]
        ids = [r.record_id for r in records]
        assert len(set(ids)) == 50
        assert ids == sorted(ids)


class TestDummyRecords:
    def test_dummy_has_sentinel_values(self):
        schema = Schema("t", ("a", "b"))
        dummy = make_dummy_record(schema, arrival_time=7)
        assert dummy.is_dummy
        assert dummy.table == "t"
        assert dummy["a"] == DUMMY_SENTINEL
        assert dummy["b"] == DUMMY_SENTINEL
        assert dummy.arrival_time == 7

    def test_dummy_conforms_to_schema(self):
        schema = Schema("t", ("a", "b", "c"))
        dummy = make_dummy_record(schema)
        schema.validate(dummy.values)

    def test_counting_helpers(self):
        schema = Schema("t", ("a",))
        real = [Record(values={"a": i}, table="t") for i in range(3)]
        dummies = [make_dummy_record(schema) for _ in range(2)]
        mixed = real + dummies
        assert count_real(mixed) == 3
        assert count_dummy(mixed) == 2

    @given(num_attrs=st.integers(min_value=1, max_value=12))
    @settings(max_examples=50, deadline=None)
    def test_dummy_always_fills_every_attribute(self, num_attrs):
        schema = Schema("t", tuple(f"attr{i}" for i in range(num_attrs)))
        dummy = make_dummy_record(schema)
        assert set(dummy.values) == set(schema.attributes)
