"""Delta-maintained views: differential, property, and kill-resume pins.

The views contract, pinned here:

* **Maintained == rescan, byte for byte** -- with views registered, every
  analyst-visible observable (answer, QET, noise flag) and the aggregate +
  per-shard ``(t, |γ|)`` update transcripts are identical whether queries
  are answered from maintained state or forced back onto the rescan path
  via :meth:`set_view_answering`, for K in {1, 2, 4} on both back-ends and
  all three shard executors.  Only the *simulated work ledger* moves.
* **State-class units** -- the telescoping star-join delta, the reduced
  modulo counter, group first-appearance order, the windowed ring buffer's
  eviction horizon and :class:`StaleWindowError`.
* **Fragment parity** -- the analyst-side :class:`IncrementalTruth` and the
  server-side registry cover the identical fragment through one
  :func:`can_maintain` predicate.
* **Views are derived state** -- a snapshot/restore round-trip (single EDB
  and sharded router) rebuilds every view from the restored tables and the
  restored twin replays a continuation bit-identically.
* **Planner integration** -- a covered query enumerates a ``maintained``
  plan alternative (visible in ``explain()``), and the override hook can
  force a rescan executor without changing the answer.
* Satellite: a restored :class:`Deployment` refuses queries over external
  table sources that were not re-registered.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.crypte import CryptEpsilon
from repro.edb.leakage import update_pattern_observables
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.edb.router import ShardRouter
from repro.edb.store import (
    restore_backend,
    restore_router,
    snapshot_backend,
    snapshot_router,
)
from repro.fleet.deployment import Deployment
from repro.query.ast import (
    CountQuery,
    GroupByCountQuery,
    JoinCountQuery,
    ModCountQuery,
    MultiJoinCountQuery,
    WindowedCountQuery,
)
from repro.query.executor import ground_truth
from repro.query.incremental import IncrementalTruth
from repro.query.planner import QueryPlanner
from repro.query.predicates import RangePredicate, TruePredicate
from repro.query.views import (
    StaleWindowError,
    ViewRegistry,
    can_maintain,
    maintained_shapes,
    make_state,
)

TABLES = ("Alpha", "Beta", "Gamma")
SCHEMAS = {name: Schema(name=name, attributes=("key", "value")) for name in TABLES}


def _record(table: str, key: int, value: int, time: int, dummy: bool = False):
    if dummy:
        return make_dummy_record(SCHEMAS[table], arrival_time=time)
    return Record(values={"key": key, "value": value}, arrival_time=time, table=table)


def _queries(include_joins: bool = True):
    """One query per maintained shape (joins only on exact back-ends)."""
    queries = [
        CountQuery(
            table="Alpha", predicate=RangePredicate("value", 0, 60), label="q-count"
        ),
        GroupByCountQuery(
            table="Beta", group_attribute="key", predicate=TruePredicate(),
            label="q-group",
        ),
        ModCountQuery(table="Alpha", modulus=3, label="q-mod"),
        WindowedCountQuery(table="Beta", window=6, mode="sliding", label="q-slide"),
        WindowedCountQuery(table="Beta", window=8, mode="tumbling", label="q-tumble"),
    ]
    if include_joins:
        queries.append(
            JoinCountQuery(
                left_table="Alpha", right_table="Beta",
                left_attribute="key", right_attribute="key", label="q-join",
            )
        )
        queries.append(
            MultiJoinCountQuery(
                join_tables=("Alpha", "Beta", "Gamma"),
                attributes=("key", "key", "key"),
                label="q-star",
            )
        )
    return queries


def _stream(seed: int, ticks: int = 12):
    """Deterministic per-tick batches over the three tables, with dummies."""
    rng = np.random.default_rng(seed)
    batches = []
    for time in range(1, ticks + 1):
        grouped: dict[str, list] = {}
        for table in TABLES:
            rows = []
            for _ in range(int(rng.integers(0, 4))):
                rows.append(
                    _record(
                        table,
                        int(rng.integers(0, 5)),
                        int(rng.integers(0, 100)),
                        time,
                    )
                )
            if rng.random() < 0.3:
                rows.append(_record(table, 0, 0, time, dummy=True))
            if rows:
                grouped[table] = rows
        batches.append((time, grouped))
    return batches


def _initial(seed: int = 99):
    rng = np.random.default_rng(seed)
    return [
        _record(table, int(rng.integers(0, 5)), int(rng.integers(0, 100)), 0)
        for table in TABLES
        for _ in range(4)
    ]


def _router(K: int, cls=ObliDB, executor: str = "serial", planner="off", seed=0):
    shards = [cls(rng=np.random.default_rng(seed + index)) for index in range(K)]
    return ShardRouter(shards, route_seed=7, executor=executor, planner=planner)


def _run(router: ShardRouter, queries, stream, answering: bool):
    """Setup, register views, replay the stream, collect all observables."""
    router.setup(_initial(), time=0)
    for query in queries:
        assert router.register_view(query) is True
        assert router.register_view(query) is False  # idempotent
    router.set_view_answering(answering)
    observed = []
    for time, grouped in stream:
        router.insert_many(grouped, time=time)
        for query in queries:
            result = router.query(query, time=time)
            observed.append(
                (query.name, result.answer, result.qet_seconds, result.noise_injected)
            )
    transcripts = {
        "aggregate": update_pattern_observables(router.update_history),
        "per-shard": tuple(
            update_pattern_observables(shard.update_history)
            for shard in router.shards
        ),
    }
    return observed, transcripts


# ---------------------------------------------------------------------------
# Golden differential: maintained vs forced rescan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cls", [ObliDB, CryptEpsilon], ids=["oblidb", "crypte"])
@pytest.mark.parametrize("K", [1, 2, 4])
def test_maintained_equals_rescan_all_shapes(K, cls):
    """Answers, QET, noise flags and transcripts match byte-for-byte."""
    queries = _queries(include_joins=cls is ObliDB)
    stream = _stream(seed=5)
    on, transcripts_on = _run(_router(K, cls), queries, stream, answering=True)
    off, transcripts_off = _run(_router(K, cls), queries, stream, answering=False)
    assert on == off
    assert transcripts_on == transcripts_off


@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_maintained_equals_rescan_across_executors(executor):
    """The serial, threaded and process fleets agree observable-for-observable."""
    queries = _queries()
    stream = _stream(seed=11, ticks=8)
    serial = _run(_router(2, executor="serial"), queries, stream, answering=True)
    other_on = _run(_router(2, executor=executor), queries, stream, answering=True)
    other_off = _run(_router(2, executor=executor), queries, stream, answering=False)
    assert serial == other_on == other_off


def test_work_ledger_moves_but_observables_do_not():
    """Maintained answering does measurably less simulated query work."""
    queries = _queries()
    stream = _stream(seed=21)
    fast = _router(2)
    slow = _router(2)
    on, _ = _run(fast, queries, stream, answering=True)
    off, _ = _run(slow, queries, stream, answering=False)
    assert on == off
    # Every query answered from view state on every shard (joins answer one
    # maintained histogram per scatter probe).
    probes = {
        "q-join": 2,
        "q-star": 3,
    }
    expected_per_tick = sum(2 * probes.get(q.name, 1) for q in queries)
    assert fast.maintained_query_count == len(stream) * expected_per_tick
    assert slow.maintained_query_count == 0
    # Both runs pay identical view upkeep; only query-side work differs.
    assert fast.view_maintenance_seconds == pytest.approx(
        slow.view_maintenance_seconds
    )
    assert fast.view_maintenance_seconds > 0.0
    assert fast.query_work_seconds < slow.query_work_seconds
    assert fast.simulated_work_seconds < slow.simulated_work_seconds


def test_crypte_noise_stream_untouched_by_views():
    """Per-group noise draw order (first-appearance) survives maintenance."""
    query = GroupByCountQuery(
        table="Beta", group_attribute="key", predicate=TruePredicate(), label="qg"
    )
    stream = _stream(seed=31)
    on, _ = _run(_router(2, CryptEpsilon), [query], stream, answering=True)
    off, _ = _run(_router(2, CryptEpsilon), [query], stream, answering=False)
    assert on == off
    # Group keys (noise-draw order) match exactly, not merely as sets.
    for (_, answer_on, _, _), (_, answer_off, _, _) in zip(on, off):
        assert list(answer_on) == list(answer_off)


# ---------------------------------------------------------------------------
# State-class units
# ---------------------------------------------------------------------------


def test_mod_count_state_stays_reduced():
    query = ModCountQuery(table="Alpha", modulus=3, label="m")
    state = make_state(query)
    for index in range(8):
        state.insert("Alpha", _record("Alpha", 0, index, index))
    assert state.answer() == 8 % 3
    assert state._count < 3  # O(1) state: the counter never grows unbounded


def test_group_state_preserves_first_appearance_order():
    query = GroupByCountQuery(
        table="Alpha", group_attribute="key", predicate=TruePredicate(), label="g"
    )
    state = make_state(query)
    for key in (3, 1, 3, 2, 1, 4):
        state.insert("Alpha", _record("Alpha", key, 0, 0))
    assert list(state.answer()) == [3, 1, 2, 4]
    assert state.answer() == {3: 2, 1: 2, 2: 1, 4: 1}


def test_join_state_counts_self_pairing_once():
    query = JoinCountQuery(
        left_table="Alpha", right_table="Alpha",
        left_attribute="key", right_attribute="key", label="self-join",
    )
    state = make_state(query)
    state.insert("Alpha", _record("Alpha", 7, 0, 0))
    assert state.answer() == 1  # the record joins with itself
    state.insert("Alpha", _record("Alpha", 7, 1, 1))
    assert state.answer() == 4  # 2x2 pairs on key 7


def test_multi_join_telescoping_delta_matches_brute_force():
    query = MultiJoinCountQuery(
        join_tables=("Alpha", "Beta", "Gamma"),
        attributes=("key", "key", "key"),
        label="star",
    )
    state = make_state(query)
    rng = np.random.default_rng(3)
    tables: dict[str, list] = {table: [] for table in TABLES}
    for step in range(60):
        table = TABLES[int(rng.integers(0, 3))]
        record = _record(table, int(rng.integers(0, 4)), step, step)
        tables[table].append(record)
        state.insert(table, record)
        brute = sum(
            1
            for a in tables["Alpha"]
            for b in tables["Beta"]
            for c in tables["Gamma"]
            if a.get("key") == b.get("key") == c.get("key")
        )
        assert state.answer() == brute


def test_windowed_state_ring_eviction_and_staleness():
    query = WindowedCountQuery(table="Alpha", window=4, mode="sliding", label="w")
    state = make_state(query)
    for tick in range(1, 11):
        state.insert("Alpha", _record("Alpha", 0, 0, tick))
    # Exact at (or after) the newest tick: window (6, 10] holds 4 arrivals.
    assert state.answer(10) == 4
    assert state.answer(12) == 2  # (8, 12] holds ticks 9, 10
    with pytest.raises(StaleWindowError):
        state.answer(5)  # behind the retained horizon
    with pytest.raises(ValueError, match="needs a query time"):
        state.answer(None)


def test_windowed_state_ignores_stale_out_of_order_arrivals():
    query = WindowedCountQuery(table="Alpha", window=4, mode="sliding", label="w")
    state = make_state(query)
    state.insert("Alpha", _record("Alpha", 0, 0, 9))
    state.insert("Alpha", _record("Alpha", 0, 0, 5))  # slot collision, older
    assert state.answer(9) == 1


def test_stale_window_fallback_is_transparent_on_the_edb():
    edb = ObliDB(rng=np.random.default_rng(0))
    query = WindowedCountQuery(table="Alpha", window=3, mode="sliding", label="w")
    edb.setup([_record("Alpha", 0, 0, 0)], time=0)
    edb.register_view(query)
    for time in range(1, 9):
        edb.update([_record("Alpha", 0, 0, time)], time=time)
    fresh = edb.query(query, time=8)
    assert fresh.answer == 3
    # A stale window silently falls back to the (identical) rescan...
    stale = edb.query(query, time=4)
    assert stale.answer == 3  # arrivals 2, 3, 4
    # ...unless the maintained executor was forced, which surfaces the error.
    with pytest.raises(StaleWindowError):
        edb.query(query, time=4, executor="maintained")


# ---------------------------------------------------------------------------
# Fragment parity + registration guards
# ---------------------------------------------------------------------------


def test_incremental_truth_and_registry_cover_identical_fragment():
    for query in _queries():
        assert can_maintain(query)
        assert IncrementalTruth.can_maintain(query)
        assert ViewRegistry.can_maintain(query)
    assert set(type(q) for q in _queries()) == set(maintained_shapes())

    class Uncovered(CountQuery):
        """A subclass is outside the fragment: no registered delta rule."""

    odd = Uncovered(table="Alpha", label="odd")
    assert not can_maintain(odd)
    assert not IncrementalTruth.can_maintain(odd)
    with pytest.raises(TypeError, match="not delta-maintainable"):
        make_state(odd)
    edb = ObliDB(rng=np.random.default_rng(0))
    edb.setup([], time=0)
    with pytest.raises(TypeError, match="not delta-maintainable"):
        edb.register_view(odd)


def test_register_view_respects_backend_support():
    """Crypt-epsilon cannot run joins, so it cannot maintain join views."""
    from repro.edb.base import UnsupportedQueryError

    edb = CryptEpsilon(rng=np.random.default_rng(0))
    edb.setup([], time=0)
    join = JoinCountQuery(
        left_table="Alpha", right_table="Beta",
        left_attribute="key", right_attribute="key", label="j",
    )
    with pytest.raises(UnsupportedQueryError):
        edb.register_view(join)
    router = _router(2, CryptEpsilon)
    router.setup([], time=0)
    with pytest.raises(UnsupportedQueryError):
        router.register_view(join)


def test_forcing_maintained_executor_without_view_raises():
    edb = ObliDB(rng=np.random.default_rng(0))
    edb.setup([_record("Alpha", 1, 1, 0)], time=0)
    query = CountQuery(table="Alpha", label="q")
    with pytest.raises(ValueError, match="no registered view"):
        edb.query(query, executor="maintained")


# ---------------------------------------------------------------------------
# Hypothesis: random interleavings of ingest and queries
# ---------------------------------------------------------------------------


_batch = st.lists(
    st.tuples(
        st.sampled_from(TABLES),
        st.integers(min_value=0, max_value=4),  # key
        st.integers(min_value=0, max_value=99),  # value
        st.booleans(),  # dummy
    ),
    max_size=4,
)


@settings(max_examples=25, deadline=None)
@given(st.lists(_batch, min_size=1, max_size=10))
def test_interleaving_property(raw_batches):
    """Maintained answers equal forced rescans *and* plaintext ground truth."""
    queries = _queries()
    routers = {
        answering: _router(2, seed=17) for answering in (True, False)
    }
    for router in routers.values():
        router.setup([], time=0)
        for query in queries:
            router.register_view(query)
    routers[False].set_view_answering(False)
    logical: dict[str, list] = {table: [] for table in TABLES}
    for time, raw in enumerate(raw_batches, start=1):
        grouped: dict[str, list] = {}
        for table, key, value, dummy in raw:
            record = _record(table, key, value, time, dummy=dummy)
            grouped.setdefault(table, []).append(record)
            if not dummy:
                logical[table].append(record)
        for router in routers.values():
            router.insert_many(grouped, time=time)
        for query in queries:
            truth = ground_truth(query, logical, time=time)
            maintained = routers[True].query(query, time=time)
            rescanned = routers[False].query(query, time=time)
            assert maintained.answer == rescanned.answer == truth
            assert maintained.qet_seconds == rescanned.qet_seconds


# ---------------------------------------------------------------------------
# Kill-resume: views are derived state, rebuilt deterministically
# ---------------------------------------------------------------------------


def _continue(edb_or_router, queries, stream):
    observed = []
    for time, grouped in stream:
        edb_or_router.insert_many(grouped, time=time)
        for query in queries:
            result = edb_or_router.query(query, time=time)
            observed.append((query.name, result.answer, result.qet_seconds))
    return observed


def test_single_edb_snapshot_rebuilds_views():
    queries = _queries()
    stream = _stream(seed=41)
    prefix, suffix = stream[:6], stream[6:]
    edb = ObliDB(rng=np.random.default_rng(0))
    edb.setup(_initial(), time=0)
    for query in queries:
        edb.register_view(query)
    for time, grouped in prefix:
        edb.insert_many(grouped, time=time)
    restored = restore_backend(snapshot_backend(edb))
    assert restored.registered_views == edb.registered_views
    assert restored.view_answering is True
    assert _continue(restored, queries, suffix) == _continue(edb, queries, suffix)
    assert restored.maintained_query_count > 0


def test_router_snapshot_rebuilds_views_and_answering_flag():
    queries = _queries()
    stream = _stream(seed=43)
    prefix, suffix = stream[:6], stream[6:]
    router = _router(2)
    router.setup(_initial(), time=0)
    for query in queries:
        router.register_view(query)
    for time, grouped in prefix:
        router.insert_many(grouped, time=time)
    restored = restore_router(snapshot_router(router))
    assert restored.registered_views == router.registered_views
    assert _continue(restored, queries, suffix) == _continue(router, queries, suffix)
    assert restored.maintained_query_count > 0

    # A disabled answering flag survives the round trip on router and shards.
    router.set_view_answering(False)
    toggled = restore_router(snapshot_router(router))
    assert toggled.view_answering is False
    before = toggled.maintained_query_count
    toggled.query(queries[0], time=99)
    assert toggled.maintained_query_count == before


# ---------------------------------------------------------------------------
# Planner integration
# ---------------------------------------------------------------------------


def test_planner_enumerates_and_prefers_maintained_alternative():
    router = _router(2, planner="on")
    router.setup(_initial(), time=0)
    query = CountQuery(
        table="Alpha", predicate=RangePredicate("value", 0, 60), label="q-count"
    )
    router.register_view(query)
    for time, grouped in _stream(seed=47, ticks=4):
        router.insert_many(grouped, time=time)
    result = router.query(query, time=5)
    report = router.explain(query)
    executors = {a["executor"] for a in report["alternatives"]}
    assert "maintained" in executors
    assert report["chosen"].endswith("/maintained")
    # The maintained plan costs less than every rescan alternative.
    [winner] = [a for a in report["alternatives"] if a["chosen"]]
    losers = [a for a in report["alternatives"] if not a["chosen"]]
    assert all(
        winner["simulated_work_seconds"] <= a["simulated_work_seconds"]
        for a in losers
    )
    # Forcing a rescan through the override hook changes nothing observable.
    baseline = router.maintained_query_count

    def force_rows(query, alternatives):
        for alternative in alternatives:
            if alternative.executor == "rows":
                return alternative.key
        return None

    router.planner.override = force_rows
    forced = router.query(query, time=5)
    assert (forced.answer, forced.qet_seconds) == (result.answer, result.qet_seconds)
    assert router.maintained_query_count == baseline
    assert router.planner.last_plan(query).chosen.executor == "rows"


def test_planner_skips_maintained_when_answering_disabled():
    router = _router(2, planner="on")
    router.setup(_initial(), time=0)
    query = CountQuery(table="Alpha", label="q")
    router.register_view(query)
    router.set_view_answering(False)
    router.query(query, time=1)
    report = router.explain(query)
    executors = {a["executor"] for a in report["alternatives"]}
    assert "maintained" not in executors


# ---------------------------------------------------------------------------
# Satellite: restored deployments guard unregistered table sources
# ---------------------------------------------------------------------------


def test_restored_deployment_guards_pending_table_sources(tmp_path):
    sibling_rows = [_record("Beta", key, key, 0) for key in range(3)]
    deployment = Deployment.build(
        SCHEMAS["Alpha"], ObliDB(rng=np.random.default_rng(0)), seed=1
    )
    deployment.register_table_source("Beta", lambda: sibling_rows)
    deployment.start()
    deployment.save(tmp_path)

    restored = Deployment.restore(tmp_path)
    join_sql = (
        "SELECT COUNT(*) FROM Alpha INNER JOIN Beta ON Alpha.key = Beta.key"
    )
    with pytest.raises(RuntimeError, match="not re-registered after"):
        restored.query(join_sql)
    # Queries over owned tables are unaffected by the pending source.
    restored.query("SELECT COUNT(*) FROM Alpha")
    # Re-registering the source lifts the guard.
    restored.register_table_source("Beta", lambda: sibling_rows)
    restored.query(join_sql)
