"""Tests for the QET/storage cost model and its calibration invariants."""

from __future__ import annotations

import pytest

from repro.edb.cost_model import (
    CRYPTE_COSTS,
    OBLIDB_COSTS,
    CostModel,
    CostParameters,
    UnsupportedQueryError,
)
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.predicates import RangePredicate


@pytest.fixture
def oblidb_model() -> CostModel:
    return CostModel(OBLIDB_COSTS)


@pytest.fixture
def crypte_model() -> CostModel:
    return CostModel(CRYPTE_COSTS)


Q1 = CountQuery("YellowCab", RangePredicate("pickupID", 50, 100), label="Q1")
Q2 = GroupByCountQuery("YellowCab", "pickupID", label="Q2")
Q3 = JoinCountQuery("YellowCab", "GreenTaxi", "pickTime", "pickTime", label="Q3")


class TestCostShapes:
    def test_count_query_is_linear_in_table_size(self, oblidb_model):
        small = oblidb_model.query_cost(Q1, {"YellowCab": 1_000})
        large = oblidb_model.query_cost(Q1, {"YellowCab": 10_000})
        base = OBLIDB_COSTS.query_base
        assert (large - base) / (small - base) == pytest.approx(10.0, rel=1e-6)

    def test_groupby_is_linear(self, oblidb_model):
        small = oblidb_model.query_cost(Q2, {"YellowCab": 2_000})
        large = oblidb_model.query_cost(Q2, {"YellowCab": 4_000})
        base = OBLIDB_COSTS.query_base
        assert (large - base) / (small - base) == pytest.approx(2.0, rel=1e-6)

    def test_join_is_quadratic(self, oblidb_model):
        small = oblidb_model.query_cost(Q3, {"YellowCab": 1_000, "GreenTaxi": 1_000})
        large = oblidb_model.query_cost(Q3, {"YellowCab": 2_000, "GreenTaxi": 2_000})
        base = OBLIDB_COSTS.query_base
        assert (large - base) / (small - base) == pytest.approx(4.0, rel=1e-6)

    def test_dummy_records_increase_cost(self, oblidb_model):
        """Dummy-heavy strategies pay more: the scan touches every ciphertext."""
        clean = oblidb_model.query_cost(Q2, {"YellowCab": 9_000})
        padded = oblidb_model.query_cost(Q2, {"YellowCab": 21_600})
        assert padded > 2.0 * clean - OBLIDB_COSTS.query_base

    def test_missing_table_costs_only_base(self, oblidb_model):
        assert oblidb_model.query_cost(Q1, {}) == pytest.approx(OBLIDB_COSTS.query_base)


class TestBackendSupport:
    def test_crypte_rejects_joins(self, crypte_model):
        assert not crypte_model.supports(Q3)
        with pytest.raises(UnsupportedQueryError):
            crypte_model.query_cost(Q3, {"YellowCab": 10, "GreenTaxi": 10})

    def test_oblidb_supports_all_three(self, oblidb_model):
        assert oblidb_model.supports(Q1)
        assert oblidb_model.supports(Q2)
        assert oblidb_model.supports(Q3)


class TestCalibration:
    """The constants must keep the paper's cross-system ordering."""

    def test_crypte_is_slower_per_record_than_oblidb(self):
        assert CRYPTE_COSTS.count_scan_per_record > OBLIDB_COSTS.count_scan_per_record
        assert CRYPTE_COSTS.groupby_per_record > OBLIDB_COSTS.groupby_per_record

    def test_mean_qet_roughly_matches_table5_under_sur(self, oblidb_model, crypte_model):
        """With the paper's mean table size (~9.2k records) the simulated QETs
        land near the reported means (loose tolerance: calibration, not fit)."""
        mean_table = {"YellowCab": 9_215, "GreenTaxi": 10_650}
        assert oblidb_model.query_cost(Q1, mean_table) == pytest.approx(5.39, rel=0.15)
        assert oblidb_model.query_cost(Q2, mean_table) == pytest.approx(2.32, rel=0.15)
        assert oblidb_model.query_cost(Q3, mean_table) == pytest.approx(2.77, rel=0.15)
        assert crypte_model.query_cost(Q1, mean_table) == pytest.approx(20.94, rel=0.15)
        assert crypte_model.query_cost(Q2, mean_table) == pytest.approx(76.34, rel=0.15)

    def test_set_vs_dp_ratio_shape(self, oblidb_model):
        """SET's table is ~2.3x larger than SUR/DP; linear queries should pay
        about 2.2x and the join about 5x -- the paper's 2.17x / 5.72x shape."""
        dp_sizes = {"YellowCab": 9_400, "GreenTaxi": 10_800}
        set_sizes = {"YellowCab": 21_600, "GreenTaxi": 21_600}
        linear_ratio = oblidb_model.query_cost(Q2, set_sizes) / oblidb_model.query_cost(
            Q2, dp_sizes
        )
        join_ratio = oblidb_model.query_cost(Q3, set_sizes) / oblidb_model.query_cost(
            Q3, dp_sizes
        )
        assert 1.8 <= linear_ratio <= 2.6
        assert 3.5 <= join_ratio <= 6.5
        assert join_ratio > linear_ratio


class TestStorageAndUpdateCosts:
    def test_storage_scales_linearly(self, oblidb_model):
        assert oblidb_model.storage_bytes(100) == pytest.approx(
            100 * OBLIDB_COSTS.record_storage_bytes
        )

    def test_update_and_setup_costs(self, oblidb_model):
        assert oblidb_model.update_cost(0) == pytest.approx(OBLIDB_COSTS.update_base)
        assert oblidb_model.setup_cost(10) > oblidb_model.setup_cost(1)

    def test_custom_parameters(self):
        params = CostParameters(
            query_base=1.0,
            count_scan_per_record=0.1,
            groupby_per_record=0.2,
            join_per_pair=None,
            update_per_record=0.0,
            update_base=0.0,
            record_storage_bytes=10.0,
        )
        model = CostModel(params)
        assert model.query_cost(Q1, {"YellowCab": 10}) == pytest.approx(2.0)
        assert not model.supports(Q3)
