"""Golden-trace regression fixtures.

``tests/golden/`` holds one small fixed-seed run per (strategy, back-end)
pair, committed as JSON.  Replaying the engine against them turns "a refactor
silently changed the numerics" into a loud failure with a diffable artifact,
instead of something only the (much coarser) legacy-equivalence matrix might
catch.

The traces are intentionally tiny (down-scaled June taxi workload, ~650 time
units) so the whole matrix replays in a few seconds.

Regenerating (only when a numerics change is *intended*)::

    PYTHONPATH=src python tests/test_golden_traces.py --regen

then inspect the diff of ``tests/golden/`` before committing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.simulation.results import RunResult
from repro.simulation.runner import CellSpec, run_cell

GOLDEN_DIR = Path(__file__).parent / "golden"

STRATEGIES = ("sur", "set", "oto", "dp-timer", "dp-ant")
BACKENDS = ("oblidb", "crypte")


def golden_spec(strategy: str, backend: str) -> CellSpec:
    """The fixed cell behind one golden trace.

    Seeds are literal constants: the fixture's identity must never depend on
    code that could itself change (grids, spawn logic, defaults drift is
    caught because the spec is stored inside the fixture and compared).
    """
    return CellSpec(
        strategy=strategy,
        backend=backend,
        scenario="taxi-june" if backend == "oblidb" else "taxi-yellow",
        scale=0.015,
        query_interval=180,
        sim_seed=1234,
        backend_seed=99,
        workload_seed=2020,
    )


def golden_path(strategy: str, backend: str) -> Path:
    return GOLDEN_DIR / f"{strategy}_{backend}.json"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_golden_trace_replay(strategy, backend):
    """The engine reproduces every committed trace bit-for-bit."""
    path = golden_path(strategy, backend)
    fixture = json.loads(path.read_text())
    spec = CellSpec.from_dict(fixture["spec"])
    # The fixture pins the *full* spec: if golden_spec() drifts (e.g. a
    # default changed under it), fail with a message pointing at the cause
    # rather than a numeric diff.
    assert spec == golden_spec(strategy, backend), (
        "golden spec drifted; regenerate fixtures deliberately if intended"
    )
    result = run_cell(spec)
    assert result.to_dict() == fixture["result"], (
        f"numerics changed for {strategy}/{backend}; if intended, regenerate "
        "tests/golden/ via 'python tests/test_golden_traces.py --regen'"
    )


def test_golden_fixture_round_trip():
    """Stored results load back into equal RunResult objects."""
    path = golden_path("dp-timer", "oblidb")
    fixture = json.loads(path.read_text())
    loaded = RunResult.from_dict(fixture["result"])
    assert loaded.to_dict() == fixture["result"]
    assert loaded.query_names()  # traces survived the round trip


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for strategy in STRATEGIES:
        for backend in BACKENDS:
            spec = golden_spec(strategy, backend)
            result = run_cell(spec)
            payload = {"spec": spec.to_dict(), "result": result.to_dict()}
            golden_path(strategy, backend).write_text(
                json.dumps(payload, indent=1) + "\n"
            )
            print(f"wrote {golden_path(strategy, backend)}")


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("pass --regen to overwrite tests/golden/")
    regenerate()
