"""Tests for arrival-process generators and the synthetic taxi workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edb.records import Schema
from repro.workload.generator import (
    build_growing_database,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    records_from_arrivals,
    sparse_arrivals,
)
from repro.workload.nyc_taxi import (
    GREEN_SCHEMA,
    JUNE_2020_MINUTES,
    NUM_PICKUP_ZONES,
    YELLOW_SCHEMA,
    clean_taxi_rows,
    generate_green_taxi,
    generate_yellow_cab,
    scaled_workloads,
)

SCHEMA = Schema("events", ("sensor_id", "value"))


def sampler(t, rng):
    return {"sensor_id": int(rng.integers(0, 5)), "value": float(t)}


class TestArrivalProcesses:
    def test_poisson_rate(self):
        rng = np.random.default_rng(0)
        arrivals = poisson_arrivals(20_000, 0.3, rng)
        assert len(arrivals) == 20_000
        assert 0.27 <= np.mean(arrivals) <= 0.33

    def test_generators_return_bool_ndarrays(self):
        """Arrival indicators are numpy bool arrays end to end (no list
        round-trips on the ingest path)."""
        rng = np.random.default_rng(0)
        produced = [
            poisson_arrivals(100, 0.5, rng),
            diurnal_arrivals(100, base_rate=0.1, peak_rate=0.9, rng=rng),
            bursty_arrivals(100, burst_probability=0.05, burst_length=5, rng=rng),
            sparse_arrivals(100, 7, rng),
        ]
        for arrivals in produced:
            assert isinstance(arrivals, np.ndarray)
            assert arrivals.dtype == np.bool_
            assert arrivals.shape == (100,)

    def test_zero_horizon_arrays(self):
        rng = np.random.default_rng(0)
        assert poisson_arrivals(0, 0.5, rng).shape == (0,)
        assert sparse_arrivals(0, 0, rng).shape == (0,)

    def test_poisson_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, 0.5, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 1.5, rng)

    def test_diurnal_has_day_night_contrast(self):
        rng = np.random.default_rng(1)
        arrivals = diurnal_arrivals(1440 * 10, base_rate=0.05, peak_rate=0.9, rng=rng)
        arr = np.array(arrivals).reshape(10, 1440)
        by_minute = arr.mean(axis=0)
        night = by_minute[:360].mean()
        day = by_minute[600:1080].mean()
        assert day > night

    def test_bursty_produces_runs(self):
        rng = np.random.default_rng(2)
        arrivals = bursty_arrivals(5000, burst_probability=0.02, burst_length=20, rng=rng)
        # Find at least one run of 20 consecutive arrivals.
        longest, current = 0, 0
        for a in arrivals:
            current = current + 1 if a else 0
            longest = max(longest, current)
        assert longest >= 20

    def test_sparse_exact_count(self):
        rng = np.random.default_rng(3)
        arrivals = sparse_arrivals(1000, 37, rng)
        assert sum(arrivals) == 37
        with pytest.raises(ValueError):
            sparse_arrivals(10, 20, rng)

    def test_records_from_arrivals(self):
        rng = np.random.default_rng(4)
        arrivals = [True, False, True]
        updates = records_from_arrivals(arrivals, SCHEMA, sampler, rng)
        assert len(updates) == 3
        assert updates[1] is None
        assert updates[0].arrival_time == 1
        assert updates[2].table == "events"

    def test_build_growing_database(self):
        rng = np.random.default_rng(5)
        arrivals = poisson_arrivals(200, 0.5, rng)
        db = build_growing_database(SCHEMA, arrivals, sampler, rng)
        assert db.horizon == 200
        assert db.total_records == sum(arrivals)


class TestTaxiCleaning:
    def test_drops_invalid_rows(self):
        rows = [(None, 5), (10, None), (-5, 3), (10, 300), (10, 0), (20, 40)]
        cleaned = clean_taxi_rows(rows)
        assert cleaned == [(20, 40)]

    def test_deduplicates_same_minute(self):
        rows = [(7, 10), (7, 20), (7, 30), (8, 40)]
        cleaned = clean_taxi_rows(rows)
        assert cleaned == [(7, 10), (8, 40)]

    def test_sorted_output(self):
        rows = [(30, 1), (10, 2), (20, 3)]
        assert [m for m, _ in clean_taxi_rows(rows)] == [10, 20, 30]


class TestTaxiGenerators:
    def test_full_scale_matches_published_counts(self):
        yellow = generate_yellow_cab(np.random.default_rng(0))
        green = generate_green_taxi(np.random.default_rng(1))
        assert yellow.horizon == JUNE_2020_MINUTES
        assert yellow.total_records == 18_429
        assert green.total_records == 21_300
        assert yellow.table == "YellowCab"
        assert green.table == "GreenTaxi"

    def test_at_most_one_record_per_minute(self):
        yellow = generate_yellow_cab(np.random.default_rng(2), horizon=2000, target_records=900)
        minutes = [u.arrival_time for u in yellow.updates if u is not None]
        assert len(minutes) == len(set(minutes))

    def test_attributes_in_domain(self):
        yellow = generate_yellow_cab(np.random.default_rng(3), horizon=3000, target_records=1200)
        for update in yellow.updates:
            if update is None:
                continue
            assert 1 <= update["pickupID"] <= NUM_PICKUP_ZONES
            assert update["pickTime"] == update.arrival_time

    def test_diurnal_shape(self):
        yellow = generate_yellow_cab(np.random.default_rng(4))
        indicator = np.array(yellow.update_indicator())
        days = indicator[: 1440 * 30].reshape(30, 1440)
        by_minute = days.mean(axis=0)
        night = by_minute[120:360].mean()   # 02:00-06:00
        evening = by_minute[1020:1260].mean()  # 17:00-21:00
        assert evening > night

    def test_deterministic_given_seed(self):
        a = generate_yellow_cab(np.random.default_rng(7), horizon=2000, target_records=700)
        b = generate_yellow_cab(np.random.default_rng(7), horizon=2000, target_records=700)
        assert a.update_indicator() == b.update_indicator()

    def test_too_many_records_rejected(self):
        with pytest.raises(ValueError):
            generate_yellow_cab(np.random.default_rng(8), horizon=10, target_records=20)

    def test_scaled_workloads(self):
        workloads = scaled_workloads(0.02)
        assert set(workloads) == {"YellowCab", "GreenTaxi"}
        assert workloads["YellowCab"].horizon == workloads["GreenTaxi"].horizon
        with pytest.raises(ValueError):
            scaled_workloads(0.0)

    def test_schemas_exported(self):
        assert YELLOW_SCHEMA.attributes == ("pickupID", "pickTime")
        assert GREEN_SCHEMA.name == "GreenTaxi"
