"""Durable encrypted store: sealing, manifests, snapshots, key lifecycle.

Covers the :mod:`repro.edb.store` layers bottom-up -- blob sealing, the
atomic :class:`EncryptedStore` directory with its write-manifest-last
protocol, the generational :class:`SnapshotStore` -- plus the durability
bugfixes that ride along in the same PR:

* the grid runner's checkpoint writes are fsync'd-atomic, and a torn
  leftover ``.tmp`` (or a torn checkpoint itself) is skipped cleanly on
  resume instead of poisoning it;
* :class:`~repro.edb.crypto.RecordCipher` pickles (key + handle counter)
  and rotates: re-keying an EDB re-encrypts every arena row in place
  without invalidating handles, with decrypted payloads byte-identical
  and the *old* key failing authentication afterwards;
* :class:`~repro.edb.crypto.ArenaSegmentCache` ignores out-of-order
  (stale-generation) publishes, so handles into the newest segment keep
  resolving.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.edb.crypto import (
    ArenaSegmentCache,
    CiphertextArena,
    RecordCipher,
    SharedCiphertextArena,
)
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema
from repro.edb.store import (
    EncryptedStore,
    SnapshotStore,
    StoreIntegrityError,
    arena_from_bytes,
    arena_to_bytes,
    derive_key,
    get_or_create_salt,
    restore_backend,
    seal_bytes,
    snapshot_backend,
    unseal_bytes,
)
from repro.simulation.results import RunResult
from repro.simulation.runner import CellSpec, GridRunner

SCHEMA = Schema(name="events", attributes=("key", "value"))


def _records(n: int, start: int = 0, time: int = 1) -> list[Record]:
    return [
        Record(
            values={"key": (start + i) % 5, "value": start + i},
            arrival_time=time,
            table="events",
        )
        for i in range(n)
    ]


# -- sealing ------------------------------------------------------------------


def test_seal_unseal_round_trip_and_tamper_detection():
    key = derive_key("hunter2", b"\x01" * 32)
    for payload in (b"", b"x", os.urandom(5000)):
        sealed = seal_bytes(payload, key)
        assert unseal_bytes(sealed, key) == payload
        assert sealed[16:-32] != payload or not payload  # actually encrypted
    sealed = seal_bytes(b"secret", key)
    torn = bytearray(sealed)
    torn[20] ^= 0xFF
    with pytest.raises(StoreIntegrityError):
        unseal_bytes(bytes(torn), key)
    with pytest.raises(StoreIntegrityError):
        unseal_bytes(sealed, derive_key("wrong", b"\x01" * 32))
    with pytest.raises(StoreIntegrityError):
        unseal_bytes(b"short", key)


def test_salt_is_created_once_with_owner_only_permissions(tmp_path):
    path = tmp_path / "salt.bin"
    salt = get_or_create_salt(path)
    assert len(salt) == 32
    assert get_or_create_salt(path) == salt
    assert (os.stat(path).st_mode & 0o777) == 0o600
    path.write_bytes(b"short")
    with pytest.raises(StoreIntegrityError):
        get_or_create_salt(path)


# -- EncryptedStore -----------------------------------------------------------


@pytest.mark.parametrize("passphrase", [None, "open sesame"])
def test_store_round_trip(tmp_path, passphrase):
    store = EncryptedStore(tmp_path, passphrase=passphrase)
    store.write_blob("a.bin", b"alpha")
    store.write_blob("b.bin", os.urandom(2048))
    manifest = store.commit({"kind": "test"})
    assert manifest["sealed"] == (passphrase is not None)

    reopened = EncryptedStore(tmp_path, passphrase=passphrase)
    assert set(reopened.blob_names()) == {"a.bin", "b.bin"}
    assert reopened.read_blob("a.bin") == b"alpha"
    assert reopened.manifest()["meta"] == {"kind": "test"}
    if passphrase is not None:
        # Blobs on disk are sealed, not plaintext.
        assert b"alpha" not in (tmp_path / "a.bin").read_bytes()


def test_store_rejects_bad_blob_names(tmp_path):
    store = EncryptedStore(tmp_path)
    for name in ("../evil", "a/b", "MANIFEST.json", "salt.bin"):
        with pytest.raises(ValueError):
            store.write_blob(name, b"x")


def test_wrong_passphrase_and_missing_passphrase_fail_closed(tmp_path):
    store = EncryptedStore(tmp_path, passphrase="right")
    store.write_blob("a.bin", b"alpha")
    store.commit()
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path, passphrase="wrong").read_blob("a.bin")
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path).manifest()  # sealed, no passphrase


def test_torn_manifest_and_torn_blob_are_detected(tmp_path):
    store = EncryptedStore(tmp_path, passphrase="pw")
    store.write_blob("a.bin", b"alpha" * 100)
    store.commit()

    blob_path = tmp_path / "a.bin"
    whole = blob_path.read_bytes()
    blob_path.write_bytes(whole[:-3])  # torn write
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path, passphrase="pw").read_blob("a.bin")
    corrupted = bytearray(whole)
    corrupted[30] ^= 0x01  # bit rot, same length
    blob_path.write_bytes(bytes(corrupted))
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path, passphrase="pw").read_blob("a.bin")
    blob_path.write_bytes(whole)
    assert EncryptedStore(tmp_path, passphrase="pw").read_blob("a.bin")

    manifest_path = tmp_path / "MANIFEST.json"
    raw = manifest_path.read_text()
    manifest_path.write_text(raw[: len(raw) // 2])  # torn JSON
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path, passphrase="pw").manifest()
    doctored = json.loads(raw)
    doctored["blobs"]["a.bin"]["size"] += 1  # edited without re-fingerprinting
    manifest_path.write_text(json.dumps(doctored))
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path, passphrase="pw").manifest()


def test_change_passphrase_rekeys_and_reopens(tmp_path):
    """The encrypt-copy / key-change / reopen workflow."""
    payloads = {"a.bin": b"alpha", "b.bin": os.urandom(512)}
    store = EncryptedStore(tmp_path, passphrase="old")
    for name, data in payloads.items():
        store.write_blob(name, data)
    store.commit({"generation": 1})
    old_salt = (tmp_path / "salt.bin").read_bytes()

    store.change_passphrase("new")
    assert (tmp_path / "salt.bin").read_bytes() != old_salt

    reopened = EncryptedStore(tmp_path, passphrase="new")
    assert reopened.manifest()["meta"] == {"generation": 1}
    for name, data in payloads.items():
        assert reopened.read_blob(name) == data
    with pytest.raises(StoreIntegrityError):
        EncryptedStore(tmp_path, passphrase="old").read_blob("a.bin")

    # Decrypting to plaintext-at-rest also round-trips.
    reopened.change_passphrase(None)
    plain = EncryptedStore(tmp_path)
    assert plain.read_blob("a.bin") == b"alpha"
    assert not plain.manifest()["sealed"]


# -- SnapshotStore ------------------------------------------------------------


def test_snapshot_store_generations_and_pruning(tmp_path):
    store = SnapshotStore(tmp_path, keep=2)
    for generation in range(1, 5):
        seq = store.save({"state.bin": bytes([generation])}, {"g": generation})
        assert seq == generation
    assert store.latest_sequence() == 4
    latest = store.load_latest()
    assert latest.read_blob("state.bin") == b"\x04"
    assert latest.manifest()["meta"] == {"g": 4, "sequence": 4}
    # Only the newest two generations survive pruning.
    kept = sorted(p.name for p in (tmp_path / "snapshots").iterdir())
    assert kept == ["00000003", "00000004"]
    store.clear()
    assert not tmp_path.exists()


def test_snapshot_store_skips_torn_generation(tmp_path):
    """A SIGKILL mid-save leaves the previous complete snapshot reachable."""
    store = SnapshotStore(tmp_path, keep=3)
    store.save({"state.bin": b"one"}, {})
    store.save({"state.bin": b"two"}, {})
    # Simulate a writer killed after creating generation 3's blobs but
    # before its manifest: the directory exists, the manifest does not.
    torn = tmp_path / "snapshots" / "00000003"
    torn.mkdir()
    (torn / "state.bin").write_bytes(b"thr")
    # ...and a torn LATEST pointer on top.
    (tmp_path / "LATEST").write_text("3\n")
    assert store.latest_sequence() == 2
    assert store.load_latest().read_blob("state.bin") == b"two"
    # The next save claims a fresh sequence number above the torn leftover.
    assert store.save({"state.bin": b"four"}, {}) == 4
    assert store.load_latest().read_blob("state.bin") == b"four"


def test_snapshot_store_sealed_shares_one_salt(tmp_path):
    store = SnapshotStore(tmp_path, passphrase="pw")
    store.save({"state.bin": b"one"}, {})
    store.save({"state.bin": b"two"}, {})
    reopened = SnapshotStore(tmp_path, passphrase="pw")
    assert reopened.load_latest().read_blob("state.bin") == b"two"
    with pytest.raises(StoreIntegrityError):
        SnapshotStore(tmp_path, passphrase="nope").load_latest().read_blob(
            "state.bin"
        )


# -- EDB snapshot codecs ------------------------------------------------------


def test_arena_bytes_round_trip_preserves_rows_and_handles():
    cipher = RecordCipher(key=os.urandom(32))
    arena = CiphertextArena(initial_capacity=4)
    handles = cipher.encrypt_many_into(_records(10), arena)
    rebuilt = arena_from_bytes(*arena_to_bytes(arena))
    assert len(rebuilt) == len(arena)
    assert np.array_equal(rebuilt.as_array(), arena.as_array())
    assert [rebuilt.handle_at(i) for i in range(len(rebuilt))] == [
        arena.handle_at(i) for i in range(len(arena))
    ]
    decrypted = cipher.decrypt_many(rebuilt.records())
    assert [r.values for r in decrypted] == [r.values for r in _records(10)]
    assert handles  # handles stayed live through the round trip


def test_backend_snapshot_verifies_oram_position_maps():
    edb = ObliDB(
        rng=np.random.default_rng(7),
        simulate_encryption=True,
        storage_mode="oram",
    )
    edb.setup(_records(25))
    blob = snapshot_backend(edb)
    restored = restore_backend(blob)
    assert restored.outsourced_count == edb.outsourced_count
    assert restored.update_history == edb.update_history

    # Corrupting the recorded position-map checksum is caught on restore.
    payload = pickle.loads(blob)
    (table,) = payload["oram_maps"]
    payload["oram_maps"][table]["checksum"] = "0" * 64
    with pytest.raises(StoreIntegrityError):
        restore_backend(pickle.dumps(payload))


# -- runner checkpoint durability --------------------------------------------


def _checkpoint_runner(tmp_path):
    spec = CellSpec(strategy="dp-timer", scenario="sparse", scale=0.05)
    runner = GridRunner(artifact_dir=tmp_path)
    result = RunResult(strategy="dp-timer", backend="oblidb", epsilon=0.5)
    return runner, spec, result


def test_runner_checkpoint_survives_torn_tmp_file(tmp_path):
    """Regression: a leftover torn ``.tmp`` never shadows or corrupts the
    real checkpoint, and a torn checkpoint itself is skipped cleanly."""
    runner, spec, result = _checkpoint_runner(tmp_path)
    runner._save_checkpoint(spec, result, 1.25)
    path = runner._cell_path(spec)
    assert path.exists()
    assert not list(path.parent.glob("*.tmp"))  # no droppings after success

    # A torn temp file from a killed writer sits next to the checkpoint.
    torn_tmp = path.with_name(path.name + ".tmp")
    torn_tmp.write_text('{"fingerprint": "')
    loaded = runner._load_checkpoint(spec)
    assert loaded is not None
    assert loaded[0].to_dict() == result.to_dict()
    assert loaded[1] == 1.25

    # The checkpoint itself torn mid-JSON -> resume recomputes, no crash.
    path.write_text(path.read_text()[:40])
    assert runner._load_checkpoint(spec) is None

    # A checkpoint from an older spec definition is ignored too.
    runner._save_checkpoint(spec, result, 1.0)
    payload = json.loads(path.read_text())
    payload["fingerprint"] = "f" * 16
    path.write_text(json.dumps(payload))
    assert runner._load_checkpoint(spec) is None


# -- key lifecycle: cipher pickling and rotation ------------------------------


def test_record_cipher_pickles_key_and_handle_counter():
    cipher = RecordCipher(key=os.urandom(32))
    cipher.encrypt_many(_records(5))
    clone = pickle.loads(pickle.dumps(cipher))
    assert clone.key == cipher.key
    assert clone._next_handle == cipher._next_handle
    record = _records(1, start=99)[0]
    assert clone.decrypt(cipher.encrypt(record)).values == record.values


def test_rotation_preserves_handles_and_golden_payloads():
    """Re-keying re-encrypts arena rows in place: same handles, same row
    indices, byte-identical decrypted payloads, old key rejected."""
    edb = ObliDB(rng=np.random.default_rng(3), simulate_encryption=True)
    edb.setup(_records(40))
    edb.insert_many({"events": _records(20, start=40, time=2)}, time=2)
    old_cipher = edb._cipher
    arena = edb._arenas["events"]
    golden = [
        (view.handle, tuple(sorted(old_cipher.decrypt(view).values.items())))
        for view in arena.records()
    ]
    old_rows = arena.as_array().copy()

    new_cipher = edb.rotate_key()
    assert new_cipher.key != old_cipher.key
    assert edb._cipher is new_cipher

    after = [
        (view.handle, tuple(sorted(new_cipher.decrypt(view).values.items())))
        for view in arena.records()
    ]
    assert after == golden  # handles resolvable, payloads byte-identical
    assert not np.array_equal(arena.as_array(), old_rows)  # rows re-keyed
    with pytest.raises(ValueError):
        old_cipher.decrypt(next(iter(arena.records())))


def test_rotation_to_explicit_key_is_deterministic():
    key = os.urandom(32)
    edb = ObliDB(rng=np.random.default_rng(3), simulate_encryption=True)
    edb.setup(_records(10))
    edb.rotate_key(key)
    assert edb._cipher.key == key


def test_rotation_refuses_simulated_encryption_off():
    edb = ObliDB(rng=np.random.default_rng(3))
    edb.setup(_records(10))
    with pytest.raises(RuntimeError):
        edb.rotate_key()


def test_reencrypt_arena_rejects_corrupt_rows():
    cipher = RecordCipher(key=os.urandom(32))
    arena = CiphertextArena(initial_capacity=4)
    cipher.encrypt_many_into(_records(6), arena)
    arena._data[2, 40] ^= 0xFF
    with pytest.raises(ValueError, match="authentication"):
        cipher.reencrypt_arena(arena, cipher.rotated())


# -- segment cache: out-of-order generation guard -----------------------------


def test_segment_cache_ignores_stale_generation_publish():
    """A re-delivered older-generation publish must not evict the newer
    segment: handles resolved through the cache keep pointing at the
    newest rows."""
    cipher = RecordCipher(key=os.urandom(32))
    arena = SharedCiphertextArena(initial_capacity=4)
    cache = ArenaSegmentCache()
    try:
        cipher.encrypt_many_into(_records(4), arena)
        old_state = arena.export_state()
        assert old_state["generation"] >= 1
        # Growth moves the arena into a fresh, later-generation segment.
        cipher.encrypt_many_into(_records(8, start=4, time=2), arena)
        new_state = arena.export_state()
        assert new_state["generation"] > old_state["generation"]

        view = cache.publish(new_state)
        fresh = [bytes(r.ciphertext) for r in view.records()]
        # The stale publish (e.g. an out-of-order message) is ignored.
        stale_view = cache.publish(old_state)
        assert len(stale_view) == len(view)
        assert [bytes(r.ciphertext) for r in stale_view.records()] == fresh
        assert cipher.decrypt(stale_view.records()[11]).values["value"] == 11
    finally:
        cache.close()
        arena.release()
