"""Tests for the growing-database abstraction."""

from __future__ import annotations

import pytest

from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.stream import GrowingDatabase

SCHEMA = Schema("t", ("a",))


def rec(i, table="t"):
    return Record(values={"a": i}, arrival_time=i, table=table)


class TestConstruction:
    def test_basic(self):
        db = GrowingDatabase(table="t", initial=[rec(0)], updates=[rec(1), None, rec(3)])
        assert db.horizon == 3
        assert db.total_records == 3
        assert db.occupancy == pytest.approx(2 / 3)

    def test_rejects_dummy_records(self):
        with pytest.raises(ValueError):
            GrowingDatabase(table="t", initial=[make_dummy_record(SCHEMA)], updates=[])

    def test_rejects_foreign_table_records(self):
        with pytest.raises(ValueError):
            GrowingDatabase(table="t", initial=[rec(0, table="other")], updates=[])

    def test_empty_database(self):
        db = GrowingDatabase(table="t")
        assert db.horizon == 0
        assert db.total_records == 0
        assert db.occupancy == 0.0


class TestViews:
    @pytest.fixture
    def db(self):
        updates = [rec(t) if t % 2 == 1 else None for t in range(1, 11)]
        return GrowingDatabase(table="t", initial=[rec(0)], updates=updates)

    def test_update_at(self, db):
        assert db.update_at(1) is not None
        assert db.update_at(2) is None
        assert db.update_at(0) is None
        assert db.update_at(99) is None

    def test_logical_at_and_size(self, db):
        assert len(db.logical_at(0)) == 1
        assert len(db.logical_at(5)) == 1 + 3
        assert db.logical_size_at(5) == 4
        assert db.logical_size_at(10) == db.total_records
        assert db.logical_size_at(999) == db.total_records

    def test_iter_times(self, db):
        times = [t for t, _ in db.iter_times()]
        assert times == list(range(1, 11))

    def test_update_indicator(self, db):
        indicator = db.update_indicator()
        assert len(indicator) == 10
        assert sum(indicator) == 5

    def test_truncated(self, db):
        shorter = db.truncated(4)
        assert shorter.horizon == 4
        assert shorter.total_records == 1 + 2
        with pytest.raises(ValueError):
            db.truncated(-1)


class TestFromTimestampedRecords:
    def test_builds_initial_and_updates(self):
        records = [rec(0), rec(3), rec(7)]
        db = GrowingDatabase.from_timestamped_records("t", records, horizon=10)
        assert len(db.initial) == 1
        assert db.update_at(3) is not None
        assert db.update_at(7) is not None
        assert db.total_records == 3

    def test_rejects_collisions(self):
        records = [rec(3), Record(values={"a": 99}, arrival_time=3, table="t")]
        with pytest.raises(ValueError):
            GrowingDatabase.from_timestamped_records("t", records, horizon=10)

    def test_rejects_out_of_horizon(self):
        with pytest.raises(ValueError):
            GrowingDatabase.from_timestamped_records("t", [rec(11)], horizon=10)
