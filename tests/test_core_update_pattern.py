"""Tests for the update-pattern transcript (Definition 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.update_pattern import UpdateEvent, UpdatePattern


class TestUpdateEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateEvent(time=-1, volume=3)
        with pytest.raises(ValueError):
            UpdateEvent(time=0, volume=-2)

    def test_fields(self):
        event = UpdateEvent(time=30, volume=5)
        assert event.time == 30
        assert event.volume == 5


class TestUpdatePattern:
    def test_record_and_views(self):
        pattern = UpdatePattern()
        pattern.record(0, 5)
        pattern.record(30, 4)
        pattern.record(60, 6)
        assert len(pattern) == 3
        assert pattern.times == (0, 30, 60)
        assert pattern.volumes == (5, 4, 6)
        assert pattern.total_volume() == 15
        assert pattern.as_tuples() == ((0, 5), (30, 4), (60, 6))

    def test_paper_example(self):
        """Example 4.1: 5 records synchronized every 30 minutes."""
        pattern = UpdatePattern.from_volumes([(0, 5), (30, 5), (60, 5), (90, 5)])
        assert pattern.as_tuples() == ((0, 5), (30, 5), (60, 5), (90, 5))

    def test_out_of_order_recording_rejected(self):
        pattern = UpdatePattern()
        pattern.record(10, 1)
        with pytest.raises(ValueError):
            pattern.record(5, 1)

    def test_same_time_allowed(self):
        pattern = UpdatePattern()
        pattern.record(10, 1)
        pattern.record(10, 2)
        assert pattern.volume_at(10) == 3

    def test_volume_at_missing_time_is_zero(self):
        pattern = UpdatePattern.from_volumes([(5, 2)])
        assert pattern.volume_at(99) == 0

    def test_volumes_on_schedule(self):
        pattern = UpdatePattern.from_volumes([(0, 3), (30, 2), (90, 7)])
        assert pattern.volumes_on_schedule([0, 30, 60, 90]) == (3, 2, 0, 7)

    def test_iteration(self):
        pattern = UpdatePattern.from_volumes([(0, 1), (1, 2)])
        assert [e.volume for e in pattern] == [1, 2]

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 50)), max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_from_volumes_total_is_sum(self, pairs):
        pattern = UpdatePattern.from_volumes(pairs)
        assert pattern.total_volume() == sum(v for _, v in pairs)
        assert list(pattern.times) == sorted(pattern.times)
