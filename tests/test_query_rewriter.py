"""Tests for the dummy-aware query rewriting (Appendix B)."""

from __future__ import annotations

import pytest

from repro.edb.records import Record, Schema, make_dummy_record
from repro.query.ast import (
    CountQuery,
    CrossProductNode,
    FilterNode,
    GroupByCountQuery,
    JoinCountQuery,
    ProjectNode,
    ScanNode,
)
from repro.query.executor import PlaintextExecutor
from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.rewriter import plan_filters_dummies, rewrite_for_dummies, rewrite_plan

SCHEMA = Schema("T", ("a", "b"))


def real(a, b):
    return Record(values={"a": a, "b": b}, table="T")


@pytest.fixture
def tables():
    rows = [real(i, i % 2) for i in range(10)]
    dummies = [make_dummy_record(SCHEMA) for _ in range(5)]
    return {"T": rows + dummies}, rows


class TestRewriteStructure:
    def test_every_query_shape_is_guarded(self):
        queries = [
            CountQuery("T", RangePredicate("a", 0, 5)),
            GroupByCountQuery("T", "b"),
            JoinCountQuery("T", "U", "a", "a"),
        ]
        for query in queries:
            assert plan_filters_dummies(rewrite_for_dummies(query))

    def test_unrewritten_plan_is_not_guarded(self):
        assert not plan_filters_dummies(CountQuery("T").to_plan())

    def test_bare_scan_gets_wrapped(self):
        rewritten = rewrite_plan(ScanNode("T"))
        assert isinstance(rewritten, FilterNode)
        assert plan_filters_dummies(rewritten)

    def test_project_and_crossproduct_are_guarded(self):
        project = ProjectNode(ScanNode("T"), ("a",))
        cross = CrossProductNode(ScanNode("T"), "a", "b", "ab")
        assert plan_filters_dummies(rewrite_plan(project))
        assert plan_filters_dummies(rewrite_plan(cross))

    def test_filter_is_not_double_wrapped(self):
        plan = FilterNode(ScanNode("T"), EqualityPredicate("a", 1))
        rewritten = rewrite_plan(plan)
        # The rewritten filter sits directly on the scan (no extra filter layer).
        assert isinstance(rewritten, FilterNode)
        assert isinstance(rewritten.child, ScanNode)

    def test_unknown_node_type_rejected(self):
        class FakeNode:
            pass

        with pytest.raises(TypeError):
            rewrite_plan(FakeNode())


class TestRewriteSemantics:
    def test_count_ignores_dummies(self, tables):
        data, rows = tables
        executor = PlaintextExecutor({k: list(v) for k, v in data.items()})
        query = CountQuery("T")
        assert executor.execute(query, rewrite=True) == len(rows)
        assert executor.execute(query, rewrite=False) == len(rows) + 5

    def test_filter_with_predicate_ignores_dummies(self, tables):
        data, rows = tables
        executor = PlaintextExecutor({k: list(v) for k, v in data.items()})
        query = CountQuery("T", RangePredicate("a", 0, 4))
        assert executor.execute(query, rewrite=True) == 5

    def test_groupby_never_groups_dummies(self, tables):
        data, rows = tables
        executor = PlaintextExecutor({k: list(v) for k, v in data.items()})
        query = GroupByCountQuery("T", "b")
        grouped = executor.execute(query, rewrite=True)
        assert set(grouped) == {0, 1}
        assert sum(grouped.values()) == len(rows)
        # Without rewriting the dummy sentinel shows up as its own group.
        unguarded = executor.execute(query, rewrite=False)
        assert -1 in unguarded

    def test_join_never_matches_dummies(self):
        left_schema = Schema("L", ("k",))
        right_schema = Schema("R", ("k",))
        left = [Record(values={"k": i}, table="L") for i in range(3)]
        right = [Record(values={"k": i}, table="R") for i in range(3)]
        left_dummies = [make_dummy_record(left_schema) for _ in range(4)]
        right_dummies = [make_dummy_record(right_schema) for _ in range(4)]
        executor = PlaintextExecutor(
            {"L": left + left_dummies, "R": right + right_dummies}
        )
        query = JoinCountQuery("L", "R", "k", "k")
        # Dummies share the sentinel key and would join with each other (4x4
        # extra pairs) if the rewriting did not filter them out first.
        assert executor.execute(query, rewrite=True) == 3
        assert executor.execute(query, rewrite=False) == 3 + 16
