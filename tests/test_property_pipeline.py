"""Property-based tests spanning the full owner -> EDB -> analyst pipeline.

The end-to-end invariant tested here is the paper's correctness contract:
whatever the strategy does with dummies and delays, a query answered by an
exact (L-0) back-end differs from the ground truth by *exactly* the records
that have not yet been synchronized -- never more, never less.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import DPSync
from repro.core.strategies.flush import FlushPolicy
from repro.edb.oblidb import ObliDB
from repro.edb.records import Schema
from repro.query.ast import CountQuery, GroupByCountQuery

SCHEMA = Schema("events", ("sensor_id", "value"))

strategy_names = st.sampled_from(["sur", "oto", "set", "dp-timer", "dp-ant"])
arrival_streams = st.lists(st.booleans(), min_size=5, max_size=150)


@given(strategy=strategy_names, arrivals=arrival_streams, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_count_error_equals_logical_gap(strategy, arrivals, seed):
    dpsync = DPSync(
        SCHEMA,
        edb=ObliDB(),
        strategy=strategy,
        epsilon=0.5,
        period=10,
        theta=5,
        flush=FlushPolicy(interval=30, size=2),
        rng=np.random.default_rng(seed),
    )
    dpsync.start([])
    for t, arrived in enumerate(arrivals, start=1):
        update = {"sensor_id": t % 4, "value": float(t)} if arrived else None
        dpsync.receive(t, update)
    observation = dpsync.query(CountQuery("events", label="count-all"))
    assert observation.l1_error == dpsync.logical_gap
    assert observation.true_answer == sum(arrivals)


@given(strategy=strategy_names, arrivals=arrival_streams, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_groupby_error_equals_logical_gap(strategy, arrivals, seed):
    """For group-by counts the L1 error is also exactly the number of missing
    records (each missing record contributes 1 to exactly one group)."""
    dpsync = DPSync(
        SCHEMA,
        edb=ObliDB(),
        strategy=strategy,
        epsilon=0.5,
        period=10,
        theta=5,
        flush=FlushPolicy(interval=30, size=2),
        rng=np.random.default_rng(seed),
    )
    dpsync.start([])
    for t, arrived in enumerate(arrivals, start=1):
        update = {"sensor_id": t % 4, "value": float(t)} if arrived else None
        dpsync.receive(t, update)
    observation = dpsync.query(GroupByCountQuery("events", "sensor_id", label="by-sensor"))
    assert observation.l1_error == dpsync.logical_gap


@given(arrivals=arrival_streams, seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_outsourced_size_decomposes_into_real_plus_dummy(arrivals, seed):
    dpsync = DPSync(
        SCHEMA,
        edb=ObliDB(),
        strategy="dp-ant",
        epsilon=0.5,
        theta=5,
        flush=FlushPolicy(interval=25, size=3),
        rng=np.random.default_rng(seed),
    )
    dpsync.start([])
    for t, arrived in enumerate(arrivals, start=1):
        update = {"sensor_id": 1, "value": float(t)} if arrived else None
        dpsync.receive(t, update)
    edb = dpsync.edb
    assert edb.outsourced_count == edb.real_count + edb.dummy_count
    assert edb.real_count == sum(arrivals) - dpsync.logical_gap
    assert edb.outsourced_count == dpsync.update_pattern.total_volume()
