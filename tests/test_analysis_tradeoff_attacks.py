"""Tests for trade-off summaries and the update-pattern inference attack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.attacks import infer_activity_from_pattern
from repro.analysis.tradeoff import (
    parameter_tradeoff_series,
    privacy_tradeoff_series,
    tradeoff_scatter,
)
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.naive import SURStrategy
from repro.core.update_pattern import UpdatePattern
from repro.edb.records import Record, Schema, make_dummy_record
from repro.simulation.results import QueryTrace, RunResult


def make_result(strategy, epsilon, err, qet):
    result = RunResult(strategy=strategy, backend="ObliDB", epsilon=epsilon)
    result.add_query_trace(QueryTrace(360, "Q2", err, qet))
    return result


class TestTradeoffSeries:
    def test_privacy_series_sorted_by_epsilon(self):
        sweep = {
            "dp-timer": {1.0: make_result("dp-timer", 1.0, 5.0, 2.0),
                         0.1: make_result("dp-timer", 0.1, 40.0, 2.4)},
        }
        series = privacy_tradeoff_series(sweep)
        assert series["dp-timer"]["error"] == [(0.1, 40.0), (1.0, 5.0)]
        assert series["dp-timer"]["qet"][0][0] == 0.1

    def test_parameter_series(self):
        sweep = {100: make_result("dp-timer", 0.5, 20.0, 2.0),
                 10: make_result("dp-timer", 0.5, 3.0, 2.5)}
        series = parameter_tradeoff_series(sweep)
        assert series["error"] == [(10.0, 3.0), (100.0, 20.0)]

    def test_scatter(self):
        results = {
            "sur": make_result("sur", float("inf"), 0.0, 2.0),
            "set": make_result("set", 0.0, 0.0, 5.0),
        }
        scatter = tradeoff_scatter(results)
        assert scatter["sur"] == (2.0, 0.0)
        assert scatter["set"] == (5.0, 0.0)


SCHEMA = Schema("sensor", ("sensor_id", "event"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def sensor_event(t):
    return Record(values={"sensor_id": 1, "event": t}, arrival_time=t, table="sensor")


def run_strategy(strategy, activity):
    pattern = UpdatePattern()
    gamma0 = strategy.setup([])
    pattern.record(0, len(gamma0))
    for t, active in enumerate(activity, start=1):
        decision = strategy.step(t, sensor_event(t) if active else None)
        if decision.should_sync and decision.volume:
            pattern.record(t, decision.volume)
    return pattern


class TestUpdatePatternAttack:
    """The introduction's IoT scenario: SUR leaks activity, DP strategies do not."""

    @pytest.fixture
    def activity(self):
        rng = np.random.default_rng(0)
        # A sparse activity trace: ~10% of minutes have a sensor event.
        return list(rng.random(600) < 0.1)

    def test_attack_on_sur_reconstructs_activity_perfectly(self, activity):
        pattern = run_strategy(SURStrategy(dummy_factory), activity)
        inference = infer_activity_from_pattern(pattern, activity)
        assert inference.precision == 1.0
        assert inference.recall == 1.0
        assert inference.f1 == 1.0

    def test_attack_on_dp_timer_degrades_sharply(self, activity):
        strategy = DPTimerStrategy(
            dummy_factory,
            epsilon=0.5,
            period=30,
            flush=FlushPolicy.disabled(),
            rng=np.random.default_rng(1),
        )
        pattern = run_strategy(strategy, activity)
        inference = infer_activity_from_pattern(pattern, activity)
        # Updates only ever land on period boundaries, so the adversary can
        # recover at most one event time per window.
        assert inference.recall < 0.35
        assert inference.f1 < 0.5

    def test_lookback_window_trades_precision_for_recall(self, activity):
        strategy = DPTimerStrategy(
            dummy_factory,
            epsilon=0.5,
            period=30,
            flush=FlushPolicy.disabled(),
            rng=np.random.default_rng(2),
        )
        pattern = run_strategy(strategy, activity)
        narrow = infer_activity_from_pattern(pattern, activity, lookback=0)
        wide = infer_activity_from_pattern(pattern, activity, lookback=29)
        assert wide.recall >= narrow.recall
        assert wide.precision <= narrow.precision + 1e-9

    def test_empty_pattern_yields_zero_scores(self, activity):
        inference = infer_activity_from_pattern(UpdatePattern(), activity)
        assert inference.precision == 0.0
        assert inference.recall == 0.0
        assert inference.f1 == 0.0
