"""Concurrent scatter-gather equivalence: threads/processes vs the loop.

The :class:`~repro.edb.router.ShardRouter` claims its pluggable executor is
purely a wall-clock knob: with ``executor="threads"`` the per-shard Setup /
Update / Query work runs concurrently on a pool, and with
``executor="processes"`` inside persistent per-shard worker processes, yet
every observable -- gathered answers, the aggregated and per-shard
``(t, |γ|)`` transcripts, per-shard sizes, storage and the simulated QET --
is byte-identical to ``executor="serial"`` at a fixed seed.  This suite pins
that claim for K ∈ {1, 2, 4}, including under mid-query shard-size skew
(heavily unbalanced per-table batches arriving between query checkpoints, so
some shards are busy while others idle) and for every query shape the
scatter plan supports.  For the process executor the equivalence is the
stronger statement: each shard's EDB *and RNG stream* live in a forked
worker, so identical transcripts prove the noise streams and ingest order
survived the process boundary untouched.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.edb.crypte import CryptEpsilon
from repro.edb.leakage import update_pattern_observables
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.edb.router import ShardRouter, resolve_shard_executor
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.predicates import RangePredicate
from repro.simulation.runner import CellSpec, run_cell

TABLES = ("Alpha", "Beta")
SCHEMAS = {name: Schema(name=name, attributes=("key", "value")) for name in TABLES}
SHARD_COUNTS = (1, 2, 4)

QUERIES = [
    CountQuery(table="Alpha", predicate=RangePredicate("value", 5, 60), label="Q1"),
    GroupByCountQuery(table="Alpha", group_attribute="key", label="Q2"),
    GroupByCountQuery(
        table="Beta",
        group_attribute="key",
        predicate=RangePredicate("value", 0, 40),
        label="Q2b",
    ),
    JoinCountQuery(
        left_table="Alpha",
        right_table="Beta",
        left_attribute="key",
        right_attribute="key",
        label="Q3",
    ),
]


def _make_router(backend, n_shards: int, executor: str, seed: int = 5) -> ShardRouter:
    return ShardRouter(
        [backend(rng=np.random.default_rng(seed + index)) for index in range(n_shards)],
        route_seed=seed,
        executor=executor,
    )


def _skewed_batches(seed: int = 11, rounds: int = 6) -> list[dict[str, list[Record]]]:
    """Per-round table batches with deliberately skewed sizes.

    Round sizes swing between tiny (1 record) and heavy (hundreds into a
    single table), so at every query checkpoint the shards are unevenly
    loaded and an executor bug that reordered merges or cross-talked shard
    state would surface as a diverging answer or transcript.
    """
    rng = np.random.default_rng(seed)
    batches = []
    for round_index in range(rounds):
        heavy = TABLES[round_index % 2]
        light = TABLES[(round_index + 1) % 2]
        heavy_n = int(rng.integers(150, 400)) if round_index % 3 else 1
        light_n = int(rng.integers(0, 4))
        batch: dict[str, list[Record]] = {}
        for table, n in ((heavy, heavy_n), (light, light_n)):
            rows = []
            for i in range(n):
                if rng.random() < 0.15:
                    rows.append(
                        make_dummy_record(SCHEMAS[table], arrival_time=round_index + 1)
                    )
                else:
                    rows.append(
                        Record(
                            values={
                                "key": int(rng.integers(0, 9)),
                                "value": int(rng.integers(0, 100)),
                            },
                            arrival_time=round_index + 1,
                            table=table,
                        )
                    )
            if rows:
                batch[table] = rows
        batches.append(batch)
    return batches


def _drive(router: ShardRouter, batches) -> tuple[list, list]:
    """Ingest the skewed batches, querying after every round."""
    router.setup([])
    answers = []
    for time, batch in enumerate(batches, start=1):
        router.insert_many(batch, time=time)
        for query in QUERIES:
            if not router.supports(query):
                continue
            result = router.query(query, time=time)
            answers.append(
                (
                    query.name,
                    time,
                    result.answer,
                    result.qet_seconds,
                    result.records_scanned,
                    result.noise_injected,
                )
            )
    transcripts = [
        update_pattern_observables(router.update_history),
        router.per_shard_observables(),
    ]
    return answers, transcripts


@pytest.mark.parametrize("executor", ["threads", "processes"])
@pytest.mark.parametrize("backend", [ObliDB, CryptEpsilon], ids=["oblidb", "crypte"])
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_concurrent_scatter_gather_equals_sequential(executor, backend, n_shards):
    """Answers and (t, |γ|) transcripts identical across executors.

    For ``processes`` the per-shard state assertions below run *through the
    worker proxies* (pipe round-trips), pinning that the remote observable
    surface matches the in-process one exactly.
    """
    batches = _skewed_batches()
    concurrent = _make_router(backend, n_shards, executor)
    serial = _make_router(backend, n_shards, "serial")
    try:
        concurrent_answers, concurrent_transcripts = _drive(concurrent, batches)
        serial_answers, serial_transcripts = _drive(serial, batches)

        assert concurrent.shard_executor == executor
        assert serial.shard_executor == "serial"
        assert concurrent_answers == serial_answers
        assert concurrent_transcripts == serial_transcripts
        # Per-shard state is identical too, not just the merged surface.
        for left, right in zip(concurrent.shards, serial.shards):
            assert left.update_history == right.update_history
            for table in TABLES:
                assert left.table_size(table) == right.table_size(table)
                assert left.table_dummy_count(table) == right.table_dummy_count(table)
        assert concurrent.storage_bytes == serial.storage_bytes
    finally:
        concurrent.close()
        serial.close()


def test_measured_wall_clock_is_recorded_without_touching_observables():
    """The measured ledger fills in while simulated QET stays model-derived."""
    batches = _skewed_batches(seed=3, rounds=3)
    router = _make_router(ObliDB, 2, "threads")
    try:
        answers, _ = _drive(router, batches)
    finally:
        router.close()
    assert router.measured.update_calls == len(batches)
    assert router.measured.query_calls == sum(
        1 for _ in batches for q in QUERIES if router.supports(q)
    )
    assert router.measured.query_seconds > 0.0
    assert router.measured.mean_query_seconds > 0.0
    assert router.measured.setup_seconds > 0.0
    # Simulated QETs in the answers are cost-model outputs: strictly positive
    # and identical across repeated runs (checked by the equivalence test),
    # not wall-clock readings.
    assert all(entry[3] > 0.0 for entry in answers)
    router.measured.reset()
    assert router.measured.query_calls == 0


def test_fleet_cell_results_identical_across_executors():
    """A full fleet grid cell (2 owners x 4 shards) is executor independent."""
    base = CellSpec(
        strategy="dp-timer",
        backend="oblidb",
        scenario="million-users",
        scale=0.05,
        query_interval=400,
        n_owners=2,
        n_shards=4,
        sim_seed=13,
        backend_seed=1,
        workload_seed=7,
    )
    payloads = {}
    for executor in ("threads", "serial", "processes"):
        result = run_cell(dataclasses.replace(base, shard_executor=executor))
        payload = result.to_dict()
        # The spec parameters record which executor ran; everything the run
        # *observed* must match.
        payload["parameters"].pop("shard_executor", None)
        payloads[executor] = payload
    assert payloads["threads"] == payloads["serial"]
    assert payloads["processes"] == payloads["serial"]


def test_unknown_executor_rejected():
    with pytest.raises(ValueError):
        resolve_shard_executor("gpu")
    with pytest.raises(ValueError):
        ShardRouter([ObliDB()], executor="gpu")
    with pytest.raises(ValueError):
        CellSpec(strategy="dp-timer", shard_executor="gpu")
