"""Tests for the TLC CSV loader (runs against generated CSV fixtures)."""

from __future__ import annotations

import pytest

from repro.workload.loader import load_taxi_csv
from repro.workload.nyc_taxi import YELLOW_SCHEMA


def write_csv(path, rows, time_column="tpep_pickup_datetime", zone_column="PULocationID"):
    lines = [f"{time_column},{zone_column},extra"]
    lines += [f"{stamp},{zone},x" for stamp, zone in rows]
    path.write_text("\n".join(lines) + "\n")


class TestLoadTaxiCSV:
    def test_loads_and_cleans(self, tmp_path):
        csv_path = tmp_path / "yellow.csv"
        write_csv(
            csv_path,
            [
                ("2020-06-01 00:05:00", "12"),
                ("2020-06-01 00:05:30", "99"),   # same minute -> deduplicated
                ("2020-06-01 01:00:00", "40"),
                ("2020-05-31 23:59:00", "7"),    # before June -> dropped
                ("2020-06-01 02:00:00", ""),     # missing zone -> dropped
                ("not-a-date", "5"),             # invalid timestamp -> dropped
            ],
        )
        db = load_taxi_csv(csv_path, YELLOW_SCHEMA, horizon=43_200)
        assert db.table == "YellowCab"
        assert db.total_records == 2
        assert db.update_at(5)["pickupID"] == 12
        assert db.update_at(60)["pickupID"] == 40

    def test_green_column_names(self, tmp_path):
        csv_path = tmp_path / "green.csv"
        write_csv(
            csv_path,
            [("2020-06-02 10:00:00", "33")],
            time_column="lpep_pickup_datetime",
            zone_column="PULocationID",
        )
        db = load_taxi_csv(csv_path, YELLOW_SCHEMA)
        assert db.total_records == 1

    def test_missing_columns_raise(self, tmp_path):
        csv_path = tmp_path / "bad.csv"
        csv_path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            load_taxi_csv(csv_path, YELLOW_SCHEMA)

    def test_empty_file_raises(self, tmp_path):
        csv_path = tmp_path / "empty.csv"
        csv_path.write_text("")
        with pytest.raises(ValueError):
            load_taxi_csv(csv_path, YELLOW_SCHEMA)

    def test_record_at_minute_zero_goes_to_initial(self, tmp_path):
        csv_path = tmp_path / "zero.csv"
        write_csv(csv_path, [("2020-06-01 00:00:30", "8")])
        db = load_taxi_csv(csv_path, YELLOW_SCHEMA)
        assert len(db.initial) == 1
        assert db.initial[0]["pickupID"] == 8
