"""Tests for the DP-ANT strategy (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def real(i):
    return Record(values={"sensor_id": i % 5, "value": i}, arrival_time=i, table="events")


def make_ant(epsilon=0.5, theta=15, flush=None, seed=0, budget_split=0.5):
    return DPANTStrategy(
        dummy_factory,
        epsilon=epsilon,
        theta=theta,
        flush=flush if flush is not None else FlushPolicy.disabled(),
        rng=np.random.default_rng(seed),
        budget_split=budget_split,
    )


def drive(strategy, horizon, arrival_every=2):
    decisions = []
    for t in range(1, horizon + 1):
        update = real(t) if t % arrival_every == 0 else None
        decisions.append((t, strategy.step(t, update)))
    return decisions


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_ant(epsilon=0.0)
        with pytest.raises(ValueError):
            make_ant(theta=-1)
        with pytest.raises(ValueError):
            make_ant(budget_split=1.5)

    def test_budget_split(self):
        strategy = make_ant(epsilon=0.8, budget_split=0.5)
        assert strategy.epsilon_compare == pytest.approx(0.4)
        assert strategy.epsilon_fetch == pytest.approx(0.4)
        asymmetric = make_ant(epsilon=1.0, budget_split=0.25)
        assert asymmetric.epsilon_compare == pytest.approx(0.25)
        assert asymmetric.epsilon_fetch == pytest.approx(0.75)

    def test_parameters_exposed(self):
        strategy = make_ant(epsilon=0.7, theta=20)
        assert strategy.epsilon == 0.7
        assert strategy.theta == 20


class TestThresholdBehaviour:
    def test_syncs_after_roughly_theta_records(self):
        strategy = make_ant(epsilon=2.0, theta=20, seed=1)
        strategy.setup([])
        received_between_syncs = []
        count = 0
        for t in range(1, 2001):
            update = real(t)  # one record every step
            count += 1
            decision = strategy.step(t, update)
            if decision.should_sync:
                received_between_syncs.append(count)
                count = 0
        assert received_between_syncs, "DP-ANT never fired"
        mean_gap = float(np.mean(received_between_syncs))
        assert 10 <= mean_gap <= 30  # approximately theta = 20

    def test_sparser_streams_sync_less_often(self):
        dense = make_ant(epsilon=1.0, theta=15, seed=2)
        dense.setup([])
        drive(dense, 1500, arrival_every=1)
        sparse = make_ant(epsilon=1.0, theta=15, seed=2)
        sparse.setup([])
        drive(sparse, 1500, arrival_every=10)
        assert dense.sync_count > sparse.sync_count

    def test_adapts_to_arrival_rate_unlike_timer(self):
        """DP-ANT's defining behaviour: synchronization frequency tracks the
        data rate (the paper's comparison of the two DP strategies)."""
        fast = make_ant(epsilon=1.0, theta=10, seed=3)
        fast.setup([])
        drive(fast, 1000, arrival_every=1)
        slow = make_ant(epsilon=1.0, theta=10, seed=3)
        slow.setup([])
        drive(slow, 1000, arrival_every=20)
        assert fast.sync_count > max(1, slow.sync_count)

    def test_held_noise_variant_adapts_sharply(self):
        """With the comparison noise held per round (see the noise ablation),
        the firing rate tracks the arrival rate almost proportionally."""

        def make_held(seed):
            return DPANTStrategy(
                dummy_factory,
                epsilon=1.0,
                theta=10,
                flush=FlushPolicy.disabled(),
                rng=np.random.default_rng(seed),
                resample_comparison_noise=False,
            )

        fast = make_held(3)
        fast.setup([])
        drive(fast, 1000, arrival_every=1)
        slow = make_held(3)
        slow.setup([])
        drive(slow, 1000, arrival_every=20)
        assert fast.sync_count >= 3 * max(1, slow.sync_count)

    def test_flush_bounds_the_cache_even_without_crossings(self):
        strategy = make_ant(
            epsilon=1.0, theta=10_000, flush=FlushPolicy(interval=50, size=5), seed=4
        )
        strategy.setup([])
        drive(strategy, 500, arrival_every=1)
        # Threshold is effectively unreachable, so only flushes drain the cache.
        assert strategy.sync_count > 0
        assert strategy.synced_real_total > 0


class TestVolumes:
    def test_noisy_fetch_sizes_track_received_counts(self):
        strategy = make_ant(epsilon=2.0, theta=25, seed=5)
        strategy.setup([])
        volumes = []
        for t in range(1, 3001):
            decision = strategy.step(t, real(t))
            if decision.should_sync:
                volumes.append(decision.volume)
        assert volumes
        assert 15 <= float(np.mean(volumes)) <= 35

    def test_fifo_order_preserved(self):
        strategy = make_ant(epsilon=2.0, theta=10, seed=6)
        strategy.setup([])
        uploaded = []
        for t in range(1, 501):
            decision = strategy.step(t, real(t))
            uploaded.extend(r["value"] for r in decision.records if not r.is_dummy)
        assert uploaded == sorted(uploaded)


class TestPrivacyAccounting:
    def test_total_epsilon_never_exceeds_budget(self):
        strategy = make_ant(epsilon=0.5, theta=15, flush=FlushPolicy(100, 5), seed=7)
        strategy.setup([real(0)])
        drive(strategy, 2000, arrival_every=1)
        assert strategy.accountant.total_epsilon() == pytest.approx(0.5)

    def test_each_round_spends_full_epsilon_on_own_partition(self):
        strategy = make_ant(epsilon=0.6, theta=10, seed=8)
        strategy.setup([])
        drive(strategy, 500, arrival_every=1)
        partitions = strategy.accountant.per_partition()
        rounds = [p for p in partitions if p.startswith("round-")]
        assert rounds
        assert all(partitions[r] == pytest.approx(0.6) for r in rounds)

    def test_asymmetric_split_still_totals_epsilon(self):
        strategy = make_ant(epsilon=0.5, theta=10, seed=9, budget_split=0.3)
        strategy.setup([])
        drive(strategy, 500, arrival_every=1)
        assert strategy.accountant.total_epsilon() == pytest.approx(0.5)
