"""Fleet coordinator tests.

* **N=1 / K=1 differential** -- a :class:`Deployment` with one owner over a
  one-shard router reproduces a :class:`DPSync` run bit-for-bit: per-tick
  sync decisions, update-pattern transcript, EDB update history / leakage
  observables, and query answers.
* **Fleet construction** -- ``Deployment.build`` spawns independent noise
  streams per member; fleet epsilon is the parallel composition (max).
* **Sibling table sources** -- the multi-table join ground-truth fix: a
  facade sharing an EDB with a sibling table sees the complete logical
  database (and keeps seeing it as the sibling grows).
* **run_cell fleet differentials** -- the CI smoke contract: an ``n_owners=2``
  SUR run equals the single-owner run exactly; adding ``n_shards=2`` changes
  nothing but the (smaller) simulated QET.
* **Arrival-stream partitioning** -- ``partition_stream`` is an exact
  partition of the arrivals.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.framework import DPSync
from repro.core.strategies.registry import make_strategy
from repro.edb.leakage import update_pattern_observables
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.edb.router import ShardRouter
from repro.fleet import Deployment
from repro.query.incremental import IncrementalTruth
from repro.query.sql import parse_query
from repro.simulation.runner import CellSpec, run_cell
from repro.workload.scenarios import FLEET_PARTITIONS, partition_fleet, partition_stream
from repro.workload.stream import GrowingDatabase

SCHEMA = Schema(name="events", attributes=("sensor_id", "value"))


def _stream(seed: int, horizon: int = 400, rate: float = 0.4):
    """A deterministic (time, values) update stream."""
    rng = np.random.default_rng(seed)
    updates = []
    for t in range(1, horizon + 1):
        if rng.random() < rate:
            updates.append(
                (t, {"sensor_id": int(rng.integers(0, 8)), "value": int(t % 53)})
            )
        else:
            updates.append((t, None))
    return updates


def test_single_owner_deployment_matches_dpsync_bit_for_bit():
    """n_owners=1, n_shards=1 reproduces the DPSync facade exactly."""
    updates = _stream(seed=3)
    query_sql = "SELECT COUNT(*) FROM events WHERE value BETWEEN 10 AND 40"

    dpsync = DPSync(
        SCHEMA,
        edb=ObliDB(rng=np.random.default_rng(21)),
        strategy="dp-timer",
        epsilon=0.5,
        period=12,
        rng=np.random.default_rng(7),
    )
    dpsync.start([])

    router = ShardRouter([ObliDB(rng=np.random.default_rng(21))])
    deployment = Deployment(router, truth_source=IncrementalTruth())
    strategy = make_strategy(
        "dp-timer",
        dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
        rng=np.random.default_rng(7),
        epsilon=0.5,
        period=12,
        theta=15,
        flush=None,
    )
    deployment.add_owner(SCHEMA.name, SCHEMA, strategy)
    deployment.start()

    for t, values in updates:
        facade_decision = dpsync.receive(t, values)
        record = (
            None
            if values is None
            else Record(values=values, arrival_time=t, table=SCHEMA.name)
        )
        fleet_decision = deployment.receive(SCHEMA.name, t, record)
        assert fleet_decision.should_sync == facade_decision.should_sync, t
        assert fleet_decision.volume == facade_decision.volume, t
        assert fleet_decision.reason == facade_decision.reason, t
        if t % 100 == 0:
            facade_obs = dpsync.query(query_sql, time=t)
            fleet_obs = deployment.query(query_sql, time=t)
            assert fleet_obs.answer == facade_obs.answer
            assert fleet_obs.true_answer == facade_obs.true_answer
            assert fleet_obs.l1_error == facade_obs.l1_error
            assert fleet_obs.qet_seconds == facade_obs.qet_seconds

    # Server-observable transcripts are identical, member- and EDB-level.
    facade_pattern = dpsync.update_pattern
    fleet_pattern = deployment.member(SCHEMA.name).update_pattern
    assert fleet_pattern.events == facade_pattern.events
    assert update_pattern_observables(router.update_history) == (
        update_pattern_observables(dpsync.edb.update_history)
    )
    assert router.leakage_profile == dpsync.edb.leakage_profile
    assert deployment.epsilon == dpsync.epsilon


def test_build_spawns_independent_members():
    """Deployment.build: one strategy + noise stream per member, eps = max."""
    router = ShardRouter(
        [ObliDB(rng=np.random.default_rng(i)) for i in range(2)], route_seed=1
    )
    deployment = Deployment.build(
        SCHEMA,
        router,
        n_owners=3,
        strategy="dp-timer",
        epsilon=0.4,
        period=10,
        seed=5,
        truth_source=IncrementalTruth(),
    )
    assert deployment.n_owners == 3
    assert sorted(deployment.owners) == ["events#0", "events#1", "events#2"]
    strategies = [owner.strategy for owner in deployment.owners.values()]
    assert len({id(s) for s in strategies}) == 3
    assert len({id(s._rng) for s in strategies}) == 3
    assert deployment.epsilon == pytest.approx(0.4)

    deployment.start()
    for t, values in _stream(seed=11, horizon=120, rate=0.6):
        if values is None:
            continue
        name = f"events#{t % 3}"
        deployment.receive(
            name, t, Record(values=values, arrival_time=t, table="events")
        )
    # Every member keeps its own transcript, and conservation holds
    # member-wise: received = synced real + still cached.
    patterns = deployment.update_patterns()
    assert set(patterns) == set(deployment.owners)
    for owner in deployment.owners.values():
        strategy = owner.strategy
        assert strategy.received_total == (
            strategy.synced_real_total + strategy.logical_gap
        )
    assert deployment.logical_size() > 0
    obs = deployment.query("SELECT sensor_id, COUNT(*) AS C FROM events GROUP BY sensor_id")
    assert sum(obs.true_answer.values()) == deployment.logical_size()


def test_sibling_table_sources_fix_join_ground_truth():
    """Joins through a shared EDB see the complete logical database."""
    yellow = Schema(name="YellowCab", attributes=("pickupID", "pickTime"))
    green = Schema(name="GreenTaxi", attributes=("pickupID", "pickTime"))
    edb = ObliDB(rng=np.random.default_rng(0))
    a = DPSync(yellow, edb=edb, strategy="sur", rng=np.random.default_rng(1))
    b = DPSync(green, edb=edb, strategy="sur", rng=np.random.default_rng(2))
    a.start([])
    b.start([])
    a.register_sibling(b)
    b.register_sibling(a)

    join_sql = (
        "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi "
        "ON YellowCab.pickTime = GreenTaxi.pickTime"
    )
    a.receive(1, {"pickupID": 10, "pickTime": 100})
    b.receive(2, {"pickupID": 20, "pickTime": 100})
    first = a.query(join_sql, time=2)
    assert first.true_answer == 1
    assert first.l1_error == 0.0  # SUR: everything is outsourced immediately

    # The sibling keeps growing *after* the first join query: ground truth
    # must follow (the old facade froze a one-sided maintained aggregate).
    b.receive(3, {"pickupID": 21, "pickTime": 100})
    a.receive(4, {"pickupID": 11, "pickTime": 200})
    b.receive(5, {"pickupID": 22, "pickTime": 200})
    second = a.query(join_sql, time=5)
    assert second.true_answer == 2 + 1
    assert second.l1_error == 0.0
    # And the sibling's own view agrees.
    assert b.query(join_sql, time=5).true_answer == 3


def test_register_sibling_rejects_self():
    dpsync = DPSync(SCHEMA, edb=ObliDB(), strategy="sur")
    with pytest.raises(ValueError):
        dpsync.register_sibling(dpsync)


def test_table_source_for_owned_table_is_rejected():
    """An external source for an owned table would double-count ground truth."""
    edb = ObliDB(rng=np.random.default_rng(0))
    a = DPSync(SCHEMA, edb=edb, strategy="sur", rng=np.random.default_rng(1))
    b = DPSync(SCHEMA, edb=edb, strategy="sur", rng=np.random.default_rng(2))
    with pytest.raises(ValueError, match="already owned"):
        a.register_sibling(b)
    # ... and in the other order: adding an owner for a sourced table.
    deployment = Deployment(ObliDB(rng=np.random.default_rng(3)))
    deployment.register_table_source("events", lambda: ())
    strategy = make_strategy(
        "sur",
        dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
        rng=np.random.default_rng(4),
    )
    with pytest.raises(ValueError, match="external source"):
        deployment.add_owner("events", SCHEMA, strategy)


def test_fleet_logical_gap_sums_over_primary_table_members():
    """TimePoint.logical_gap covers the whole primary table, not partition #0."""
    from repro.simulation.runner import make_backend
    from repro.simulation.simulator import Simulation, SimulationConfig
    from repro.workload.scenarios import build_scenario

    workloads = partition_fleet(build_scenario("poisson", seed=8, scale=0.1), 4)
    config = SimulationConfig(strategy="oto", query_interval=0, seed=2)
    # OTO never synchronizes after setup: the primary-table gap must equal
    # the *total* number of arrivals, which only holds when the snapshot
    # sums the gap over every member of the table.
    result = Simulation(
        make_backend("oblidb", seed=1), workloads, [], config
    ).run()
    final = result.final_time_point()
    assert final.logical_gap == final.logical_size > 0


def test_fleet_scenario_is_a_grid_axis():
    from repro.simulation.runner import ExperimentGrid

    grid = ExperimentGrid(
        strategies=("sur",),
        scenarios=("million-users",),
        parameters={
            "n_owners": [2],
            "fleet_scenario": ["round-robin", "hash-user"],
        },
    )
    cells = grid.cells()
    assert len(cells) == 2
    assert {c.fleet_scenario for c in cells} == {"round-robin", "hash-user"}


def test_run_cell_tolerates_empty_fleet_partitions():
    """More owners than arrivals: idle members run instead of crashing."""
    spec = CellSpec(
        strategy="sur",
        scenario="million-users",
        scale=0.002,  # ~55 arrivals
        query_interval=40,
        n_owners=64,
    )
    result = run_cell(spec)
    assert result.final_time_point().logical_size > 0


def test_run_cell_fleet_differential():
    """CI smoke contract: 2 owners x 2 shards vs the single-owner/K=1 run."""
    base = CellSpec(
        strategy="sur",
        scenario="poisson",
        scale=0.2,
        query_interval=250,
        sim_seed=5,
        backend_seed=6,
    )
    single = run_cell(base)
    # SUR syncs every receipt at its own tick, so splitting the stream across
    # two owners changes nothing the server (or analyst) observes.
    fleet = run_cell(dataclasses.replace(base, n_owners=2))
    assert fleet.to_dict() == single.to_dict()

    # Sharding the same fleet run changes only the simulated QET (smaller).
    sharded = run_cell(dataclasses.replace(base, n_owners=2, n_shards=2))
    expected = fleet.to_dict()
    observed = sharded.to_dict()
    expected_qets = [t.pop("qet_seconds") for t in expected["query_traces"]]
    observed_qets = [t.pop("qet_seconds") for t in observed["query_traces"]]
    assert observed == expected
    assert all(o <= e for o, e in zip(observed_qets, expected_qets))
    assert sum(observed_qets) < sum(expected_qets)


def test_fleet_engine_matches_legacy_loop():
    """All fleet owners interleave in one event heap: run == run_legacy."""
    from repro.simulation.runner import make_backend, make_sharded_backend
    from repro.simulation.simulator import Simulation, SimulationConfig
    from repro.workload.scenarios import build_scenario

    workloads = partition_fleet(
        build_scenario("poisson", seed=3, scale=0.1), n_owners=3
    )
    config = SimulationConfig(
        strategy="dp-timer", timer_period=17, query_interval=137, seed=9
    )
    queries = []
    engine_run = Simulation(
        make_sharded_backend("oblidb", 2, seed=4), workloads, queries, config
    ).run()
    legacy_run = Simulation(
        make_sharded_backend("oblidb", 2, seed=4), workloads, queries, config
    ).run_legacy()
    assert engine_run == legacy_run


def test_cellspec_fleet_fields_round_trip():
    spec = CellSpec(
        strategy="dp-timer",
        scenario="million-users",
        n_owners=4,
        n_shards=2,
        fleet_scenario="hash-user",
    )
    rebuilt = CellSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.fingerprint() == spec.fingerprint()
    assert "fleet=4x2" in spec.cell_id
    with pytest.raises(ValueError):
        CellSpec(strategy="sur", n_owners=0)


def test_partition_stream_is_exact_partition():
    """Every arrival lands in exactly one sub-stream, at its original time."""
    rng = np.random.default_rng(4)
    updates = [
        Record(
            values={"user_id": int(rng.integers(1, 50)), "region": 1, "value": int(t)},
            arrival_time=t + 1,
            table="Users",
        )
        if rng.random() < 0.7
        else None
        for t in range(300)
    ]
    workload = GrowingDatabase(table="Users", updates=updates)
    for policy in FLEET_PARTITIONS:
        parts = partition_stream(workload, 3, policy=policy)
        assert len(parts) == 3
        assert all(p.horizon == workload.horizon for p in parts)
        for t in range(1, workload.horizon + 1):
            original = workload.update_at(t)
            placed = [p.update_at(t) for p in parts if p.update_at(t) is not None]
            if original is None:
                assert placed == []
            else:
                assert placed == [original]
        assert sum(p.total_records for p in parts) == workload.total_records

    # hash-user: all records of one user land on one owner.
    parts = partition_stream(workload, 3, policy="hash-user")
    owner_of: dict[int, set[int]] = {}
    for index, part in enumerate(parts):
        for _, record in part.arrivals():
            owner_of.setdefault(record["user_id"], set()).add(index)
    assert all(len(owners) == 1 for owners in owner_of.values())

    with pytest.raises(KeyError):
        partition_stream(workload, 2, policy="no-such-policy")

    fleet = partition_fleet({"Users": workload}, 2)
    assert sorted(fleet) == ["Users#0", "Users#1"]
    assert all(db.table == "Users" for db in fleet.values())
