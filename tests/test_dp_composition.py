"""Tests for composition theorems and the privacy accountant."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.composition import (
    BudgetExceededError,
    PrivacyAccountant,
    PrivacySpend,
    parallel_composition,
    sequential_composition,
)


class TestCompositionRules:
    def test_sequential_sums(self):
        assert sequential_composition([0.1, 0.2, 0.3]) == pytest.approx(0.6)
        assert sequential_composition([]) == 0.0

    def test_parallel_takes_max(self):
        assert parallel_composition([0.1, 0.5, 0.3]) == pytest.approx(0.5)
        assert parallel_composition([]) == 0.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            sequential_composition([0.1, -0.2])
        with pytest.raises(ValueError):
            parallel_composition([-0.1])

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_parallel_never_exceeds_sequential(self, epsilons):
        assert parallel_composition(epsilons) <= sequential_composition(epsilons) + 1e-9


class TestPrivacySpend:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PrivacySpend(epsilon=-0.1, partition="p")

    def test_fields(self):
        spend = PrivacySpend(epsilon=0.5, partition="setup", label="M_setup")
        assert spend.epsilon == 0.5
        assert spend.partition == "setup"
        assert spend.label == "M_setup"


class TestPrivacyAccountant:
    def test_same_partition_composes_sequentially(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.2, "window-1")
        accountant.spend(0.3, "window-1")
        assert accountant.total_epsilon() == pytest.approx(0.5)

    def test_different_partitions_compose_in_parallel(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.5, "window-1")
        accountant.spend(0.5, "window-2")
        accountant.spend(0.5, "window-3")
        assert accountant.total_epsilon() == pytest.approx(0.5)

    def test_mixed_composition_matches_dp_timer_structure(self):
        """Setup + many windows + flush == epsilon overall (Theorem 10 shape)."""
        epsilon = 0.5
        accountant = PrivacyAccountant()
        accountant.spend(epsilon, "setup")
        for window in range(100):
            accountant.spend(epsilon, f"window-{window}")
        accountant.spend(0.0, "flush")
        assert accountant.total_epsilon() == pytest.approx(epsilon)

    def test_budget_enforcement(self):
        accountant = PrivacyAccountant(budget=0.5)
        accountant.spend(0.3, "a")
        with pytest.raises(BudgetExceededError):
            accountant.spend(0.3, "a")
        # Parallel spends on a different partition stay inside the budget.
        accountant.spend(0.5, "b")
        assert accountant.total_epsilon() == pytest.approx(0.5)

    def test_rejected_spend_is_not_recorded(self):
        accountant = PrivacyAccountant(budget=0.1)
        with pytest.raises(BudgetExceededError):
            accountant.spend(0.2, "a")
        assert accountant.total_epsilon() == 0.0
        assert len(accountant.spends) == 0

    def test_per_partition_and_remaining(self):
        accountant = PrivacyAccountant(budget=1.0)
        accountant.spend(0.25, "a")
        accountant.spend(0.25, "a")
        accountant.spend(0.1, "b")
        assert accountant.per_partition() == pytest.approx({"a": 0.5, "b": 0.1})
        assert accountant.remaining() == pytest.approx(0.5)

    def test_remaining_without_budget_is_none(self):
        assert PrivacyAccountant().remaining() is None

    def test_reset(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.4, "a")
        accountant.reset()
        assert accountant.total_epsilon() == 0.0
        assert accountant.spends == ()

    @given(
        spends=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.sampled_from(["a", "b", "c", "d"]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_total_epsilon_is_max_of_partition_sums(self, spends):
        accountant = PrivacyAccountant()
        totals: dict[str, float] = {}
        for epsilon, partition in spends:
            accountant.spend(epsilon, partition)
            totals[partition] = totals.get(partition, 0.0) + epsilon
        expected = max(totals.values()) if totals else 0.0
        assert accountant.total_epsilon() == pytest.approx(expected)
