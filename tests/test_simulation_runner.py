"""Tests for the parallel experiment runner (grids, seeds, checkpoint/resume).

The load-bearing guarantee is determinism: a grid's per-cell seeds depend only
on the grid definition and the cell's position, so the same grid produces
bit-identical per-cell results whether it runs in-process, on one worker, or
on four -- and whether a cell is computed or loaded back from a checkpoint
artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.simulation.experiment import run_end_to_end, EndToEndConfig
from repro.simulation.results import RunResult
from repro.simulation.runner import (
    CellSpec,
    ExperimentGrid,
    GridRunner,
    main,
    run_cell,
)

#: A grid small enough for the suite but heterogeneous enough to be honest:
#: two strategies x two epsilons on a sparse stream.
def small_grid(base_seed: int = 7) -> ExperimentGrid:
    return ExperimentGrid(
        strategies=("dp-timer", "dp-ant"),
        scenarios=("sparse",),
        parameters={"epsilon": [0.1, 1.0], "scale": [0.1], "query_interval": [400]},
        base_seed=base_seed,
    )


class TestCellSpec:
    def test_round_trip(self):
        spec = CellSpec(
            strategy="dp-ant",
            backend="crypte",
            scenario="poisson",
            epsilon=0.25,
            queries=("Q2",),
            scenario_kwargs=(("rate", 0.4),),
            sim_seed=11,
        )
        clone = CellSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_default_cell_id_distinguishes_parameters(self):
        a = CellSpec(strategy="dp-timer", epsilon=0.1)
        b = CellSpec(strategy="dp-timer", epsilon=1.0)
        assert a.cell_id != b.cell_id

    def test_fingerprint_changes_with_spec(self):
        a = CellSpec(strategy="dp-timer", sim_seed=1)
        b = CellSpec(strategy="dp-timer", sim_seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_flush_policy_reconstruction(self):
        enabled = CellSpec(strategy="sur", flush_interval=500, flush_size=3)
        assert enabled.flush_policy().should_flush(500)
        disabled = CellSpec(strategy="sur", flush_enabled=False)
        assert not disabled.flush_policy().enabled


class TestExperimentGrid:
    def test_enumeration_order_and_size(self):
        grid = small_grid()
        cells = grid.cells()
        assert len(cells) == len(grid) == 4
        assert [c.strategy for c in cells] == ["dp-timer", "dp-timer", "dp-ant", "dp-ant"]
        assert len({c.cell_id for c in cells}) == 4

    def test_seeds_are_deterministic_and_positional(self):
        first = small_grid().cells()
        second = small_grid().cells()
        assert [(c.sim_seed, c.backend_seed, c.workload_seed) for c in first] == [
            (c.sim_seed, c.backend_seed, c.workload_seed) for c in second
        ]
        # Different base seeds must decorrelate every cell.
        other = small_grid(base_seed=8).cells()
        assert all(a.sim_seed != b.sim_seed for a, b in zip(first, other))

    def test_unknown_parameter_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentGrid(strategies=("sur",), parameters={"not_a_field": [1]})

    def test_empty_strategies_rejected(self):
        with pytest.raises(ValueError):
            ExperimentGrid(strategies=())


class TestRunnerDeterminism:
    """The ISSUE's core runner guarantee: worker count never changes results."""

    @pytest.fixture(scope="class")
    def serial(self):
        return GridRunner(n_workers=1).run(small_grid())

    def test_results_identical_across_worker_counts(self, serial):
        parallel = GridRunner(n_workers=4).run(small_grid())
        assert list(parallel.results) == list(serial.results)
        for cell_id in serial.results:
            assert parallel[cell_id] == serial[cell_id], cell_id

    def test_in_process_default_matches(self, serial):
        assert GridRunner().run(small_grid()).results == serial.results

    def test_single_cell_run_matches_grid(self, serial):
        cells = small_grid().cells()
        assert run_cell(cells[0]) == serial[cells[0].cell_id]


class TestCheckpointResume:
    def test_artifacts_written_and_resumed(self, tmp_path):
        grid = small_grid()
        first = GridRunner(n_workers=2, artifact_dir=tmp_path).run(grid)
        assert first.resumed == ()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["n_cells"] == len(grid)
        cell_files = list((tmp_path / "cells").glob("*.json"))
        assert len(cell_files) == len(grid)

        second = GridRunner(n_workers=1, artifact_dir=tmp_path).run(grid)
        assert len(second.resumed) == len(grid)
        assert second.results == first.results
        assert second.executed == ()

    def test_artifact_round_trip_is_exact(self, tmp_path):
        grid = small_grid()
        outcome = GridRunner(artifact_dir=tmp_path).run(grid)
        for path in (tmp_path / "cells").glob("*.json"):
            payload = json.loads(path.read_text())
            spec = CellSpec.from_dict(payload["spec"])
            loaded = RunResult.from_dict(payload["result"])
            assert loaded == outcome[spec.cell_id]
            assert loaded.to_dict() == payload["result"]

    def test_changed_spec_invalidates_checkpoint(self, tmp_path):
        cells = small_grid().cells()
        runner = GridRunner(artifact_dir=tmp_path)
        runner.run(cells[:1])
        # Same cell id, different content: the stale artifact must not be used.
        from dataclasses import replace

        changed = replace(cells[0], sim_seed=cells[0].sim_seed + 1, cell_id=cells[0].cell_id)
        outcome = GridRunner(artifact_dir=tmp_path).run([changed])
        assert outcome.resumed == ()

    def test_corrupt_artifact_is_recomputed(self, tmp_path):
        cells = small_grid().cells()[:1]
        GridRunner(artifact_dir=tmp_path).run(cells)
        for path in (tmp_path / "cells").glob("*.json"):
            path.write_text("{not json")
        outcome = GridRunner(artifact_dir=tmp_path).run(cells)
        assert outcome.resumed == ()

    def test_checkpoints_written_incrementally(self, tmp_path):
        """Each cell is persisted as it finishes, not when the pool drains.

        An interrupted sweep must be able to resume from every cell computed
        so far; the progress callback fires right after the checkpoint write,
        so at event ``done=k`` at least ``k`` artifacts must already exist.
        """
        observed = []

        def on_progress(event):
            files = list((tmp_path / "cells").glob("*.json"))
            observed.append((event["done"], len(files)))

        GridRunner(n_workers=2, artifact_dir=tmp_path, progress=on_progress).run(
            small_grid()
        )
        assert observed and all(n >= done for done, n in observed)

    def test_failed_cell_preserves_completed_checkpoints(self, tmp_path):
        good = CellSpec(strategy="sur", scenario="sparse", scale=0.05)
        bad = CellSpec(strategy="sur", scenario="does-not-exist", scale=0.05)
        with pytest.raises(KeyError):
            GridRunner(artifact_dir=tmp_path).run([good, bad])
        resumed = GridRunner(artifact_dir=tmp_path).run([good])
        assert resumed.resumed == (good.cell_id,)

    def test_distinct_specs_never_share_default_cell_ids(self):
        # Fields outside the readable id prefix still distinguish cells.
        a = CellSpec(strategy="sur")
        b = CellSpec(strategy="sur", backend_seed=1)
        c = CellSpec(strategy="sur", flush_interval=999)
        d = CellSpec(strategy="sur", queries=("Q2",))
        assert len({a.cell_id, b.cell_id, c.cell_id, d.cell_id}) == 4

    def test_duplicate_cell_ids_rejected(self):
        cells = small_grid().cells()
        with pytest.raises(ValueError):
            GridRunner().run([cells[0], cells[0]])


class TestProgressReporting:
    def test_progress_callback_receives_eta(self):
        events = []
        GridRunner(progress=events.append).run(small_grid().cells()[:2])
        assert [e["done"] for e in events] == [1, 2]
        assert events[0]["total"] == 2
        assert events[-1]["eta_seconds"] == 0.0
        assert all(e["cell_seconds"] >= 0 for e in events)

    def test_progress_printing(self, tmp_path, capsys):
        GridRunner(progress=True, artifact_dir=tmp_path).run(small_grid().cells()[:1])
        GridRunner(progress=True, artifact_dir=tmp_path).run(small_grid().cells()[:1])
        err = capsys.readouterr().err
        assert "[1/1]" in err
        assert "resumed" in err


class TestExperimentWrappers:
    def test_end_to_end_workers_match_serial(self):
        config = EndToEndConfig(
            backend="oblidb",
            strategies=("sur", "dp-timer"),
            scale=0.01,
            query_interval=120,
            seed=4,
        )
        serial = run_end_to_end(config)
        parallel = run_end_to_end(config, n_workers=2)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert serial[name] == parallel[name]

    def test_end_to_end_resume(self, tmp_path):
        config = EndToEndConfig(
            backend="oblidb", strategies=("sur",), scale=0.01, query_interval=120
        )
        first = run_end_to_end(config, artifact_dir=tmp_path)
        second = run_end_to_end(config, artifact_dir=tmp_path)
        assert first["sur"] == second["sur"]


class TestCli:
    def test_main_smoke(self, tmp_path, capsys):
        code = main(
            [
                "--strategies",
                "dp-timer,dp-ant",
                "--scenario",
                "sparse",
                "--scale",
                "0.05",
                "--workers",
                "2",
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert (tmp_path / "manifest.json").exists()
