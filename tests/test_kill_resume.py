"""Kill-and-resume differentials: a crashed run replays bit-identically.

The durability contract of :mod:`repro.edb.store`: after a SIGKILL -- of a
single shard worker or of the whole driver process -- restoring from the
last durable snapshot and replaying the remaining timeline produces exactly
the transcript an uninterrupted twin produces.  "Exactly" is checked on
every observable the paper's analysis reads: query answers and errors, QET,
the aggregate ``(t, |gamma_t|)`` update-pattern transcript and the finer
per-shard transcripts.

Also here: the key-rotation workflow fanned out through the process router
(each worker re-encrypts its arena rows in place; handles stay valid and
coordinator-side zero-copy reads decrypt under the new key only).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema
from repro.edb.router import ShardRouter
from repro.edb.shard_worker import ShardWorkerClient, ShardWorkerDied
from repro.edb.store import StoreIntegrityError
from repro.fleet import Deployment
from repro.query.ast import CountQuery
from repro.simulation.simulator import Simulation

SCHEMA = Schema(name="events", attributes=("key", "value"))
QUERY = CountQuery(table="events", label="Q1")


def _record(t: int, salt: int = 0) -> Record:
    return Record(
        values={"key": (t + salt) % 7, "value": t * 10 + salt},
        arrival_time=t,
        table="events",
    )


def _update_for(member_index: int, t: int) -> Record | None:
    """Deterministic per-member update stream (None = quiet tick)."""
    if (t + member_index) % 3 == 0:
        return None
    return _record(t, salt=member_index)


def _build_deployment(executor: str = "processes") -> Deployment:
    router = ShardRouter(
        [
            ObliDB(rng=np.random.default_rng(60 + index), simulate_encryption=True)
            for index in range(2)
        ],
        route_seed=9,
        executor=executor,
    )
    deployment = Deployment.build(
        SCHEMA, router, n_owners=2, strategy="dp-timer", period=5, seed=21
    )
    deployment.start(
        {name: [_record(0, salt=i)] for i, name in enumerate(deployment.owners)}
    )
    return deployment


def _drive(deployment: Deployment, start: int, stop: int) -> list:
    """Tick every member through [start, stop); query every 4 ticks."""
    observed = []
    for t in range(start, stop):
        for index, name in enumerate(deployment.owners):
            deployment.receive(name, t, _update_for(index, t))
        if t % 4 == 0:
            observation = deployment.query(QUERY, time=t)
            observed.append(
                (t, observation.answer, observation.l1_error, observation.qet_seconds)
            )
    return observed


def _transcripts(deployment: Deployment):
    return tuple(deployment.edb.update_history), deployment.edb.per_shard_observables()


@pytest.mark.parametrize("passphrase", [None, "resume-pw"])
def test_sigkilled_worker_deployment_restores_bit_identically(tmp_path, passphrase):
    """SIGKILL one shard worker mid-run; restore the whole deployment from
    its last snapshot; the replayed tail matches an uninterrupted twin on
    answers, QET, and the aggregate and per-shard update transcripts."""
    twin = _build_deployment()
    victim = _build_deployment()
    try:
        assert _drive(victim, 1, 9) == _drive(twin, 1, 9)

        victim.save(tmp_path / "snap", passphrase=passphrase)

        # The worker dies mid-fan-out; the failure is loud, not silent.
        client = victim.edb.shards[0]
        assert isinstance(client, ShardWorkerClient)
        client.process.kill()
        client.process.join(timeout=5.0)
        with pytest.raises(ShardWorkerDied):
            _drive(victim, 9, 12)  # dp-timer syncs at t=10
    finally:
        victim.close()

    restored = Deployment.restore(tmp_path / "snap", passphrase=passphrase)
    try:
        twin_tail = _drive(twin, 9, 17)
        restored_tail = _drive(restored, 9, 17)
        assert restored_tail == twin_tail
        assert _transcripts(restored) == _transcripts(twin)
        assert [o.current_time for o in restored.owners.values()] == [
            o.current_time for o in twin.owners.values()
        ]
    finally:
        restored.close()
        twin.close()


def test_supervised_worker_kill_heals_in_place_and_restores_with_views(tmp_path):
    """Kill a *supervised* shard worker mid-run: the fleet heals in place --
    no restore, no raised error -- and the tail matches an uninterrupted
    unsupervised twin on answers, QET, and the aggregate and per-shard
    transcripts, with a delta-maintained view registered on both sides.
    A mid-run snapshot taken *before* the kill then restores a deployment
    whose router re-registers the view and re-arms the supervisor."""

    def build(supervised: bool) -> Deployment:
        router = ShardRouter(
            [
                ObliDB(
                    rng=np.random.default_rng(60 + index), simulate_encryption=True
                )
                for index in range(2)
            ],
            route_seed=9,
            executor="processes",
            supervisor="on" if supervised else None,
        )
        deployment = Deployment.build(
            SCHEMA, router, n_owners=2, strategy="dp-timer", period=5, seed=21
        )
        deployment.start(
            {name: [_record(0, salt=i)] for i, name in enumerate(deployment.owners)}
        )
        deployment.edb.register_view(QUERY)
        return deployment

    twin = build(supervised=False)
    victim = build(supervised=True)
    try:
        assert _drive(victim, 1, 9) == _drive(twin, 1, 9)

        victim.save(tmp_path / "snap")

        # SIGKILL one worker; the next fan-out heals it from the
        # supervisor's own snapshot + journal instead of raising.
        victim.edb.shards[0].process.kill()
        victim.edb.shards[0].process.join(timeout=5.0)

        assert _drive(victim, 9, 17) == _drive(twin, 9, 17)
        assert _transcripts(victim) == _transcripts(twin)
        assert victim.health["recoveries"] >= 1
        assert victim.health["degraded_shards"] == 0
    finally:
        victim.close()

    restored = Deployment.restore(tmp_path / "snap")
    try:
        # The restore path re-registered the view and re-armed supervision.
        assert restored.edb.supervisor_mode == "on"
        assert restored.edb.registered_views == (QUERY,)
        twin_tail = _drive(twin, 17, 25)
        assert _drive(restored, 9, 25)[2:] == twin_tail
        assert _transcripts(restored) == _transcripts(twin)
    finally:
        restored.close()
        twin.close()


def test_wrong_passphrase_fails_closed(tmp_path):
    deployment = _build_deployment(executor="serial")
    try:
        _drive(deployment, 1, 5)
        deployment.save(tmp_path / "snap", passphrase="right")
    finally:
        deployment.close()

    with pytest.raises(StoreIntegrityError):
        Deployment.restore(tmp_path / "snap", passphrase="wrong")


# -- whole-process SIGKILL through the simulator ------------------------------

#: Shared builder module: the killed child, the uninterrupted reference and
#: the resuming parent all import the *same* configuration, so the halves of
#: the differential cannot drift apart.
_COMMON = textwrap.dedent(
    """
    from repro.core.strategies.flush import FlushPolicy
    from repro.simulation.experiment import (
        default_queries,
        make_backend,
        taxi_workloads,
    )
    from repro.simulation.simulator import Simulation, SimulationConfig

    def build():
        config = SimulationConfig(
            strategy="dp-timer",
            epsilon=0.5,
            timer_period=30,
            theta=15,
            flush=FlushPolicy(interval=300, size=5),
            query_interval=120,
            seed=6,
        )
        return Simulation(
            edb_factory=make_backend("oblidb", seed=2),
            workloads=taxi_workloads(scale=0.01, include_green=True, seed=11),
            queries=default_queries(),
            config=config,
        )
    """
)

#: Child driver: run with durable snapshots and SIGKILL itself right after
#: the Nth snapshot commits -- no cleanup, no atexit, exactly like a crash.
_DRIVER = textwrap.dedent(
    """
    import os, signal
    from repro.simulation.simulator import Simulation

    kill_after = int(os.environ["KILL_AFTER_SNAPSHOTS"])
    original = Simulation._persist
    count = [0]

    def kill_switch(self, time, ctx, store):
        original(self, time, ctx, store)
        count[0] += 1
        if count[0] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    Simulation._persist = kill_switch
    import driver_common

    driver_common.build().run(persist_dir=os.environ["PERSIST_DIR"])
    raise SystemExit("expected SIGKILL before completion")
    """
)


def _import_builder(tmp_path):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "driver_common", tmp_path / "driver_common.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build


def test_sigkilled_simulation_resumes_bit_identically(tmp_path):
    """SIGKILL the whole driver process mid-run (right after its 2nd durable
    snapshot); a fresh process resumes from the store and the final
    RunResult -- answers, errors, QET, timeline -- is identical to an
    uninterrupted twin's."""
    (tmp_path / "driver_common.py").write_text(_COMMON)
    (tmp_path / "driver.py").write_text(_DRIVER)
    persist_dir = tmp_path / "persist"

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (
            str(tmp_path),
            os.path.abspath("src"),
            env.get("PYTHONPATH", ""),
        )
        if part
    )
    env["PERSIST_DIR"] = str(persist_dir)
    env["KILL_AFTER_SNAPSHOTS"] = "2"
    proc = subprocess.run(
        [sys.executable, str(tmp_path / "driver.py")],
        env=env,
        capture_output=True,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
    # The kill left durable snapshots behind...
    assert (persist_dir / "snapshots").is_dir()

    build = _import_builder(tmp_path)
    reference = build().run()
    resumed = build().run(persist_dir=persist_dir)
    # ...and the resumed run replays the missing tail bit-identically.
    assert resumed.to_dict() == reference.to_dict()
    assert not persist_dir.exists()  # cleared after the successful finish


def test_simulator_crash_resume_matches_twin_including_per_shard(tmp_path):
    """In-process crash differential over a *sharded, process-executor* EDB:
    the resume must also replay the per-shard ``(t, |gamma|)`` transcripts,
    not just the aggregate result."""
    from repro.core.strategies.flush import FlushPolicy
    from repro.simulation.experiment import default_queries, taxi_workloads
    from repro.simulation.runner import make_sharded_backend
    from repro.simulation.simulator import SimulationConfig

    workloads = taxi_workloads(scale=0.01, include_green=False, seed=11)
    queries = default_queries()
    captured = {}

    class _Capture(Simulation):
        @staticmethod
        def _close_edb(ctx):
            captured["transcripts"] = (
                tuple(ctx.edb.update_history),
                ctx.edb.per_shard_observables(),
            )
            Simulation._close_edb(ctx)

    def build():
        config = SimulationConfig(
            strategy="dp-ant",
            epsilon=0.5,
            timer_period=30,
            theta=15,
            flush=FlushPolicy(interval=300, size=5),
            query_interval=120,
            seed=6,
        )
        return _Capture(
            edb_factory=make_sharded_backend(
                "oblidb",
                2,
                seed=2,
                shard_executor="processes",
                simulate_encryption=True,
            ),
            workloads=workloads,
            queries=queries,
            config=config,
        )

    reference = build().run()
    reference_transcripts = captured.pop("transcripts")

    class _Crash(RuntimeError):
        pass

    original = Simulation._persist
    count = [0]

    def crashing(self, time, ctx, store):
        original(self, time, ctx, store)
        count[0] += 1
        if count[0] == 2:
            raise _Crash()

    persist_dir = tmp_path / "persist"
    try:
        Simulation._persist = crashing
        with pytest.raises(_Crash):
            build().run(persist_dir=persist_dir)
    finally:
        Simulation._persist = original
    captured.pop("transcripts", None)

    resumed = build().run(persist_dir=persist_dir)
    assert resumed.to_dict() == reference.to_dict()
    assert captured.pop("transcripts") == reference_transcripts
    assert not persist_dir.exists()  # cleared on success


def test_resume_refuses_mismatched_configuration(tmp_path):
    """A persist dir written under one configuration must not silently seed
    a run with a different one -- the signature check fails closed."""
    from repro.core.strategies.flush import FlushPolicy
    from repro.simulation.experiment import (
        default_queries,
        make_backend,
        taxi_workloads,
    )
    from repro.simulation.simulator import SimulationConfig

    workloads = taxi_workloads(scale=0.01, include_green=False, seed=11)

    def build(seed):
        return Simulation(
            edb_factory=make_backend("oblidb", seed=2),
            workloads=workloads,
            queries=default_queries(),
            config=SimulationConfig(
                strategy="dp-timer",
                flush=FlushPolicy(interval=300, size=5),
                query_interval=120,
                seed=seed,
            ),
        )

    class _Stop(RuntimeError):
        pass

    original = Simulation._persist

    def stopping(self, time, ctx, store):
        original(self, time, ctx, store)
        raise _Stop()

    persist_dir = tmp_path / "persist"
    try:
        Simulation._persist = stopping
        with pytest.raises(_Stop):
            build(seed=6).run(persist_dir=persist_dir)
    finally:
        Simulation._persist = original

    with pytest.raises(StoreIntegrityError):
        build(seed=7).run(persist_dir=persist_dir)


# -- key rotation across the process router -----------------------------------


def _golden(client: ShardWorkerClient, cipher) -> list:
    """(handle, payload) pairs for every ciphertext the worker stores."""
    views = client.ciphertexts("events")
    return sorted(
        (view.handle, tuple(sorted(record.values.items())), record.arrival_time)
        for view, record in zip(views, cipher.decrypt_many(views))
    )


def test_router_key_rotation_preserves_payloads_and_rejects_old_key():
    router = ShardRouter(
        [
            ObliDB(rng=np.random.default_rng(80 + index), simulate_encryption=True)
            for index in range(2)
        ],
        route_seed=4,
        executor="processes",
    )
    try:
        router.setup([_record(t) for t in range(30)])
        old_ciphers = [client.cipher for client in router.shards]
        golden = [
            _golden(client, cipher)
            for client, cipher in zip(router.shards, old_ciphers)
        ]
        assert any(golden)  # the rotation below rewrites real rows

        router.rotate_key()

        for client, old_cipher, expected in zip(router.shards, old_ciphers, golden):
            new_cipher = client.cipher
            assert new_cipher.key != old_cipher.key
            assert _golden(client, new_cipher) == expected
            views = client.ciphertexts("events")
            with pytest.raises(ValueError):
                old_cipher.decrypt(views[0])
    finally:
        router.close()
