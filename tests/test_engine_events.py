"""Tests for the scheduled-event core (repro.engine)."""

from __future__ import annotations

import pytest

from repro.edb.records import Record
from repro.engine import Engine, EventScheduler


def rec(t, table="T"):
    return Record(values={"v": t}, arrival_time=t, table=table)


class TestEventScheduler:
    def test_orders_by_time_then_priority_then_insertion(self):
        scheduler = EventScheduler()
        scheduler.schedule(5, (1, 0), "late-periodic")
        scheduler.schedule(5, (0, 1), "stream-b")
        scheduler.schedule(3, (1, 0), "early-periodic")
        scheduler.schedule(5, (0, 0), "stream-a")
        scheduler.schedule(5, (0, 0), "stream-a-again")
        popped = [scheduler.pop().payload for _ in range(len(scheduler))]
        assert popped == [
            "early-periodic",
            "stream-a",
            "stream-a-again",
            "stream-b",
            "late-periodic",
        ]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventScheduler().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1, (0, 0), None)

    def test_counters_and_peek(self):
        scheduler = EventScheduler()
        assert scheduler.peek_time() is None
        scheduler.schedule(7, (0, 0), None)
        assert scheduler.peek_time() == 7
        scheduler.pop()
        assert scheduler.events_scheduled == 1
        assert scheduler.events_processed == 1


class TestEngine:
    def test_arrivals_are_delivered_with_their_records(self):
        engine = Engine(horizon=10)
        seen = []
        engine.add_stream(
            "T", lambda t, u: seen.append((t, u["v"] if u else None)),
            arrivals=[(2, rec(2)), (7, rec(7))],
        )
        engine.run()
        assert seen == [(2, 2), (7, 7)]

    def test_self_events_wake_stream_without_arrival(self):
        engine = Engine(horizon=9)
        seen = []
        engine.add_stream(
            "T", lambda t, u: seen.append((t, u)),
            next_self_event=lambda now: now + 3,
        )
        engine.run()
        assert seen == [(3, None), (6, None), (9, None)]

    def test_coinciding_self_event_and_arrival_tick_once(self):
        engine = Engine(horizon=6)
        seen = []
        engine.add_stream(
            "T", lambda t, u: seen.append((t, u is not None)),
            arrivals=[(3, rec(3))],
            next_self_event=lambda now: now + 3,
        )
        stats = engine.run()
        # One delivery at t=3 (carrying the record) and one at t=6.
        assert seen == [(3, True), (6, False)]
        assert stats.stale_skipped >= 1

    def test_streams_fire_before_periodics_within_a_tick(self):
        engine = Engine(horizon=4)
        order = []
        engine.add_stream(
            "A", lambda t, u: order.append(("A", t)), arrivals=[(2, rec(2, "A"))]
        )
        engine.add_stream(
            "B", lambda t, u: order.append(("B", t)), arrivals=[(2, rec(2, "B"))]
        )
        engine.add_periodic(2, lambda t: order.append(("Q", t)))
        engine.run()
        assert order == [("A", 2), ("B", 2), ("Q", 2), ("Q", 4)]

    def test_arrivals_beyond_horizon_are_dropped(self):
        engine = Engine(horizon=5)
        seen = []
        engine.add_stream(
            "T", lambda t, u: seen.append(t), arrivals=[(4, rec(4)), (6, rec(6))]
        )
        engine.run()
        assert seen == [4]

    def test_non_increasing_arrival_times_rejected(self):
        engine = Engine(horizon=10)
        engine.add_stream(
            "T", lambda t, u: None, arrivals=[(4, rec(4)), (4, rec(4))]
        )
        with pytest.raises(ValueError):
            engine.run()

    def test_next_event_in_the_past_rejected(self):
        engine = Engine(horizon=10)
        engine.add_stream("T", lambda t, u: None, next_self_event=lambda now: now)
        with pytest.raises(ValueError):
            engine.run()

    def test_run_only_once_and_no_late_registration(self):
        engine = Engine(horizon=1)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()
        with pytest.raises(RuntimeError):
            engine.add_stream("T", lambda t, u: None)
        with pytest.raises(RuntimeError):
            engine.add_periodic(1, lambda t: None)

    def test_periodic_interval_validation(self):
        engine = Engine(horizon=5)
        with pytest.raises(ValueError):
            engine.add_periodic(0, lambda t: None)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            Engine(horizon=-1)

    def test_skips_quiet_stretches(self):
        """A sparse stream over a huge horizon processes O(events), not O(horizon)."""
        engine = Engine(horizon=1_000_000)
        engine.add_stream("T", lambda t, u: None, arrivals=[(999_999, rec(999_999))])
        stats = engine.run()
        assert stats.ticks_delivered == 1
        assert stats.events_processed <= 3

    def test_arrivals_delivered_counts_only_arrival_wakeups(self):
        """Self-scheduled wake-ups do not count as arrivals."""
        engine = Engine(horizon=10)
        engine.add_stream(
            "T",
            lambda t, u: None,
            arrivals=[(2, rec(2)), (5, rec(5))],
            next_self_event=lambda now: now + 3,
        )
        stats = engine.run()
        assert stats.arrivals_delivered == 2
        assert stats.ticks_delivered > stats.arrivals_delivered
