"""Tests for the DPSync facade (Figure 1 wiring)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import DPSync
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.query.ast import CountQuery

SCHEMA = Schema("events", ("sensor_id", "value"))


def make_dpsync(strategy="dp-timer", **kwargs):
    return DPSync(
        SCHEMA,
        edb=ObliDB(),
        strategy=strategy,
        rng=np.random.default_rng(kwargs.pop("seed", 0)),
        **kwargs,
    )


class TestLifecycle:
    def test_receive_before_start_raises(self):
        dpsync = make_dpsync()
        with pytest.raises(RuntimeError):
            dpsync.receive(1, {"sensor_id": 1, "value": 2})

    def test_query_before_start_raises(self):
        dpsync = make_dpsync()
        with pytest.raises(RuntimeError):
            dpsync.query("SELECT COUNT(*) FROM events")

    def test_double_start_raises(self):
        dpsync = make_dpsync()
        dpsync.start([])
        with pytest.raises(RuntimeError):
            dpsync.start([])

    def test_start_with_mappings_and_records(self):
        dpsync = make_dpsync(strategy="sur")
        initial = [
            {"sensor_id": 1, "value": 0.5},
            Record(values={"sensor_id": 2, "value": 1.5}, table="events"),
        ]
        dpsync.start(initial)
        assert dpsync.owner.logical_size == 2

    def test_receive_accepts_mapping_record_and_none(self):
        dpsync = make_dpsync(strategy="sur")
        dpsync.start([])
        dpsync.receive(1, {"sensor_id": 1, "value": 1.0})
        dpsync.receive(2, Record(values={"sensor_id": 2, "value": 2.0}, arrival_time=2, table="events"))
        decision = dpsync.receive(3, None)
        assert not decision.should_sync
        assert dpsync.owner.logical_size == 2

    def test_record_for_other_table_rejected(self):
        dpsync = make_dpsync()
        dpsync.start([])
        with pytest.raises(ValueError):
            dpsync.receive(1, Record(values={"sensor_id": 1, "value": 1.0}, table="other"))

    def test_invalid_values_rejected(self):
        dpsync = make_dpsync()
        dpsync.start([])
        with pytest.raises(ValueError):
            dpsync.receive(1, {"sensor_id": 1})


class TestQuerying:
    def test_sql_and_ast_queries(self):
        dpsync = make_dpsync(strategy="sur")
        dpsync.start([])
        for t in range(1, 21):
            dpsync.receive(t, {"sensor_id": t % 3, "value": float(t)})
        sql_obs = dpsync.query("SELECT COUNT(*) FROM events")
        ast_obs = dpsync.query(CountQuery("events", label="count"))
        assert sql_obs.answer == 20
        assert ast_obs.answer == 20
        assert sql_obs.l1_error == 0.0

    def test_query_error_tracks_logical_gap_for_oto(self):
        dpsync = make_dpsync(strategy="oto")
        dpsync.start([{"sensor_id": 0, "value": 0.0}])
        for t in range(1, 31):
            dpsync.receive(t, {"sensor_id": t, "value": float(t)})
        observation = dpsync.query("SELECT COUNT(*) FROM events")
        assert observation.true_answer == 31
        assert observation.answer == 1
        assert observation.l1_error == 30.0
        assert dpsync.logical_gap == 30


class TestStrategyIntegration:
    def test_string_strategy_parameters_forwarded(self):
        dpsync = make_dpsync(
            strategy="dp-timer", epsilon=0.9, period=45, flush=FlushPolicy(100, 2)
        )
        assert isinstance(dpsync.strategy, DPTimerStrategy)
        assert dpsync.epsilon == 0.9
        assert dpsync.strategy.period == 45

    def test_prebuilt_strategy_instance_accepted(self):
        strategy = DPTimerStrategy(
            dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
            epsilon=0.3,
            period=10,
            rng=np.random.default_rng(5),
        )
        dpsync = DPSync(SCHEMA, edb=ObliDB(), strategy=strategy)
        assert dpsync.strategy is strategy
        assert dpsync.epsilon == 0.3

    def test_update_pattern_exposed(self):
        dpsync = make_dpsync(strategy="dp-timer", epsilon=1.0, period=10)
        dpsync.start([])
        for t in range(1, 51):
            dpsync.receive(t, {"sensor_id": 1, "value": float(t)})
        pattern = dpsync.update_pattern
        assert pattern.times[0] == 0
        assert all(t % 10 == 0 for t in pattern.times)

    def test_shared_edb_between_two_instances(self):
        edb = ObliDB()
        yellow = Schema("YellowCab", ("pickupID", "pickTime"))
        green = Schema("GreenTaxi", ("pickupID", "pickTime"))
        a = DPSync(yellow, edb=edb, strategy="sur", rng=np.random.default_rng(1))
        b = DPSync(green, edb=edb, strategy="sur", rng=np.random.default_rng(2))
        a.start([{"pickupID": 1, "pickTime": 0}])
        b.start([{"pickupID": 2, "pickTime": 0}])
        a.receive(1, {"pickupID": 3, "pickTime": 1})
        b.receive(1, {"pickupID": 4, "pickTime": 1})
        assert edb.table_size("YellowCab") == 2
        assert edb.table_size("GreenTaxi") == 2

    def test_make_dummy_and_make_record_helpers(self):
        dpsync = make_dpsync()
        dummy = dpsync.make_dummy(4)
        record = dpsync.make_record({"sensor_id": 1, "value": 2.0}, arrival_time=4)
        assert dummy.is_dummy and dummy.table == "events"
        assert not record.is_dummy and record.arrival_time == 4
