"""Shared fixtures for the DP-Sync reproduction test suite."""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.core.strategies.flush import FlushPolicy
from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.generator import build_growing_database, poisson_arrivals
from repro.workload.stream import GrowingDatabase


def _leaked_arena_segments() -> list[str]:
    """Shared-memory arena segments currently visible under /dev/shm."""
    shm = "/dev/shm"
    if not os.path.isdir(shm):  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in os.listdir(shm) if name.startswith("repro-arena-"))


@pytest.fixture(scope="session", autouse=True)
def no_leaked_arena_segments():
    """Fail the session if any shared-memory arena segment outlives it.

    Every :class:`~repro.edb.crypto.SharedCiphertextArena` creates a named
    POSIX segment; leaking one would fill ``/dev/shm`` across CI runs.  Any
    test (or worker process) that creates shared arenas must release them --
    this fixture is the backstop that keeps that contract honest.

    A ``gc.collect()`` runs before the final scan: arena cleanup is
    ``weakref.finalize``-based, so a dropped-but-uncollected arena is not a
    leak -- only a segment that survives both an explicit release *and* a
    collection is.
    """
    before = _leaked_arena_segments()
    yield
    gc.collect()
    leaked = [name for name in _leaked_arena_segments() if name not in before]
    assert not leaked, f"leaked shared-memory arena segments: {leaked}"


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def schema() -> Schema:
    """A small event-table schema used across unit tests."""
    return Schema(name="events", attributes=("sensor_id", "value"), key="sensor_id")


@pytest.fixture
def taxi_schema() -> Schema:
    """The Yellow Cab schema used by the paper's queries."""
    return Schema(name="YellowCab", attributes=("pickupID", "pickTime"))


@pytest.fixture
def dummy_factory(schema):
    """Dummy-record factory bound to the event schema."""
    return lambda t: make_dummy_record(schema, t)


@pytest.fixture
def sample_records(schema) -> list[Record]:
    """Ten real records for the event schema."""
    return [
        Record(
            values={"sensor_id": i % 3, "value": float(i)},
            arrival_time=i,
            table=schema.name,
        )
        for i in range(1, 11)
    ]


@pytest.fixture
def small_workload(schema, rng) -> GrowingDatabase:
    """A 300-step Poisson workload over the event schema."""
    arrivals = poisson_arrivals(300, rate=0.4, rng=rng)

    def sampler(t, generator):
        return {"sensor_id": int(generator.integers(0, 5)), "value": float(t)}

    return build_growing_database(schema, arrivals, sampler, rng)


@pytest.fixture
def taxi_workload(taxi_schema, rng) -> GrowingDatabase:
    """A 600-step taxi-shaped workload (pickupID / pickTime attributes)."""
    arrivals = poisson_arrivals(600, rate=0.45, rng=rng)

    def sampler(t, generator):
        return {"pickupID": int(generator.integers(1, 266)), "pickTime": t}

    return build_growing_database(taxi_schema, arrivals, sampler, rng)


@pytest.fixture
def no_flush() -> FlushPolicy:
    """A disabled flush policy."""
    return FlushPolicy.disabled()


@pytest.fixture
def fast_flush() -> FlushPolicy:
    """A small, frequent flush policy for tests."""
    return FlushPolicy(interval=50, size=5)
