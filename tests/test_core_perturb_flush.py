"""Tests for the Perturb operator (Algorithm 2) and the cache-flush policy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import LocalCache
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.perturb import perturb
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def filled_cache(n: int) -> LocalCache:
    cache = LocalCache(dummy_factory)
    for i in range(n):
        cache.write(
            Record(values={"sensor_id": i, "value": i}, arrival_time=i, table="events")
        )
    return cache


class TestPerturb:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            perturb(-1, 0.5, filled_cache(5), np.random.default_rng(0))

    def test_returns_roughly_count_records(self):
        rng = np.random.default_rng(1)
        sizes = [len(perturb(20, 2.0, filled_cache(100), rng)) for _ in range(200)]
        assert 18 <= float(np.mean(sizes)) <= 22

    def test_nonpositive_noisy_count_returns_nothing(self):
        """With count 0 and reasonably large noise, empty releases must occur."""
        rng = np.random.default_rng(2)
        outcomes = [len(perturb(0, 0.5, filled_cache(10), rng)) for _ in range(200)]
        assert any(size == 0 for size in outcomes)

    def test_pads_with_dummies_when_cache_short(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            cache = filled_cache(2)
            released = perturb(30, 5.0, cache, rng, current_time=7)
            if len(released) > 2:
                dummies = [r for r in released if r.is_dummy]
                assert len(dummies) == len(released) - 2
                assert all(d.arrival_time == 7 for d in dummies)
                break
        else:
            pytest.fail("perturb never released more than the cached records")

    def test_smaller_epsilon_gives_noisier_release_sizes(self):
        rng = np.random.default_rng(4)
        tight = [len(perturb(50, 5.0, filled_cache(200), rng)) for _ in range(200)]
        loose = [len(perturb(50, 0.1, filled_cache(200), rng)) for _ in range(200)]
        assert np.std(loose) > np.std(tight)

    @given(count=st.integers(min_value=0, max_value=100), epsilon=st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_release_size_is_never_negative(self, count, epsilon):
        rng = np.random.default_rng(5)
        released = perturb(count, epsilon, filled_cache(count), rng)
        assert len(released) >= 0


class TestFlushPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlushPolicy(interval=0)
        with pytest.raises(ValueError):
            FlushPolicy(interval=10, size=-1)

    def test_schedule(self):
        policy = FlushPolicy(interval=100, size=5)
        assert not policy.should_flush(0)
        assert not policy.should_flush(99)
        assert policy.should_flush(100)
        assert policy.should_flush(200)
        assert not policy.should_flush(150)

    def test_disabled_policy_never_flushes(self):
        policy = FlushPolicy.disabled()
        assert not any(policy.should_flush(t) for t in range(1, 1000))
        assert policy.dummy_volume_by(10_000) == 0

    def test_zero_size_never_flushes(self):
        policy = FlushPolicy(interval=10, size=0)
        assert not policy.should_flush(10)

    def test_eta_term(self):
        policy = FlushPolicy(interval=2000, size=15)
        assert policy.dummy_volume_by(1999) == 0
        assert policy.dummy_volume_by(2000) == 15
        assert policy.dummy_volume_by(43_200) == 15 * 21

    @given(
        interval=st.integers(min_value=1, max_value=5000),
        size=st.integers(min_value=0, max_value=50),
        horizon=st.integers(min_value=0, max_value=20_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_flush_count_matches_eta(self, interval, size, horizon):
        policy = FlushPolicy(interval=interval, size=size)
        flushes = sum(1 for t in range(1, horizon + 1) if policy.should_flush(t))
        assert flushes * size == policy.dummy_volume_by(horizon)
