"""Differential tests: the EDB fast path versus the reference implementation.

The vectorized fast path (columnar operators, array-backed batch-evicting
ORAM) claims to be *observationally identical* to the original pure-Python
implementation: at a fixed seed, both modes must produce bit-identical sync
times, update volumes, query answers and update-pattern leakage.  This suite
enforces that claim three ways:

1. every golden-trace cell (strategy x back-end) is replayed in both modes
   and the full :class:`RunResult` payloads are compared field by field;
2. engine runs with captured EDB instances compare the raw protocol
   transcripts -- ``update_history`` and its canonical leakage projection
   (:func:`repro.edb.leakage.update_pattern_observables`) -- plus the
   post-run query protocol (answers, simulated QET, records scanned);
3. direct executor-level checks compare every supported query shape,
   including the dict *iteration order* of grouped answers, which the L-DP
   back-end's per-group noise draws depend on.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.crypte import CryptEpsilon
from repro.edb.crypto import CIPHERTEXT_SIZE, CiphertextArena, RecordCipher
from repro.edb.leakage import update_pattern_observables
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.columnar import ColumnarExecutor
from repro.query.executor import PlaintextExecutor
from repro.query.predicates import (
    EqualityPredicate,
    NotPredicate,
    OrPredicate,
    RangePredicate,
)
from repro.simulation.runner import CellSpec, run_cell
from repro.simulation.simulator import Simulation, SimulationConfig
from repro.workload.scenarios import build_scenario, scenario_queries

from test_golden_traces import BACKENDS, STRATEGIES, golden_spec

EDB_CLASSES = {"oblidb": ObliDB, "crypte": CryptEpsilon}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_fast_and_reference_runs_are_bit_identical(strategy, backend):
    """Replaying one golden cell in both modes yields equal RunResults."""
    spec = golden_spec(strategy, backend)
    fast = run_cell(dataclasses.replace(spec, edb_mode="fast"))
    reference = run_cell(dataclasses.replace(spec, edb_mode="reference"))
    assert fast.to_dict() == reference.to_dict(), (
        f"fast/reference divergence for {strategy}/{backend}"
    )


def _run_with_captured_edb(backend: str, mode: str, strategy: str):
    """One small taxi run returning (RunResult, the EDB instance used)."""
    created = []
    edb_class = EDB_CLASSES[backend]

    def factory():
        edb = edb_class(rng=np.random.default_rng(7), mode=mode)
        created.append(edb)
        return edb

    workloads = build_scenario("taxi-june", seed=2020, scale=0.01)
    simulation = Simulation(
        edb_factory=factory,
        workloads=workloads,
        queries=list(scenario_queries("taxi-june")),
        config=SimulationConfig(strategy=strategy, query_interval=120, seed=3),
    )
    result = simulation.run()
    assert len(created) == 1
    return result, created[0]


@pytest.mark.parametrize("strategy", ["dp-timer", "dp-ant"])
@pytest.mark.parametrize("backend", BACKENDS)
def test_protocol_transcripts_match(strategy, backend):
    """Update history, leakage observables and query protocol agree."""
    fast_result, fast_edb = _run_with_captured_edb(backend, "fast", strategy)
    ref_result, ref_edb = _run_with_captured_edb(backend, "reference", strategy)

    assert fast_edb.edb_mode == "fast" and ref_edb.edb_mode == "reference"
    # Sync times and update volumes: the raw Setup/Update transcript.
    assert fast_edb.update_history == ref_edb.update_history
    # ... and its canonical leakage projection.
    assert update_pattern_observables(fast_edb.update_history) == (
        update_pattern_observables(ref_edb.update_history)
    )
    assert fast_edb.leakage_profile == ref_edb.leakage_profile
    assert fast_edb.outsourced_count == ref_edb.outsourced_count
    assert fast_edb.dummy_count == ref_edb.dummy_count
    assert fast_result.to_dict() == ref_result.to_dict()

    # The query protocol itself: answers, simulated QET, scan counts.  The
    # L-DP back-end draws per-answer noise, so its RNGs are re-seeded to a
    # common point before the comparison queries.
    fast_edb._rng = np.random.default_rng(99)
    ref_edb._rng = np.random.default_rng(99)
    horizon = fast_result.parameters["horizon"]
    for query in scenario_queries("taxi-june"):
        if not fast_edb.supports(query):
            assert not ref_edb.supports(query)
            continue
        fast_answer = fast_edb.query(query, time=horizon)
        ref_answer = ref_edb.query(query, time=horizon)
        assert fast_answer == ref_answer, query.name


# ---------------------------------------------------------------------------
# Ciphertext storage layouts: arena-backed vs object-backed
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", ["dp-timer", "dp-ant"])
def test_arena_and_object_ciphertext_runs_are_bit_identical(strategy, backend):
    """Golden cells replayed with real encryption agree across storage modes.

    ``edb_mode="fast"`` stores ciphertexts in the contiguous arena,
    ``"reference"`` in per-record objects; with encryption simulated the two
    replays must still produce byte-identical result payloads (the cipher's
    ``os.urandom`` nonces never feed any observable).
    """
    spec = dataclasses.replace(golden_spec(strategy, backend), simulate_encryption=True)
    arena_run = run_cell(dataclasses.replace(spec, edb_mode="fast"))
    object_run = run_cell(dataclasses.replace(spec, edb_mode="reference"))
    assert arena_run.to_dict() == object_run.to_dict(), (
        f"arena/object storage divergence for {strategy}/{backend}"
    )


def _run_encrypted(backend: str, mode: str):
    """One small encrypted taxi run returning (RunResult, the EDB used)."""
    created = []
    edb_class = EDB_CLASSES[backend]

    def factory():
        edb = edb_class(
            rng=np.random.default_rng(7), mode=mode, simulate_encryption=True
        )
        created.append(edb)
        return edb

    workloads = build_scenario("taxi-june", seed=2020, scale=0.01)
    simulation = Simulation(
        edb_factory=factory,
        workloads=workloads,
        queries=list(scenario_queries("taxi-june")),
        config=SimulationConfig(strategy="dp-timer", query_interval=120, seed=3),
    )
    result = simulation.run()
    assert len(created) == 1
    return result, created[0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_arena_ciphertexts_round_trip_and_transcripts_match(backend):
    """Arena views decrypt to the same logical records as object ciphertexts.

    Same seed, same workload: the arena-backed run and the object-backed run
    must agree on result payloads, protocol transcripts and -- after
    decrypting every stored ciphertext with each EDB's own cipher -- on the
    full logical content (values, arrival times, dummy flags) and the handle
    sequence.
    """
    arena_result, arena_edb = _run_encrypted(backend, "fast")
    object_result, object_edb = _run_encrypted(backend, "reference")

    assert arena_edb.ciphertext_store == "arena"
    assert object_edb.ciphertext_store == "objects"
    assert arena_result.to_dict() == object_result.to_dict()
    assert arena_edb.update_history == object_edb.update_history
    assert update_pattern_observables(arena_edb.update_history) == (
        update_pattern_observables(object_edb.update_history)
    )

    def logical(edb, table):
        rows = edb.cipher.decrypt_many(edb.ciphertexts(table))
        return [
            (dict(r.values), r.arrival_time, r.is_dummy, r.table) for r in rows
        ]

    table = "YellowCab"
    arena_ciphertexts = arena_edb.ciphertexts(table)
    object_ciphertexts = object_edb.ciphertexts(table)
    assert len(arena_ciphertexts) == len(object_ciphertexts) > 0
    assert [c.handle for c in arena_ciphertexts] == [
        c.handle for c in object_ciphertexts
    ]
    assert {len(bytes(c.ciphertext)) for c in arena_ciphertexts} == {CIPHERTEXT_SIZE}
    assert logical(arena_edb, table) == logical(object_edb, table)
    # Cross-layout decryptability: the single-record decrypt handles both.
    assert (
        arena_edb.cipher.decrypt(arena_ciphertexts[0]).values
        == arena_edb.cipher.decrypt_many([arena_ciphertexts[0]])[0].values
    )


@given(
    batch_sizes=st.lists(st.integers(1, 17), min_size=1, max_size=8),
    initial_capacity=st.integers(1, 8),
    compact_after=st.sets(st.integers(0, 7)),
)
@settings(max_examples=40, deadline=None)
def test_arena_growth_and_compaction_never_change_handles_or_contents(
    batch_sizes, initial_capacity, compact_after
):
    """Growth and compaction are invisible: handles and decrypts invariant.

    Batches are appended through the real bulk-encrypt path into a tiny arena
    (forcing repeated capacity doubling), with compaction interleaved at
    arbitrary points; previously-taken :class:`ArenaRecord` views must keep
    decrypting to the same records with the same handles throughout.
    """
    cipher = RecordCipher(key=b"h" * 32)
    arena = CiphertextArena(initial_capacity=initial_capacity)
    views = []
    expected = []
    next_value = 0
    for batch_index, size in enumerate(batch_sizes):
        records = [
            Record(values={"v": next_value + i}, arrival_time=batch_index, table="T")
            for i in range(size)
        ]
        next_value += size
        handles = cipher.encrypt_many_into(records, arena)
        assert handles == list(range(len(expected), len(expected) + size))
        expected.extend(records)
        views = arena.records()
        if batch_index in compact_after:
            arena.compact()
            assert arena.capacity == len(arena)
    assert len(arena) == len(expected)
    decrypted = cipher.decrypt_many(views)
    assert [r.values for r in decrypted] == [r.values for r in expected]
    assert [v.handle for v in views] == list(range(len(expected)))
    # A fresh set of views after all growth/compaction agrees with the old.
    assert [bytes(v.ciphertext) for v in arena.records()] == [
        bytes(v.ciphertext) for v in views
    ]


def _populated_executors():
    rng = np.random.default_rng(42)
    rows = [
        Record(
            values={"pickupID": int(rng.integers(1, 40)), "pickTime": int(t)},
            arrival_time=int(t),
            is_dummy=bool(rng.random() < 0.2),
            table="YellowCab",
        )
        for t in range(400)
    ]
    other = [
        Record(
            values={"pickupID": int(rng.integers(1, 40)), "fare": float(rng.random())},
            arrival_time=int(t),
            table="GreenTaxi",
        )
        for t in range(150)
    ]
    fast, reference = ColumnarExecutor(), PlaintextExecutor()
    for executor in (fast, reference):
        executor.append("YellowCab", rows)
        executor.append("GreenTaxi", other)
    return fast, reference


QUERY_SHAPES = [
    CountQuery(table="YellowCab", label="count-all"),
    CountQuery(
        table="YellowCab",
        predicate=RangePredicate("pickupID", 5, 20),
        label="count-range",
    ),
    CountQuery(
        table="YellowCab",
        predicate=OrPredicate(
            (EqualityPredicate("pickupID", 7), RangePredicate("pickTime", 0, 50))
        ),
        label="count-or",
    ),
    CountQuery(
        table="YellowCab",
        predicate=NotPredicate(EqualityPredicate("pickupID", 3)),
        label="count-not",
    ),
    CountQuery(
        table="YellowCab",
        predicate=EqualityPredicate("pickupID", "not-a-number"),
        label="count-type-mismatch",
    ),
    GroupByCountQuery(table="YellowCab", group_attribute="pickupID", label="group"),
    GroupByCountQuery(
        table="YellowCab",
        group_attribute="pickupID",
        predicate=RangePredicate("pickTime", 100, 300),
        label="group-filtered",
    ),
    JoinCountQuery(
        left_table="YellowCab",
        right_table="GreenTaxi",
        left_attribute="pickupID",
        right_attribute="pickupID",
        left_predicate=RangePredicate("pickTime", 0, 250),
        label="join",
    ),
    CountQuery(table="NoSuchTable", label="count-missing-table"),
]


@pytest.mark.parametrize("rewrite", [False, True], ids=["raw", "dummy-rewritten"])
@pytest.mark.parametrize("query", QUERY_SHAPES, ids=lambda q: q.name)
def test_executor_answers_and_stats_match(query, rewrite):
    """Vectorized answers equal row-at-a-time answers, stats included."""
    fast, reference = _populated_executors()
    fast_answer, fast_stats = fast.execute_with_stats(query, rewrite=rewrite)
    ref_answer, ref_stats = reference.execute_with_stats(query, rewrite=rewrite)
    assert fast_answer == ref_answer
    assert fast_stats == ref_stats


def test_grouped_answer_iteration_order_matches():
    """Grouped answers list groups in first-appearance order in both modes.

    This is load-bearing, not cosmetic: Crypt-epsilon draws one Laplace
    variate per group in answer order, so a different order would change
    noisy answers at a fixed seed.
    """
    fast, reference = _populated_executors()
    query = GroupByCountQuery(table="YellowCab", group_attribute="pickupID")
    fast_answer = fast.execute(query, rewrite=True)
    ref_answer = reference.execute(query, rewrite=True)
    assert list(fast_answer.items()) == list(ref_answer.items())
    assert all(type(key) is int for key in fast_answer)


def test_mixed_int_float_group_keys_keep_reference_types():
    """A group column mixing ints and floats must not float-promote int keys.

    Dict equality would hide ``2`` vs ``2.0`` (they compare equal), but JSON
    surfaces -- golden fixtures, grid checkpoints -- would diverge, so mixed
    columns take the row fallback and reproduce the reference key objects.
    """
    import json

    rows = [
        Record(values={"g": 2}, table="T"),
        Record(values={"g": 2}, table="T"),
        Record(values={"g": 3.5}, table="T"),
    ]
    fast, reference = ColumnarExecutor(), PlaintextExecutor()
    fast.append("T", rows)
    reference.append("T", rows)
    query = GroupByCountQuery(table="T", group_attribute="g")
    fast_answer = fast.execute(query)
    ref_answer = reference.execute(query)
    assert fast_answer == ref_answer
    assert json.dumps(fast_answer) == json.dumps(ref_answer)


def test_nan_group_keys_take_the_row_fallback():
    """NaN keys: np.unique would merge them, the row dict keeps them apart."""
    rows = [Record(values={"g": float("nan")}, table="T") for _ in range(3)]
    fast, reference = ColumnarExecutor(), PlaintextExecutor()
    fast.append("T", rows)
    reference.append("T", rows)
    query = GroupByCountQuery(table="T", group_attribute="g")
    fast_answer = fast.execute(query)
    ref_answer = reference.execute(query)
    assert len(fast_answer) == len(ref_answer) == 3
    assert list(fast_answer.values()) == list(ref_answer.values())


def test_unhashable_query_skips_the_plan_cache():
    """Predicates holding unhashable values still execute (uncached)."""
    rows = [Record(values={"x": i}, table="T") for i in range(4)]
    for executor in (ColumnarExecutor(), PlaintextExecutor()):
        executor.append("T", rows)
        query = CountQuery(table="T", predicate=EqualityPredicate("x", [1, 2]))
        assert executor.execute(query) == 0


def test_empty_or_predicate_rejects_all_rows():
    """any(()) is False: an empty OR matches nothing in both modes."""
    rows = [Record(values={"v": i}, table="T") for i in range(5)]
    fast, reference = ColumnarExecutor(), PlaintextExecutor()
    fast.append("T", rows)
    reference.append("T", rows)
    query = CountQuery(table="T", predicate=OrPredicate(()))
    assert fast.execute(query) == reference.execute(query) == 0


def test_fallback_covers_unsupported_columns():
    """Non-numeric columns transparently fall back to the row interpreter."""
    rows = [
        Record(values={"city": name, "n": i}, table="T")
        for i, name in enumerate(["nyc", "sf", "nyc", "la"])
    ]
    fast, reference = ColumnarExecutor(), PlaintextExecutor()
    fast.append("T", rows)
    reference.append("T", rows)
    query = GroupByCountQuery(table="T", group_attribute="city")
    assert fast.execute(query) == reference.execute(query) == {
        "nyc": 2,
        "sf": 1,
        "la": 1,
    }


def test_reference_mode_is_selectable_via_factory_flag():
    """The edb.base mode flag reaches the executor and the ORAM layer."""
    fast = ObliDB(storage_mode="oram", oram_capacity=64, mode="fast")
    reference = ObliDB(storage_mode="oram", oram_capacity=64, mode="reference")
    rows = [Record(values={"v": i}, table="T") for i in range(8)]
    fast.setup(rows)
    reference.setup(rows)
    from repro.edb.oram import PathORAM, ReferencePathORAM

    assert type(fast.oram_for("T")) is PathORAM
    assert type(reference.oram_for("T")) is ReferencePathORAM
    with pytest.raises(ValueError):
        ObliDB(mode="warp-speed")
