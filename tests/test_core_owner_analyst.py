"""Tests for the Owner and Analyst components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analyst import Analyst
from repro.core.owner import Owner
from repro.core.strategies.naive import SETStrategy, SURStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.edb.oblidb import ObliDB
from repro.edb.crypte import CryptEpsilon
from repro.edb.records import Record, Schema, make_dummy_record
from repro.query.ast import CountQuery, GroupByCountQuery
from repro.query.predicates import RangePredicate

SCHEMA = Schema("YellowCab", ("pickupID", "pickTime"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def record(i):
    return Record(
        values={"pickupID": (i % 265) + 1, "pickTime": i}, arrival_time=i, table=SCHEMA.name
    )


def make_owner(strategy=None, edb=None):
    edb = edb if edb is not None else ObliDB()
    strategy = strategy if strategy is not None else SURStrategy(dummy_factory)
    return Owner(schema=SCHEMA, strategy=strategy, edb=edb), edb


class TestOwnerLifecycle:
    def test_initialize_runs_setup_and_records_pattern(self):
        owner, edb = make_owner()
        owner.initialize([record(0), record(1)])
        assert edb.is_setup
        assert owner.update_pattern.as_tuples() == ((0, 2),)
        assert owner.logical_size == 2

    def test_tick_before_initialize_raises(self):
        owner, _ = make_owner()
        with pytest.raises(RuntimeError):
            owner.tick(1, record(1))

    def test_double_initialize_raises(self):
        owner, _ = make_owner()
        owner.initialize([])
        with pytest.raises(RuntimeError):
            owner.initialize([])

    def test_time_must_advance(self):
        owner, _ = make_owner()
        owner.initialize([])
        owner.tick(1, record(1))
        with pytest.raises(ValueError):
            owner.tick(1, record(2))
        with pytest.raises(ValueError):
            owner.tick(0, None)

    def test_record_for_wrong_table_rejected(self):
        owner, _ = make_owner()
        owner.initialize([])
        alien = Record(values={"pickupID": 1, "pickTime": 1}, table="GreenTaxi")
        with pytest.raises(ValueError):
            owner.tick(1, alien)

    def test_record_with_wrong_attributes_rejected(self):
        owner, _ = make_owner()
        owner.initialize([])
        malformed = Record(values={"pickupID": 1}, table=SCHEMA.name)
        with pytest.raises(ValueError):
            owner.tick(1, malformed)

    def test_update_pattern_tracks_synced_volumes(self):
        owner, edb = make_owner(strategy=SETStrategy(dummy_factory))
        owner.initialize([])
        for t in range(1, 11):
            owner.tick(t, record(t) if t % 2 == 0 else None)
        # SET synchronizes one record (real or dummy) every time unit.
        assert owner.update_pattern.volumes == (0,) + (1,) * 10
        assert edb.outsourced_count == 10
        assert edb.dummy_count == 5

    def test_logical_gap_and_outsourced_sizes(self):
        timer = DPTimerStrategy(
            dummy_factory,
            epsilon=1.0,
            period=10,
            flush=FlushPolicy.disabled(),
            rng=np.random.default_rng(0),
        )
        owner, edb = make_owner(strategy=timer)
        owner.initialize([])
        for t in range(1, 101):
            owner.tick(t, record(t))
        assert owner.logical_size == 100
        assert owner.outsourced_table_size == edb.table_size("YellowCab")
        assert owner.logical_gap == 100 - (edb.real_count)

    def test_second_owner_shares_edb_via_update(self):
        edb = ObliDB()
        first, _ = make_owner(edb=edb)
        first.initialize([record(0)])
        green_schema = Schema("GreenTaxi", ("pickupID", "pickTime"))
        second = Owner(
            schema=green_schema,
            strategy=SURStrategy(lambda t: make_dummy_record(green_schema, t)),
            edb=edb,
        )
        second.initialize(
            [Record(values={"pickupID": 2, "pickTime": 0}, table="GreenTaxi")]
        )
        assert edb.table_size("YellowCab") == 1
        assert edb.table_size("GreenTaxi") == 1


class TestAnalyst:
    def test_observation_records_error_and_qet(self):
        owner, edb = make_owner()
        records = [record(i) for i in range(50)]
        owner.initialize(records)
        analyst = Analyst(edb)
        query = CountQuery("YellowCab", RangePredicate("pickupID", 50, 100), label="Q1")
        observation = analyst.query(query, {"YellowCab": owner.logical_database}, time=5)
        assert observation.l1_error == 0.0
        assert observation.is_exact
        assert observation.qet_seconds > 0
        assert observation.query_name == "Q1"

    def test_error_reflects_unsynchronized_records(self):
        edb = ObliDB()
        owner, _ = make_owner(strategy=SURStrategy(dummy_factory), edb=edb)
        owner.initialize([record(i) for i in range(20)])
        analyst = Analyst(edb)
        # Simulate ten extra records the owner received but never synchronized
        # (as OTO would): ground truth includes them, the server does not.
        logical = list(owner.logical_database) + [record(100 + i) for i in range(10)]
        query = CountQuery("YellowCab", label="count-all")
        observation = analyst.query(query, {"YellowCab": logical}, time=9)
        assert observation.l1_error == 10.0

    def test_aggregation_helpers(self):
        edb = ObliDB()
        owner, _ = make_owner(edb=edb)
        owner.initialize([record(i) for i in range(10)])
        analyst = Analyst(edb)
        q1 = CountQuery("YellowCab", label="Q1")
        q2 = GroupByCountQuery("YellowCab", "pickupID", label="Q2")
        for t in (1, 2, 3):
            analyst.query(q1, {"YellowCab": owner.logical_database}, time=t)
            analyst.query(q2, {"YellowCab": owner.logical_database}, time=t)
        assert len(analyst.observations) == 6
        assert len(analyst.observations_for("Q1")) == 3
        assert analyst.mean_l1_error("Q1") == 0.0
        assert analyst.max_l1_error() == 0.0
        assert analyst.mean_qet("Q2") > 0.0

    def test_empty_analyst_aggregates_are_zero(self):
        analyst = Analyst(ObliDB())
        assert analyst.mean_l1_error() == 0.0
        assert analyst.max_l1_error("nope") == 0.0
        assert analyst.mean_qet() == 0.0

    def test_crypte_answers_are_noisy(self):
        edb = CryptEpsilon(query_epsilon=1.0, rng=np.random.default_rng(1))
        owner, _ = make_owner(edb=edb)
        owner.initialize([record(i) for i in range(100)])
        analyst = Analyst(edb)
        query = CountQuery("YellowCab", label="count-all")
        errors = [
            analyst.query(query, {"YellowCab": owner.logical_database}, time=t).l1_error
            for t in range(1, 30)
        ]
        assert any(e > 0 for e in errors)  # DP noise shows up as query error
