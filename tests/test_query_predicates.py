"""Tests for record predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.records import Record, Schema, make_dummy_record
from repro.query.predicates import (
    AndPredicate,
    EqualityPredicate,
    NotDummyPredicate,
    NotPredicate,
    OrPredicate,
    RangePredicate,
    TruePredicate,
)


def record(**values) -> Record:
    return Record(values=values, table="t")


class TestBasicPredicates:
    def test_true_predicate(self):
        assert TruePredicate().evaluate(record(a=1))

    def test_range_inclusive_bounds(self):
        predicate = RangePredicate("a", 10, 20)
        assert predicate.evaluate(record(a=10))
        assert predicate.evaluate(record(a=20))
        assert predicate.evaluate(record(a=15))
        assert not predicate.evaluate(record(a=9))
        assert not predicate.evaluate(record(a=21))

    def test_range_missing_attribute_is_false(self):
        assert not RangePredicate("missing", 0, 10).evaluate(record(a=5))

    def test_range_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            RangePredicate("a", 10, 5)

    def test_equality(self):
        predicate = EqualityPredicate("a", "x")
        assert predicate.evaluate(record(a="x"))
        assert not predicate.evaluate(record(a="y"))
        assert not predicate.evaluate(record(b="x"))

    def test_not_dummy(self):
        schema = Schema("t", ("a",))
        assert NotDummyPredicate().evaluate(record(a=1))
        assert not NotDummyPredicate().evaluate(make_dummy_record(schema))


class TestCombinators:
    def test_and(self):
        predicate = AndPredicate((RangePredicate("a", 0, 10), EqualityPredicate("b", 1)))
        assert predicate.evaluate(record(a=5, b=1))
        assert not predicate.evaluate(record(a=5, b=2))
        assert not predicate.evaluate(record(a=50, b=1))

    def test_or(self):
        predicate = OrPredicate((EqualityPredicate("a", 1), EqualityPredicate("a", 2)))
        assert predicate.evaluate(record(a=1))
        assert predicate.evaluate(record(a=2))
        assert not predicate.evaluate(record(a=3))

    def test_not(self):
        predicate = NotPredicate(EqualityPredicate("a", 1))
        assert not predicate.evaluate(record(a=1))
        assert predicate.evaluate(record(a=2))

    def test_operator_overloads(self):
        conjunction = RangePredicate("a", 0, 10) & EqualityPredicate("b", 1)
        disjunction = EqualityPredicate("a", 1) | EqualityPredicate("a", 2)
        negation = ~EqualityPredicate("a", 1)
        assert isinstance(conjunction, AndPredicate)
        assert isinstance(disjunction, OrPredicate)
        assert isinstance(negation, NotPredicate)
        assert conjunction.evaluate(record(a=3, b=1))
        assert disjunction.evaluate(record(a=2))
        assert negation.evaluate(record(a=5))

    def test_callable_shorthand(self):
        predicate = EqualityPredicate("a", 1)
        assert predicate(record(a=1))


class TestPredicateProperties:
    @given(
        low=st.integers(min_value=-1000, max_value=1000),
        span=st.integers(min_value=0, max_value=500),
        value=st.integers(min_value=-2000, max_value=2000),
    )
    @settings(max_examples=200, deadline=None)
    def test_range_matches_mathematical_definition(self, low, span, value):
        predicate = RangePredicate("a", low, low + span)
        assert predicate.evaluate(record(a=value)) == (low <= value <= low + span)

    @given(value=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_negation_is_complement(self, value):
        predicate = EqualityPredicate("a", 0)
        row = record(a=value)
        assert (~predicate).evaluate(row) == (not predicate.evaluate(row))
