"""Tests for the simulation clock and result containers."""

from __future__ import annotations

import pytest

from repro.simulation.clock import SimulationClock
from repro.simulation.results import QueryTrace, RunResult, TimePoint


class TestSimulationClock:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationClock(horizon=-1)
        with pytest.raises(ValueError):
            SimulationClock(horizon=10, query_interval=-2)

    def test_tick_and_horizon(self):
        clock = SimulationClock(horizon=3)
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]
        with pytest.raises(RuntimeError):
            clock.tick()

    def test_query_schedule(self):
        clock = SimulationClock(horizon=10, query_interval=3)
        query_times = [t for t in clock.iter_ticks() if clock.is_query_time()]
        assert query_times == [3, 6, 9]
        assert clock.query_times() == (3, 6, 9)

    def test_zero_interval_disables_queries(self):
        clock = SimulationClock(horizon=5, query_interval=0)
        assert not any(clock.is_query_time() for _ in clock.iter_ticks())
        assert clock.query_times() == ()

    def test_remaining(self):
        clock = SimulationClock(horizon=5)
        clock.tick()
        assert clock.remaining() == 4


class TestRunResult:
    @pytest.fixture
    def result(self):
        result = RunResult(strategy="dp-timer", backend="ObliDB", epsilon=0.5)
        for t, err, qet in [(360, 3.0, 1.0), (720, 5.0, 2.0), (1080, 1.0, 3.0)]:
            result.add_query_trace(QueryTrace(t, "Q1", err, qet))
            result.add_query_trace(QueryTrace(t, "Q2", err * 2, qet * 2))
        for i, t in enumerate((360, 720, 1080)):
            result.add_time_point(
                TimePoint(
                    time=t,
                    outsourced_records=100 * (i + 1),
                    dummy_records=10 * (i + 1),
                    storage_bytes=1e6 * (i + 1),
                    dummy_bytes=1e5 * (i + 1),
                    logical_gap=i,
                    logical_size=90 * (i + 1),
                )
            )
        return result

    def test_query_names_in_order(self, result):
        assert result.query_names() == ("Q1", "Q2")

    def test_per_query_aggregates(self, result):
        assert result.mean_l1_error("Q1") == pytest.approx(3.0)
        assert result.max_l1_error("Q1") == 5.0
        assert result.mean_qet("Q2") == pytest.approx(4.0)
        assert result.mean_l1_error("missing") == 0.0
        assert result.max_l1_error("missing") == 0.0
        assert result.mean_qet("missing") == 0.0

    def test_overall_aggregates(self, result):
        assert result.overall_mean_l1_error() == pytest.approx((3 + 5 + 1 + 6 + 10 + 2) / 6)
        assert result.overall_mean_qet() == pytest.approx((1 + 2 + 3 + 2 + 4 + 6) / 6)

    def test_timeline_aggregates(self, result):
        assert result.mean_logical_gap() == pytest.approx(1.0)
        assert result.total_data_megabytes() == pytest.approx(3.0)
        assert result.dummy_data_megabytes() == pytest.approx(0.3)
        final = result.final_time_point()
        assert final is not None and final.time == 1080

    def test_series_accessors(self, result):
        assert result.error_series("Q1") == ((360, 3.0), (720, 5.0), (1080, 1.0))
        assert result.qet_series("Q2") == ((360, 2.0), (720, 4.0), (1080, 6.0))
        sizes = result.size_series()
        assert sizes[0] == (360, 1.0, 0.1)

    def test_summary_keys(self, result):
        summary = result.summary()
        assert "Q1/mean_l1" in summary
        assert "Q2/mean_qet" in summary
        assert summary["total_data_mb"] == pytest.approx(3.0)

    def test_empty_result(self):
        empty = RunResult(strategy="sur", backend="ObliDB", epsilon=float("inf"))
        assert empty.overall_mean_l1_error() == 0.0
        assert empty.mean_logical_gap() == 0.0
        assert empty.final_time_point() is None
        assert empty.total_data_megabytes() == 0.0
