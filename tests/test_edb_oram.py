"""Tests for the Path ORAM simulators, including the obliviousness property,
fast-vs-reference differential invariants and the batch-eviction fast path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.oram import PathORAM, ReferencePathORAM, make_oram


@pytest.fixture(params=["fast", "reference"])
def oram_cls(request):
    """Both implementations satisfy the same public contract."""
    return PathORAM if request.param == "fast" else ReferencePathORAM


class TestPathORAMBasics:
    def test_validation(self, oram_cls):
        with pytest.raises(ValueError):
            oram_cls(capacity=0)
        with pytest.raises(ValueError):
            oram_cls(capacity=16, bucket_size=0)

    def test_write_then_read(self, oram_cls):
        oram = oram_cls(capacity=64, rng=np.random.default_rng(0))
        oram.write(1, "alpha")
        oram.write(2, "beta")
        assert oram.read(1) == "alpha"
        assert oram.read(2) == "beta"
        assert len(oram) == 2

    def test_overwrite(self, oram_cls):
        oram = oram_cls(capacity=16, rng=np.random.default_rng(1))
        oram.write(5, "old")
        oram.write(5, "new")
        assert oram.read(5) == "new"
        assert len(oram) == 1

    def test_missing_block_raises(self, oram_cls):
        oram = oram_cls(capacity=16, rng=np.random.default_rng(2))
        with pytest.raises(KeyError):
            oram.read(99)

    def test_capacity_enforced(self, oram_cls):
        oram = oram_cls(capacity=4, rng=np.random.default_rng(3))
        for i in range(4):
            oram.write(i, i)
        with pytest.raises(ValueError):
            oram.write(100, "overflow")

    def test_batch_capacity_enforced(self, oram_cls):
        oram = oram_cls(capacity=4, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            oram.write_many((i, i) for i in range(5))
        # The overflow check is atomic in both implementations: no partial
        # writes and no RNG consumption, so the modes stay in lockstep even
        # across a rejected batch.
        assert len(oram) == 0
        assert oram.stats.accesses == 0
        oram.write_many((i, i) for i in range(4))
        assert oram.read(3) == 3

    def test_contains(self, oram_cls):
        oram = oram_cls(capacity=16, rng=np.random.default_rng(4))
        oram.write(3, "x")
        assert 3 in oram
        assert 4 not in oram

    def test_read_all_returns_everything(self, oram_cls):
        oram = oram_cls(capacity=128, rng=np.random.default_rng(5))
        expected = {}
        for i in range(100):
            oram.write(i, f"value-{i}")
            expected[i] = f"value-{i}"
        assert oram.read_all() == expected

    def test_many_accesses_keep_stash_small(self, oram_cls):
        oram = oram_cls(capacity=256, bucket_size=4, rng=np.random.default_rng(6))
        for i in range(200):
            oram.write(i, i)
        rng = np.random.default_rng(7)
        for _ in range(500):
            block = int(rng.integers(0, 200))
            assert oram.read(block) == block
        # Path ORAM stash stays small with overwhelming probability.
        assert oram.stats.stash_peak < 120

    def test_stats_counters_increase(self, oram_cls):
        oram = oram_cls(capacity=32, rng=np.random.default_rng(8))
        oram.write(1, "a")
        before = (oram.stats.blocks_read, oram.stats.blocks_written)
        oram.read(1)
        after = (oram.stats.blocks_read, oram.stats.blocks_written)
        assert after[0] > before[0]
        assert after[1] > before[1]
        assert oram.stats.accesses == 2

    def test_stats_reset(self, oram_cls):
        oram = oram_cls(capacity=32, rng=np.random.default_rng(9))
        oram.write(1, "a")
        oram.stats.reset()
        assert oram.stats.accesses == 0
        assert oram.stats.blocks_read == 0

    def test_make_oram_factory(self):
        assert type(make_oram(16, mode="fast")) is PathORAM
        assert type(make_oram(16, mode="reference")) is ReferencePathORAM
        with pytest.raises(ValueError):
            make_oram(16, mode="bogus")


class TestObliviousness:
    def test_paths_are_uniform_regardless_of_access_sequence(self):
        """Accessing one hot block vs. scanning all blocks touches leaves with
        statistically indistinguishable frequencies (the ORAM property)."""
        rng = np.random.default_rng(10)
        oram_hot = PathORAM(capacity=64, rng=np.random.default_rng(11))
        oram_scan = PathORAM(capacity=64, rng=np.random.default_rng(12))
        for i in range(32):
            oram_hot.write(i, i)
            oram_scan.write(i, i)

        hot_leaves = []
        scan_leaves = []
        for step in range(800):
            oram_hot.read(0)  # always the same logical block
            hot_leaves.append(oram_hot.last_path[-1])
            oram_scan.read(step % 32)  # round-robin over all blocks
            scan_leaves.append(oram_scan.last_path[-1])

        # Compare the leaf-visit distributions: they should both be close to
        # uniform, so their means and spreads should agree within tolerance.
        hot_counts = np.bincount(np.array(hot_leaves) - min(hot_leaves), minlength=8)
        scan_counts = np.bincount(np.array(scan_leaves) - min(scan_leaves), minlength=8)
        hot_fracs = hot_counts / hot_counts.sum()
        scan_fracs = scan_counts / scan_counts.sum()
        assert np.abs(hot_fracs - scan_fracs).max() < 0.12

    def test_same_block_maps_to_fresh_leaf_each_access(self):
        oram = PathORAM(capacity=64, rng=np.random.default_rng(13))
        oram.write(7, "x")
        leaves = set()
        for _ in range(50):
            oram.read(7)
            leaves.add(oram.last_path[-1])
        assert len(leaves) > 5

    @given(ops=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_read_returns_last_written_value(self, ops):
        oram = PathORAM(capacity=64, rng=np.random.default_rng(14))
        shadow: dict[int, int] = {}
        for i, block in enumerate(ops):
            oram.write(block, i)
            shadow[block] = i
        for block, expected in shadow.items():
            assert oram.read(block) == expected


class TestBatchEviction:
    """write_many must evict once per batch, not once per item."""

    def test_batch_touches_fewer_nodes_than_sequential(self):
        batch = [(i, f"v{i}") for i in range(50)]
        fast = PathORAM(capacity=4096, rng=np.random.default_rng(21))
        reference = ReferencePathORAM(capacity=4096, rng=np.random.default_rng(21))
        fast.write_many(batch)
        reference.write_many(batch)
        # The sequential reference touches one full root-to-leaf path per
        # item; the combined eviction touches each distinct node once, so a
        # 50-item batch must come in strictly below 50 paths' worth of nodes.
        per_path = fast.height + 1
        assert reference.stats.nodes_touched == len(batch) * per_path
        assert fast.stats.nodes_touched < reference.stats.nodes_touched
        assert fast.stats.nodes_touched >= per_path  # at least one full path

    def test_single_eviction_per_batch(self):
        """Every touched node is read and written back exactly once."""
        oram = PathORAM(capacity=1024, bucket_size=4, rng=np.random.default_rng(22))
        oram.write_many((i, i) for i in range(64))
        assert oram.stats.blocks_read == oram.stats.nodes_touched * 4
        assert oram.stats.blocks_written == oram.stats.nodes_touched * 4

    def test_batched_and_sequential_positions_agree(self):
        """Identical RNG consumption: one combined eviction does not change
        the position-map evolution relative to per-item accesses."""
        batch = [(i, i * 11) for i in range(40)]
        fast = PathORAM(capacity=256, rng=np.random.default_rng(23))
        reference = ReferencePathORAM(capacity=256, rng=np.random.default_rng(23))
        fast.write_many(batch)
        reference.write_many(batch)
        assert fast._position_map == reference._position_map

    def test_empty_batch_is_a_noop(self):
        oram = PathORAM(capacity=16, rng=np.random.default_rng(24))
        oram.write_many([])
        assert oram.stats.accesses == 0
        assert len(oram) == 0

    def test_duplicate_ids_in_one_batch_last_write_wins(self):
        oram = PathORAM(capacity=16, rng=np.random.default_rng(25))
        oram.write_many([(3, "first"), (3, "second")])
        assert oram.read(3) == "second"
        assert len(oram) == 1


def _blocks_on_assigned_paths(oram: PathORAM) -> bool:
    """Structural invariant: every tree-resident block lies on the root-to-
    leaf path of its assigned leaf, and stash+tree partition the block set."""
    seen: list[int] = []
    for node, slot in np.argwhere(oram._slot_ids >= 0):
        block_id = int(oram._slot_ids[node, slot])
        leaf = int(oram._slot_leaves[node, slot])
        assert oram._position_map[block_id] == leaf
        if int(node) not in oram._path_nodes(leaf):
            return False
        seen.append(block_id)
    seen.extend(oram._stash.keys())
    return sorted(seen) == sorted(oram._position_map)


class TestInterleavedProperty:
    """Hypothesis: arbitrary interleavings of batched/single writes and reads."""

    @given(
        plan=st.lists(
            st.one_of(
                st.tuples(st.just("write"), st.integers(0, 40)),
                st.tuples(st.just("read"), st.integers(0, 40)),
                st.tuples(
                    st.just("batch"),
                    st.lists(st.integers(0, 40), min_size=1, max_size=12),
                ),
            ),
            min_size=1,
            max_size=60,
        ),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleavings_preserve_invariants(self, plan, seed):
        fast = PathORAM(capacity=64, rng=np.random.default_rng(seed))
        reference = ReferencePathORAM(capacity=64, rng=np.random.default_rng(seed))
        shadow: dict[int, int] = {}
        stamp = 0
        for action in plan:
            if action[0] == "write":
                stamp += 1
                fast.write(action[1], stamp)
                reference.write(action[1], stamp)
                shadow[action[1]] = stamp
            elif action[0] == "batch":
                items = []
                for block in action[1]:
                    stamp += 1
                    items.append((block, stamp))
                    shadow[block] = stamp
                fast.write_many(items)
                reference.write_many(items)
            else:
                block = action[1]
                if block in shadow:
                    assert fast.read(block) == shadow[block]
                    assert reference.read(block) == shadow[block]
                else:
                    with pytest.raises(KeyError):
                        fast.read(block)
                    with pytest.raises(KeyError):
                        reference.read(block)
            # Stash bound: greedy eviction always fills the root (which lies
            # on every path and was emptied) before leaving anything in the
            # stash, so a non-empty post-eviction stash implies a full root
            # bucket -- a broken eviction that places nothing fails here
            # immediately.  The absolute bound is generous for 41 blocks in
            # a 64-leaf tree (typical post-eviction stash is 0-3).
            if fast.stash_size() > 0:
                assert (fast._slot_ids[0] >= 0).all()
            assert fast.stash_size() <= 20
            # Every block is either in the tree (on its path) or stashed.
            assert _blocks_on_assigned_paths(fast)
            # Identical RNG consumption keeps the logical views in lockstep.
            assert fast._position_map == reference._position_map
        assert fast.read_all() == reference.read_all() == {
            block: value for block, value in shadow.items()
        }
