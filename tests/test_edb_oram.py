"""Tests for the Path ORAM simulator, including its obliviousness property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.oram import PathORAM


class TestPathORAMBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            PathORAM(capacity=0)
        with pytest.raises(ValueError):
            PathORAM(capacity=16, bucket_size=0)

    def test_write_then_read(self):
        oram = PathORAM(capacity=64, rng=np.random.default_rng(0))
        oram.write(1, "alpha")
        oram.write(2, "beta")
        assert oram.read(1) == "alpha"
        assert oram.read(2) == "beta"
        assert len(oram) == 2

    def test_overwrite(self):
        oram = PathORAM(capacity=16, rng=np.random.default_rng(1))
        oram.write(5, "old")
        oram.write(5, "new")
        assert oram.read(5) == "new"
        assert len(oram) == 1

    def test_missing_block_raises(self):
        oram = PathORAM(capacity=16, rng=np.random.default_rng(2))
        with pytest.raises(KeyError):
            oram.read(99)

    def test_capacity_enforced(self):
        oram = PathORAM(capacity=4, rng=np.random.default_rng(3))
        for i in range(4):
            oram.write(i, i)
        with pytest.raises(ValueError):
            oram.write(100, "overflow")

    def test_contains(self):
        oram = PathORAM(capacity=16, rng=np.random.default_rng(4))
        oram.write(3, "x")
        assert 3 in oram
        assert 4 not in oram

    def test_read_all_returns_everything(self):
        oram = PathORAM(capacity=128, rng=np.random.default_rng(5))
        expected = {}
        for i in range(100):
            oram.write(i, f"value-{i}")
            expected[i] = f"value-{i}"
        assert oram.read_all() == expected

    def test_many_accesses_keep_stash_small(self):
        oram = PathORAM(capacity=256, bucket_size=4, rng=np.random.default_rng(6))
        for i in range(200):
            oram.write(i, i)
        rng = np.random.default_rng(7)
        for _ in range(500):
            block = int(rng.integers(0, 200))
            assert oram.read(block) == block
        # Path ORAM stash stays small with overwhelming probability.
        assert oram.stats.stash_peak < 120

    def test_stats_counters_increase(self):
        oram = PathORAM(capacity=32, rng=np.random.default_rng(8))
        oram.write(1, "a")
        before = (oram.stats.blocks_read, oram.stats.blocks_written)
        oram.read(1)
        after = (oram.stats.blocks_read, oram.stats.blocks_written)
        assert after[0] > before[0]
        assert after[1] > before[1]
        assert oram.stats.accesses == 2

    def test_stats_reset(self):
        oram = PathORAM(capacity=32, rng=np.random.default_rng(9))
        oram.write(1, "a")
        oram.stats.reset()
        assert oram.stats.accesses == 0
        assert oram.stats.blocks_read == 0


class TestObliviousness:
    def test_paths_are_uniform_regardless_of_access_sequence(self):
        """Accessing one hot block vs. scanning all blocks touches leaves with
        statistically indistinguishable frequencies (the ORAM property)."""
        rng = np.random.default_rng(10)
        oram_hot = PathORAM(capacity=64, rng=np.random.default_rng(11))
        oram_scan = PathORAM(capacity=64, rng=np.random.default_rng(12))
        for i in range(32):
            oram_hot.write(i, i)
            oram_scan.write(i, i)

        hot_leaves = []
        scan_leaves = []
        for step in range(800):
            oram_hot.read(0)  # always the same logical block
            hot_leaves.append(oram_hot.last_path[-1])
            oram_scan.read(step % 32)  # round-robin over all blocks
            scan_leaves.append(oram_scan.last_path[-1])

        # Compare the leaf-visit distributions: they should both be close to
        # uniform, so their means and spreads should agree within tolerance.
        hot_counts = np.bincount(np.array(hot_leaves) - min(hot_leaves), minlength=8)
        scan_counts = np.bincount(np.array(scan_leaves) - min(scan_leaves), minlength=8)
        hot_fracs = hot_counts / hot_counts.sum()
        scan_fracs = scan_counts / scan_counts.sum()
        assert np.abs(hot_fracs - scan_fracs).max() < 0.12

    def test_same_block_maps_to_fresh_leaf_each_access(self):
        oram = PathORAM(capacity=64, rng=np.random.default_rng(13))
        oram.write(7, "x")
        leaves = set()
        for _ in range(50):
            oram.read(7)
            leaves.add(oram.last_path[-1])
        assert len(leaves) > 5

    @given(ops=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_read_returns_last_written_value(self, ops):
        oram = PathORAM(capacity=64, rng=np.random.default_rng(14))
        shadow: dict[int, int] = {}
        for i, block in enumerate(ops):
            oram.write(block, i)
            shadow[block] = i
        for block, expected in shadow.items():
            assert oram.read(block) == expected
