"""Property-based tests over synchronization strategies.

These invariants must hold for *any* arrival stream and any (sane) parameter
choice:

1. conservation: records received = records uploaded + records still cached;
2. no fabrication: the server never receives a real record it was not given;
3. order preservation (FIFO): real records reach the server in arrival order;
4. dummy hygiene: dummies appear only as padding, never in the logical DB;
5. privacy accounting: the composed epsilon never exceeds the configured one;
6. SET/OTO update patterns are functions of time only;
7. payload independence: for a fixed (seed, parameters), the DP strategies'
   update patterns depend on the arrival *times* only through the DP
   mechanisms -- substituting every record payload leaves the emitted
   pattern identical (the paper's core guarantee: the server-visible
   pattern leaks nothing about record contents).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.naive import OTOStrategy, SETStrategy, SURStrategy
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def record(t):
    return Record(values={"sensor_id": t % 9, "value": float(t)}, arrival_time=t, table="events")


arrival_streams = st.lists(st.booleans(), min_size=1, max_size=300)

strategy_builders = st.sampled_from(
    [
        lambda seed: SURStrategy(dummy_factory, rng=np.random.default_rng(seed)),
        lambda seed: OTOStrategy(dummy_factory, rng=np.random.default_rng(seed)),
        lambda seed: SETStrategy(dummy_factory, rng=np.random.default_rng(seed)),
        lambda seed: DPTimerStrategy(
            dummy_factory, epsilon=0.5, period=7,
            flush=FlushPolicy(interval=40, size=3), rng=np.random.default_rng(seed),
        ),
        lambda seed: DPANTStrategy(
            dummy_factory, epsilon=0.5, theta=5,
            flush=FlushPolicy(interval=40, size=3), rng=np.random.default_rng(seed),
        ),
    ]
)


def run(strategy, arrivals, initial=0):
    uploads: list[Record] = []
    gamma0 = strategy.setup([record(0) for _ in range(initial)])
    uploads.extend(gamma0)
    for t, arrived in enumerate(arrivals, start=1):
        decision = strategy.step(t, record(t) if arrived else None)
        uploads.extend(decision.records)
    return uploads


@given(builder=strategy_builders, arrivals=arrival_streams, seed=st.integers(0, 1000))
@settings(max_examples=120, deadline=None)
def test_conservation_of_real_records(builder, arrivals, seed):
    strategy = builder(seed)
    uploads = run(strategy, arrivals)
    uploaded_real = sum(1 for r in uploads if not r.is_dummy)
    received = sum(arrivals)
    assert uploaded_real + strategy.logical_gap == received
    assert uploaded_real == strategy.synced_real_total
    assert strategy.logical_gap >= 0


@given(builder=strategy_builders, arrivals=arrival_streams, seed=st.integers(0, 1000))
@settings(max_examples=120, deadline=None)
def test_no_fabricated_real_records(builder, arrivals, seed):
    strategy = builder(seed)
    uploads = run(strategy, arrivals)
    arrival_times = {t for t, arrived in enumerate(arrivals, start=1) if arrived}
    for uploaded in uploads:
        if not uploaded.is_dummy:
            assert uploaded.arrival_time in arrival_times or uploaded.arrival_time == 0


@given(builder=strategy_builders, arrivals=arrival_streams, seed=st.integers(0, 1000))
@settings(max_examples=120, deadline=None)
def test_fifo_order_preserved(builder, arrivals, seed):
    strategy = builder(seed)
    uploads = run(strategy, arrivals)
    real_times = [r.arrival_time for r in uploads if not r.is_dummy]
    assert real_times == sorted(real_times)


@given(builder=strategy_builders, arrivals=arrival_streams, seed=st.integers(0, 1000))
@settings(max_examples=120, deadline=None)
def test_privacy_budget_never_exceeded(builder, arrivals, seed):
    strategy = builder(seed)
    run(strategy, arrivals)
    if strategy.epsilon in (0.0, float("inf")):
        return
    assert strategy.accountant.total_epsilon() <= strategy.epsilon + 1e-9


@given(arrivals=arrival_streams)
@settings(max_examples=80, deadline=None)
def test_set_volume_sequence_depends_only_on_time(arrivals):
    strategy = SETStrategy(dummy_factory)
    strategy.setup([])
    volumes = [strategy.step(t, record(t) if a else None).volume
               for t, a in enumerate(arrivals, start=1)]
    assert volumes == [1] * len(arrivals)


# -- payload independence (the paper's core DP-Sync guarantee) ----------------

def _payload_record(t: int, variant: int) -> Record:
    """Schema-conformant payloads that differ completely between variants."""
    if variant == 0:
        values = {"sensor_id": t % 9, "value": float(t)}
    else:
        values = {"sensor_id": (t * 31 + 5) % 9, "value": float(10_000 - 3 * t)}
    return Record(values=values, arrival_time=t, table="events")


def _update_pattern(strategy, arrivals, variant, initial=0):
    """The server-visible pattern: (time, synced?, volume, #real) per step."""
    gamma0 = strategy.setup([_payload_record(0, variant) for _ in range(initial)])
    pattern = [(0, len(gamma0), sum(1 for r in gamma0 if not r.is_dummy))]
    for t, arrived in enumerate(arrivals, start=1):
        update = _payload_record(t, variant) if arrived else None
        decision = strategy.step(t, update)
        pattern.append(
            (
                t,
                decision.should_sync,
                decision.volume,
                sum(1 for r in decision.records if not r.is_dummy),
                decision.reason,
            )
        )
    return pattern


dp_strategy_builders = st.sampled_from(
    [
        lambda seed, period, theta: DPTimerStrategy(
            dummy_factory, epsilon=0.5, period=period,
            flush=FlushPolicy(interval=40, size=3), rng=np.random.default_rng(seed),
        ),
        lambda seed, period, theta: DPANTStrategy(
            dummy_factory, epsilon=0.5, theta=theta,
            flush=FlushPolicy(interval=40, size=3), rng=np.random.default_rng(seed),
        ),
    ]
)


@given(
    builder=dp_strategy_builders,
    arrivals=arrival_streams,
    seed=st.integers(0, 1000),
    period=st.integers(1, 20),
    theta=st.integers(0, 12),
    initial=st.integers(0, 5),
)
@settings(max_examples=120, deadline=None)
def test_dp_update_pattern_invariant_under_payload_substitution(
    builder, arrivals, seed, period, theta, initial
):
    """Fixed (seed, params): record contents never influence the pattern.

    Two streams with identical arrival times but completely different record
    payloads must produce identical update patterns -- sync times, volumes,
    real/dummy splits and trigger reasons.  This is the property behind the
    paper's DP guarantee: the mechanisms read only arrival counts, never
    record values.
    """
    pattern_a = _update_pattern(builder(seed, period, theta), arrivals, 0, initial)
    pattern_b = _update_pattern(builder(seed, period, theta), arrivals, 1, initial)
    assert pattern_a == pattern_b


@given(arrivals=arrival_streams, seed=st.integers(0, 500))
@settings(max_examples=80, deadline=None)
def test_dp_timer_sync_times_are_period_multiples(arrivals, seed):
    strategy = DPTimerStrategy(
        dummy_factory, epsilon=0.5, period=5,
        flush=FlushPolicy.disabled(), rng=np.random.default_rng(seed),
    )
    strategy.setup([])
    for t, arrived in enumerate(arrivals, start=1):
        decision = strategy.step(t, record(t) if arrived else None)
        if decision.should_sync:
            assert t % 5 == 0
