"""Tests for the named-scenario registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query.ast import GroupByCountQuery
from repro.workload.scenarios import (
    Scenario,
    build_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_queries,
)
from repro.workload.stream import GrowingDatabase

EXPECTED_BUILTINS = {
    "taxi-june",
    "taxi-yellow",
    "poisson",
    "diurnal",
    "bursty",
    "sparse",
    "heavy-traffic",
    "multi-table-skew",
}


class TestRegistry:
    def test_builtins_registered(self):
        names = {s.name for s in list_scenarios()}
        assert EXPECTED_BUILTINS <= names

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_register_rejects_duplicates(self):
        scenario = get_scenario("poisson")
        with pytest.raises(ValueError):
            register_scenario(scenario)
        # replace=True is the escape hatch (re-register the same object).
        assert register_scenario(scenario, replace=True) is scenario

    def test_custom_registration(self):
        name = "test-only-scenario"
        try:
            register_scenario(
                Scenario(
                    name=name,
                    description="one empty-ish table",
                    builder=lambda seed=0, scale=1.0: build_scenario(
                        "sparse", seed=seed, scale=scale
                    ),
                    queries=lambda: scenario_queries("sparse"),
                )
            )
            tables = build_scenario(name, seed=1, scale=0.05)
            assert all(isinstance(db, GrowingDatabase) for db in tables.values())
        finally:
            from repro.workload import scenarios as module

            module._REGISTRY.pop(name, None)

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            build_scenario("poisson", scale=0.0)
        with pytest.raises(ValueError):
            build_scenario("poisson", scale=1.5)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(EXPECTED_BUILTINS))
    def test_same_seed_same_stream(self, name):
        a = build_scenario(name, seed=13, scale=0.05)
        b = build_scenario(name, seed=13, scale=0.05)
        assert set(a) == set(b)
        for table in a:
            assert a[table].update_indicator() == b[table].update_indicator()
            va = [u.values for u in a[table].updates if u is not None]
            vb = [u.values for u in b[table].updates if u is not None]
            assert va == vb

    def test_different_seeds_differ(self):
        a = build_scenario("poisson", seed=1, scale=0.1)
        b = build_scenario("poisson", seed=2, scale=0.1)
        assert a["Events"].update_indicator() != b["Events"].update_indicator()


class TestShapes:
    def test_heavy_traffic_is_heavy(self):
        tables = build_scenario("heavy-traffic", seed=0, scale=0.2)
        assert set(tables) == {"HeavyA", "HeavyB"}
        for db in tables.values():
            assert db.occupancy > 0.85

    def test_multi_table_skew_spans_orders_of_magnitude(self):
        tables = build_scenario("multi-table-skew", seed=0, scale=0.5)
        assert set(tables) == {"Hot", "Warm", "Cold"}
        assert tables["Hot"].occupancy > 4 * tables["Warm"].occupancy > 0
        assert tables["Warm"].occupancy > 5 * tables["Cold"].occupancy > 0

    def test_scenario_queries_match_tables(self):
        for name in EXPECTED_BUILTINS:
            tables = set(build_scenario(name, seed=0, scale=0.05))
            for query in scenario_queries(name):
                for table in query.tables:
                    assert table in tables or name == "taxi-yellow", (name, table)

    def test_taxi_yellow_has_group_by(self):
        queries = scenario_queries("taxi-yellow")
        assert any(isinstance(q, GroupByCountQuery) for q in queries)

    def test_scale_shrinks_horizon(self):
        big = build_scenario("poisson", seed=0, scale=1.0)["Events"]
        small = build_scenario("poisson", seed=0, scale=0.1)["Events"]
        assert small.horizon < big.horizon
