"""Tests for the plaintext plan executor and the answer distance metric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.records import Record
from repro.query.ast import (
    CountQuery,
    CrossProductNode,
    FilterNode,
    GroupByCountQuery,
    JoinCountQuery,
    ProjectNode,
    ScanNode,
)
from repro.query.executor import (
    PlaintextExecutor,
    answer_l1_distance,
    execute_plan,
    ground_truth,
)
from repro.query.predicates import EqualityPredicate, RangePredicate


def yellow(pickup, minute):
    return Record(values={"pickupID": pickup, "pickTime": minute}, table="YellowCab")


def green(pickup, minute):
    return Record(values={"pickupID": pickup, "pickTime": minute}, table="GreenTaxi")


@pytest.fixture
def executor():
    ex = PlaintextExecutor()
    ex.register("YellowCab", [yellow(i % 100 + 1, i) for i in range(200)])
    ex.register("GreenTaxi", [green(5, i * 2) for i in range(100)])
    return ex


class TestScalarQueries:
    def test_count_all(self, executor):
        assert executor.execute(CountQuery("YellowCab")) == 200

    def test_count_with_range(self, executor):
        query = CountQuery("YellowCab", RangePredicate("pickupID", 50, 100))
        expected = sum(1 for i in range(200) if 50 <= i % 100 + 1 <= 100)
        assert executor.execute(query) == expected

    def test_count_missing_table_is_zero(self, executor):
        assert executor.execute(CountQuery("DoesNotExist")) == 0

    def test_count_with_equality(self, executor):
        query = CountQuery("GreenTaxi", EqualityPredicate("pickupID", 5))
        assert executor.execute(query) == 100


class TestGroupByQueries:
    def test_group_counts_sum_to_total(self, executor):
        grouped = executor.execute(GroupByCountQuery("YellowCab", "pickupID"))
        assert sum(grouped.values()) == 200
        assert len(grouped) == 100

    def test_group_with_predicate(self, executor):
        query = GroupByCountQuery(
            "YellowCab", "pickupID", RangePredicate("pickupID", 1, 10)
        )
        grouped = executor.execute(query)
        assert set(grouped) == set(range(1, 11))


class TestJoinQueries:
    def test_join_counts_matching_pairs(self, executor):
        # GreenTaxi pickTime values are the even numbers 0..198; YellowCab has
        # one record per minute 0..199, so exactly 100 minutes match.
        query = JoinCountQuery("YellowCab", "GreenTaxi", "pickTime", "pickTime")
        assert executor.execute(query) == 100

    def test_join_with_duplicate_keys_multiplies(self):
        ex = PlaintextExecutor()
        ex.register("L", [yellow(1, 7), yellow(2, 7)])
        ex.register("R", [green(9, 7), green(9, 7), green(9, 7)])
        query = JoinCountQuery("L", "R", "pickTime", "pickTime")
        assert ex.execute(query) == 6

    def test_join_stats_count_pairs(self, executor):
        query = JoinCountQuery("YellowCab", "GreenTaxi", "pickTime", "pickTime")
        _, stats = executor.execute_with_stats(query)
        assert stats.join_pairs == 200 * 100


class TestPlanOperators:
    def test_project(self):
        plan = ProjectNode(ScanNode("T"), ("a",))
        answer = execute_plan(plan, {"T": [Record(values={"a": 1, "b": 2})]})
        assert answer == 1  # bare relational expressions return cardinality

    def test_crossproduct_combines_attributes(self):
        ex = PlaintextExecutor({"T": [Record(values={"a": 1, "b": 2})]})
        plan = CrossProductNode(ScanNode("T"), "a", "b", "ab")
        rows = ex._eval(plan, type("S", (), {"rows_scanned": 0})())
        assert rows[0]["ab"] == (1, 2)

    def test_filter_then_count_stats(self, executor):
        query = CountQuery("YellowCab", RangePredicate("pickupID", 1, 10))
        _, stats = executor.execute_with_stats(query)
        assert stats.rows_scanned == 200
        assert stats.rows_output < 200


class TestGroundTruthAndDistance:
    def test_ground_truth_matches_direct_execution(self, executor):
        query = CountQuery("YellowCab", RangePredicate("pickupID", 50, 100))
        truth = ground_truth(query, executor.tables)
        assert truth == executor.execute(query)

    def test_scalar_distance(self):
        assert answer_l1_distance(10, 7) == 3.0
        assert answer_l1_distance(7, 10) == 3.0
        assert answer_l1_distance(5, 5) == 0.0

    def test_grouped_distance_over_key_union(self):
        lhs = {"a": 5, "b": 3}
        rhs = {"a": 4, "c": 2}
        assert answer_l1_distance(lhs, rhs) == 1 + 3 + 2

    def test_mixed_answer_types_rejected(self):
        with pytest.raises(TypeError):
            answer_l1_distance(5, {"a": 5})

    @given(
        lhs=st.dictionaries(st.sampled_from("abcdef"), st.integers(0, 100), max_size=6),
        rhs=st.dictionaries(st.sampled_from("abcdef"), st.integers(0, 100), max_size=6),
    )
    @settings(max_examples=200, deadline=None)
    def test_grouped_distance_is_a_metric(self, lhs, rhs):
        assert answer_l1_distance(lhs, rhs) == answer_l1_distance(rhs, lhs)
        assert answer_l1_distance(lhs, lhs) == 0.0
        assert answer_l1_distance(lhs, rhs) >= 0.0


class TestTableManagement:
    def test_register_replaces_append_extends(self):
        ex = PlaintextExecutor()
        ex.register("T", [Record(values={"a": 1})])
        ex.append("T", [Record(values={"a": 2})])
        assert ex.table_size("T") == 2
        ex.register("T", [Record(values={"a": 3})])
        assert ex.table_size("T") == 1

    def test_append_creates_table(self):
        ex = PlaintextExecutor()
        ex.append("New", [Record(values={"a": 1})])
        assert ex.table_size("New") == 1
