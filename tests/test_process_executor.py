"""Process shard executor: worker lifecycle, crash robustness, zero-copy reads.

The byte-identity of ``executor="processes"`` against ``serial``/``threads``
is pinned by ``tests/test_scatter_concurrency.py``; this suite covers what is
*specific* to the process boundary:

* a killed worker surfaces as a clear :class:`ShardWorkerDied` naming the
  shard and the in-flight command -- never a hang on a dead pipe;
* the measured ledger splits coordinator wall clock into per-shard worker
  busy time and serialization overhead, and only for the process executor;
* ciphertexts written by a worker are read zero-copy by the coordinator out
  of the published shared-memory segment (and decrypt with the worker's key),
  including after the arena grows into a fresh segment;
* workers and their shared-memory segments are torn down by ``close()``
  (idempotent), so nothing leaks into ``/dev/shm`` -- the session-scoped
  conftest fixture backstops this for the whole suite;
* the single-CPU footgun warning fires exactly once per concurrent executor.
"""

from __future__ import annotations

import logging
import os
import signal

import numpy as np
import pytest

from repro.edb import router as router_module
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema
from repro.edb.router import ShardRouter, resolve_shard_executor
from repro.edb.shard_worker import ShardWorkerClient, ShardWorkerDied
from repro.query.ast import CountQuery

SCHEMA = Schema(name="events", attributes=("key", "value"))


def _records(n: int, start: int = 0, time: int = 1) -> list[Record]:
    return [
        Record(
            values={"key": (start + i) % 7, "value": start + i},
            arrival_time=time,
            table="events",
        )
        for i in range(n)
    ]


def _process_router(n_shards: int = 2, **backend_kwargs) -> ShardRouter:
    return ShardRouter(
        [
            ObliDB(rng=np.random.default_rng(40 + index), **backend_kwargs)
            for index in range(n_shards)
        ],
        route_seed=3,
        executor="processes",
    )


def test_killed_worker_raises_shard_worker_died_without_hanging():
    """A worker killed mid-deployment turns into a named error, not a hang."""
    router = _process_router(n_shards=2)
    try:
        router.setup(_records(20))
        victim = router.shards[1]
        assert isinstance(victim, ShardWorkerClient)
        victim.process.kill()
        victim.process.join(timeout=5.0)
        with pytest.raises(ShardWorkerDied) as excinfo:
            router.query(CountQuery(table="events", label="Q1"), time=2)
        assert excinfo.value.shard_index == 1
        # The recorded command is whatever was in flight when the death was
        # discovered -- here the router's pre-query is_setup sweep.
        assert excinfo.value.command == "attr"
        assert "shard 1" in str(excinfo.value)
        assert "'attr'" in str(excinfo.value)
        # The error carries the dead worker's exit code (SIGKILL = -9) so a
        # crash is distinguishable from an OOM kill or a clean exit.
        assert excinfo.value.exit_code == -signal.SIGKILL
        assert "exit code" in str(excinfo.value)
        # Talking to the dead shard directly names the protocol command.
        with pytest.raises(ShardWorkerDied) as direct:
            victim.query(CountQuery(table="events", label="Q1"), time=2)
        assert direct.value.command == "query"
        assert direct.value.exit_code == -signal.SIGKILL
        # The surviving worker is still responsive; the router as a whole
        # keeps failing loudly rather than silently gathering partials.
        assert router.shards[0].is_setup
    finally:
        router.close()


def test_measured_ledger_splits_worker_busy_and_serialization():
    """Per-shard busy + serialization counters fill in, and reset cleanly."""
    router = _process_router(n_shards=2)
    try:
        router.setup(_records(40))
        router.insert_many({"events": _records(30, start=40, time=2)}, time=2)
        router.query(CountQuery(table="events", label="Q1"), time=2)
        measured = router.measured
        assert set(measured.per_shard_busy_seconds) == {0, 1}
        assert all(busy > 0.0 for busy in measured.per_shard_busy_seconds.values())
        assert measured.serialization_seconds > 0.0
        assert measured.worker_commands > 0
        # The split is consistent with the coordinator's own wall clock:
        # worker busy time never exceeds what the coordinator waited overall.
        waited = (
            measured.setup_seconds + measured.update_seconds + measured.query_seconds
        )
        assert sum(measured.per_shard_busy_seconds.values()) <= waited * 2
        measured.reset()
        assert measured.per_shard_busy_seconds == {}
        assert measured.serialization_seconds == 0.0
        assert measured.worker_commands == 0
    finally:
        router.close()


def test_in_process_executors_report_no_worker_counters():
    """Threads/serial have no process boundary, so those counters stay zero."""
    for executor in ("threads", "serial"):
        router = ShardRouter(
            [ObliDB(rng=np.random.default_rng(40 + i)) for i in range(2)],
            route_seed=3,
            executor=executor,
        )
        try:
            router.setup(_records(10))
            router.query(CountQuery(table="events", label="Q1"), time=1)
            assert router.measured.per_shard_busy_seconds == {}
            assert router.measured.serialization_seconds == 0.0
            assert router.measured.worker_commands == 0
        finally:
            router.close()


def test_coordinator_reads_worker_ciphertexts_zero_copy():
    """Arena rows written in workers decrypt on the coordinator, zero-copy.

    Each worker publishes its shared segment's name; the coordinator attaches
    it and decrypts the rows with the worker's key -- the ciphertext bytes
    themselves never travel the pipe.  160 records per shard force at least
    one arena growth past the initial 64-row capacity, so the published
    segment is a *later generation* than the first one created.
    """
    router = _process_router(n_shards=2, simulate_encryption=True)
    try:
        inserted = _records(320)
        router.setup(inserted)
        decrypted = []
        for client in router.shards:
            assert isinstance(client, ShardWorkerClient)
            views = client.ciphertexts("events")
            assert len(views) == client.table_size("events")
            # Zero-copy: each row is a read-only memoryview into the attached
            # segment, not bytes that crossed the pipe.
            assert isinstance(views[0].ciphertext, memoryview)
            assert views[0].ciphertext.readonly
            cipher = client.cipher
            assert cipher is not None
            decrypted.extend(cipher.decrypt_many(views))
        assert sorted(r.values["value"] for r in decrypted) == sorted(
            r.values["value"] for r in inserted
        )
        assert {r.table for r in decrypted} == {"events"}
    finally:
        router.close()
    # Teardown unlinked every published segment.
    if os.path.isdir("/dev/shm"):
        assert not [f for f in os.listdir("/dev/shm") if f.startswith("repro-arena-")]


def test_close_is_idempotent_and_unlinks_segments():
    router = _process_router(n_shards=2, simulate_encryption=True)
    router.setup(_records(100))
    processes = [client.process for client in router.shards]
    router.close()
    router.close()
    for process in processes:
        assert not process.is_alive()
    if os.path.isdir("/dev/shm"):
        assert not [f for f in os.listdir("/dev/shm") if f.startswith("repro-arena-")]


def test_single_cpu_footgun_warns_once(monkeypatch, caplog):
    """Concurrent executors on a 1-CPU host warn exactly once per executor."""
    monkeypatch.setattr(router_module, "usable_cpus", lambda: 1)
    monkeypatch.setattr(router_module, "_warned_single_cpu", set())
    with caplog.at_level(logging.WARNING, logger="repro.edb.router"):
        resolve_shard_executor("threads")
        resolve_shard_executor("threads")
        resolve_shard_executor("processes")
        resolve_shard_executor("serial")
    warnings = [r for r in caplog.records if "single-CPU" in r.message]
    assert len(warnings) == 2
    assert {w.args[0] for w in warnings} == {"threads", "processes"}


def test_no_warning_on_multi_cpu_host(monkeypatch, caplog):
    monkeypatch.setattr(router_module, "usable_cpus", lambda: 4)
    monkeypatch.setattr(router_module, "_warned_single_cpu", set())
    with caplog.at_level(logging.WARNING, logger="repro.edb.router"):
        resolve_shard_executor("threads")
        resolve_shard_executor("processes")
    assert not [r for r in caplog.records if "single-CPU" in r.message]
