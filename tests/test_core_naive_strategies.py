"""Tests for the naive synchronization strategies (SUR, OTO, SET)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies.naive import OTOStrategy, SETStrategy, SURStrategy
from repro.edb.records import Record, Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


def dummy_factory(t):
    return make_dummy_record(SCHEMA, t)


def real(i):
    return Record(values={"sensor_id": i, "value": i}, arrival_time=i, table="events")


def drive(strategy, updates):
    """Feed a list of (time, record|None) into a strategy; return decisions."""
    decisions = []
    for time, update in updates:
        decisions.append(strategy.step(time, update))
    return decisions


class TestSUR:
    def test_epsilon_is_infinite(self):
        assert SURStrategy(dummy_factory).epsilon == float("inf")

    def test_setup_outsources_everything_immediately(self):
        strategy = SURStrategy(dummy_factory)
        gamma0 = strategy.setup([real(1), real(2)])
        assert len(gamma0) == 2
        assert strategy.logical_gap == 0

    def test_syncs_exactly_on_receipt(self):
        strategy = SURStrategy(dummy_factory)
        strategy.setup([])
        decisions = drive(strategy, [(1, real(1)), (2, None), (3, real(3))])
        assert [d.should_sync for d in decisions] == [True, False, True]
        assert all(d.volume == 1 for d in decisions if d.should_sync)
        assert strategy.synced_dummy_total == 0
        assert strategy.logical_gap == 0

    def test_update_pattern_mirrors_arrivals(self):
        """SUR leaks the exact arrival pattern: one update per arrival time."""
        strategy = SURStrategy(dummy_factory)
        strategy.setup([])
        arrivals = [1, 4, 5, 9]
        updates = [(t, real(t) if t in arrivals else None) for t in range(1, 11)]
        decisions = drive(strategy, updates)
        sync_times = [t for (t, _), d in zip(updates, decisions) if d.should_sync]
        assert sync_times == arrivals


class TestOTO:
    def test_epsilon_is_zero(self):
        assert OTOStrategy(dummy_factory).epsilon == 0.0

    def test_only_initial_outsourcing(self):
        strategy = OTOStrategy(dummy_factory)
        gamma0 = strategy.setup([real(1), real(2), real(3)])
        assert len(gamma0) == 3
        decisions = drive(strategy, [(t, real(t)) for t in range(1, 21)])
        assert not any(d.should_sync for d in decisions)
        assert strategy.sync_count == 0

    def test_logical_gap_grows_with_every_arrival(self):
        strategy = OTOStrategy(dummy_factory)
        strategy.setup([real(0)])
        drive(strategy, [(t, real(t)) for t in range(1, 11)])
        assert strategy.logical_gap == 10


class TestSET:
    def test_epsilon_is_zero(self):
        assert SETStrategy(dummy_factory).epsilon == 0.0

    def test_syncs_every_time_unit(self):
        strategy = SETStrategy(dummy_factory)
        strategy.setup([])
        updates = [(t, real(t) if t % 3 == 0 else None) for t in range(1, 31)]
        decisions = drive(strategy, updates)
        assert all(d.should_sync for d in decisions)
        assert all(d.volume == 1 for d in decisions)

    def test_dummy_on_empty_time_units(self):
        strategy = SETStrategy(dummy_factory)
        strategy.setup([])
        updates = [(t, real(t) if t % 3 == 0 else None) for t in range(1, 31)]
        decisions = drive(strategy, updates)
        dummy_updates = sum(1 for d in decisions if d.dummy_count == 1)
        real_updates = sum(1 for d in decisions if d.real_count == 1)
        assert real_updates == 10
        assert dummy_updates == 20
        assert strategy.logical_gap == 0

    def test_update_pattern_is_data_independent(self):
        """Two different arrival streams produce the identical update pattern."""
        dense = SETStrategy(dummy_factory)
        dense.setup([])
        sparse = SETStrategy(dummy_factory)
        sparse.setup([])
        dense_decisions = drive(dense, [(t, real(t)) for t in range(1, 50)])
        sparse_decisions = drive(sparse, [(t, None) for t in range(1, 50)])
        assert [d.volume for d in dense_decisions] == [d.volume for d in sparse_decisions]
        assert [d.should_sync for d in dense_decisions] == [
            d.should_sync for d in sparse_decisions
        ]


class TestStrategyBaseBehaviour:
    def test_step_before_setup_raises(self):
        strategy = SURStrategy(dummy_factory)
        with pytest.raises(RuntimeError):
            strategy.step(1, real(1))

    def test_double_setup_raises(self):
        strategy = SURStrategy(dummy_factory)
        strategy.setup([])
        with pytest.raises(RuntimeError):
            strategy.setup([])

    def test_time_zero_step_rejected(self):
        strategy = SETStrategy(dummy_factory)
        strategy.setup([])
        with pytest.raises(ValueError):
            strategy.step(0, None)

    def test_dummy_logical_update_rejected(self):
        strategy = SURStrategy(dummy_factory)
        strategy.setup([])
        with pytest.raises(ValueError):
            strategy.step(1, make_dummy_record(SCHEMA))

    def test_decision_helpers(self):
        strategy = SETStrategy(dummy_factory)
        strategy.setup([])
        decision = strategy.step(1, real(1))
        assert decision.volume == decision.real_count + decision.dummy_count
        assert decision.reason == "every-step"
