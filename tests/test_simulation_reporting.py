"""Tests for the table/figure renderers and headline-claim computation."""

from __future__ import annotations

import pytest

from repro.simulation.reporting import (
    format_figure_series,
    format_headline_claims,
    format_table2,
    format_table3,
    format_table5,
    headline_claims,
)
from repro.simulation.results import QueryTrace, RunResult, TimePoint


def make_result(strategy, mean_err, mean_qet, total_mb, dummy_mb):
    result = RunResult(strategy=strategy, backend="ObliDB", epsilon=0.5)
    for t in (360, 720):
        result.add_query_trace(QueryTrace(t, "Q2", mean_err, mean_qet))
        result.add_query_trace(QueryTrace(t, "Q3", mean_err, mean_qet * 2))
    result.add_time_point(
        TimePoint(
            time=720,
            outsourced_records=int(total_mb * 100),
            dummy_records=int(dummy_mb * 100),
            storage_bytes=total_mb * 1e6,
            dummy_bytes=dummy_mb * 1e6,
            logical_gap=int(mean_err),
            logical_size=1000,
        )
    )
    return result


@pytest.fixture
def results():
    return {
        "sur": make_result("sur", 0.0, 2.0, 300.0, 0.0),
        "set": make_result("set", 0.0, 5.5, 700.0, 400.0),
        "oto": make_result("oto", 5000.0, 0.05, 0.02, 0.0),
        "dp-timer": make_result("dp-timer", 9.0, 2.3, 315.0, 15.0),
        "dp-ant": make_result("dp-ant", 2.4, 2.7, 335.0, 35.0),
    }


class TestStaticTables:
    def test_table2_lists_all_strategies(self):
        text = format_table2()
        for name in ("SUR", "OTO", "SET", "DP-Timer", "DP-ANT"):
            assert name in text

    def test_table3_lists_leakage_groups(self):
        text = format_table3()
        for token in ("L-0", "L-DP", "L-1", "L-2", "ObliDB", "Crypt-epsilon"):
            assert token in text


class TestTable5:
    def test_contains_metrics_and_strategies(self, results):
        text = format_table5({"ObliDB": results})
        for token in ("== ObliDB ==", "Q2 mean L1 err", "Q3 mean QET", "Total data (Mb)", "DP-Timer"):
            assert token in text

    def test_multiple_backends(self, results):
        text = format_table5({"ObliDB": results, "Crypt-epsilon": results})
        assert text.count("mean L1 err") >= 4
        assert "== Crypt-epsilon ==" in text


class TestFigureSeries:
    def test_renders_points(self):
        text = format_figure_series(
            "Figure 5a",
            {"dp-timer": [(0.1, 50.0), (1.0, 5.0)]},
            x_label="epsilon",
            y_label="L1",
        )
        assert "Figure 5a" in text
        assert "dp-timer" in text
        assert "0.100" in text

    def test_thins_long_series(self):
        points = [(float(i), float(i)) for i in range(200)]
        text = format_figure_series("t", {"s": points}, max_points=10)
        assert len(text.splitlines()) < 40


class TestHeadlineClaims:
    def test_ratios_match_expectations(self, results):
        claims = headline_claims(results)
        assert claims["accuracy_gain_vs_oto"] > 100
        assert claims["qet_gain_vs_set"] > 2.0
        assert claims["storage_overhead_vs_sur"] < 1.2
        assert claims["set_data_multiple_of_dp"] > 2.0

    def test_requires_a_dp_strategy(self, results):
        with pytest.raises(ValueError):
            headline_claims({"sur": results["sur"]})

    def test_formatting(self, results):
        text = format_headline_claims(results)
        assert "520x" in text  # the paper's reference number is echoed
        assert "5.72x" in text

    def test_partial_results_skip_missing_claims(self, results):
        partial = {k: v for k, v in results.items() if k in ("dp-timer", "set")}
        claims = headline_claims(partial)
        assert "qet_gain_vs_set" in claims
        assert "accuracy_gain_vs_oto" not in claims
