"""Shard-router invariants: partition properties, K=1 byte-identity,
scatter-gather correctness and aggregated leakage.

The contract pinned here:

* **Routing is a partition** -- every record lands on exactly one shard, and
  per-shard table sizes / dummy counts / storage sum to the unsharded ones.
* **K=1 is byte-identical** -- a one-shard router forwards verbatim: update
  history, query results (answer, QET, scan counts), storage and leakage all
  equal the plain back-end's.
* **Scatter-gather is exact** -- gathered count / group-by / join-count
  answers over K shards equal the unsharded answers at every point.
* **Aggregated leakage** -- ``update_pattern_observables`` over the router's
  history equals the unsharded transcript regardless of K.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edb.base import UpdateResult
from repro.edb.crypte import CryptEpsilon
from repro.edb.leakage import update_pattern_observables
from repro.edb.oblidb import ObliDB
from repro.edb.records import Record, Schema, make_dummy_record
from repro.edb.router import ShardRouter
from repro.edb.cost_model import UnsupportedQueryError
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery
from repro.query.predicates import RangePredicate
from repro.query.sql import parse_query

TABLES = ("Alpha", "Beta")
SCHEMAS = {name: Schema(name=name, attributes=("key", "value")) for name in TABLES}


def _record(table: str, key: int, value: int, dummy: bool, time: int) -> Record:
    if dummy:
        return make_dummy_record(SCHEMAS[table], arrival_time=time)
    return Record(
        values={"key": key, "value": value}, arrival_time=time, table=table
    )


def _make_plain(seed: int = 0) -> ObliDB:
    return ObliDB(rng=np.random.default_rng(seed))


def _make_router(n_shards: int, seed: int = 0) -> ShardRouter:
    return ShardRouter(
        [ObliDB(rng=np.random.default_rng(seed + index)) for index in range(n_shards)],
        route_seed=seed,
    )


# One batch: (table index, key, value, is_dummy) per record.
_batches = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, len(TABLES) - 1),
            st.integers(0, 5),
            st.integers(0, 40),
            st.booleans(),
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=8,
)


def _ingest(edb, batches) -> None:
    edb.setup([])
    for time, batch in enumerate(batches, start=1):
        grouped: dict[str, list[Record]] = {}
        for table_idx, key, value, dummy in batch:
            table = TABLES[table_idx]
            grouped.setdefault(table, []).append(
                _record(table, key, value, dummy, time)
            )
        edb.insert_many(grouped, time=time)


@given(batches=_batches, n_shards=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_routing_is_a_partition(batches, n_shards):
    """Every record lands on exactly one shard; shard sizes sum exactly."""
    plain = _make_plain()
    router = _make_router(n_shards)
    _ingest(plain, batches)
    _ingest(router, batches)

    for table in TABLES:
        per_shard = [shard.table_size(table) for shard in router.shards]
        assert sum(per_shard) == plain.table_size(table)
        per_shard_dummies = [
            shard.table_dummy_count(table) for shard in router.shards
        ]
        assert sum(per_shard_dummies) == plain.table_dummy_count(table)
    assert router.outsourced_count == plain.outsourced_count
    assert router.dummy_count == plain.dummy_count
    assert router.real_count == plain.real_count
    assert router.storage_bytes == plain.storage_bytes

    # The routing function itself is a total, deterministic partition.
    for table in TABLES:
        for ordinal in range(plain.table_size(table)):
            index = router.shard_index(table, ordinal)
            assert 0 <= index < n_shards
            assert index == router.shard_index(table, ordinal)


@given(batches=_batches)
@settings(max_examples=30, deadline=None)
def test_single_shard_router_is_byte_identical(batches):
    """K=1 routing forwards verbatim: all observables equal the plain EDB."""
    plain = _make_plain(seed=9)
    router = ShardRouter([ObliDB(rng=np.random.default_rng(9))])
    _ingest(plain, batches)
    _ingest(router, batches)

    assert router.update_history == plain.update_history
    assert router.storage_bytes == plain.storage_bytes
    assert update_pattern_observables(router.update_history) == (
        update_pattern_observables(plain.update_history)
    )

    time = len(batches) + 1
    queries = [
        CountQuery(table="Alpha", predicate=RangePredicate("value", 5, 30), label="Q1"),
        GroupByCountQuery(table="Alpha", group_attribute="key", label="Q2"),
        JoinCountQuery(
            left_table="Alpha",
            right_table="Beta",
            left_attribute="key",
            right_attribute="key",
            label="Q3",
        ),
    ]
    for query in queries:
        expected = plain.query(query, time=time)
        gathered = router.query(query, time=time)
        assert gathered == expected


@given(batches=_batches, n_shards=st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_scatter_gather_answers_equal_unsharded(batches, n_shards):
    """Merged partial aggregates equal the unsharded answers at every point."""
    plain = _make_plain()
    router = _make_router(n_shards)
    plain.setup([])
    router.setup([])
    queries = [
        CountQuery(table="Alpha", predicate=RangePredicate("value", 5, 30), label="Q1"),
        GroupByCountQuery(table="Beta", group_attribute="key", label="Q2"),
        JoinCountQuery(
            left_table="Alpha",
            right_table="Beta",
            left_attribute="key",
            right_attribute="key",
            label="Q3",
        ),
    ]
    for time, batch in enumerate(batches, start=1):
        grouped: dict[str, list[Record]] = {}
        for table_idx, key, value, dummy in batch:
            table = TABLES[table_idx]
            grouped.setdefault(table, []).append(
                _record(table, key, value, dummy, time)
            )
        plain.insert_many(grouped, time=time)
        router.insert_many(grouped, time=time)
        # Answers must agree after *every* batch, not just at the end.
        for query in queries:
            expected = plain.query(query, time=time)
            gathered = router.query(query, time=time)
            assert gathered.answer == expected.answer, query.name
            assert gathered.records_scanned == expected.records_scanned


def test_aggregated_update_observables_independent_of_shard_count():
    """The router-level (time, volume) transcript never depends on K."""
    batches = [
        [(0, k, k * 3 % 17, k % 3 == 0) for k in range(5)],
        [(1, 1, 2, False)],
        [(0, 2, 9, True), (1, 4, 4, False)],
    ]
    transcripts = []
    for n_shards in (1, 2, 3, 4):
        router = _make_router(n_shards)
        _ingest(router, batches)
        transcripts.append(update_pattern_observables(router.update_history))
    assert len(set(transcripts)) == 1
    # Aggregate entries carry the full per-invocation volume.
    assert transcripts[0][1][1] == 5


def test_empty_update_is_one_observable_invocation():
    """An empty γ still round-trips once (through the first shard)."""
    router = _make_router(3)
    router.setup([])
    result = router.update([], time=5)
    assert isinstance(result, UpdateResult)
    assert result.total_added == 0
    assert update_pattern_observables(router.update_history)[-1] == (5, 0)


def test_join_stays_unsupported_on_crypte_shards():
    """The scheme's join rule applies to the original query, not the probes."""
    router = ShardRouter(
        [CryptEpsilon(rng=np.random.default_rng(i)) for i in range(2)]
    )
    router.setup([])
    join = JoinCountQuery(
        left_table="Alpha",
        right_table="Beta",
        left_attribute="key",
        right_attribute="key",
    )
    assert not router.supports(join)
    with pytest.raises(UnsupportedQueryError):
        router.query(join, time=1)


def test_sharded_query_cost_scales_down():
    """The gathered QET is the slowest shard: linear scans get ~K× cheaper."""
    n = 4000
    records = [_record("Alpha", i % 7, i % 50, False, 1) for i in range(n)]
    plain = _make_plain()
    plain.setup([])
    plain.insert_many({"Alpha": records}, time=1)
    router = _make_router(4)
    router.setup([])
    router.insert_many({"Alpha": records}, time=1)

    query = parse_query("SELECT COUNT(*) FROM Alpha WHERE value BETWEEN 0 AND 20")
    unsharded = plain.query(query, time=2)
    gathered = router.query(query, time=2)
    assert gathered.answer == unsharded.answer
    assert gathered.qet_seconds < unsharded.qet_seconds
    # Perfectly balanced shards would give 4x on the linear term; allow
    # hash-imbalance and the fixed per-query base.
    assert unsharded.qet_seconds / gathered.qet_seconds > 2.0


# ---------------------------------------------------------------------------
# Routing determinism under failures (staged ordinal commit)
# ---------------------------------------------------------------------------


class _FlakyShard:
    """Wraps a shard; raises on the first ``insert_many`` after arming."""

    def __init__(self, shard):
        self._shard = shard
        self.armed = False

    def __getattr__(self, name):
        return getattr(self._shard, name)

    def insert_many(self, batches, time):
        if self.armed:
            self.armed = False
            raise RuntimeError("injected shard failure")
        return self._shard.insert_many(batches, time=time)


def _routing_snapshot(router: ShardRouter) -> list[dict[str, int]]:
    """Per-shard table sizes: where every record actually landed."""
    return [
        {table: shard.table_size(table) for table in TABLES}
        for shard in router.shards
    ]


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_failed_update_leaves_ordinals_unchanged(executor):
    """Update before Setup fails on every shard -- and must not advance
    routing state: a retry after Setup routes identically to a run that
    never failed (the issue's repro, on every fan-out executor)."""
    records = [_record("Alpha", i % 5, i, False, 1) for i in range(24)] + [
        _record("Beta", i % 3, i, False, 1) for i in range(11)
    ]
    router = _make_router(2)
    clean = _make_router(2)
    if executor != "threads":
        router = ShardRouter(
            [ObliDB(rng=np.random.default_rng(i)) for i in range(2)],
            route_seed=0,
            executor=executor,
        )
        clean = ShardRouter(
            [ObliDB(rng=np.random.default_rng(i)) for i in range(2)],
            route_seed=0,
            executor=executor,
        )
    try:
        with pytest.raises(RuntimeError):
            router.update(records, time=1)
        assert router._ordinals == {}
        assert router._table_shard_counts == {}

        router.setup([])
        router.update(records, time=1)
        clean.setup([])
        clean.update(records, time=1)
        assert _routing_snapshot(router) == _routing_snapshot(clean)
        assert router._ordinals == clean._ordinals
        assert router.table_shard_counts("Alpha") == clean.table_shard_counts("Alpha")
        assert router.table_shard_counts("Beta") == clean.table_shard_counts("Beta")
    finally:
        router.close()
        clean.close()


def test_mid_scatter_shard_failure_keeps_routing_staged():
    """A shard raising mid-scatter (after others may have ingested) still
    leaves ordinals uncommitted, so the retry partitions identically."""
    flaky = _FlakyShard(ObliDB(rng=np.random.default_rng(1)))
    router = ShardRouter(
        [ObliDB(rng=np.random.default_rng(0)), flaky], route_seed=0, executor="serial"
    )
    clean = _make_router(2)
    router.setup([])
    clean.setup([])

    first = [_record("Alpha", i % 5, i, False, 1) for i in range(16)]
    second = [_record("Alpha", i % 5, i, False, 2) for i in range(16, 40)]
    router.update(first, time=1)
    clean.update(first, time=1)
    ordinals_before = dict(router._ordinals)
    counts_before = router.table_shard_counts("Alpha")

    flaky.armed = True
    with pytest.raises(RuntimeError, match="injected shard failure"):
        router.update(second, time=2)
    assert router._ordinals == ordinals_before
    assert router.table_shard_counts("Alpha") == counts_before

    # The retry stages the same partition a never-failed router computes.
    router.update(second, time=2)
    clean.update(second, time=2)
    assert router._ordinals == clean._ordinals
    assert router.table_shard_counts("Alpha") == clean.table_shard_counts("Alpha")


def test_failed_setup_leaves_ordinals_unchanged():
    """Setup that raises (second Setup on initialized shards) stays staged."""
    router = _make_router(2)
    records = [_record("Alpha", i % 5, i, False, 0) for i in range(12)]
    router.setup(records, time=0)
    ordinals = dict(router._ordinals)
    with pytest.raises(RuntimeError):
        router.setup(records, time=0)
    assert router._ordinals == ordinals
