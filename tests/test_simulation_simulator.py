"""Tests for the end-to-end simulator and experiment drivers (scaled down)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies.flush import FlushPolicy
from repro.edb.crypte import CryptEpsilon
from repro.edb.oblidb import ObliDB
from repro.query.sql import parse_query
from repro.simulation.experiment import (
    EndToEndConfig,
    default_queries,
    make_backend,
    run_end_to_end,
    run_parameter_sweep,
    run_privacy_sweep,
    taxi_workloads,
)
from repro.simulation.simulator import Simulation, SimulationConfig

SCALE = 0.02  # ~864 time units, a few hundred records: fast but representative


@pytest.fixture(scope="module")
def workloads():
    return taxi_workloads(scale=SCALE, include_green=True, seed=99)


@pytest.fixture(scope="module")
def queries():
    return default_queries()


def run_once(workloads, queries, strategy="dp-timer", backend="oblidb", **overrides):
    config = SimulationConfig(
        strategy=strategy,
        epsilon=overrides.pop("epsilon", 0.5),
        timer_period=30,
        theta=15,
        flush=FlushPolicy(interval=300, size=5),
        query_interval=overrides.pop("query_interval", 120),
        seed=overrides.pop("seed", 1),
    )
    simulation = Simulation(
        edb_factory=make_backend(backend, seed=1),
        workloads=workloads,
        queries=queries,
        config=config,
    )
    return simulation.run()


class TestSimulationMechanics:
    def test_requires_workloads(self, queries):
        with pytest.raises(ValueError):
            Simulation(lambda: ObliDB(), {}, queries, SimulationConfig())

    def test_empty_workload_requires_schema(self, queries):
        from repro.workload.stream import GrowingDatabase

        empty = {"YellowCab": GrowingDatabase(table="YellowCab")}
        with pytest.raises(ValueError):
            Simulation(lambda: ObliDB(), empty, queries, SimulationConfig())

    def test_run_produces_traces_and_timeline(self, workloads, queries):
        result = run_once(workloads, queries)
        assert result.backend == "ObliDB"
        assert result.strategy == "dp-timer"
        assert set(result.query_names()) == {"Q1", "Q2", "Q3"}
        assert len(result.timeline) >= 1
        assert result.sync_count > 0
        assert result.total_update_volume > 0

    def test_unsupported_queries_skipped_for_crypte(self, workloads, queries):
        yellow_only = {"YellowCab": workloads["YellowCab"]}
        result = run_once(yellow_only, queries, backend="crypte")
        assert result.backend == "Crypt-epsilon"
        assert "Q3" not in result.query_names()

    def test_reproducible_given_seed(self, workloads, queries):
        first = run_once(workloads, queries, seed=7)
        second = run_once(workloads, queries, seed=7)
        assert first.summary() == second.summary()

    def test_config_with_overrides(self):
        config = SimulationConfig(strategy="sur")
        changed = config.with_overrides(strategy="set", epsilon=1.0)
        assert changed.strategy == "set"
        assert changed.epsilon == 1.0
        assert config.strategy == "sur"  # original untouched

    def test_final_snapshot_recorded_even_without_query_times(self, workloads, queries):
        result = run_once(workloads, queries, query_interval=0)
        assert result.query_traces == []
        assert len(result.timeline) == 1


class TestStrategyOrderings:
    """The qualitative orderings of Section 8.1 on a scaled-down workload."""

    @pytest.fixture(scope="class")
    def results(self):
        config = EndToEndConfig(
            backend="oblidb", scale=SCALE, query_interval=120, seed=3
        )
        return run_end_to_end(config)

    def test_all_strategies_present(self, results):
        assert set(results) == {"sur", "set", "oto", "dp-timer", "dp-ant"}

    def test_sur_and_set_have_zero_error(self, results):
        for query in ("Q1", "Q2", "Q3"):
            assert results["sur"].mean_l1_error(query) == 0.0
            assert results["set"].mean_l1_error(query) == 0.0

    def test_oto_error_is_much_larger_than_dp(self, results):
        for query in ("Q1", "Q2"):
            oto = results["oto"].mean_l1_error(query)
            for dp in ("dp-timer", "dp-ant"):
                assert oto > 10 * max(results[dp].mean_l1_error(query), 0.1)

    def test_dp_errors_are_bounded(self, results):
        for dp in ("dp-timer", "dp-ant"):
            assert results[dp].max_l1_error("Q2") < 100

    def test_set_outsources_most_data(self, results):
        set_mb = results["set"].total_data_megabytes()
        for other in ("sur", "dp-timer", "dp-ant", "oto"):
            assert set_mb > results[other].total_data_megabytes()

    def test_dp_storage_within_analytic_bounds(self, results):
        """DP storage stays within the paper's own size bounds (Thms 7/9).

        This used to assert ``dp <= 1.8 * sur`` -- a magic constant that sat
        on a knife edge: at the down-scaled workload DP-ANT's dummy volume is
        dominated by spurious sparse-vector crossings (with ``eps1 = 0.25``
        the comparison noise scale ``4/eps1 = 16`` exceeds ``theta = 15``, so
        most crossings are noise-triggered and each one pads
        ``~E[max(0, Lap(1/eps2))] = 2`` dummies), a cost that does *not*
        shrink with the workload scale the way ``|D_t|`` does.  The padding
        accounting itself is faithful to Algorithms 2/3; what was
        unprincipled was the bound.  The principled check is the paper's own
        Theorem 7 (DP-Timer) / Theorem 9 (DP-ANT) high-probability envelope
        ``|DS_t| <= |D_t| + alpha + eta`` applied per table, plus the exact
        invariant that no strategy ever uploads more *real* records than
        exist.
        """
        from repro.dp.theory import ant_outsourced_bound, timer_outsourced_bound
        from repro.simulation.experiment import (
            DEFAULT_FLUSH,
            DEFAULT_TIMER_PERIOD,
        )

        # The same workloads run_end_to_end builds for seed=3.
        workload_tables = taxi_workloads(scale=SCALE, include_green=True, seed=2023)
        horizon = max(w.horizon for w in workload_tables.values())
        beta = 0.05
        sur_records = results["sur"].final_time_point().outsourced_records

        for dp in ("dp-timer", "dp-ant"):
            final = results[dp].final_time_point()
            # Exact: real outsourced records never exceed the logical database
            # (which is exactly what SUR outsources).
            assert final.outsourced_records - final.dummy_records <= sur_records
            if dp == "dp-timer":
                k = horizon // DEFAULT_TIMER_PERIOD
                bound = sum(
                    timer_outsourced_bound(
                        w.total_records,
                        0.5,
                        k,
                        horizon,
                        DEFAULT_FLUSH.interval,
                        DEFAULT_FLUSH.size,
                        beta,
                    )
                    for w in workload_tables.values()
                )
            else:
                bound = sum(
                    ant_outsourced_bound(
                        w.total_records,
                        0.5,
                        horizon,
                        DEFAULT_FLUSH.interval,
                        DEFAULT_FLUSH.size,
                        beta,
                    )
                    for w in workload_tables.values()
                )
            assert final.outsourced_records <= bound

    def test_set_qet_larger_than_dp(self, results):
        for query in ("Q1", "Q2", "Q3"):
            set_qet = results["set"].mean_qet(query)
            for dp in ("dp-timer", "dp-ant"):
                assert set_qet > results[dp].mean_qet(query)

    def test_join_gap_exceeds_linear_gap(self, results):
        """The SET/DP performance gap is larger for the quadratic join (Q3).

        At the down-scaled workload size the fixed per-query overhead masks
        the scan work, so the comparison is made on the data-dependent part
        of the QET (total minus the back-end's per-query base cost).
        """
        from repro.edb.cost_model import OBLIDB_COSTS

        base = OBLIDB_COSTS.query_base
        dp = results["dp-timer"]
        ratio_linear = (results["set"].mean_qet("Q2") - base) / (dp.mean_qet("Q2") - base)
        ratio_join = (results["set"].mean_qet("Q3") - base) / (dp.mean_qet("Q3") - base)
        assert ratio_join > ratio_linear


class TestSweepDrivers:
    def test_privacy_sweep_structure(self):
        sweep = run_privacy_sweep(
            epsilons=(0.1, 1.0), scale=SCALE, query_interval=240, seed=5
        )
        assert set(sweep) == {"dp-timer", "dp-ant"}
        assert set(sweep["dp-timer"]) == {0.1, 1.0}
        for by_eps in sweep.values():
            for result in by_eps.values():
                assert result.query_names() == ("Q2",)

    def test_parameter_sweep_structure(self):
        sweep = run_parameter_sweep(
            "dp-timer", values=(10, 100), scale=SCALE, query_interval=240, seed=5
        )
        assert set(sweep) == {10, 100}

    def test_parameter_sweep_rejects_naive_strategy(self):
        with pytest.raises(ValueError):
            run_parameter_sweep("sur", values=(10,), scale=SCALE)

    def test_make_backend_unknown(self):
        with pytest.raises(KeyError):
            make_backend("mystery")

    def test_backend_factories(self):
        assert isinstance(make_backend("oblidb")(), ObliDB)
        assert isinstance(make_backend("crypte")(), CryptEpsilon)

    def test_taxi_workload_scaling(self):
        workloads = taxi_workloads(scale=0.01, include_green=False)
        assert set(workloads) == {"YellowCab"}
        assert workloads["YellowCab"].horizon == 432
        with pytest.raises(ValueError):
            taxi_workloads(scale=2.0)

    def test_endtoend_config_queries_for_backend(self):
        oblidb_queries = EndToEndConfig(backend="oblidb").queries_for_backend()
        crypte_queries = EndToEndConfig(backend="crypte").queries_for_backend()
        assert [q.name for q in oblidb_queries] == ["Q1", "Q2", "Q3"]
        assert [q.name for q in crypte_queries] == ["Q1", "Q2"]
