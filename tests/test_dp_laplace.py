"""Tests for the Laplace distribution utilities and concentration bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.laplace import (
    LaplaceDistribution,
    laplace_sum_quantile,
    laplace_sum_tail_bound,
    laplace_tail_bound,
    max_partial_sum_quantile,
)


class TestLaplaceDistribution:
    def test_requires_positive_scale(self):
        with pytest.raises(ValueError):
            LaplaceDistribution(scale=0.0)
        with pytest.raises(ValueError):
            LaplaceDistribution(scale=-1.0)

    def test_pdf_integrates_to_one(self):
        dist = LaplaceDistribution(loc=0.0, scale=2.0)
        xs = np.linspace(-60, 60, 200_001)
        density = np.array([dist.pdf(x) for x in xs])
        integral = np.trapezoid(density, xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_cdf_monotone_and_bounded(self):
        dist = LaplaceDistribution(scale=1.5)
        xs = np.linspace(-20, 20, 101)
        cdfs = [dist.cdf(x) for x in xs]
        assert all(0.0 <= c <= 1.0 for c in cdfs)
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))
        assert dist.cdf(0.0) == pytest.approx(0.5)

    def test_quantile_inverts_cdf(self):
        dist = LaplaceDistribution(loc=1.0, scale=0.7)
        for p in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert dist.cdf(dist.quantile(p)) == pytest.approx(p, abs=1e-9)

    def test_quantile_rejects_bad_probability(self):
        dist = LaplaceDistribution()
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                dist.quantile(p)

    def test_variance(self):
        assert LaplaceDistribution(scale=3.0).variance == pytest.approx(18.0)

    def test_sampling_matches_moments(self):
        dist = LaplaceDistribution(loc=2.0, scale=1.0)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(2.0, abs=0.02)
        assert np.var(samples) == pytest.approx(2.0, abs=0.05)

    def test_tail_probability(self):
        dist = LaplaceDistribution(scale=2.0)
        assert dist.tail(0.0) == pytest.approx(1.0)
        assert dist.tail(2.0) == pytest.approx(math.exp(-1.0))
        with pytest.raises(ValueError):
            dist.tail(-1.0)


class TestTailBounds:
    def test_single_variable_tail(self):
        assert laplace_tail_bound(1.0, 0.0) == 1.0
        assert laplace_tail_bound(2.0, 2.0) == pytest.approx(math.exp(-1.0))
        with pytest.raises(ValueError):
            laplace_tail_bound(0.0, 1.0)
        with pytest.raises(ValueError):
            laplace_tail_bound(1.0, -1.0)

    def test_sum_tail_bound_formula(self):
        # Lemma 19 with alpha inside the valid regime.
        k, scale, alpha = 16, 2.0, 10.0
        expected = math.exp(-(alpha**2) / (4 * k * scale**2))
        assert laplace_sum_tail_bound(k, scale, alpha) == pytest.approx(expected)

    def test_sum_tail_bound_trivial_for_nonpositive_alpha(self):
        assert laplace_sum_tail_bound(5, 1.0, 0.0) == 1.0
        assert laplace_sum_tail_bound(5, 1.0, -3.0) == 1.0

    def test_sum_tail_bound_is_valid_empirically(self):
        """The Lemma 19 bound must upper-bound the empirical tail probability."""
        rng = np.random.default_rng(7)
        k, scale = 20, 1.0
        sums = rng.laplace(0.0, scale, size=(50_000, k)).sum(axis=1)
        for alpha in (5.0, 10.0, 15.0, 20.0):
            empirical = float(np.mean(sums >= alpha))
            assert empirical <= laplace_sum_tail_bound(k, scale, alpha) + 0.01

    def test_sum_quantile_matches_corollary20(self):
        k, scale, beta = 25, 2.0, 0.05
        expected = 2 * scale * math.sqrt(k * math.log(1 / beta))
        assert laplace_sum_quantile(k, scale, beta) == pytest.approx(expected)

    def test_sum_quantile_holds_empirically(self):
        rng = np.random.default_rng(11)
        k, scale, beta = 40, 1.0, 0.05
        quantile = laplace_sum_quantile(k, scale, beta)
        sums = rng.laplace(0.0, scale, size=(20_000, k)).sum(axis=1)
        assert float(np.mean(sums >= quantile)) <= beta

    def test_max_partial_sum_quantile_holds_empirically(self):
        """Corollary 21: the bound also covers the max over prefix sums."""
        rng = np.random.default_rng(13)
        k, scale, beta = 40, 1.0, 0.05
        quantile = max_partial_sum_quantile(k, scale, beta)
        draws = rng.laplace(0.0, scale, size=(20_000, k))
        prefix_max = np.maximum.accumulate(np.cumsum(draws, axis=1), axis=1)[:, -1]
        assert float(np.mean(prefix_max >= quantile)) <= beta

    def test_input_validation(self):
        with pytest.raises(ValueError):
            laplace_sum_tail_bound(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            laplace_sum_tail_bound(5, -1.0, 1.0)
        with pytest.raises(ValueError):
            laplace_sum_quantile(5, 1.0, 1.5)
        with pytest.raises(ValueError):
            laplace_sum_quantile(0, 1.0, 0.5)


class TestLaplaceProperties:
    @given(
        scale=st.floats(min_value=0.01, max_value=100.0),
        x=st.floats(min_value=-1000.0, max_value=1000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_cdf_in_unit_interval(self, scale, x):
        dist = LaplaceDistribution(scale=scale)
        assert 0.0 <= dist.cdf(x) <= 1.0

    @given(
        k=st.integers(min_value=1, max_value=500),
        scale=st.floats(min_value=0.01, max_value=50.0),
        beta=st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_positive_and_monotone_in_k(self, k, scale, beta):
        smaller = laplace_sum_quantile(k, scale, beta)
        larger = laplace_sum_quantile(k + 1, scale, beta)
        assert smaller > 0
        assert larger >= smaller
