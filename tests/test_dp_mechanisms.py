"""Tests for the Laplace, geometric and sparse-vector mechanisms."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.mechanisms import (
    AboveThreshold,
    GeometricMechanism,
    LaplaceBlockStream,
    LaplaceMechanism,
)


class TestLaplaceBlockStream:
    def test_bit_identical_to_direct_draws_across_mixed_scales(self):
        """The k-th stream value equals the k-th direct Generator draw.

        This is the contract the strategy hot loops rely on: interleaved
        scales (Perturb's 1/eps, AboveThreshold's 2/eps1 and 4/eps1) served
        from predrawn standard blocks must match direct scaled draws
        bit-for-bit, including across block boundaries.
        """
        scales = [2.0, 8.0, 1 / 0.25, 0.5, 123.456, 1e-3]
        stream = LaplaceBlockStream(np.random.default_rng(77), block_size=16)
        direct = np.random.default_rng(77)
        for index in range(500):
            scale = scales[index % len(scales)]
            assert stream.laplace(0.0, scale) == direct.laplace(0.0, scale)

    def test_mechanisms_accept_the_stream_in_place_of_a_generator(self):
        stream = LaplaceBlockStream(np.random.default_rng(5))
        direct = np.random.default_rng(5)
        mechanism = LaplaceMechanism(epsilon=0.5)
        assert mechanism.randomize(3.0, stream) == mechanism.randomize(3.0, direct)
        sparse_a = AboveThreshold(theta=4.0, epsilon=0.5)
        sparse_b = AboveThreshold(theta=4.0, epsilon=0.5)
        sparse_a.reset(stream)
        sparse_b.reset(direct)
        for count in range(20):
            assert sparse_a.step(count, stream) == sparse_b.step(count, direct)

    def test_nonzero_loc_and_defaults(self):
        stream = LaplaceBlockStream(np.random.default_rng(9))
        direct = np.random.default_rng(9)
        assert stream.laplace(10.0, 2.0) == 10.0 + 2.0 * direct.laplace(0.0, 1.0)
        assert isinstance(stream.laplace(), float)
        assert stream.generator is not None

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            LaplaceBlockStream(np.random.default_rng(0), block_size=0)


class TestLaplaceMechanism:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0, sensitivity=0.0)

    def test_scale(self):
        assert LaplaceMechanism(epsilon=0.5).scale == pytest.approx(2.0)
        assert LaplaceMechanism(epsilon=2.0, sensitivity=4.0).scale == pytest.approx(2.0)

    def test_randomize_is_unbiased(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        rng = np.random.default_rng(0)
        values = [mechanism.randomize(10.0, rng) for _ in range(20_000)]
        assert np.mean(values) == pytest.approx(10.0, abs=0.05)

    def test_randomize_count_returns_int(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        rng = np.random.default_rng(1)
        value = mechanism.randomize_count(5, rng)
        assert isinstance(value, int)

    def test_randomize_count_can_be_negative(self):
        mechanism = LaplaceMechanism(epsilon=0.01)
        rng = np.random.default_rng(2)
        values = [mechanism.randomize_count(0, rng) for _ in range(200)]
        assert any(v < 0 for v in values)

    def test_error_quantile(self):
        mechanism = LaplaceMechanism(epsilon=0.5)
        beta = 0.05
        expected = 2.0 * math.log(1 / beta)
        assert mechanism.error_quantile(beta) == pytest.approx(expected)
        with pytest.raises(ValueError):
            mechanism.error_quantile(0.0)

    def test_error_quantile_holds_empirically(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        rng = np.random.default_rng(3)
        bound = mechanism.error_quantile(0.1)
        errors = [abs(mechanism.randomize(0.0, rng)) for _ in range(20_000)]
        assert np.mean(np.array(errors) > bound) <= 0.11

    def test_dp_likelihood_ratio_bound(self):
        """Empirical epsilon of the Laplace mechanism stays within budget."""
        epsilon = 0.8
        mechanism = LaplaceMechanism(epsilon=epsilon)
        rng = np.random.default_rng(4)
        bins = np.linspace(-10, 12, 45)
        a = np.histogram(
            [mechanism.randomize(0.0, rng) for _ in range(200_000)], bins=bins
        )[0]
        b = np.histogram(
            [mechanism.randomize(1.0, rng) for _ in range(200_000)], bins=bins
        )[0]
        mask = (a > 200) & (b > 200)
        ratios = a[mask] / b[mask]
        assert np.all(ratios <= math.exp(epsilon) * 1.25)
        assert np.all(ratios >= math.exp(-epsilon) / 1.25)


class TestGeometricMechanism:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricMechanism(epsilon=-1.0)
        with pytest.raises(ValueError):
            GeometricMechanism(epsilon=1.0, sensitivity=-2.0)

    def test_alpha(self):
        assert GeometricMechanism(epsilon=1.0).alpha == pytest.approx(math.exp(-1.0))

    def test_outputs_are_integers(self):
        mechanism = GeometricMechanism(epsilon=0.5)
        rng = np.random.default_rng(5)
        for _ in range(100):
            assert isinstance(mechanism.randomize_count(7, rng), int)

    def test_noise_is_symmetric_and_centered(self):
        mechanism = GeometricMechanism(epsilon=1.0)
        rng = np.random.default_rng(6)
        noise = [mechanism.sample_noise(rng) for _ in range(50_000)]
        assert abs(float(np.mean(noise))) < 0.05

    def test_smaller_epsilon_means_larger_noise(self):
        rng = np.random.default_rng(7)
        tight = GeometricMechanism(epsilon=2.0)
        loose = GeometricMechanism(epsilon=0.1)
        tight_spread = np.std([tight.sample_noise(rng) for _ in range(20_000)])
        loose_spread = np.std([loose.sample_noise(rng) for _ in range(20_000)])
        assert loose_spread > tight_spread


class TestAboveThreshold:
    def test_validation(self):
        with pytest.raises(ValueError):
            AboveThreshold(theta=10.0, epsilon=0.0)
        with pytest.raises(ValueError):
            AboveThreshold(theta=-1.0, epsilon=1.0)

    def test_scales_match_algorithm3(self):
        sparse = AboveThreshold(theta=15.0, epsilon=0.25)
        assert sparse.threshold_scale == pytest.approx(2.0 / 0.25)
        assert sparse.query_scale == pytest.approx(4.0 / 0.25)

    def test_step_before_reset_raises(self):
        sparse = AboveThreshold(theta=5.0, epsilon=1.0)
        with pytest.raises(RuntimeError):
            sparse.step(3.0, np.random.default_rng(0))

    def test_reset_draws_noisy_threshold(self):
        sparse = AboveThreshold(theta=10.0, epsilon=1.0)
        rng = np.random.default_rng(8)
        values = {sparse.reset(rng) for _ in range(10)}
        assert len(values) > 1  # fresh noise each reset
        assert all(abs(v - 10.0) < 60 for v in values)

    def test_crossing_resets_threshold_and_counts(self):
        sparse = AboveThreshold(theta=3.0, epsilon=2.0)
        rng = np.random.default_rng(9)
        sparse.reset(rng)
        fired = False
        for count in range(0, 100):
            if sparse.step(float(count), rng):
                fired = True
                break
        assert fired
        assert sparse.crossings == 1

    def test_large_counts_cross_quickly_small_counts_rarely(self):
        rng = np.random.default_rng(10)
        high, low = 0, 0
        trials = 300
        for _ in range(trials):
            sparse = AboveThreshold(theta=20.0, epsilon=2.0)
            sparse.reset(rng)
            if sparse.step(100.0, rng):
                high += 1
            sparse2 = AboveThreshold(theta=20.0, epsilon=2.0)
            sparse2.reset(rng)
            if sparse2.step(0.0, rng):
                low += 1
        assert high > trials * 0.95
        assert low < trials * 0.2

    @given(theta=st.floats(min_value=0.0, max_value=100.0), epsilon=st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_step_always_returns_bool(self, theta, epsilon):
        sparse = AboveThreshold(theta=theta, epsilon=epsilon)
        rng = np.random.default_rng(11)
        sparse.reset(rng)
        assert sparse.step(theta, rng) in (True, False)
