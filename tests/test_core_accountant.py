"""Tests for update-pattern privacy accounting and the Table 4 mechanisms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accountant import (
    ant_update_pattern_guarantee,
    simulate_ant_pattern,
    simulate_timer_pattern,
    strategy_guarantee_from_accountant,
    timer_update_pattern_guarantee,
)
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.update_pattern import UpdatePattern
from repro.edb.records import Schema, make_dummy_record

SCHEMA = Schema("events", ("sensor_id", "value"))


class TestClosedFormGuarantees:
    def test_timer_guarantee_is_epsilon(self):
        for epsilon in (0.1, 0.5, 1.0, 5.0):
            assert timer_update_pattern_guarantee(epsilon) == pytest.approx(epsilon)

    def test_ant_guarantee_is_epsilon(self):
        for epsilon in (0.1, 0.5, 1.0, 5.0):
            assert ant_update_pattern_guarantee(epsilon) == pytest.approx(epsilon)
        assert ant_update_pattern_guarantee(1.0, budget_split=0.3) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            timer_update_pattern_guarantee(0.0)
        with pytest.raises(ValueError):
            ant_update_pattern_guarantee(-1.0)
        with pytest.raises(ValueError):
            ant_update_pattern_guarantee(1.0, budget_split=0.0)

    def test_guarantee_from_a_real_strategy_run(self):
        strategy = DPTimerStrategy(
            dummy_factory=lambda t: make_dummy_record(SCHEMA, t),
            epsilon=0.5,
            period=10,
            flush=FlushPolicy(interval=50, size=3),
            rng=np.random.default_rng(0),
        )
        strategy.setup([])
        for t in range(1, 301):
            strategy.step(t, None)
        measured = strategy_guarantee_from_accountant(strategy.accountant)
        assert measured == pytest.approx(timer_update_pattern_guarantee(0.5))


class TestSimulationMechanisms:
    def test_timer_pattern_has_fixed_schedule(self):
        rng = np.random.default_rng(1)
        updates = [t % 3 == 0 for t in range(1, 301)]
        pattern = simulate_timer_pattern(updates, 5, epsilon=1.0, period=30, rng=rng)
        assert isinstance(pattern, UpdatePattern)
        assert pattern.times[0] == 0
        assert all(t % 30 == 0 for t in pattern.times)

    def test_ant_pattern_fires_based_on_counts(self):
        rng = np.random.default_rng(2)
        dense = simulate_ant_pattern([True] * 600, 0, epsilon=1.0, theta=20, rng=rng)
        sparse = simulate_ant_pattern([False] * 600, 0, epsilon=1.0, theta=20, rng=rng)
        dense_events = [e for e in dense if e.time > 0 and e.time % 2000 != 0]
        sparse_events = [e for e in sparse if e.time > 0 and e.time % 2000 != 0]
        assert len(dense_events) > len(sparse_events)

    def test_flush_entries_appear_on_schedule(self):
        rng = np.random.default_rng(3)
        pattern = simulate_timer_pattern(
            [False] * 400, 0, epsilon=0.5, period=50, flush_interval=100, flush_size=7, rng=rng
        )
        flush_times = [e.time for e in pattern if e.time % 100 == 0 and e.time > 0]
        assert flush_times  # flush volumes show up even with no data at all


class TestEmpiricalDifferentialPrivacy:
    """Statistical check of Definition 5 on the M_timer mechanism.

    We compare the distribution of a single window's noisy volume on two
    neighboring update streams (differing in exactly one logical update) and
    verify the empirical likelihood ratio stays within e^epsilon (with slack
    for sampling error).  This is the measurable core of Theorem 10.
    """

    def test_timer_single_window_likelihood_ratio(self):
        epsilon = 1.0
        period = 20
        trials = 6000
        rng = np.random.default_rng(4)
        stream_a = [True] * 10 + [False] * 10  # 10 arrivals in the window
        stream_b = [True] * 9 + [False] * 11  # neighboring: one fewer arrival

        def window_volume(stream, generator):
            pattern = simulate_timer_pattern(
                stream, 0, epsilon=epsilon, period=period, flush_size=0, rng=generator
            )
            return pattern.volume_at(period)

        a_volumes = np.array([window_volume(stream_a, rng) for _ in range(trials)])
        b_volumes = np.array([window_volume(stream_b, rng) for _ in range(trials)])
        # Compare probabilities of landing in coarse buckets.
        for low, high in [(0, 8), (8, 12), (12, 100)]:
            pa = np.mean((a_volumes >= low) & (a_volumes < high)) + 1e-4
            pb = np.mean((b_volumes >= low) & (b_volumes < high)) + 1e-4
            ratio = pa / pb
            assert ratio <= math.exp(epsilon) * 1.5
            assert ratio >= math.exp(-epsilon) / 1.5

    def test_set_like_patterns_are_identical_for_neighbors(self):
        """Sanity: with epsilon huge the noisy counts trivially differ; with
        the flush-only mechanism the pattern is identical for any stream."""
        rng = np.random.default_rng(5)
        a = simulate_timer_pattern(
            [True] * 100, 0, epsilon=1.0, period=10_000, flush_interval=25, flush_size=4, rng=rng
        )
        b = simulate_timer_pattern(
            [False] * 100, 0, epsilon=1.0, period=10_000, flush_interval=25, flush_size=4, rng=rng
        )
        a_flush = [(e.time, e.volume) for e in a if e.time > 0]
        b_flush = [(e.time, e.volume) for e in b if e.time > 0]
        assert a_flush == b_flush
