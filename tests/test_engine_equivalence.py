"""Engine/legacy equivalence: the event-driven run must reproduce the
per-tick loop bit for bit.

For every strategy and both back-ends, two identically-configured
simulations are executed -- one through :meth:`Simulation.run` (scheduled
events, incremental ground truth, batched ingestion) and one through
:meth:`Simulation.run_legacy` (the original loop, full rescans).  Their
:class:`RunResult`\\ s must compare equal on every field: timeline, query
traces, sync counts and update volumes.  This is the contract that makes
skipping quiet ticks safe: a skipped tick must be a strategy no-op, and the
incrementally maintained aggregates must equal a from-scratch rescan.
"""

from __future__ import annotations

import pytest

from repro.core.strategies.flush import FlushPolicy
from repro.simulation.experiment import (
    default_queries,
    make_backend,
    taxi_workloads,
)
from repro.simulation.simulator import Simulation, SimulationConfig

SCALE = 0.02  # ~864 time units; large enough to hit timers, flushes, queries

STRATEGIES = ("sur", "oto", "set", "dp-timer", "dp-ant")
BACKENDS = ("oblidb", "crypte")


@pytest.fixture(scope="module")
def workloads():
    return taxi_workloads(scale=SCALE, include_green=True, seed=11)


@pytest.fixture(scope="module")
def queries():
    return default_queries()


def build(workloads, queries, strategy, backend, **overrides):
    config = SimulationConfig(
        strategy=strategy,
        epsilon=overrides.pop("epsilon", 0.5),
        timer_period=overrides.pop("timer_period", 30),
        theta=15,
        flush=overrides.pop("flush", FlushPolicy(interval=300, size=5)),
        query_interval=overrides.pop("query_interval", 120),
        horizon=overrides.pop("horizon", None),
        seed=overrides.pop("seed", 6),
    )
    return Simulation(
        edb_factory=make_backend(backend, seed=2),
        workloads=workloads,
        queries=queries,
        config=config,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_engine_reproduces_legacy_loop(workloads, queries, strategy, backend):
    engine_result = build(workloads, queries, strategy, backend).run()
    legacy_result = build(workloads, queries, strategy, backend).run_legacy()
    assert engine_result == legacy_result


def test_equivalence_without_query_schedule(workloads, queries):
    engine_result = build(
        workloads, queries, "dp-timer", "oblidb", query_interval=0
    ).run()
    legacy_result = build(
        workloads, queries, "dp-timer", "oblidb", query_interval=0
    ).run_legacy()
    assert engine_result == legacy_result
    assert len(engine_result.timeline) == 1


def test_equivalence_with_truncated_horizon(workloads, queries):
    """A config horizon shorter than the stream cuts both paths identically."""
    engine_result = build(
        workloads, queries, "dp-ant", "oblidb", horizon=500
    ).run()
    legacy_result = build(
        workloads, queries, "dp-ant", "oblidb", horizon=500
    ).run_legacy()
    assert engine_result == legacy_result


def test_equivalence_with_flush_disabled(workloads, queries):
    engine_result = build(
        workloads, queries, "dp-timer", "oblidb", flush=FlushPolicy.disabled()
    ).run()
    legacy_result = build(
        workloads, queries, "dp-timer", "oblidb", flush=FlushPolicy.disabled()
    ).run_legacy()
    assert engine_result == legacy_result


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_equivalence_across_seeds(workloads, queries, seed):
    engine_result = build(workloads, queries, "dp-ant", "crypte", seed=seed).run()
    legacy_result = build(
        workloads, queries, "dp-ant", "crypte", seed=seed
    ).run_legacy()
    assert engine_result == legacy_result


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_held_noise_dp_ant_skips_ticks_equivalently(seed):
    """The held-noise DP-ANT variant must skip ticks without diverging.

    With ``resample_comparison_noise=False`` the strategy's ``next_event``
    actually skips quiet stretches (the resampling default wakes every
    tick), and that configuration is not reachable through ``make_strategy``
    -- so pin it here by driving an owner through the engine directly and
    comparing its update transcript against a per-tick loop.
    """
    import numpy as np

    from repro.core.owner import Owner
    from repro.core.strategies.dp_ant import DPANTStrategy
    from repro.edb.oblidb import ObliDB
    from repro.edb.records import Record, Schema, make_dummy_record
    from repro.engine import Engine
    from repro.workload.stream import GrowingDatabase

    horizon = 3_000
    schema = Schema("S", ("v",))

    def build_owner():
        strategy = DPANTStrategy(
            lambda t: make_dummy_record(schema, t),
            epsilon=1.0,
            theta=10,
            flush=FlushPolicy(interval=400, size=3),
            rng=np.random.default_rng(seed),
            resample_comparison_noise=False,
        )
        owner = Owner(
            schema=schema, strategy=strategy, edb=ObliDB(rng=np.random.default_rng(1))
        )
        owner.initialize([])
        return owner

    rng = np.random.default_rng(42)
    updates = [None] * horizon
    for t in np.sort(rng.choice(np.arange(1, horizon + 1), size=150, replace=False)):
        t = int(t)
        updates[t - 1] = Record(values={"v": t}, arrival_time=t, table="S")
    workload = GrowingDatabase(table="S", updates=updates)

    loop_owner = build_owner()
    for t, update in workload.iter_times():
        loop_owner.tick(t, update)

    engine_owner = build_owner()
    engine = Engine(horizon)
    engine.add_stream(
        "S",
        engine_owner.tick,
        workload.arrivals(),
        engine_owner.strategy.next_event,
    )
    stats = engine.run()

    assert engine_owner.update_pattern.as_tuples() == loop_owner.update_pattern.as_tuples()
    assert engine_owner.strategy.sync_count == loop_owner.strategy.sync_count
    assert engine_owner.logical_gap == loop_owner.logical_gap
    # The point of the held variant: most quiet ticks are actually skipped.
    assert stats.ticks_delivered < horizon / 2


@pytest.mark.parametrize("strategy", ("dp-timer", "dp-ant"))
def test_rng_isolation_per_table(queries, strategy):
    """Adding a table must not perturb the noise of the existing tables.

    With per-table SeedSequence children the primary table's noise is a
    function of its own child stream only, so its logical-gap trajectory (the
    primary-table series recorded in the timeline) is identical whether or
    not a second table participates in the run.  Under the previous shared
    generator the green table's draws would interleave and shift it.
    """
    both = taxi_workloads(scale=SCALE, include_green=True, seed=11)
    yellow_only = {"YellowCab": both["YellowCab"]}
    single = build(yellow_only, queries, strategy, "oblidb").run()
    paired = build(both, queries, strategy, "oblidb").run()
    assert [p.time for p in single.timeline] == [p.time for p in paired.timeline]
    assert [p.logical_gap for p in single.timeline] == [
        p.logical_gap for p in paired.timeline
    ]
