"""Exploring the privacy / accuracy / performance trade-off and the theory.

This example reproduces, at a reduced scale, the two "knobs" the paper
exposes (Sections 8.2 and 8.3) and checks the measured behaviour against the
analytical bounds of Theorems 6-9:

1. sweep the privacy budget epsilon for DP-Timer and DP-ANT and print the
   average query error / QET trends (Figure 5's shape);
2. sweep the non-privacy parameters T and theta at fixed epsilon (Figure 6's
   shape);
3. replay DP-Timer and DP-ANT once more and report how often the empirical
   logical gap stays below the theoretical high-probability bound.

Run with:  python examples/tradeoffs_and_bounds.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import check_ant_bounds, check_timer_bounds
from repro.analysis.tradeoff import parameter_tradeoff_series, privacy_tradeoff_series
from repro.simulation.experiment import run_parameter_sweep, run_privacy_sweep
from repro.workload.nyc_taxi import generate_yellow_cab

SCALE = 0.05           # 5% of June 2020: a couple of seconds per sweep point
QUERY_INTERVAL = 240


def privacy_sweep() -> None:
    print("=" * 72)
    print("1. Privacy sweep (Figure 5 shape): epsilon vs mean Q2 error / QET")
    print("=" * 72)
    sweep = run_privacy_sweep(
        epsilons=(0.01, 0.1, 0.5, 1.0, 10.0),
        scale=SCALE,
        query_interval=QUERY_INTERVAL,
    )
    series = privacy_tradeoff_series(sweep)
    for strategy, data in series.items():
        print(f"\n{strategy}:")
        print(f"  {'epsilon':>8} {'mean L1 error':>15} {'mean QET (s)':>14}")
        for (eps, err), (_, qet) in zip(data["error"], data["qet"]):
            print(f"  {eps:>8.3f} {err:>15.2f} {qet:>14.3f}")
    print(
        "\nExpected shape: DP-Timer's error falls as epsilon grows, DP-ANT's rises;"
        "\nboth get (slightly) faster with larger epsilon."
    )


def parameter_sweep() -> None:
    print()
    print("=" * 72)
    print("2. Non-privacy parameter sweep (Figure 6 shape) at epsilon = 0.5")
    print("=" * 72)
    for strategy, parameter in (("dp-timer", "T"), ("dp-ant", "theta")):
        sweep = run_parameter_sweep(
            strategy, values=(1, 10, 100, 1000), scale=SCALE, query_interval=QUERY_INTERVAL
        )
        series = parameter_tradeoff_series(sweep)
        print(f"\n{strategy} (sweeping {parameter}):")
        print(f"  {parameter:>8} {'mean L1 error':>15} {'mean QET (s)':>14}")
        for (value, err), (_, qet) in zip(series["error"], series["qet"]):
            print(f"  {value:>8.0f} {err:>15.2f} {qet:>14.3f}")
    print("\nExpected shape: error grows with T/theta, QET shrinks.")


def bound_checks() -> None:
    print()
    print("=" * 72)
    print("3. Theorems 6-9: empirical logical gap / size vs analytical bounds")
    print("=" * 72)
    workload = generate_yellow_cab(
        rng=np.random.default_rng(1), horizon=4000, target_records=1700
    )
    timer_gap, timer_size = check_timer_bounds(
        workload, epsilon=0.5, period=30, rng=np.random.default_rng(2)
    )
    ant_gap, ant_size = check_ant_bounds(
        workload, epsilon=0.5, theta=15, rng=np.random.default_rng(3)
    )
    for name, gap_checks, size_checks in (
        ("DP-Timer", timer_gap, timer_size),
        ("DP-ANT", ant_gap, ant_size),
    ):
        gap_ok = sum(1 for c in gap_checks if c.holds)
        size_ok = sum(1 for c in size_checks if c.holds)
        print(
            f"{name:<9} gap bound held at {gap_ok}/{len(gap_checks)} checkpoints; "
            f"size bound held at {size_ok}/{len(size_checks)}"
        )
        sample = gap_checks[len(gap_checks) // 2]
        print(
            f"          e.g. t={sample.time}: observed gap excess {sample.observed:.0f} "
            f"vs bound {sample.bound:.0f}"
        )


def main() -> None:
    privacy_sweep()
    parameter_sweep()
    bound_checks()


if __name__ == "__main__":
    main()
