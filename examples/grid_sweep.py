"""Run an experiment grid over the scenario registry, in parallel, with resume.

Demonstrates the parallel experiment runner:

* declare a scenario-matrix grid (strategies x scenarios x epsilon axis);
* run it on a process pool with live progress/ETA reporting;
* checkpoint every completed cell under an artifact directory;
* run the same grid again and watch every cell resume instantly.

Usage::

    PYTHONPATH=src python examples/grid_sweep.py [artifact_dir]
"""

from __future__ import annotations

import sys
import tempfile

from repro.simulation.runner import ExperimentGrid, GridRunner
from repro.workload.scenarios import list_scenarios


def main() -> None:
    artifact_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="grid_")

    print("Registered scenarios:")
    for scenario in list_scenarios():
        print(f"  {scenario.name:18s} {scenario.description}")
    print()

    grid = ExperimentGrid(
        strategies=("dp-timer", "dp-ant"),
        scenarios=("sparse", "multi-table-skew"),
        parameters={
            "epsilon": [0.1, 1.0],
            "scale": [0.2],
            "query_interval": [500],
        },
        base_seed=42,
    )
    print(f"Grid: {len(grid)} cells -> artifacts in {artifact_dir}\n")

    runner = GridRunner(n_workers=4, artifact_dir=artifact_dir, progress=True)
    outcome = runner.run(grid)

    print(f"\nCompleted {len(outcome)} cells in {outcome.elapsed_seconds:.2f}s")
    print(f"{'cell':55s} {'syncs':>6s} {'volume':>7s} {'gap':>6s}")
    for cell_id, result in outcome.results.items():
        print(
            f"{cell_id:55s} {result.sync_count:6d} {result.total_update_volume:7d} "
            f"{result.mean_logical_gap():6.1f}"
        )

    rerun = GridRunner(n_workers=4, artifact_dir=artifact_dir, progress=True).run(grid)
    print(
        f"\nRe-run resumed {len(rerun.resumed)}/{len(rerun)} cells from checkpoints "
        f"in {rerun.elapsed_seconds:.3f}s (results identical: "
        f"{rerun.results == outcome.results})"
    )


if __name__ == "__main__":
    main()
