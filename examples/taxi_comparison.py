"""The paper's evaluation workload, end to end, at a configurable scale.

Replays the June-2020 NYC taxi workload (synthetic stand-in matching the
published record counts and arrival shape) through DP-Sync under all five
synchronization strategies against the ObliDB back-end, runs the paper's
three test queries every six simulated hours, and prints a Table-5-style
summary plus the headline claims.

By default the workload is scaled to 10% of the full month so the example
finishes in a few seconds; pass a scale factor to change that:

    python examples/taxi_comparison.py          # 10% of June 2020
    python examples/taxi_comparison.py 1.0      # the full month (several minutes)
"""

from __future__ import annotations

import sys

from repro.simulation.experiment import EndToEndConfig, run_end_to_end
from repro.simulation.reporting import format_headline_claims, format_table5


def main(scale: float = 0.1) -> None:
    print(f"running the end-to-end comparison at scale {scale} (1.0 = full June 2020)\n")

    oblidb_config = EndToEndConfig(backend="oblidb", scale=scale, query_interval=360)
    oblidb_results = run_end_to_end(oblidb_config)

    crypte_config = EndToEndConfig(backend="crypte", scale=scale, query_interval=360)
    crypte_results = run_end_to_end(crypte_config)

    print(format_table5({"ObliDB": oblidb_results, "Crypt-epsilon": crypte_results}))
    print(format_headline_claims(oblidb_results))
    print()
    print("Per-strategy synchronization behaviour (ObliDB group):")
    header = f"{'strategy':<10} {'updates':>8} {'ciphertexts':>12} {'mean gap':>10}"
    print(header)
    print("-" * len(header))
    for strategy, result in oblidb_results.items():
        print(
            f"{strategy:<10} {result.sync_count:>8} {result.total_update_volume:>12} "
            f"{result.mean_logical_gap():>10.2f}"
        )


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    main(scale)
