"""Quickstart: outsource a growing table with a DP-protected update pattern.

This example walks through the complete DP-Sync workflow on a small sensor
table:

1. pick an encrypted database back-end (ObliDB, the L-0 oblivious simulator);
2. wrap it in a ``DPSync`` instance configured with the DP-Timer strategy;
3. replay a few hours of sensor events (at most one per minute);
4. query the outsourced table with SQL and compare against the ground truth;
5. inspect what the *server* actually observed: the update pattern.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DPSync, FlushPolicy, ObliDB, Schema


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. The table we want to outsource: one row per sensor event.
    schema = Schema(name="events", attributes=("sensor_id", "reading"))

    # 2. DP-Sync on top of an ObliDB-style encrypted database.  epsilon is the
    #    update-pattern privacy budget; T=30 means the owner synchronizes (a
    #    noisy number of records) every 30 minutes.
    dpsync = DPSync(
        schema,
        edb=ObliDB(),
        strategy="dp-timer",
        epsilon=0.5,
        period=30,
        flush=FlushPolicy(interval=500, size=10),
        rng=rng,
    )
    dpsync.start(initial_records=[])

    # 3. Replay six hours of events: a sensor fires roughly every third minute.
    horizon = 6 * 60
    arrivals = 0
    for minute in range(1, horizon + 1):
        if rng.random() < 0.35:
            arrivals += 1
            update = {"sensor_id": int(rng.integers(0, 8)), "reading": float(rng.normal())}
        else:
            update = None
        decision = dpsync.receive(minute, update)
        if decision.should_sync:
            print(
                f"[t={minute:4d}] synchronized {decision.volume:2d} records "
                f"({decision.real_count} real, {decision.dummy_count} dummy) "
                f"reason={decision.reason}"
            )

    # 4. Query the outsourced table.  The answer is exact up to the records
    #    the strategy has not synchronized yet (the logical gap).
    observation = dpsync.query("SELECT COUNT(*) FROM events")
    print()
    print(f"received so far        : {arrivals}")
    print(f"server-side answer     : {observation.answer}")
    print(f"ground-truth answer    : {observation.true_answer}")
    print(f"L1 error               : {observation.l1_error}")
    print(f"current logical gap    : {dpsync.logical_gap}")
    print(f"simulated QET          : {observation.qet_seconds:.3f}s")

    # 5. What the server saw: only (time, volume) pairs -- never the arrival
    #    times of individual records.
    pattern = dpsync.update_pattern
    print()
    print(f"update pattern ({len(pattern)} updates, {pattern.total_volume()} ciphertexts):")
    print("  " + ", ".join(f"({t}, {v})" for t, v in pattern.as_tuples()[:12]) + ", ...")
    print(f"update-pattern privacy : epsilon = {dpsync.epsilon}")
    print(f"accounted epsilon      : {dpsync.strategy.accountant.total_epsilon():.3f}")


if __name__ == "__main__":
    main()
