"""The introduction's IoT scenario: what update timing leaks, and the fix.

An IoT provider backs up smart-building sensor events to an encrypted cloud
database.  The building admin (who hosts the database) cannot decrypt
anything, but sees *when* backups arrive.  With the default sync-upon-receipt
behaviour the backup times are the event times, so the admin can reconstruct
exactly when people moved through the building.

This example quantifies that attack against every synchronization strategy:
it replays the same activity trace under SUR / SET / OTO / DP-Timer / DP-ANT
and reports how well an adversary observing only the update pattern can
reconstruct the activity timeline (precision / recall / F1), together with
the utility each strategy retains for the provider's own analysts.

Run with:  python examples/iot_update_leakage.py
"""

from __future__ import annotations

import numpy as np

from repro import DPSync, FlushPolicy, ObliDB, Schema
from repro.analysis.attacks import infer_activity_from_pattern

HORIZON = 12 * 60          # one working day in minutes
OCCUPANCY_RATE = 0.08      # a sparse stream of movement events


def replay(strategy_name: str, activity: list[bool], seed: int):
    """Run one strategy over the activity trace; return (dpsync, inference)."""
    schema = Schema(name="sensor_events", attributes=("sensor_id", "floor"))
    dpsync = DPSync(
        schema,
        edb=ObliDB(),
        strategy=strategy_name,
        epsilon=0.5,
        period=30,
        theta=10,
        flush=FlushPolicy(interval=240, size=5),
        rng=np.random.default_rng(seed),
    )
    dpsync.start([])
    rng = np.random.default_rng(seed + 1)
    for minute, active in enumerate(activity, start=1):
        update = None
        if active:
            update = {"sensor_id": int(rng.integers(0, 12)), "floor": int(rng.integers(1, 6))}
        dpsync.receive(minute, update)
    inference = infer_activity_from_pattern(dpsync.update_pattern, activity)
    return dpsync, inference


def main() -> None:
    rng = np.random.default_rng(2021)
    activity = list(rng.random(HORIZON) < OCCUPANCY_RATE)
    total_events = sum(activity)
    print(f"activity trace: {total_events} sensor events over {HORIZON} minutes\n")

    header = (
        f"{'strategy':<10} {'precision':>10} {'recall':>8} {'F1':>6} "
        f"{'logical gap':>12} {'dummies':>8} {'updates':>8}"
    )
    print(header)
    print("-" * len(header))
    for strategy in ("sur", "set", "oto", "dp-timer", "dp-ant"):
        dpsync, inference = replay(strategy, activity, seed=5)
        print(
            f"{strategy:<10} {inference.precision:>10.2f} {inference.recall:>8.2f} "
            f"{inference.f1:>6.2f} {dpsync.logical_gap:>12d} "
            f"{dpsync.strategy.synced_dummy_total:>8d} "
            f"{dpsync.strategy.sync_count:>8d}"
        )

    print()
    print("Reading the table:")
    print("  * SUR reconstructs the activity perfectly (F1 = 1.0): update times")
    print("    are event times.  No privacy.")
    print("  * SET/OTO defeat the attack but either flood the server with dummy")
    print("    updates (SET) or abandon all post-setup data (OTO: huge gap).")
    print("  * The DP strategies collapse the adversary's recall while keeping")
    print("    the logical gap -- and hence analyst error -- small and bounded.")


if __name__ == "__main__":
    main()
