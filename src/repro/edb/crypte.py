"""Crypt-epsilon-style L-DP encrypted database simulator.

Crypt-epsilon (Roy Chowdhury et al.) answers SQL aggregates over encrypted
data while adding differentially-private noise to every released statistic,
so the query protocol only ever leaks DP-protected response volumes -- the
**L-DP** group of Section 6.  DP-Sync composes with it directly because an
attacker can never learn the exact number of (dummy or real) records matching
a query.

The simulator reproduces:

* exact evaluation over the outsourced records (after dummy-aware rewriting),
  followed by Laplace noise on every released count, scaled by the per-query
  answer budget (the paper's evaluation uses epsilon_query = 3);
* no join support (Crypt-epsilon does not support join operators; the paper
  only runs Q1/Q2 against it);
* linear per-record query cost constants calibrated to Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.edb.base import EncryptedDatabase
from repro.edb.cost_model import CRYPTE_COSTS, CostParameters
from repro.edb.leakage import LeakageClass
from repro.query.ast import Query
from repro.query.executor import Answer

__all__ = ["CryptEpsilon"]


class CryptEpsilon(EncryptedDatabase):
    """Simulated Crypt-epsilon back-end (L-DP: DP response volumes).

    Parameters
    ----------
    query_epsilon:
        Privacy budget used to perturb each released count.  The paper's
        end-to-end comparison sets this to 3.
    round_answers:
        Whether to round noisy counts to integers (counts are integral in the
        real system's released output).
    mode:
        ``"fast"`` (default) evaluates the pre-noise aggregates with the
        vectorized columnar operators; ``"reference"`` keeps the row
        interpreter.  The per-group Laplace draws happen in answer order,
        which both modes produce identically (first-appearance group order),
        so noisy answers agree bit-for-bit at a fixed seed.
    """

    def __init__(
        self,
        query_epsilon: float = 3.0,
        round_answers: bool = True,
        simulate_encryption: bool = False,
        cost_parameters: CostParameters = CRYPTE_COSTS,
        rng: np.random.Generator | None = None,
        mode: str = "fast",
        ciphertext_store: str | None = None,
    ) -> None:
        if query_epsilon <= 0:
            raise ValueError("query_epsilon must be positive")
        super().__init__(
            cost_parameters=cost_parameters,
            scheme_name="Crypt-epsilon",
            query_leakage_class=LeakageClass.LDP,
            simulate_encryption=simulate_encryption,
            rng=rng,
            mode=mode,
            ciphertext_store=ciphertext_store,
        )
        self._query_epsilon = query_epsilon
        self._round_answers = round_answers

    @property
    def query_epsilon(self) -> float:
        """Per-query answer-perturbation budget."""
        return self._query_epsilon

    def _postprocess_answer(self, query: Query, answer: Answer) -> tuple[Answer, bool]:
        scale = 1.0 / self._query_epsilon
        if isinstance(answer, dict):
            noisy = {}
            for key, value in answer.items():
                noisy_value = value + float(self._rng.laplace(0.0, scale))
                noisy[key] = self._finalize(noisy_value)
            return noisy, True
        noisy_value = float(answer) + float(self._rng.laplace(0.0, scale))
        return self._finalize(noisy_value), True

    def _finalize(self, value: float) -> float | int:
        value = max(0.0, value)
        if self._round_answers:
            return int(round(value))
        return value
