"""Query-execution-time (QET) cost model.

The paper measures QET on an SGX testbed (ObliDB) and a crypto-assisted DP
engine (Crypt-epsilon).  A pure-Python reproduction cannot reproduce wall
clock seconds of those systems, so each EDB back-end charges simulated time
through this cost model.  The constants are calibrated against the mean QETs
reported in Table 5 so that

* the *shape* of every QET curve (linear in the number of outsourced records
  for Q1/Q2, quadratic for the join Q3) matches the paper, and
* the *ratios* between strategies (e.g. SET/DP >= 2.17x on Q1/Q2 and up to
  5.72x on Q3) are reproduced, because those ratios depend only on relative
  outsourced-data sizes.

Absolute seconds are therefore simulated values, not measurements; the
benchmark harness reports them alongside the paper's numbers for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import (
    AggregationKind,
    CountQuery,
    GroupByCountQuery,
    JoinCountQuery,
    MultiJoinCountQuery,
    Query,
)

__all__ = ["CostParameters", "CostModel", "OBLIDB_COSTS", "CRYPTE_COSTS"]


@dataclass(frozen=True)
class CostParameters:
    """Per-back-end cost constants.

    All time constants are in (simulated) seconds; storage in bytes.
    """

    #: Fixed per-query overhead (session setup, planning, attestation, ...).
    query_base: float
    #: Per outsourced record cost of a scalar filter/count scan (Q1 shape).
    count_scan_per_record: float
    #: Per outsourced record cost of a group-by aggregation (Q2 shape).
    groupby_per_record: float
    #: Per record-pair cost of an oblivious join (Q3 shape); ``None`` when the
    #: back-end does not support joins (Crypt-epsilon in the paper).
    join_per_pair: float | None
    #: Per record cost charged to Setup/Update protocol invocations.
    update_per_record: float
    #: Fixed per-update overhead.
    update_base: float
    #: Server-side storage footprint of one encrypted record (bytes).
    record_storage_bytes: float
    #: Multiplier applied to query costs when ORAM-backed storage is enabled.
    oram_factor: float = 1.0
    #: Per record (per observing view) cost of maintaining a registered
    #: delta view during ingest -- one histogram/counter update inside the
    #: enclave, far cheaper than the per-record scan work a query pays.
    view_update_per_record: float = 2.0e-5


#: ObliDB constants (ORAM enabled), calibrated to Table 5: mean QETs of
#: 5.39 s (Q1), 2.32 s (Q2) and 2.77 s (Q3) under SUR with a mean outsourced
#: table of roughly 9.2k records (and ~9.2k x 10.6k join pairs for Q3).
OBLIDB_COSTS = CostParameters(
    query_base=0.04,
    count_scan_per_record=5.8e-4,
    groupby_per_record=2.5e-4,
    join_per_pair=2.8e-8,
    update_per_record=2.0e-4,
    update_base=0.01,
    record_storage_bytes=16_400.0,
    oram_factor=1.0,
    view_update_per_record=2.0e-5,
)

#: Crypt-epsilon constants, calibrated to Table 5: mean QETs of 20.94 s (Q1)
#: and 76.34 s (Q2) under SUR; joins are unsupported.
CRYPTE_COSTS = CostParameters(
    query_base=0.30,
    count_scan_per_record=2.25e-3,
    groupby_per_record=8.3e-3,
    join_per_pair=None,
    update_per_record=1.0e-3,
    update_base=0.05,
    record_storage_bytes=51_200.0,
    oram_factor=1.0,
    view_update_per_record=1.0e-4,
)


@dataclass(frozen=True)
class CostModel:
    """Charges simulated time and storage for EDB protocol invocations."""

    parameters: CostParameters

    def setup_cost(self, num_records: int) -> float:
        """Simulated seconds to run the Setup protocol on ``num_records``."""
        return self.parameters.update_base + self.parameters.update_per_record * num_records

    def update_cost(self, num_records: int) -> float:
        """Simulated seconds to run the Update protocol on ``num_records``."""
        return self.parameters.update_base + self.parameters.update_per_record * num_records

    def ingest_cost(self, num_records: int, *, is_setup: bool = False) -> float:
        """Simulated seconds of one Setup/Update invocation over ``num_records``.

        This is the single charging point for both the per-record and the
        batched ingestion paths: a batch of ``n`` records in one invocation
        costs exactly what the sequential path charged for the same ``γ_t``
        (one ``update_base`` round-trip plus ``n`` per-record charges), so
        switching to ``insert_many`` can never change the simulated QET or
        update-duration observables.
        """
        return self.setup_cost(num_records) if is_setup else self.update_cost(num_records)

    def storage_bytes(self, num_records: int) -> float:
        """Server-side bytes occupied by ``num_records`` encrypted records."""
        return self.parameters.record_storage_bytes * num_records

    def query_cost(self, query: Query, table_sizes: dict[str, int]) -> float:
        """Simulated QET of ``query`` over tables of the given (total) sizes.

        ``table_sizes`` must include dummy records: oblivious operators touch
        every outsourced record, which is precisely why dummy-heavy strategies
        (SET) pay the performance penalty the paper reports.
        """
        params = self.parameters
        if isinstance(query, JoinCountQuery):
            if params.join_per_pair is None:
                raise UnsupportedQueryError(
                    f"{type(query).__name__} is not supported by this back-end"
                )
            left = table_sizes.get(query.left_table, 0)
            right = table_sizes.get(query.right_table, 0)
            work = params.join_per_pair * left * right
        elif isinstance(query, MultiJoinCountQuery):
            if params.join_per_pair is None:
                raise UnsupportedQueryError(
                    f"{type(query).__name__} is not supported by this back-end"
                )
            # The rescan lowering is a left-deep cascade of binary oblivious
            # joins probing the first table; charge each stage's pair work.
            first = table_sizes.get(query.join_tables[0], 0)
            work = sum(
                params.join_per_pair * first * table_sizes.get(table, 0)
                for table in query.join_tables[1:]
            )
        elif isinstance(query, GroupByCountQuery):
            size = table_sizes.get(query.table, 0)
            work = params.groupby_per_record * size
        elif isinstance(query, CountQuery):
            size = table_sizes.get(query.table, 0)
            work = params.count_scan_per_record * size
        elif query.kind is AggregationKind.GROUPED_COUNT:
            size = sum(table_sizes.get(t, 0) for t in query.tables)
            work = params.groupby_per_record * size
        else:
            size = sum(table_sizes.get(t, 0) for t in query.tables)
            work = params.count_scan_per_record * size
        return params.query_base + params.oram_factor * work

    def supports(self, query: Query) -> bool:
        """Whether the back-end can execute ``query`` at all."""
        if isinstance(query, (JoinCountQuery, MultiJoinCountQuery)):
            return self.parameters.join_per_pair is not None
        return True

    # -- delta-maintained views ------------------------------------------------

    def view_maintenance_cost(self, num_records: int, views_touched: int = 1) -> float:
        """Simulated seconds to apply one ingest delta to the observing views.

        O(|batch|) per view: each record updates one counter / histogram slot
        per view that observes its table.
        """
        return (
            self.parameters.view_update_per_record * num_records * views_touched
        )

    def maintained_query_cost(self, query: Query, answer=None) -> float:
        """Simulated seconds to answer ``query`` from maintained view state.

        The per-query protocol overhead survives (session setup and result
        marshalling happen either way); the data-dependent part shrinks from
        a full rescan to emitting the maintained answer -- O(1) for scalars,
        O(groups) for group-bys.
        """
        emitted = len(answer) if isinstance(answer, dict) else 1
        return (
            self.parameters.query_base
            + self.parameters.view_update_per_record * emitted
        )


class UnsupportedQueryError(RuntimeError):
    """Raised when a query type is not supported by an EDB back-end."""
