"""Persistent per-shard worker processes for the process shard executor.

``ShardRouter(executor="processes")`` moves every shard's state -- EDB,
ORAM, ciphertext arenas and RNG stream -- into its own long-lived worker
process.  The division of labour:

* :func:`shard_worker_main` is the worker loop: it owns the shard's
  :class:`~repro.edb.base.EncryptedDatabase` and serves protocol commands
  (Setup / Update / insert_many / query), state reads (transcripts, sizes)
  and arena publications over one duplex pipe, one command at a time.  The
  shard object crosses the process boundary exactly once, at startup (by
  fork inheritance on POSIX, one pickle on spawn platforms); afterwards only
  commands, answers and :class:`UpdateResult`/:class:`QueryResult` payloads
  travel the pipe -- shard state never pickles again.
* :class:`ShardWorkerClient` is the coordinator-side proxy.  It exposes the
  same surface as an in-process :class:`~repro.edb.base.EncryptedDatabase`
  (protocol methods, observable properties, ``supports``), so the router's
  scatter-gather code runs unchanged over process-backed shards; static
  facts (scheme name, cost model, leakage profile) are fetched once at
  startup, everything else is one synchronous round-trip per access.

Ciphertexts written by a worker (``simulate_encryption=True``) land in
:class:`~repro.edb.crypto.SharedCiphertextArena` segments, so the
coordinator reads them zero-copy through an
:class:`~repro.edb.crypto.ArenaSegmentCache` -- the worker publishes
``(segment_name, size)`` swaps; bytes never travel the pipe.

Determinism: the worker executes commands strictly in arrival order against
the very shard object (including its RNG stream state) the in-process
executors would have used, so answers, transcripts, leakage and
``QueryResult`` payloads are byte-identical to ``serial``/``threads`` --
``tests/test_scatter_concurrency.py`` pins this for every checkpoint.

Failure model: a worker that dies (crash, OOM kill) closes its pipe, so the
blocked coordinator call raises :class:`ShardWorkerDied` naming the shard
and the in-flight command -- scatter-gather never hangs on a dead pipe and
never silently merges partial answers.
"""

from __future__ import annotations

import os
import threading
import time as _time
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.edb.crypto import (
    ArenaSegmentCache,
    RecordCipher,
    SharedCiphertextArena,
)
from repro.edb.records import Record
from repro.util.mp import reap_process_segments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edb.base import EncryptedDatabase, QueryResult, UpdateResult
    from repro.edb.cost_model import CostModel
    from repro.edb.leakage import LeakageProfile
    from repro.query.ast import Query

__all__ = [
    "TransientShardError",
    "ShardWorkerDied",
    "ShardWorkerTimeout",
    "ShardWorkerClient",
    "shard_worker_main",
    "default_shard_timeout",
]

#: Default per-command pipe deadline when ``REPRO_SHARD_TIMEOUT_S`` is unset.
#: Generous -- a healthy worker answers in milliseconds; the deadline exists
#: so a wedged or dead worker turns into a typed error instead of a hang.
DEFAULT_SHARD_TIMEOUT_S: float = 60.0


def default_shard_timeout() -> float:
    """The configured per-command pipe deadline, in seconds.

    Reads ``REPRO_SHARD_TIMEOUT_S`` (the single knob unifying *every* pipe
    wait: command round-trips, shutdown handshakes, process joins); falls
    back to :data:`DEFAULT_SHARD_TIMEOUT_S`.  A non-positive or malformed
    value is a configuration error and raises immediately.
    """
    raw = os.environ.get("REPRO_SHARD_TIMEOUT_S")
    if raw is None or not raw.strip():
        return DEFAULT_SHARD_TIMEOUT_S
    timeout = float(raw)
    if timeout <= 0:
        raise ValueError(f"REPRO_SHARD_TIMEOUT_S must be positive, got {raw!r}")
    return timeout


class TransientShardError(RuntimeError):
    """A shard failure that is, in principle, recoverable by a supervisor.

    The common base of :class:`ShardWorkerDied`, :class:`ShardWorkerTimeout`
    and the chaos layer's injected faults: the shard's in-memory state must
    be treated as lost, but a fresh shard rebuilt from the latest durable
    snapshot plus the coordinator's replay journal can take its place
    (:mod:`repro.fleet.supervisor`).  Anything *not* derived from this class
    (protocol misuse, unsupported queries, integrity errors) propagates
    through the supervisor untouched.
    """

    def __init__(self, shard_index: int, command: str, message: str) -> None:
        self.shard_index = shard_index
        self.command = command
        super().__init__(message)


class ShardWorkerDied(TransientShardError):
    """A shard worker process died while (or before) serving a command.

    Raised by the coordinator-side proxy instead of hanging on the closed
    pipe; carries the shard index, the command that was in flight and the
    worker's exit code (``-signal`` for a kill, ``None`` when the process
    had not yet been reaped) so a failed scatter names its culprit.
    """

    def __init__(
        self, shard_index: int, command: str, exit_code: int | None = None
    ) -> None:
        self.exit_code = exit_code
        exit_note = "" if exit_code is None else f" (exit code {exit_code})"
        super().__init__(
            shard_index,
            command,
            f"shard {shard_index} worker died during {command!r}{exit_note}; "
            "its partial state is lost and the gathered result was discarded",
        )


class ShardWorkerTimeout(TransientShardError):
    """A shard worker missed its per-command reply deadline.

    The worker may be wedged, mid-crash, or a chaos fault swallowed/delayed
    the pipe message; either way its state is unknown, so the coordinator
    treats it exactly like a death: the in-flight call fails loudly and a
    supervisor (if any) discards the worker and rebuilds the shard.
    """

    def __init__(self, shard_index: int, command: str, timeout_s: float) -> None:
        self.timeout_s = timeout_s
        super().__init__(
            shard_index,
            command,
            f"shard {shard_index} worker did not answer {command!r} within "
            f"{timeout_s:g}s; its state is unknown and the call was abandoned",
        )


#: Worker-side attribute/method allowlist for the generic state-read
#: commands.  Everything here is an observable the router (or a test)
#: legitimately reads; keeping it explicit documents the remote surface.
_READABLE_ATTRS = frozenset(
    {
        "scheme_name",
        "edb_mode",
        "ciphertext_store",
        "is_setup",
        "update_history",
        "outsourced_count",
        "dummy_count",
        "real_count",
        "storage_bytes",
        "registered_views",
        "view_answering",
        "query_work_seconds",
        "view_maintenance_seconds",
        "simulated_work_seconds",
        "maintained_query_count",
    }
)
_CALLABLE_METHODS = frozenset(
    {"table_size", "table_dummy_count", "supports", "setup", "update",
     "insert_many", "query", "register_view", "set_view_answering"}
)


def _shared_arena_factory() -> SharedCiphertextArena:
    return SharedCiphertextArena()


def _arena_states(shard: "EncryptedDatabase") -> dict[str, dict]:
    """Published ``export_state`` of every shared arena the shard holds."""
    states: dict[str, dict] = {}
    for table, arena in getattr(shard, "_arenas", {}).items():
        if isinstance(arena, SharedCiphertextArena):
            states[table] = arena.export_state()
    return states


def shard_worker_main(conn: Connection, shard: "EncryptedDatabase", index: int) -> None:
    """Worker process entry point: serve shard commands until shutdown.

    The loop is strictly sequential -- one command, one reply -- so command
    order on the pipe *is* execution order on the shard, which is what makes
    process fan-out observably identical to the serial loop.  Every reply
    carries the worker-side execution seconds so the coordinator can split
    its measured wall clock into shard compute vs boundary overhead.
    """
    if getattr(shard, "set_arena_factory", None) is not None:
        # Ciphertext arenas created from now on live in named shared memory
        # so the coordinator can read rows zero-copy.  Fresh shards arrive
        # empty; a shard restored from a durable snapshot arrives with
        # process-local arenas, which are converted here (rows, handles and
        # indices verbatim) so published handles resolve again.
        shard.set_arena_factory(_shared_arena_factory)
        if getattr(shard, "_arenas", None):
            shard.rebuild_arenas()
    # Chaos arming state (repro.testing.chaos): a "chaos_delay" command makes
    # the worker sleep before serving the *next* real command (so the
    # coordinator's reply deadline fires); a "chaos_drop" makes it swallow the
    # next real command entirely -- received, never dispatched, never answered.
    # Both leave the worker desynchronized on purpose: a supervisor treats the
    # resulting timeout like a death and rebuilds the shard from its snapshot.
    pending_delay_s = 0.0
    drop_next_command = False
    try:
        while True:
            try:
                command, args = conn.recv()
            except (EOFError, OSError):
                break
            if command == "chaos_delay":
                (pending_delay_s,) = args
                conn.send(("ok", None, 0.0))
                continue
            if command == "chaos_drop":
                drop_next_command = True
                conn.send(("ok", None, 0.0))
                continue
            if drop_next_command:
                drop_next_command = False
                continue
            if pending_delay_s:
                _time.sleep(pending_delay_s)
                pending_delay_s = 0.0
            if command == "shutdown":
                for table_arena in getattr(shard, "_arenas", {}).values():
                    table_arena.release()
                conn.send(("ok", None, 0.0))
                break
            started = _time.perf_counter()
            try:
                payload = _dispatch(shard, command, args)
                conn.send(("ok", payload, _time.perf_counter() - started))
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                busy = _time.perf_counter() - started
                try:
                    conn.send(("error", exc, busy))
                except Exception:
                    # Unpicklable exception: forward a faithful description.
                    conn.send(
                        ("error", RuntimeError(f"{type(exc).__name__}: {exc}"), busy)
                    )
    finally:
        conn.close()


def _dispatch(shard: "EncryptedDatabase", command: str, args: tuple):
    if command == "hello":
        return {
            "scheme_name": shard.scheme_name,
            "edb_mode": shard.edb_mode,
            "ciphertext_store": getattr(shard, "ciphertext_store", None),
            "cost_model": shard.cost_model,
            "leakage_profile": shard.leakage_profile,
            "query_executors": getattr(shard, "query_executors", ("rows",)),
        }
    if command == "attr":
        (name,) = args
        if name not in _READABLE_ATTRS:
            raise AttributeError(f"attribute {name!r} is not remotely readable")
        return getattr(shard, name)
    if command == "cipher_key":
        cipher = getattr(shard, "cipher", None)
        return None if cipher is None else cipher.key
    if command == "arena_states":
        return _arena_states(shard)
    if command == "snapshot":
        # Serialized worker-side so the bytes carry the authoritative shard
        # state (RNG stream, ORAM maps, arenas) -- only the blob crosses
        # the pipe.  Imported lazily: the worker loop must not pay for the
        # store module unless durability is in use.
        from repro.edb.store import snapshot_backend

        return snapshot_backend(shard)
    if command == "rotate_key":
        (new_key,) = args
        shard.rotate_key(new_key)
        return None
    if command in _CALLABLE_METHODS:
        return getattr(shard, command)(*args)
    raise ValueError(f"unknown shard-worker command {command!r}")


class ShardWorkerClient:
    """Coordinator-side proxy for one shard living in a worker process.

    Mirrors the :class:`~repro.edb.base.EncryptedDatabase` surface the
    router and the test suite touch, one synchronous pipe round-trip per
    call.  The proxy is thread-compatible with the router's fan-out pool (a
    lock serializes pipe use; concurrent calls target *different* shards,
    so the lock is never contended on the scatter path).

    Measured-wall-clock bookkeeping: ``busy_seconds`` accumulates the
    worker-reported execution time (true shard compute), and
    ``overhead_seconds`` the remainder of each round trip (pickling,
    transport, scheduling) -- the serialization-overhead counter
    :class:`~repro.edb.router.WallClockStats` surfaces per shard.
    """

    def __init__(
        self,
        shard: "EncryptedDatabase",
        index: int,
        context,
        start: bool = True,
        timeout_s: float | None = None,
    ) -> None:
        self.shard_index = index
        self.busy_seconds = 0.0
        self.overhead_seconds = 0.0
        self.commands = 0
        # One deadline governs every pipe wait on this client: command
        # round-trips, the shutdown handshake and process joins.
        self._timeout_s = default_shard_timeout() if timeout_s is None else timeout_s
        self._lock = threading.Lock()
        self._arena_cache: ArenaSegmentCache | None = None
        self._cipher: RecordCipher | None = None
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        self._process = context.Process(
            target=shard_worker_main,
            args=(child_conn, shard, index),
            name=f"shard-worker-{index}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._info = self._call("hello")

    # -- pipe plumbing --------------------------------------------------------

    def _call(self, command: str, *args):
        with self._lock:
            started = _time.perf_counter()
            try:
                self._conn.send((command, args))
                if not self._conn.poll(self._timeout_s):
                    # The worker is wedged (or a chaos fault ate the message).
                    # Its state is unknown; a late reply would desynchronize
                    # the pipe, so the proxy is poisoned until closed/replaced.
                    raise ShardWorkerTimeout(
                        self.shard_index, command, self._timeout_s
                    )
                status, payload, busy = self._conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                raise ShardWorkerDied(
                    self.shard_index, command, exit_code=self._process.exitcode
                ) from None
            wall = _time.perf_counter() - started
            self.busy_seconds += busy
            self.overhead_seconds += max(0.0, wall - busy)
            self.commands += 1
        if status == "error":
            raise payload
        return payload

    @property
    def process(self):
        """The worker process handle (crash tests kill it through this)."""
        return self._process

    def close(self) -> None:
        """Shut the worker down (idempotent; never hangs on a dead worker)."""
        if self._arena_cache is not None:
            self._arena_cache.close()
            self._arena_cache = None
        if self._process.is_alive():
            try:
                with self._lock:
                    self._conn.send(("shutdown", ()))
                    if self._conn.poll(self._timeout_s):
                        self._conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._process.join(timeout=self._timeout_s)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=self._timeout_s)
        if self._process.exitcode not in (0, None):
            # The worker died (or was killed) before its shutdown handshake
            # released its arenas; sweep the named segments it left behind.
            reap_process_segments(self._process.pid)

    # -- protocol surface (what the router scatters) --------------------------

    def setup(self, records: Iterable[Record], time: int = 0) -> "UpdateResult":
        return self._call("setup", list(records), time)

    def update(self, records: Iterable[Record], time: int) -> "UpdateResult":
        return self._call("update", list(records), time)

    def insert_many(
        self, batches: Mapping[str, Sequence[Record]], time: int
    ) -> "UpdateResult":
        return self._call("insert_many", dict(batches), time)

    def query(
        self, query: "Query", time: int = 0, executor: "str | None" = None
    ) -> "QueryResult":
        if executor is None:
            return self._call("query", query, time)
        return self._call("query", query, time, executor)

    @property
    def query_executors(self) -> tuple[str, ...]:
        return tuple(self._info.get("query_executors", ("rows",)))

    def supports(self, query: "Query") -> bool:
        return self._call("supports", query)

    # -- delta-maintained views ------------------------------------------------

    def register_view(self, query: "Query") -> bool:
        return self._call("register_view", query)

    def set_view_answering(self, enabled: bool) -> None:
        self._call("set_view_answering", enabled)

    @property
    def registered_views(self) -> tuple:
        return self._call("attr", "registered_views")

    @property
    def view_answering(self) -> bool:
        return self._call("attr", "view_answering")

    @property
    def query_work_seconds(self) -> float:
        return self._call("attr", "query_work_seconds")

    @property
    def view_maintenance_seconds(self) -> float:
        return self._call("attr", "view_maintenance_seconds")

    @property
    def simulated_work_seconds(self) -> float:
        return self._call("attr", "simulated_work_seconds")

    @property
    def maintained_query_count(self) -> int:
        return self._call("attr", "maintained_query_count")

    # -- observable state ------------------------------------------------------

    @property
    def scheme_name(self) -> str:
        return self._info["scheme_name"]

    @property
    def edb_mode(self) -> str:
        return self._info["edb_mode"]

    @property
    def ciphertext_store(self) -> str | None:
        return self._info["ciphertext_store"]

    @property
    def cost_model(self) -> "CostModel":
        return self._info["cost_model"]

    @property
    def leakage_profile(self) -> "LeakageProfile":
        return self._info["leakage_profile"]

    @property
    def is_setup(self) -> bool:
        return self._call("attr", "is_setup")

    @property
    def update_history(self) -> tuple:
        return self._call("attr", "update_history")

    @property
    def outsourced_count(self) -> int:
        return self._call("attr", "outsourced_count")

    @property
    def dummy_count(self) -> int:
        return self._call("attr", "dummy_count")

    @property
    def real_count(self) -> int:
        return self._call("attr", "real_count")

    @property
    def storage_bytes(self) -> float:
        return self._call("attr", "storage_bytes")

    def table_size(self, table: str) -> int:
        return self._call("table_size", table)

    def table_dummy_count(self, table: str) -> int:
        return self._call("table_dummy_count", table)

    # -- durability & key lifecycle -------------------------------------------

    def snapshot(self) -> bytes:
        """Worker-side :func:`repro.edb.store.snapshot_backend` bytes."""
        return self._call("snapshot")

    # -- chaos hooks (deterministic fault injection) ---------------------------

    def chaos_delay(self, seconds: float) -> None:
        """Arm the worker to sleep ``seconds`` before its next real command."""
        self._call("chaos_delay", seconds)

    def chaos_drop(self) -> None:
        """Arm the worker to swallow its next real command without replying."""
        self._call("chaos_drop")

    def rotate_key(self, new_key: bytes | None = None) -> None:
        """Re-key the worker's shard in place (arena rows stay addressable).

        The coordinator-side cipher cache is dropped first, so the next
        :attr:`cipher` access fetches the post-rotation key.
        """
        self._cipher = None
        self._call("rotate_key", new_key)

    # -- zero-copy ciphertext access ------------------------------------------

    @property
    def cipher(self) -> RecordCipher | None:
        """A coordinator-side cipher sharing the worker shard's key.

        ``None`` when the shard does not simulate encryption.  Decrypting a
        zero-copy arena row with it proves the bytes in the shared segment
        are the worker's real ciphertexts.
        """
        if self._cipher is None:
            key = self._call("cipher_key")
            if key is None:
                return None
            self._cipher = RecordCipher(key=key)
        return self._cipher

    def arena_cache(self) -> ArenaSegmentCache:
        """The attachment cache resolving this shard's published arenas."""
        if self._arena_cache is None:
            self._arena_cache = ArenaSegmentCache()
        return self._arena_cache

    def ciphertexts(self, table: str) -> tuple:
        """Zero-copy views of the worker's stored ciphertexts for ``table``.

        Fetches the arena's published ``(segment_name, size)`` state (a tiny
        control message), attaches the named segment and returns
        :class:`~repro.edb.crypto.ArenaRecord` views over it -- ciphertext
        bytes themselves never travel the pipe.  Returns ``()`` when the
        shard holds no (shared) arena for the table.
        """
        states = self._call("arena_states")
        state = states.get(table)
        if state is None:
            return ()
        view = self.arena_cache().publish(state)
        return view.records()

    def stats(self) -> tuple[float, float, int]:
        """Cumulative (busy_seconds, overhead_seconds, commands) counters."""
        return self.busy_seconds, self.overhead_seconds, self.commands
