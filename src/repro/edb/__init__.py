"""Encrypted-database substrate.

DP-Sync does not modify the encrypted database (EDB) it runs on top of; it
only constrains the owner's synchronization behaviour.  To evaluate the
framework end to end this package provides the EDB side of the system:

* :mod:`repro.edb.records` -- plaintext records, schemas and dummy records.
* :mod:`repro.edb.crypto` -- simulated record-level semantically-secure
  encryption; real and dummy records are indistinguishable once encrypted.
* :mod:`repro.edb.leakage` -- the leakage classification of Section 6
  (L-0 / L-DP / L-1 / L-2) and the scheme registry behind Table 3.
* :mod:`repro.edb.oram` -- a Path ORAM simulator used by the L-0 back-end.
* :mod:`repro.edb.base` -- the ``Setup`` / ``Update`` / ``Query`` protocol
  interface (Definition 1) shared by all back-ends.
* :mod:`repro.edb.oblidb` -- an ObliDB-style L-0 (access-pattern and
  volume-hiding) back-end.
* :mod:`repro.edb.crypte` -- a Crypt-epsilon-style L-DP back-end that answers
  queries with differentially-private noise.
* :mod:`repro.edb.cost_model` -- the query-execution-time model calibrated to
  the paper's testbed.
* :mod:`repro.edb.router` -- :class:`ShardRouter`, hash-partitioning one
  logical EDB across K independent back-end shards with scatter-gather
  queries and aggregated update-pattern leakage.
"""

from repro.edb.records import (
    DUMMY_SENTINEL,
    Record,
    Schema,
    make_dummy_record,
)
from repro.edb.crypto import EncryptedRecord, RecordCipher
from repro.edb.leakage import (
    LeakageClass,
    LeakageProfile,
    SchemeInfo,
    classify_scheme,
    compatible_with_dpsync,
    leakage_group_table,
)
from repro.edb.base import (
    EDB_MODES,
    EncryptedDatabase,
    QueryResult,
    UpdateResult,
    resolve_edb_mode,
)
from repro.edb.oram import PathORAM, ReferencePathORAM, make_oram
from repro.edb.oblidb import ObliDB
from repro.edb.crypte import CryptEpsilon
from repro.edb.router import ShardRouter
from repro.edb.cost_model import CostModel, CostParameters

__all__ = [
    "CostModel",
    "CostParameters",
    "CryptEpsilon",
    "DUMMY_SENTINEL",
    "EDB_MODES",
    "EncryptedDatabase",
    "EncryptedRecord",
    "LeakageClass",
    "LeakageProfile",
    "ObliDB",
    "PathORAM",
    "QueryResult",
    "Record",
    "RecordCipher",
    "ReferencePathORAM",
    "Schema",
    "SchemeInfo",
    "ShardRouter",
    "UpdateResult",
    "classify_scheme",
    "compatible_with_dpsync",
    "leakage_group_table",
    "make_dummy_record",
    "make_oram",
    "resolve_edb_mode",
]
