"""Path ORAM simulators: an array-backed fast path and a pure-Python reference.

ObliDB (the L-0 back-end evaluated in the paper) stores tables either as flat
arrays scanned obliviously or inside an ORAM so that point accesses do not
reveal which record was touched.  This module implements a faithful,
laptop-scale Path ORAM (Stefanov et al.) over opaque block payloads:

* a complete binary tree of buckets with ``bucket_size`` slots each,
* a client-side position map and stash,
* the standard access protocol: read the path for the block's leaf, remap the
  block to a fresh random leaf, write the path back greedily from the leaves.

Two interchangeable implementations are provided behind one API:

* :class:`PathORAM` -- the **fast path**: the tree lives in flat NumPy
  ``(num_nodes, bucket_size)`` slot arrays, path-node indices are computed
  with vectorized shifts, and :meth:`PathORAM.write_many` performs a *single
  combined eviction* for the whole batch -- every distinct tree node on the
  union of the batch's paths is read and written exactly once, instead of
  once per item.  Per-item RNG consumption is identical to the reference
  (one leaf draw for an absent block, one remap draw per item), so position
  maps evolve identically at a fixed seed.
* :class:`ReferencePathORAM` -- the original pure-Python implementation,
  kept as the executable specification.  Its ``write_many`` loops one
  oblivious access per item.  The differential and property tests pin the
  fast path against it.

Both simulators expose the *access transcript* (which tree nodes were
touched) so tests can verify obliviousness: the distribution of touched
paths is independent of the logical access sequence.  They also count
physical block reads/writes and distinct node touches, which the ObliDB
cost model charges for -- batched accesses are accounted with the same
per-block constants as sequential ones, they simply touch fewer nodes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

__all__ = [
    "ORAMStats",
    "PathORAM",
    "ReferencePathORAM",
    "make_oram",
]


@dataclass
class ORAMStats:
    """Physical-access counters maintained by the ORAM."""

    accesses: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    stash_peak: int = 0
    #: Distinct tree nodes touched by accesses (a batch touches the union of
    #: its paths once; the sequential reference touches one path per item).
    nodes_touched: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.stash_peak = 0
        self.nodes_touched = 0


def _tree_geometry(capacity: int) -> tuple[int, int, int]:
    """(height, num_leaves, num_nodes) of the complete bucket tree."""
    height = max(1, int(np.ceil(np.log2(max(2, capacity)))))
    num_leaves = 2**height
    num_nodes = 2 ** (height + 1) - 1
    return height, num_leaves, num_nodes


def _position_map_snapshot(
    position_map: dict[int, int], stash: "dict | Iterable[int]"
) -> dict:
    """Deterministic, checksummed view of client-side ORAM metadata.

    Sorted ``(block_id, leaf)`` pairs plus the stash's block ids, with a
    SHA-256 over their canonical JSON encoding.  Shared by both ORAM
    implementations so the durable store can persist the snapshot alongside
    the pickled ORAM and verify on restore that the position map survived
    the round trip bit-exactly.
    """
    positions = sorted(
        (int(block), int(leaf)) for block, leaf in position_map.items()
    )
    stash_ids = sorted(int(block) for block in stash)
    encoded = json.dumps(
        {"positions": positions, "stash": stash_ids}, separators=(",", ":")
    ).encode()
    return {
        "positions": positions,
        "stash": stash_ids,
        "checksum": hashlib.sha256(encoded).hexdigest(),
    }


def _check_batch_capacity(
    position_map: dict[int, int], capacity: int, block_ids: Iterable[int]
) -> None:
    """Reject a write batch that would overflow ``capacity``, atomically.

    Shared by both implementations so the overflow predicate (and the error
    both differential tests match) can never drift between them: the whole
    batch is validated before any state change or RNG draw.
    """
    new_ids = {b for b in block_ids if b not in position_map}
    if len(position_map) + len(new_ids) > capacity:
        raise ValueError(f"ORAM capacity of {capacity} blocks exceeded")


class PathORAM:
    """Array-backed Path ORAM over opaque payloads keyed by integer block ids.

    The bucket tree is stored as two flat ``(num_nodes, bucket_size)`` int64
    arrays (block id per slot, assigned leaf per slot; ``-1`` marks an empty
    slot), payloads live in a side table keyed by block id, and the stash is
    an insertion-ordered ``block id -> leaf`` map that is lowered to NumPy
    arrays for the vectorized eviction pass.

    Parameters
    ----------
    capacity:
        Maximum number of logical blocks that can be stored.  The tree height
        is chosen so that the number of leaves is at least ``capacity``.
    bucket_size:
        Number of block slots per tree node (Z in the Path ORAM paper;
        4 is the standard choice).
    rng:
        Random generator used for leaf remapping.  Passing an explicitly
        seeded generator makes every access sequence reproducible.
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self._capacity = capacity
        self._bucket_size = bucket_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self._height, self._num_leaves, self._num_nodes = _tree_geometry(capacity)
        self._slot_ids = np.full((self._num_nodes, bucket_size), -1, dtype=np.int64)
        self._slot_leaves = np.full((self._num_nodes, bucket_size), -1, dtype=np.int64)
        self._payloads: dict[int, Any] = {}
        self._position_map: dict[int, int] = {}
        self._stash: dict[int, int] = {}
        self.stats = ORAMStats()
        self.last_path: tuple[int, ...] = ()

    # -- public API --------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of logical blocks."""
        return self._capacity

    @property
    def height(self) -> int:
        """Tree height (root has depth 0)."""
        return self._height

    @property
    def num_leaves(self) -> int:
        """Number of leaf buckets."""
        return self._num_leaves

    def __len__(self) -> int:
        return len(self._position_map)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._position_map

    def stash_size(self) -> int:
        """Current number of blocks waiting in the client stash."""
        return len(self._stash)

    def position_map_snapshot(self) -> dict:
        """Checksummed snapshot of the position map and stash (see
        :func:`_position_map_snapshot`); persisted by the durable store."""
        return _position_map_snapshot(self._position_map, self._stash)

    def write(self, block_id: int, payload: Any) -> None:
        """Insert or overwrite the block ``block_id`` with ``payload``."""
        _check_batch_capacity(self._position_map, self._capacity, [block_id])
        self._batch_access([(block_id, payload)], is_write=True)

    def write_many(self, items: Iterable[tuple[int, Any]]) -> None:
        """Insert a batch of ``(block_id, payload)`` pairs with one eviction.

        The whole batch is served as one combined oblivious access: every
        item's path is fetched, but each distinct tree node on the union of
        those paths is read -- and greedily written back -- exactly once.
        Per-item leaf remaps are still drawn independently, so the access
        pattern remains a set of uniformly random paths.
        """
        batch = list(items)
        if not batch:
            return
        _check_batch_capacity(
            self._position_map, self._capacity, (block_id for block_id, _ in batch)
        )
        self._batch_access(batch, is_write=True)

    def read(self, block_id: int) -> Any:
        """Read the payload of ``block_id`` (raises ``KeyError`` if absent)."""
        if block_id not in self._position_map:
            raise KeyError(f"block {block_id} is not stored in the ORAM")
        return self._batch_access([(block_id, None)], is_write=False)[0]

    def read_all(self) -> dict[int, Any]:
        """Return payloads of all stored blocks (a full oblivious scan).

        A full scan touches the entire tree, so it is charged as reading every
        bucket once; this is what ObliDB's oblivious full-scan operators do.
        """
        self.stats.blocks_read += self._num_nodes * self._bucket_size
        self.stats.nodes_touched += self._num_nodes
        result: dict[int, Any] = {}
        stored = self._slot_ids[self._slot_ids >= 0]
        for block_id in stored.tolist():
            result[block_id] = self._payloads[block_id]
        for block_id in self._stash:
            result[block_id] = self._payloads[block_id]
        return result

    # -- internals ----------------------------------------------------------

    def _path_nodes(self, leaf: int) -> list[int]:
        """Indices of tree nodes from root to the given leaf."""
        base = leaf + self._num_leaves
        return [(base >> (self._height - d)) - 1 for d in range(self._height + 1)]

    def _batch_access(self, items: list[tuple[int, Any]], is_write: bool) -> list[Any]:
        """Serve ``items`` as one combined access with a single eviction."""
        k = len(items)
        height, leaves_n = self._height, self._num_leaves
        self.stats.accesses += k

        # Per-item RNG draws, in the same order as sequential accesses: one
        # path draw for an absent block, then one remap draw for every item.
        position_map = self._position_map
        batch_ids = {block_id for block_id, _ in items}
        if (
            is_write
            and k > 1
            and len(batch_ids) == k
            and not any(block_id in position_map for block_id in batch_ids)
        ):
            # Pure-insert batch of distinct blocks (the ingest hot loop):
            # every item draws exactly (read leaf, remap leaf), so the whole
            # interleaved sequence is one vectorized draw of 2k integers --
            # NumPy fills bounded-integer arrays from the same bit stream as
            # repeated single draws, which the lockstep position-map tests
            # pin.  A batch re-writing an existing block (or repeating an id)
            # falls back to the per-item loop, whose draw count is data
            # dependent.
            draws = self._rng.integers(0, leaves_n, size=2 * k)
            read_leaves = draws[0::2].copy()
            for index, (block_id, _) in enumerate(items):
                position_map[block_id] = int(draws[2 * index + 1])
        else:
            read_leaves = np.empty(k, dtype=np.int64)
            for index, (block_id, _) in enumerate(items):
                leaf = position_map.get(block_id)
                if leaf is None:
                    leaf = int(self._rng.integers(0, leaves_n))
                new_leaf = int(self._rng.integers(0, leaves_n))
                position_map[block_id] = new_leaf
                read_leaves[index] = leaf

        # Vectorized root-to-leaf node indices: ancestor of leaf ``l`` at
        # depth ``d`` is ``((l + num_leaves) >> (height - d)) - 1``.
        bases = read_leaves + leaves_n
        depths = np.arange(height + 1, dtype=np.int64)
        path_matrix = (bases[:, None] >> (height - depths)[None, :]) - 1
        self.last_path = tuple(path_matrix[-1].tolist())
        union = np.unique(path_matrix)

        # Read every distinct node on the union of paths into the stash.
        bucket_ids = self._slot_ids[union]
        bucket_leaves = self._slot_leaves[union]
        occupied = bucket_ids >= 0
        for block_id, leaf in zip(
            bucket_ids[occupied].tolist(), bucket_leaves[occupied].tolist()
        ):
            self._stash[block_id] = leaf
        self._slot_ids[union] = -1
        self._slot_leaves[union] = -1
        self.stats.blocks_read += int(union.size) * self._bucket_size
        self.stats.nodes_touched += int(union.size)

        # Serve the requests from the stash / payload table.
        results: list[Any] = []
        for block_id, payload in items:
            if is_write:
                self._payloads[block_id] = payload
                self._stash[block_id] = self._position_map[block_id]
            else:
                if block_id not in self._stash:
                    raise KeyError(f"block {block_id} missing from ORAM path and stash")
                self._stash[block_id] = self._position_map[block_id]
                results.append(self._payloads[block_id])

        self.stats.stash_peak = max(self.stats.stash_peak, len(self._stash))
        self._evict(union, path_matrix)
        return results

    def _evict(self, union: np.ndarray, path_matrix: np.ndarray) -> None:
        """Greedy deepest-first write-back over the union of fetched paths.

        Every node in ``union`` was emptied by the read phase, so each can
        accept up to ``bucket_size`` stash blocks.  Levels are processed from
        the leaves up; within a level, placement is resolved with one stable
        sort over the eligible stash blocks (rank within bucket = slot).
        """
        height, leaves_n, z = self._height, self._num_leaves, self._bucket_size
        if self._stash:
            stash_ids = np.fromiter(self._stash.keys(), dtype=np.int64, count=len(self._stash))
            stash_leaves = np.fromiter(
                self._stash.values(), dtype=np.int64, count=len(self._stash)
            )
            placed = np.zeros(stash_ids.size, dtype=bool)
            for depth in range(height, -1, -1):
                level_nodes = np.unique(path_matrix[:, depth])
                candidate_nodes = ((stash_leaves + leaves_n) >> (height - depth)) - 1
                eligible = ~placed & np.isin(candidate_nodes, level_nodes)
                if not eligible.any():
                    continue
                idx = np.flatnonzero(eligible)
                nodes = candidate_nodes[idx]
                order = np.argsort(nodes, kind="stable")
                idx, nodes = idx[order], nodes[order]
                starts = np.flatnonzero(np.r_[True, nodes[1:] != nodes[:-1]])
                rank = np.arange(nodes.size) - np.repeat(starts, np.diff(np.r_[starts, nodes.size]))
                fits = rank < z
                sel_idx, sel_nodes, sel_rank = idx[fits], nodes[fits], rank[fits]
                self._slot_ids[sel_nodes, sel_rank] = stash_ids[sel_idx]
                self._slot_leaves[sel_nodes, sel_rank] = stash_leaves[sel_idx]
                placed[sel_idx] = True
            if placed.any():
                for block_id in stash_ids[placed].tolist():
                    del self._stash[block_id]
        self.stats.blocks_written += int(union.size) * z


class ReferencePathORAM:
    """Pure-Python Path ORAM kept as the executable reference specification.

    Identical public surface to :class:`PathORAM`; every access -- including
    each item of :meth:`write_many` -- performs its own path read, remap and
    greedy eviction, exactly as in the Path ORAM paper's sequential protocol.
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self._capacity = capacity
        self._bucket_size = bucket_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self._height, self._num_leaves, self._num_nodes = _tree_geometry(capacity)
        self._tree: list[list[_Block]] = [[] for _ in range(self._num_nodes)]
        self._position_map: dict[int, int] = {}
        self._stash: dict[int, _Block] = {}
        self.stats = ORAMStats()
        self.last_path: tuple[int, ...] = ()

    # -- public API --------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of logical blocks."""
        return self._capacity

    @property
    def height(self) -> int:
        """Tree height (root has depth 0)."""
        return self._height

    @property
    def num_leaves(self) -> int:
        """Number of leaf buckets."""
        return self._num_leaves

    def __len__(self) -> int:
        return len(self._position_map)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._position_map

    def stash_size(self) -> int:
        """Current number of blocks waiting in the client stash."""
        return len(self._stash)

    def position_map_snapshot(self) -> dict:
        """Checksummed snapshot of the position map and stash (see
        :func:`_position_map_snapshot`); persisted by the durable store."""
        return _position_map_snapshot(self._position_map, self._stash)

    def write(self, block_id: int, payload: Any) -> None:
        """Insert or overwrite the block ``block_id`` with ``payload``."""
        _check_batch_capacity(self._position_map, self._capacity, [block_id])
        self._access(block_id, payload, is_write=True)

    def write_many(self, items: Iterable[tuple[int, Any]]) -> None:
        """Insert a batch of ``(block_id, payload)`` pairs.

        The reference performs one full oblivious access per item; the fast
        path's combined batch eviction is pinned against this behaviour by
        the differential tests (identical position maps, fewer node touches).
        Capacity is checked for the whole batch up front, exactly like the
        fast path, so an overflowing batch fails atomically (no partial
        writes, no RNG consumption) in either implementation.
        """
        batch = list(items)
        _check_batch_capacity(
            self._position_map, self._capacity, (b for b, _ in batch)
        )
        for block_id, payload in batch:
            self.write(block_id, payload)

    def read(self, block_id: int) -> Any:
        """Read the payload of ``block_id`` (raises ``KeyError`` if absent)."""
        if block_id not in self._position_map:
            raise KeyError(f"block {block_id} is not stored in the ORAM")
        return self._access(block_id, None, is_write=False)

    def read_all(self) -> dict[int, Any]:
        """Return payloads of all stored blocks (a full oblivious scan)."""
        self.stats.blocks_read += self._num_nodes * self._bucket_size
        self.stats.nodes_touched += self._num_nodes
        result: dict[int, Any] = {}
        for bucket in self._tree:
            for block in bucket:
                result[block.block_id] = block.payload
        for block_id, block in self._stash.items():
            result[block_id] = block.payload
        return result

    # -- internals ----------------------------------------------------------

    def _path_nodes(self, leaf: int) -> list[int]:
        """Indices of tree nodes from root to the given leaf."""
        node = leaf + self._num_leaves - 1
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _access(self, block_id: int, payload: Any, is_write: bool) -> Any:
        self.stats.accesses += 1
        leaf = self._position_map.get(block_id)
        if leaf is None:
            leaf = int(self._rng.integers(0, self._num_leaves))
        new_leaf = int(self._rng.integers(0, self._num_leaves))
        self._position_map[block_id] = new_leaf

        path = self._path_nodes(leaf)
        self.last_path = tuple(path)

        # Read the whole path into the stash.
        for node in path:
            bucket = self._tree[node]
            self.stats.blocks_read += self._bucket_size
            self.stats.nodes_touched += 1
            for block in bucket:
                self._stash[block.block_id] = block
            self._tree[node] = []

        # Serve the request from the stash.
        result = None
        if is_write:
            self._stash[block_id] = _Block(block_id, payload, new_leaf)
        else:
            block = self._stash.get(block_id)
            if block is None:
                raise KeyError(f"block {block_id} missing from ORAM path and stash")
            block.leaf = new_leaf
            result = block.payload

        self.stats.stash_peak = max(self.stats.stash_peak, len(self._stash))

        # Write the path back, placing each stashed block as deep as possible.
        for node in reversed(path):
            depth = self._node_depth(node)
            bucket: list[_Block] = []
            for candidate_id in list(self._stash.keys()):
                if len(bucket) >= self._bucket_size:
                    break
                candidate = self._stash[candidate_id]
                candidate_path = self._path_nodes(self._position_map[candidate_id])
                if len(candidate_path) > depth and candidate_path[depth] == node:
                    bucket.append(candidate)
                    del self._stash[candidate_id]
            self._tree[node] = bucket
            self.stats.blocks_written += self._bucket_size
        return result

    @staticmethod
    def _node_depth(node: int) -> int:
        depth = 0
        while node != 0:
            node = (node - 1) // 2
            depth += 1
        return depth


@dataclass
class _Block:
    block_id: int
    payload: Any
    leaf: int


def make_oram(
    capacity: int,
    bucket_size: int = 4,
    rng: np.random.Generator | None = None,
    mode: str = "fast",
) -> "PathORAM | ReferencePathORAM":
    """Build a Path ORAM in the requested implementation ``mode``.

    ``"fast"`` returns the array-backed :class:`PathORAM`; ``"reference"``
    returns :class:`ReferencePathORAM`.  Both expose the same API and, at a
    fixed RNG seed, assign identical position maps.  Modes are validated by
    the same :func:`repro.edb.base.resolve_edb_mode` the back-ends use, so
    the two layers can never disagree on the flag.
    """
    from repro.edb.base import resolve_edb_mode

    cls = PathORAM if resolve_edb_mode(mode) == "fast" else ReferencePathORAM
    return cls(capacity=capacity, bucket_size=bucket_size, rng=rng)
