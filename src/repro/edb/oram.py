"""Path ORAM simulator.

ObliDB (the L-0 back-end evaluated in the paper) stores tables either as flat
arrays scanned obliviously or inside an ORAM so that point accesses do not
reveal which record was touched.  This module implements a faithful,
laptop-scale Path ORAM (Stefanov et al.) over opaque block payloads:

* a complete binary tree of buckets with ``bucket_size`` slots each,
* a client-side position map and stash,
* the standard access protocol: read the path for the block's leaf, remap the
  block to a fresh random leaf, write the path back greedily from the leaves.

The simulator exposes the *access transcript* (which tree nodes were touched)
so tests can verify obliviousness: the distribution of touched paths is
independent of the logical access sequence.  It also counts physical block
reads/writes, which the ObliDB cost model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

__all__ = ["PathORAM", "ORAMStats"]


@dataclass
class ORAMStats:
    """Physical-access counters maintained by the ORAM."""

    accesses: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    stash_peak: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.stash_peak = 0


@dataclass
class _Block:
    block_id: int
    payload: Any
    leaf: int


class PathORAM:
    """A Path ORAM over opaque payloads keyed by integer block ids.

    Parameters
    ----------
    capacity:
        Maximum number of logical blocks that can be stored.  The tree height
        is chosen so that the number of leaves is at least ``capacity``.
    bucket_size:
        Number of block slots per tree node (Z in the Path ORAM paper;
        4 is the standard choice).
    rng:
        Random generator used for leaf remapping.  Passing an explicitly
        seeded generator makes every access sequence reproducible.
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self._capacity = capacity
        self._bucket_size = bucket_size
        self._rng = rng if rng is not None else np.random.default_rng()
        self._height = max(1, int(np.ceil(np.log2(max(2, capacity)))))
        self._num_leaves = 2**self._height
        self._num_nodes = 2 ** (self._height + 1) - 1
        self._tree: list[list[_Block]] = [[] for _ in range(self._num_nodes)]
        self._position_map: dict[int, int] = {}
        self._stash: dict[int, _Block] = {}
        self.stats = ORAMStats()
        self.last_path: tuple[int, ...] = ()

    # -- public API --------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of logical blocks."""
        return self._capacity

    @property
    def height(self) -> int:
        """Tree height (root has depth 0)."""
        return self._height

    @property
    def num_leaves(self) -> int:
        """Number of leaf buckets."""
        return self._num_leaves

    def __len__(self) -> int:
        return len(self._position_map)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._position_map

    def stash_size(self) -> int:
        """Current number of blocks waiting in the client stash."""
        return len(self._stash)

    def write(self, block_id: int, payload: Any) -> None:
        """Insert or overwrite the block ``block_id`` with ``payload``."""
        if block_id not in self._position_map and len(self._position_map) >= self._capacity:
            raise ValueError(f"ORAM capacity of {self._capacity} blocks exceeded")
        self._access(block_id, payload, is_write=True)

    def write_many(self, items: Iterable[tuple[int, Any]]) -> None:
        """Insert a batch of ``(block_id, payload)`` pairs.

        Each block still performs its own oblivious access (Path ORAM hides
        per-block paths, so a batch cannot share evictions), but callers get
        a single entry point for a whole update decision.
        """
        for block_id, payload in items:
            self.write(block_id, payload)

    def read(self, block_id: int) -> Any:
        """Read the payload of ``block_id`` (raises ``KeyError`` if absent)."""
        if block_id not in self._position_map:
            raise KeyError(f"block {block_id} is not stored in the ORAM")
        return self._access(block_id, None, is_write=False)

    def read_all(self) -> dict[int, Any]:
        """Return payloads of all stored blocks (a full oblivious scan).

        A full scan touches the entire tree, so it is charged as reading every
        bucket once; this is what ObliDB's oblivious full-scan operators do.
        """
        self.stats.blocks_read += self._num_nodes * self._bucket_size
        result: dict[int, Any] = {}
        for bucket in self._tree:
            for block in bucket:
                result[block.block_id] = block.payload
        for block_id, block in self._stash.items():
            result[block_id] = block.payload
        return result

    # -- internals ----------------------------------------------------------

    def _path_nodes(self, leaf: int) -> list[int]:
        """Indices of tree nodes from root to the given leaf."""
        node = leaf + self._num_leaves - 1
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _access(self, block_id: int, payload: Any, is_write: bool) -> Any:
        self.stats.accesses += 1
        leaf = self._position_map.get(block_id)
        if leaf is None:
            leaf = int(self._rng.integers(0, self._num_leaves))
        new_leaf = int(self._rng.integers(0, self._num_leaves))
        self._position_map[block_id] = new_leaf

        path = self._path_nodes(leaf)
        self.last_path = tuple(path)

        # Read the whole path into the stash.
        for node in path:
            bucket = self._tree[node]
            self.stats.blocks_read += self._bucket_size
            for block in bucket:
                self._stash[block.block_id] = block
            self._tree[node] = []

        # Serve the request from the stash.
        result = None
        if is_write:
            self._stash[block_id] = _Block(block_id, payload, new_leaf)
        else:
            block = self._stash.get(block_id)
            if block is None:
                raise KeyError(f"block {block_id} missing from ORAM path and stash")
            block.leaf = new_leaf
            result = block.payload

        self.stats.stash_peak = max(self.stats.stash_peak, len(self._stash))

        # Write the path back, placing each stashed block as deep as possible.
        for node in reversed(path):
            depth = self._node_depth(node)
            bucket: list[_Block] = []
            for candidate_id in list(self._stash.keys()):
                if len(bucket) >= self._bucket_size:
                    break
                candidate = self._stash[candidate_id]
                candidate_path = self._path_nodes(self._position_map[candidate_id])
                if len(candidate_path) > depth and candidate_path[depth] == node:
                    bucket.append(candidate)
                    del self._stash[candidate_id]
            self._tree[node] = bucket
            self.stats.blocks_written += self._bucket_size
        return result

    @staticmethod
    def _node_depth(node: int) -> int:
        depth = 0
        while node != 0:
            node = (node - 1) // 2
            depth += 1
        return depth
