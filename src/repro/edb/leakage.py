"""Leakage classification of encrypted databases (Section 6, Table 3).

DP-Sync is only meaningful when the underlying encrypted database does not
re-leak, through its query protocol, the very information that the
differentially-private synchronization hides.  The paper therefore groups
existing schemes into four leakage classes based on what the *query* protocol
reveals:

* ``L0``  -- response-volume hiding (oblivious access + hidden volumes);
* ``LDP`` -- reveals only differentially-private response volumes;
* ``L1``  -- hides access patterns but reveals exact response volumes;
* ``L2``  -- reveals exact access patterns (and volumes).

L-0 and L-DP schemes are directly compatible with DP-Sync; L-1 schemes need a
volume-hiding add-on (padding / pseudorandom transformation); L-2 schemes are
incompatible.  This module encodes that classification plus the concrete
scheme registry behind Table 3, and a small update-leakage profile type used
by the EDB back-ends to declare what their update protocol reveals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "LeakageClass",
    "SchemeInfo",
    "LeakageProfile",
    "SCHEME_REGISTRY",
    "leakage_group_table",
    "classify_scheme",
    "compatible_with_dpsync",
    "update_pattern_observables",
]


class LeakageClass(enum.Enum):
    """Query-leakage class of an encrypted database scheme."""

    L0 = "L-0"
    LDP = "L-DP"
    L1 = "L-1"
    L2 = "L-2"

    @property
    def description(self) -> str:
        """Human readable description used when rendering Table 3."""
        return {
            LeakageClass.L0: "Response volume hiding (oblivious, hidden volumes)",
            LeakageClass.LDP: "Reveals differentially-private response volume",
            LeakageClass.L1: "Hides access pattern, reveals exact response volume",
            LeakageClass.L2: "Reveals exact access pattern",
        }[self]


@dataclass(frozen=True)
class SchemeInfo:
    """Registry entry for an existing encrypted-database scheme."""

    name: str
    leakage_class: LeakageClass
    supports_updates: bool = True
    atomic_encryption: bool = True
    supports_dummy_records: bool = True
    notes: str = ""


#: The scheme registry behind Table 3 of the paper.
SCHEME_REGISTRY: tuple[SchemeInfo, ...] = (
    SchemeInfo("VLH/AVLH", LeakageClass.L0, notes="volume-hiding structured encryption"),
    SchemeInfo("ObliDB", LeakageClass.L0, notes="SGX + ORAM oblivious operators"),
    SchemeInfo("SEAL (adjustable leakage)", LeakageClass.L0),
    SchemeInfo("Opaque", LeakageClass.L0, notes="oblivious distributed analytics"),
    SchemeInfo("CSAGR19", LeakageClass.L0, notes="controllable leakage searchable DB"),
    SchemeInfo("dp-MM", LeakageClass.LDP, notes="DP volume-hiding multi-maps"),
    SchemeInfo("Hermetic", LeakageClass.LDP),
    SchemeInfo("KKNO17", LeakageClass.LDP, notes="DP access-pattern protection"),
    SchemeInfo("Crypt-epsilon", LeakageClass.LDP, notes="crypto-assisted DP queries"),
    SchemeInfo("AHKM19", LeakageClass.LDP, notes="encrypted databases for DP"),
    SchemeInfo("Shrinkwrap", LeakageClass.LDP, notes="DP intermediate result sizes"),
    SchemeInfo("PPQED_a", LeakageClass.L1, notes="HE-based predicate evaluation"),
    SchemeInfo("StealthDB", LeakageClass.L1),
    SchemeInfo("SisoSPIR", LeakageClass.L1, notes="ORAM-based, volume leaking"),
    SchemeInfo("CryptDB", LeakageClass.L2, notes="deterministic/OPE encryption"),
    SchemeInfo("Cipherbase", LeakageClass.L2),
    SchemeInfo("Arx", LeakageClass.L2),
    SchemeInfo("HardIDX", LeakageClass.L2),
    SchemeInfo("EnclaveDB", LeakageClass.L2),
)


@dataclass(frozen=True)
class LeakageProfile:
    """What a concrete EDB instance leaks, per protocol.

    DP-Sync's compatibility constraint (P4) requires the *update* protocol's
    leakage to be a function of the update pattern only -- captured by
    ``update_leaks_only_pattern``.  The query-side class determines whether
    dummy-record counts can be inferred through queries.
    """

    scheme: str
    query_class: LeakageClass
    update_leaks_only_pattern: bool = True
    reveals_exact_volume: bool = False
    reveals_access_pattern: bool = False

    def is_dpsync_compatible(self) -> bool:
        """Whether DP-Sync can run on top of this profile unmodified."""
        if not self.update_leaks_only_pattern:
            return False
        if self.reveals_access_pattern:
            return False
        return self.query_class in (LeakageClass.L0, LeakageClass.LDP)


def update_pattern_observables(update_history) -> tuple[tuple[int, int], ...]:
    """Canonical server-observable update pattern of a run: ``((t, |γ_t|), ...)``.

    Takes any sequence of Setup/Update outcomes exposing ``time`` and
    ``total_added`` (e.g. :attr:`repro.edb.base.EncryptedDatabase.update_history`)
    and projects it to exactly what a P4-compliant update protocol leaks: the
    invocation times and volumes, nothing else.  Batched ingestion is
    accounted identically to sequential ingestion -- one ``(time, volume)``
    pair per Update invocation regardless of how the records were moved --
    so the fast and reference EDB paths produce equal observables by
    construction; the differential suite compares runs through this
    projection.
    """
    return tuple(
        (int(entry.time), int(entry.total_added)) for entry in update_history
    )


def leakage_group_table() -> dict[LeakageClass, list[str]]:
    """Return Table 3: leakage group -> list of scheme names."""
    table: dict[LeakageClass, list[str]] = {cls: [] for cls in LeakageClass}
    for scheme in SCHEME_REGISTRY:
        table[scheme.leakage_class].append(scheme.name)
    return table


def classify_scheme(name: str) -> LeakageClass:
    """Look up the leakage class of a registered scheme by (case-insensitive) name."""
    lowered = name.lower()
    for scheme in SCHEME_REGISTRY:
        if scheme.name.lower() == lowered:
            return scheme.leakage_class
    raise KeyError(f"unknown encrypted database scheme: {name!r}")


def compatible_with_dpsync(scheme: SchemeInfo | str) -> bool:
    """Section 6 compatibility rule.

    L-0 and L-DP schemes are directly compatible.  L-1 schemes require
    additional volume-hiding measures, and L-2 schemes are incompatible, so
    both return ``False`` here.  The scheme must also support updates and use
    atomic per-record encryption (P4 constraints).
    """
    if isinstance(scheme, str):
        info = next(
            (s for s in SCHEME_REGISTRY if s.name.lower() == scheme.lower()), None
        )
        if info is None:
            raise KeyError(f"unknown encrypted database scheme: {scheme!r}")
        scheme = info
    if not scheme.supports_updates or not scheme.atomic_encryption:
        return False
    return scheme.leakage_class in (LeakageClass.L0, LeakageClass.LDP)
