"""Durable encrypted store: atomic, checksummed on-disk snapshots.

ROADMAP item 3's durability half.  Everything the fleet holds in memory --
ciphertext arenas, ORAM position maps and client metadata, router routing
state (per-table ordinals, per-shard counts), per-owner strategy /
accountant / update-pattern state -- can be written to disk and restored so
that a killed deployment or grid cell resumes and replays *bit-identically*
(answers, QET, aggregate and per-shard ``(t, |γ_t|)`` transcripts).

Layers, bottom up:

* **Sealing** -- :func:`seal_bytes` / :func:`unseal_bytes` encrypt a blob
  at rest with the same BLAKE2b-CTR + HMAC-SHA256 construction
  :class:`~repro.edb.crypto.RecordCipher` uses for records (nonce prefix,
  tag suffix), generalized to arbitrary lengths.  Keys are derived from a
  passphrase with scrypt over a per-store random salt
  (:func:`derive_key` / :func:`get_or_create_salt`); ``passphrase=None``
  stores plaintext blobs (checksummed either way).
* **:class:`EncryptedStore`** -- one snapshot directory: named blobs
  written via the fsync'd atomic-write helper, then a ``MANIFEST.json``
  written *last* carrying per-blob SHA-256 checksums (over the on-disk
  sealed bytes), sizes, KDF metadata and a content fingerprint computed
  with the grid runner's scheme (sorted-JSON SHA-256 prefix).  A directory
  without a valid manifest is an aborted write by construction.  Reads
  verify checksums and raise :class:`StoreIntegrityError` on any mismatch.
  :meth:`EncryptedStore.change_passphrase` implements the re-keying
  workflow (decrypt all, new salt + key, rewrite, recommit) so a store can
  be reopened under a new passphrase.
* **:class:`SnapshotStore`** -- generational kill-safe snapshots for
  mid-run persistence: each :meth:`SnapshotStore.save` lands in its own
  ``snapshots/<seq>/`` :class:`EncryptedStore`, an atomic ``LATEST``
  pointer is advanced only after the manifest is durable, and older
  generations are pruned (newest two kept).  A SIGKILL at any instant
  leaves either the previous complete snapshot or the new complete
  snapshot reachable; torn leftovers are skipped by the newest-valid scan.
* **Snapshot codecs** -- :func:`snapshot_backend` / :func:`restore_backend`
  serialize one :class:`~repro.edb.base.EncryptedDatabase` (arenas as raw
  row/handle bytes, everything else in a single pickle so shared objects
  like the ObliDB ORAMs' RNG stay shared), with the ORAM position maps
  re-verified against their checksummed snapshots on restore;
  :func:`snapshot_router` / :func:`restore_router` do the same for a
  :class:`~repro.edb.router.ShardRouter` plus its routing state, pulling
  each process-backed shard's snapshot over the worker pipe.

Restored arenas are always process-local :class:`~repro.edb.crypto.
CiphertextArena`\\ s; a restored shard handed to a worker process converts
them back to shared memory via
:meth:`~repro.edb.base.EncryptedDatabase.rebuild_arenas`.
"""

from __future__ import annotations

import hashlib
import hmac
import importlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.edb.crypto import CiphertextArena
from repro.util.io import atomic_write_bytes, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edb.base import EncryptedDatabase
    from repro.edb.router import ShardRouter

__all__ = [
    "StoreIntegrityError",
    "EncryptedStore",
    "SnapshotStore",
    "ReplayLog",
    "get_or_create_salt",
    "derive_key",
    "seal_bytes",
    "unseal_bytes",
    "manifest_fingerprint",
    "arena_to_bytes",
    "arena_from_bytes",
    "snapshot_backend",
    "restore_backend",
    "snapshot_router",
    "restore_router",
    "snapshot_edb",
    "restore_edb",
]

#: On-disk format version stamped into every manifest.
STORE_VERSION: int = 1

#: Random salt length for the at-rest key derivation.
SALT_SIZE: int = 32

#: Nonce length prepended to every sealed blob (matches the record cipher).
_NONCE_SIZE: int = 16

#: HMAC-SHA256 tag length appended to every sealed blob.
_TAG_SIZE: int = 32

#: scrypt cost parameters: interactive-grade (a few ms per derivation) --
#: snapshots are written continuously, so the KDF must not dominate.
_SCRYPT_PARAMS: dict = {"n": 2**14, "r": 8, "p": 1}

_MANIFEST_NAME = "MANIFEST.json"
_SALT_NAME = "salt.bin"


class StoreIntegrityError(RuntimeError):
    """A stored blob or manifest failed verification (torn write, bit rot,
    wrong passphrase, or state that does not match its checksum)."""


# -- key derivation ----------------------------------------------------------


def get_or_create_salt(path: str | os.PathLike) -> bytes:
    """Read the store's KDF salt, creating it (0600, fsync'd) on first use."""
    path = Path(path)
    try:
        salt = path.read_bytes()
    except FileNotFoundError:
        salt = os.urandom(SALT_SIZE)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, salt)
        os.chmod(path, 0o600)
        return salt
    if len(salt) != SALT_SIZE:
        raise StoreIntegrityError(
            f"salt file {path} has {len(salt)} bytes, expected {SALT_SIZE}"
        )
    return salt


def derive_key(passphrase: str, salt: bytes) -> bytes:
    """Derive a 32-byte at-rest key from a passphrase (stdlib scrypt)."""
    return hashlib.scrypt(
        passphrase.encode("utf-8"), salt=salt, dklen=32, **_SCRYPT_PARAMS
    )


# -- blob sealing ------------------------------------------------------------


def _blob_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """BLAKE2b-CTR keystream of ``length`` bytes (the record cipher's PRF)."""
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "big"), key=key, digest_size=64
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(keystream, dtype=np.uint8)
    return (a ^ b).tobytes()


def seal_bytes(data: bytes, key: bytes) -> bytes:
    """Encrypt-then-MAC a blob: ``nonce || body || tag``."""
    nonce = os.urandom(_NONCE_SIZE)
    keystream = _blob_keystream(key, nonce, len(data))
    body = _xor_bytes(data, keystream)
    tag = hmac.new(key, nonce + body, hashlib.sha256).digest()
    return nonce + body + tag


def unseal_bytes(blob: bytes, key: bytes) -> bytes:
    """Verify and decrypt a :func:`seal_bytes` blob."""
    if len(blob) < _NONCE_SIZE + _TAG_SIZE:
        raise StoreIntegrityError("sealed blob is too short")
    nonce = blob[:_NONCE_SIZE]
    body = blob[_NONCE_SIZE:-_TAG_SIZE]
    tag = blob[-_TAG_SIZE:]
    expected = hmac.new(key, nonce + body, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise StoreIntegrityError(
            "sealed blob failed authentication (corrupt data or wrong key)"
        )
    keystream = _blob_keystream(key, nonce, len(body))
    return _xor_bytes(body, keystream)


def manifest_fingerprint(blobs: Mapping[str, Mapping]) -> str:
    """Content fingerprint over the blob table -- the grid runner's scheme
    (SHA-256 of sorted canonical JSON, 16 hex chars)."""
    canonical = json.dumps(
        {name: dict(entry) for name, entry in blobs.items()}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- one snapshot directory --------------------------------------------------


class EncryptedStore:
    """One atomic snapshot directory of named, checksummed blobs.

    Write side: :meth:`write_blob` each payload (fsync'd atomic replace,
    sealed when a passphrase is set), then :meth:`commit` -- the manifest is
    written last, so its presence certifies every blob it names is complete.
    Read side: :meth:`manifest` / :meth:`read_blob` verify the version, the
    per-blob SHA-256 (over the on-disk sealed bytes) and the seal tag,
    raising :class:`StoreIntegrityError` on the first mismatch.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        passphrase: str | None = None,
        salt: bytes | None = None,
    ) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._passphrase = passphrase
        if passphrase is not None:
            self._salt = (
                salt if salt is not None else get_or_create_salt(self._dir / _SALT_NAME)
            )
            self._key: bytes | None = derive_key(passphrase, self._salt)
        else:
            self._salt = None
            self._key = None
        self._staged: dict[str, dict] = {}
        self._manifest: dict | None = None

    @property
    def path(self) -> Path:
        """The snapshot directory."""
        return self._dir

    @property
    def sealed(self) -> bool:
        """Whether blobs are encrypted at rest."""
        return self._key is not None

    # -- writing -------------------------------------------------------------

    def write_blob(self, name: str, data: bytes) -> None:
        """Stage one named blob (atomic + fsync'd; sealed when keyed)."""
        if "/" in name or name in (_MANIFEST_NAME, _SALT_NAME):
            raise ValueError(f"invalid blob name {name!r}")
        payload = seal_bytes(data, self._key) if self._key is not None else data
        atomic_write_bytes(self._dir / name, payload)
        self._staged[name] = {
            "sha256": hashlib.sha256(payload).hexdigest(),
            "size": len(payload),
        }

    def commit(self, meta: Mapping | None = None) -> dict:
        """Write the manifest (last, atomically) sealing the snapshot."""
        manifest = {
            "version": STORE_VERSION,
            "sealed": self.sealed,
            "kdf": (
                {"name": "scrypt", **_SCRYPT_PARAMS, "salt": self._salt.hex()}
                if self.sealed
                else None
            ),
            "blobs": dict(self._staged),
            "fingerprint": manifest_fingerprint(self._staged),
            "meta": dict(meta or {}),
        }
        atomic_write_text(
            self._dir / _MANIFEST_NAME,
            json.dumps(manifest, indent=1, sort_keys=True) + "\n",
        )
        self._manifest = manifest
        return manifest

    # -- reading -------------------------------------------------------------

    def manifest(self) -> dict:
        """Load and validate the manifest (cached after first read)."""
        if self._manifest is not None:
            return self._manifest
        try:
            raw = (self._dir / _MANIFEST_NAME).read_text()
        except OSError as exc:
            raise StoreIntegrityError(
                f"no readable manifest in {self._dir}: {exc}"
            ) from exc
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"manifest in {self._dir} is not valid JSON (torn write?)"
            ) from exc
        if manifest.get("version") != STORE_VERSION:
            raise StoreIntegrityError(
                f"manifest version {manifest.get('version')!r} is not "
                f"{STORE_VERSION}"
            )
        if manifest.get("fingerprint") != manifest_fingerprint(
            manifest.get("blobs", {})
        ):
            raise StoreIntegrityError(
                f"manifest fingerprint mismatch in {self._dir}"
            )
        if manifest.get("sealed") and self._key is None:
            raise StoreIntegrityError(
                f"store {self._dir} is sealed but no passphrase was given"
            )
        self._manifest = manifest
        return manifest

    def blob_names(self) -> tuple[str, ...]:
        """Names of all committed blobs."""
        return tuple(self.manifest()["blobs"])

    def read_blob(self, name: str) -> bytes:
        """Read one blob, verifying its checksum (and seal, when keyed)."""
        entry = self.manifest()["blobs"].get(name)
        if entry is None:
            raise StoreIntegrityError(f"no blob {name!r} in {self._dir}")
        payload = (self._dir / name).read_bytes()
        if len(payload) != entry["size"] or (
            hashlib.sha256(payload).hexdigest() != entry["sha256"]
        ):
            raise StoreIntegrityError(
                f"blob {name!r} in {self._dir} failed its checksum"
            )
        if self.manifest()["sealed"]:
            return unseal_bytes(payload, self._key)
        return payload

    # -- key lifecycle --------------------------------------------------------

    def change_passphrase(self, new_passphrase: str | None) -> None:
        """Re-key the store: decrypt every blob, rewrite under a new key.

        The SNIPPETS encryption-test workflow (encrypt-copy, key change,
        reopen): all blobs are read and verified under the current key, a
        fresh salt is drawn for the new passphrase, every blob is resealed
        and the manifest recommitted.  ``new_passphrase=None`` decrypts the
        store to plaintext-at-rest.
        """
        manifest = self.manifest()
        plaintext = {name: self.read_blob(name) for name in manifest["blobs"]}
        meta = manifest.get("meta", {})
        self._passphrase = new_passphrase
        if new_passphrase is not None:
            self._salt = os.urandom(SALT_SIZE)
            atomic_write_bytes(self._dir / _SALT_NAME, self._salt)
            os.chmod(self._dir / _SALT_NAME, 0o600)
            self._key = derive_key(new_passphrase, self._salt)
        else:
            self._salt = None
            self._key = None
        self._staged = {}
        self._manifest = None
        for name, data in plaintext.items():
            self.write_blob(name, data)
        self.commit(meta)


# -- generational snapshots for kill-and-resume -------------------------------


class SnapshotStore:
    """Kill-safe generational snapshots: ``snapshots/<seq>/`` directories,
    an atomic ``LATEST`` pointer, newest :attr:`keep` generations retained.

    A writer killed mid-:meth:`save` leaves a directory without a manifest
    (invalid by construction) and a ``LATEST`` pointer still naming the
    previous complete snapshot; :meth:`load_latest` additionally falls back
    to a newest-valid scan, so even a torn pointer cannot poison resume.
    """

    _LATEST = "LATEST"

    def __init__(
        self,
        directory: str | os.PathLike,
        passphrase: str | None = None,
        keep: int = 2,
    ) -> None:
        self._dir = Path(directory)
        (self._dir / "snapshots").mkdir(parents=True, exist_ok=True)
        self._passphrase = passphrase
        self._keep = max(1, keep)
        self._salt = (
            get_or_create_salt(self._dir / _SALT_NAME)
            if passphrase is not None
            else None
        )

    @property
    def path(self) -> Path:
        """The store's root directory."""
        return self._dir

    def _snapshot_dir(self, seq: int) -> Path:
        return self._dir / "snapshots" / f"{seq:08d}"

    def _open(self, seq: int) -> EncryptedStore:
        return EncryptedStore(
            self._snapshot_dir(seq), passphrase=self._passphrase, salt=self._salt
        )

    def _sequence_numbers(self) -> list[int]:
        numbers = []
        for entry in (self._dir / "snapshots").iterdir():
            if entry.is_dir() and entry.name.isdigit():
                numbers.append(int(entry.name))
        return sorted(numbers)

    def save(self, blobs: Mapping[str, bytes], meta: Mapping | None = None) -> int:
        """Write one complete snapshot generation; returns its sequence."""
        existing = self._sequence_numbers()
        seq = (existing[-1] if existing else 0) + 1
        store = self._open(seq)
        for name, data in blobs.items():
            store.write_blob(name, data)
        store.commit(dict(meta or {}, sequence=seq))
        atomic_write_text(self._dir / self._LATEST, f"{seq}\n")
        self._prune(seq)
        return seq

    def latest_sequence(self) -> int | None:
        """Sequence of the newest *valid* snapshot (``None`` when empty).

        Trusts the ``LATEST`` pointer when it names a snapshot with a valid
        manifest; otherwise scans generations newest-first, skipping torn
        or incomplete directories.
        """
        try:
            pointed = int((self._dir / self._LATEST).read_text().strip())
        except (OSError, ValueError):
            pointed = None
        if pointed is not None and self._is_valid(pointed):
            return pointed
        for seq in reversed(self._sequence_numbers()):
            if self._is_valid(seq):
                return seq
        return None

    def load_latest(self) -> EncryptedStore | None:
        """Open the newest valid snapshot (``None`` when none exists)."""
        seq = self.latest_sequence()
        return None if seq is None else self._open(seq)

    def clear(self) -> None:
        """Remove the whole store (crash-recovery data no longer needed)."""
        shutil.rmtree(self._dir, ignore_errors=True)

    def _is_valid(self, seq: int) -> bool:
        try:
            self._open(seq).manifest()
        except StoreIntegrityError:
            return False
        return True

    def _prune(self, newest: int) -> None:
        for seq in self._sequence_numbers():
            if seq <= newest - self._keep:
                shutil.rmtree(self._snapshot_dir(seq), ignore_errors=True)


# -- coordinator-side replay journal ------------------------------------------


class ReplayLog:
    """Crash-safe append-only journal of routed shard commands.

    The supervisor's second half of durability: snapshots capture a shard
    at generation boundaries, the replay log records every mutating command
    routed *since*, so a dead worker rebuilds as snapshot + replay.  The
    write protocol is the store's manifest-last discipline in miniature:

    * each record is one ``records/<serial>.pkl`` file written through the
      fsync'd atomic-write helper (optionally sealed at rest),
    * ``HEAD.json`` -- ``{"start", "stop"}`` live-range pointers -- is
      rewritten atomically *after* the record file is durable.

    A crash between the two leaves an orphan record file past ``stop``:
    invisible to readers (the live range never covered it) and atomically
    overwritten by the next append.  A crash mid-write leaves only a
    ``*.tmp`` file the naming scheme never resolves.  Either way no torn
    record can enter a replay, which is what the recovery differential
    (byte-identical transcripts) depends on.

    Entries are dicts carrying at least ``tag`` (the snapshot sequence that
    was current when the command was journaled, nondecreasing across
    appends); :meth:`prune` drops the prefix older than a given tag once a
    newer snapshot generation makes it unreachable.
    """

    _HEAD = "HEAD.json"

    def __init__(
        self, directory: str | os.PathLike, passphrase: str | None = None
    ) -> None:
        self._dir = Path(directory)
        (self._dir / "records").mkdir(parents=True, exist_ok=True)
        if passphrase is not None:
            salt = get_or_create_salt(self._dir / _SALT_NAME)
            self._key: bytes | None = derive_key(passphrase, salt)
        else:
            self._key = None
        self._start, self._stop = self._read_head()
        self._durable = self._stop
        self._entries: dict[int, dict] = {
            serial: self._read_record(serial)
            for serial in range(self._start, self._stop)
        }

    @property
    def path(self) -> Path:
        """The journal's root directory."""
        return self._dir

    def __len__(self) -> int:
        return self._stop - self._start

    def _record_path(self, serial: int) -> Path:
        return self._dir / "records" / f"{serial:010d}.pkl"

    def _read_head(self) -> tuple[int, int]:
        try:
            head = json.loads((self._dir / self._HEAD).read_text())
            return int(head["start"]), int(head["stop"])
        except (OSError, KeyError, TypeError, ValueError):
            return 0, 0

    def _write_head(self) -> None:
        atomic_write_text(
            self._dir / self._HEAD,
            json.dumps({"start": self._start, "stop": self._durable}) + "\n",
        )

    def _read_record(self, serial: int) -> dict:
        payload = self._record_path(serial).read_bytes()
        if self._key is not None:
            payload = unseal_bytes(payload, self._key)
        return pickle.loads(payload)

    def append(self, entry: Mapping) -> int:
        """Durably journal one entry; returns its serial number."""
        serial = self.stage(entry)
        self.flush()
        return serial

    def stage(self, entry: Mapping) -> int:
        """Journal one entry in memory only; returns its serial number.

        Staged entries are immediately visible to :meth:`entries` -- a
        live coordinator replays from memory -- but die with the process
        until :meth:`flush` makes them durable.  The supervisor's hot
        path stages and lets snapshot boundaries flush, so the
        fault-free per-command cost is a dictionary insert rather than
        two fsyncs.
        """
        record = dict(entry)
        serial = self._stop
        self._entries[serial] = record
        self._stop = serial + 1
        return serial

    def flush(self) -> int:
        """Make every staged entry durable; returns how many were written.

        Record files first (each through the fsync'd atomic-write
        helper), the ``HEAD.json`` manifest last: a crash mid-flush
        leaves orphan record files past the durable ``stop`` --
        invisible to readers and atomically overwritten by the next
        flush -- never a torn or half-visible entry.
        """
        if self._durable >= self._stop:
            return 0
        flushed = 0
        for serial in range(self._durable, self._stop):
            payload = pickle.dumps(self._entries[serial])
            if self._key is not None:
                payload = seal_bytes(payload, self._key)
            atomic_write_bytes(self._record_path(serial), payload)
            flushed += 1
        self._durable = self._stop
        self._write_head()
        return flushed

    def entries(self, min_tag: int | None = None) -> list[dict]:
        """Live entries in append order, optionally only ``tag >= min_tag``."""
        return [
            self._entries[serial]
            for serial in range(self._start, self._stop)
            if min_tag is None or self._entries[serial].get("tag", 0) >= min_tag
        ]

    def prune(self, min_tag: int) -> int:
        """Drop the live prefix with ``tag < min_tag``; returns the count.

        The head advances (atomically) before the record files are removed,
        so a crash mid-prune strands at most a few unreferenced files --
        never a live entry.
        """
        start = self._start
        while start < self._stop and self._entries[start].get("tag", 0) < min_tag:
            start += 1
        dropped = range(self._start, start)
        if not dropped:
            return 0
        self._start = start
        # Pruning may outrun the durable mark when staged-only entries go;
        # the head's live range must stay well-formed (start <= stop).
        self._durable = max(self._durable, start)
        self._write_head()
        for serial in dropped:
            self._entries.pop(serial, None)
            try:
                self._record_path(serial).unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        return len(dropped)

    def clear(self) -> None:
        """Remove the whole journal directory."""
        shutil.rmtree(self._dir, ignore_errors=True)


# -- EDB snapshot codecs ------------------------------------------------------


def arena_to_bytes(arena: CiphertextArena) -> tuple[bytes, bytes, int]:
    """Serialize an arena's used rows and handles (backend-agnostic)."""
    size = len(arena)
    return (
        arena._data[:size].tobytes(),
        arena._handles[:size].tobytes(),
        size,
    )


def arena_from_bytes(
    row_bytes: bytes, handle_bytes: bytes, size: int
) -> CiphertextArena:
    """Rebuild a process-local arena with rows/handles/indices verbatim."""
    arena = CiphertextArena(initial_capacity=max(size, 1))
    if size:
        rows = arena.reserve(size)
        rows[:] = np.frombuffer(row_bytes, dtype=np.uint8).reshape(size, -1)
        arena.set_handles(0, np.frombuffer(handle_bytes, dtype=np.int64))
    return arena


def snapshot_backend(edb: "EncryptedDatabase") -> bytes:
    """Serialize one EDB back-end (plain or shared arenas) to bytes.

    The whole non-arena state travels in a *single* pickle so shared
    objects -- most importantly the RNG generator the ObliDB ORAMs share
    with the EDB -- stay shared after restore.  Arenas are serialized as
    raw row/handle bytes; ORAM position maps additionally get checksummed
    snapshots that :func:`restore_backend` re-verifies.
    """
    state = dict(edb.__dict__)
    arenas = state.pop("_arenas", {})
    state.pop("_arena_factory", None)
    # Views are derived state: only the registered queries are persisted;
    # restore re-registers them and bootstraps from the restored tables.
    views = state.pop("_views", None)
    payload = {
        "class": f"{type(edb).__module__}:{type(edb).__qualname__}",
        "state": state,
        "view_queries": tuple(views.registered()) if views is not None else (),
        "arenas": {
            table: arena_to_bytes(arena) for table, arena in arenas.items()
        },
        "oram_maps": {
            table: oram.position_map_snapshot()
            for table, oram in state.get("_orams", {}).items()
        },
    }
    return pickle.dumps(payload)


def restore_backend(blob: bytes) -> "EncryptedDatabase":
    """Rebuild an EDB from :func:`snapshot_backend` bytes.

    Arenas come back as process-local :class:`CiphertextArena`\\ s (workers
    re-share them via ``rebuild_arenas``), and every ORAM's position map is
    verified against its stored checksum before the EDB is returned.
    """
    payload = pickle.loads(blob)
    module_name, _, qualname = payload["class"].partition(":")
    cls = getattr(importlib.import_module(module_name), qualname)
    edb = cls.__new__(cls)
    edb.__dict__.update(payload["state"])
    edb._arena_factory = CiphertextArena
    edb._arenas = {
        table: arena_from_bytes(*serialized)
        for table, serialized in payload["arenas"].items()
    }
    for table, snapshot in payload["oram_maps"].items():
        oram = getattr(edb, "_orams", {}).get(table)
        if (
            oram is None
            or oram.position_map_snapshot()["checksum"] != snapshot["checksum"]
        ):
            raise StoreIntegrityError(
                f"ORAM position map for table {table!r} did not survive "
                "the snapshot round trip"
            )
    # Rebuild the derived view state: re-registration bootstraps each view
    # from the restored executor tables, whose insertion order is exactly
    # the pre-kill ingest order -- so the rebuilt counters (and their group
    # key order) are bit-identical to the killed process's.
    from repro.query.views import ViewRegistry

    edb._views = ViewRegistry()
    for query in payload.get("view_queries", ()):
        edb.register_view(query)
    return edb


def snapshot_router(router: "ShardRouter") -> bytes:
    """Serialize a shard router: per-shard snapshots plus routing state.

    Process-backed shards are snapshotted *inside* their worker (one
    ``snapshot`` pipe command each), so the bytes reflect the worker's
    authoritative state including its RNG stream.  Routing state covers
    exactly what :meth:`ShardRouter.shard_index` and the planner's shard
    pruning depend on: per-table ordinals, per-shard counts and the
    aggregate update history.  Wall-clock measurements are deliberately
    not persisted (observables do not depend on them).
    """
    shard_blobs = []
    for shard in router.shards:
        # Duck-typed: ShardWorkerClient serializes inside its worker, and a
        # SupervisedShard delegates to whatever it currently wraps; a plain
        # in-process EDB has no ``snapshot`` and is serialized here.
        if hasattr(shard, "snapshot"):
            shard_blobs.append(shard.snapshot())
        else:
            shard_blobs.append(snapshot_backend(shard))
    payload = {
        "route_seed": router._route_seed,
        "executor": router._executor,
        "planner": "on" if router._planner is not None else "off",
        "supervisor": getattr(router, "_supervisor_meta", None),
        "ordinals": dict(router._ordinals),
        "table_shard_counts": {
            table: list(counts)
            for table, counts in router._table_shard_counts.items()
        },
        "update_history": list(router._update_history),
        "view_queries": list(router._view_queries),
        "view_answering": router._view_answering,
        "shards": shard_blobs,
    }
    return pickle.dumps(payload)


def restore_router(blob: bytes) -> "ShardRouter":
    """Rebuild a shard router (and its shards) from :func:`snapshot_router`.

    Shards are restored first, then handed to the public constructor --
    under the process executor the workers inherit the restored state by
    fork and re-share their arenas -- and finally the staged-ordinal
    routing state is reinstalled so post-restore records route exactly
    where an uninterrupted run would have sent them.
    """
    from repro.edb.router import ShardRouter

    payload = pickle.loads(blob)
    shards = [restore_backend(shard_blob) for shard_blob in payload["shards"]]
    extra: dict = {}
    supervisor_meta = payload.get("supervisor")
    if supervisor_meta is not None:
        # The restored fleet supervises again with the same policy but a
        # fresh scratch directory (and no fault schedule -- faults are a
        # test harness, not deployment state).
        from repro.fleet.supervisor import SupervisorConfig

        extra["supervisor"] = SupervisorConfig.from_meta(supervisor_meta)
    router = ShardRouter(
        shards,
        route_seed=payload["route_seed"],
        executor=payload["executor"],
        planner=payload["planner"],
        **extra,
    )
    router._ordinals = dict(payload["ordinals"])
    router._table_shard_counts = {
        table: list(counts)
        for table, counts in payload["table_shard_counts"].items()
    }
    router._update_history = list(payload["update_history"])
    # Shard-level views were rebuilt inside restore_backend (each shard
    # recorded its own registered probes), so only the router-level query
    # list and answering flag are reinstated -- no re-fanout.
    router._view_queries = list(payload.get("view_queries", ()))
    router._view_answering = bool(payload.get("view_answering", True))
    return router


def snapshot_edb(edb) -> tuple[str, bytes]:
    """Dispatch on the EDB kind; returns ``(kind, blob)`` for the manifest."""
    from repro.edb.router import ShardRouter

    if isinstance(edb, ShardRouter):
        return "router", snapshot_router(edb)
    return "backend", snapshot_backend(edb)


def restore_edb(kind: str, blob: bytes):
    """Inverse of :func:`snapshot_edb`."""
    if kind == "router":
        return restore_router(blob)
    if kind == "backend":
        return restore_backend(blob)
    raise StoreIntegrityError(f"unknown EDB snapshot kind {kind!r}")
