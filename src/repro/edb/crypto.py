"""Simulated record-level encryption with an arena-backed bulk fast path.

The paper assumes an *atomic* encrypted database: every record (real or dummy)
is encrypted independently into a fixed-size ciphertext under a semantically
secure scheme, so the server cannot tell real records from dummies.  This
module simulates exactly that contract:

* :class:`RecordCipher` derives a per-record keystream from a secret key and a
  random 128-bit nonce (a keyed BLAKE2b PRF in counter mode) and XORs it over
  a canonical, padded serialization of the record.
* Every ciphertext has the same length regardless of the plaintext content or
  the ``is_dummy`` flag, which is what makes the update volume ``|γ_t|`` the
  *only* information the server learns from an update.

Two interchangeable server-side storage layouts are provided:

* **object-backed** (the reference): one immutable :class:`EncryptedRecord`
  per record, each owning its own ``bytes`` ciphertext.  This is the original
  per-record path: one keystream derivation, one 300+-byte allocation and one
  ``__post_init__`` length validation per record.
* **arena-backed** (the fast path): all ciphertexts of a table live in one
  contiguous capacity-doubling ``(n, CIPHERTEXT_SIZE)`` ``uint8`` ndarray
  (:class:`CiphertextArena`).  :meth:`RecordCipher.encrypt_many_into` writes
  nonce, body and tag straight into reserved arena rows -- batched nonce
  generation, a single 2-D vectorized keystream XOR, no intermediate ``bytes``
  objects -- and per-record validation is hoisted out of the loop entirely
  (the arena's row shape *is* the validation).  :class:`ArenaRecord` is a
  zero-copy view (handle -> arena row) exposing the same surface as
  :class:`EncryptedRecord`, so the Query/decrypt protocol cannot tell the
  layouts apart.  Both layouts produce ciphertexts decryptable by the same
  :meth:`RecordCipher.decrypt`, which the differential tests exploit.

This is a simulation of AES-CTR-style encryption for a reproduction study: it
provides the indistinguishability property the analysis needs (and tests
check), but it has not been audited for production cryptographic use.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import json
import math
import os
import uuid
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.edb.records import Record
from repro.util.mp import attach_shared_memory

__all__ = [
    "EncryptedRecord",
    "ArenaRecord",
    "ArenaSegmentHandle",
    "AttachedArenaView",
    "ArenaSegmentCache",
    "CiphertextArena",
    "SharedCiphertextArena",
    "RecordCipher",
    "CIPHERTEXT_SIZE",
]

#: Fixed plaintext-block size (bytes) every record is padded to before
#: encryption.  Large enough for the paper's taxi schema with slack; the
#: cipher raises if a record does not fit rather than silently leaking length.
PLAINTEXT_BLOCK_SIZE: int = 256

#: Nonce length in bytes prepended to every ciphertext.
NONCE_SIZE: int = 16

#: Total ciphertext size: nonce + padded body + authentication tag.
CIPHERTEXT_SIZE: int = NONCE_SIZE + PLAINTEXT_BLOCK_SIZE + 32

#: End of the authenticated region (nonce + body) within a ciphertext row.
_BODY_END: int = NONCE_SIZE + PLAINTEXT_BLOCK_SIZE

#: Keystream block counters, precomputed: the 256-byte body consumes exactly
#: ``PLAINTEXT_BLOCK_SIZE / 64`` BLAKE2b blocks per record.
_KEYSTREAM_COUNTERS: tuple[bytes, ...] = tuple(
    counter.to_bytes(8, "big") for counter in range(PLAINTEXT_BLOCK_SIZE // 64)
)

#: CPython's C-accelerated JSON string escaper (the exact function
#: ``json.dumps`` uses with the default ``ensure_ascii=True``).
_escape_json_string = json.encoder.encode_basestring_ascii


def _xor(data: bytes, keystream: bytes, out: np.ndarray | None = None):
    """Byte-wise XOR: one NumPy op instead of a Python byte loop.

    Without ``out`` this keeps the original single-record contract (takes and
    returns ``bytes``).  Batched callers pass a preallocated ``out`` row --
    typically an arena slot -- and get the XOR written in place with *no*
    intermediate ``bytes`` round trip (``tobytes()`` was one allocation per
    record on the old hot path).
    """
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(keystream, dtype=np.uint8)
    if out is not None:
        np.bitwise_xor(a, b, out=out)
        return out
    return (a ^ b).tobytes()


@dataclass(frozen=True)
class EncryptedRecord:
    """An encrypted record as stored by the server (object-backed layout).

    The server-visible surface is only ``ciphertext`` (fixed size) and the
    opaque ``handle`` used to address the record inside the outsourced
    structure.  Nothing about the plaintext, including whether it is a dummy,
    is derivable from these fields without the key.
    """

    ciphertext: bytes
    handle: int

    def __post_init__(self) -> None:
        if len(self.ciphertext) != CIPHERTEXT_SIZE:
            raise ValueError(
                f"ciphertext must be exactly {CIPHERTEXT_SIZE} bytes, "
                f"got {len(self.ciphertext)}"
            )

    @property
    def size_bytes(self) -> int:
        """Server-side storage footprint of this record."""
        return len(self.ciphertext)


class ArenaRecord:
    """Zero-copy view of one ciphertext stored in a :class:`CiphertextArena`.

    Exposes the same surface as :class:`EncryptedRecord` (``ciphertext``,
    ``handle``, ``size_bytes``) but owns no bytes: ``ciphertext`` is a
    read-only memoryview into the arena row looked up *at access time*, so a
    view stays valid -- and reflects the same immutable contents -- across
    arena growth and compaction (which reallocate the backing array).
    """

    __slots__ = ("_arena", "_index")

    def __init__(self, arena: "CiphertextArena", index: int) -> None:
        self._arena = arena
        self._index = index

    @property
    def handle(self) -> int:
        """The cipher-assigned handle of this record."""
        return self._arena.handle_at(self._index)

    @property
    def ciphertext(self) -> memoryview:
        """Read-only zero-copy view of the fixed-size ciphertext row."""
        return self._arena.row(self._index)

    @property
    def size_bytes(self) -> int:
        """Server-side storage footprint of this record."""
        return CIPHERTEXT_SIZE

    def to_encrypted_record(self) -> EncryptedRecord:
        """Materialize an owning :class:`EncryptedRecord` copy (tests only)."""
        return EncryptedRecord(ciphertext=bytes(self.ciphertext), handle=self.handle)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (ArenaRecord, EncryptedRecord)):
            return self.handle == other.handle and bytes(self.ciphertext) == bytes(
                other.ciphertext
            )
        return NotImplemented

    def __hash__(self) -> int:
        # Same (ciphertext, handle) tuple a frozen EncryptedRecord hashes, so
        # equal records hash equal across the two layouts.
        return hash((bytes(self.ciphertext), self.handle))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaRecord(handle={self.handle}, index={self._index})"


class CiphertextArena:
    """All ciphertexts of one table in a single contiguous ``uint8`` ndarray.

    Rows are appended through :meth:`reserve` (amortized O(1): capacity
    doubles when exhausted) and never mutated afterwards; handles are recorded
    in a parallel ``int64`` array.  Growth and :meth:`compact` reallocate the
    backing buffers but copy contents verbatim, so handles and decrypted
    records are invariant under both -- a property the Hypothesis suite pins.
    """

    def __init__(self, initial_capacity: int = 64) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        data, handles = self._allocate(initial_capacity)
        self._adopt(data, handles)
        self._size = 0
        self._grow_count = 0

    # -- storage backend (overridden by the shared-memory arena) --------------

    def _allocate(self, capacity: int) -> tuple[np.ndarray, np.ndarray]:
        """Allocate backing buffers for ``capacity`` rows (plus handles)."""
        return (
            np.empty((capacity, CIPHERTEXT_SIZE), dtype=np.uint8),
            np.empty(capacity, dtype=np.int64),
        )

    def _adopt(self, data: np.ndarray, handles: np.ndarray) -> None:
        """Swap in freshly allocated (and already filled) backing buffers."""
        self._data = data
        self._handles = handles

    def release(self) -> None:
        """Release any owned backing resources (no-op for process-local heap
        arenas; the shared-memory arena unlinks its segment here)."""

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Row capacity of the current backing buffer."""
        return int(self._data.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes held by the ciphertext buffer (capacity, not just size)."""
        return int(self._data.nbytes)

    @property
    def grow_count(self) -> int:
        """How many times the backing buffer was reallocated by growth."""
        return self._grow_count

    def reserve(self, count: int) -> np.ndarray:
        """Append ``count`` uninitialized rows; return them as a 2-D view.

        The caller must fill the rows (and their handles via
        :meth:`set_handles`) before anything reads them.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        needed = self._size + count
        if needed > self.capacity:
            new_capacity = self.capacity
            while new_capacity < needed:
                new_capacity *= 2
            data, handles = self._allocate(new_capacity)
            data[: self._size] = self._data[: self._size]
            handles[: self._size] = self._handles[: self._size]
            self._adopt(data, handles)
            self._grow_count += 1
        start = self._size
        self._size = needed
        return self._data[start:needed]

    def set_handles(self, start: int, handles: Sequence[int]) -> None:
        """Record the cipher handles for rows ``start .. start+len(handles)``."""
        self._handles[start : start + len(handles)] = handles

    def compact(self) -> None:
        """Shrink the backing buffers to exactly the used size.

        Contents, row order and handles are preserved verbatim; only the
        over-allocated growth headroom is released.
        """
        if self._size == self.capacity:
            return
        size = max(self._size, 1)
        # A fresh allocation (not a view) so the old full-capacity buffer
        # really is released once nothing else references it.
        data, handles = self._allocate(size)
        data[:] = self._data[:size]
        handles[:] = self._handles[:size]
        self._adopt(data, handles)

    def row(self, index: int) -> memoryview:
        """Read-only zero-copy view of row ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return self._data[index].data.toreadonly()

    def handle_at(self, index: int) -> int:
        """Cipher handle of row ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return int(self._handles[index])

    def record(self, index: int) -> ArenaRecord:
        """The zero-copy :class:`ArenaRecord` view of row ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return ArenaRecord(self, index)

    def records(self) -> tuple[ArenaRecord, ...]:
        """Views of every stored ciphertext, in insertion order."""
        return tuple(ArenaRecord(self, index) for index in range(self._size))

    def as_array(self) -> np.ndarray:
        """The used portion of the ciphertext buffer (a read-only view)."""
        view = self._data[: self._size]
        view.flags.writeable = False
        return view


#: Per-row byte stride of a shared arena segment: one fixed-size ciphertext
#: plus its ``int64`` handle (handles live in the same segment, after the
#: ciphertext block, so one attach resolves both).
_SEGMENT_ROW_STRIDE: int = CIPHERTEXT_SIZE + 8

_arena_sequence = itertools.count()


def _new_arena_id() -> str:
    """A process-unique shared-arena id (also the /dev/shm name prefix)."""
    return f"repro-arena-{os.getpid()}-{next(_arena_sequence)}-{uuid.uuid4().hex[:8]}"


def _segment_views(
    buffer: memoryview, capacity: int
) -> tuple[np.ndarray, np.ndarray]:
    """(rows, handles) ndarray views over one segment buffer."""
    data = np.ndarray(
        (capacity, CIPHERTEXT_SIZE), dtype=np.uint8, buffer=buffer
    )
    handles = np.ndarray(
        capacity,
        dtype=np.int64,
        buffer=buffer,
        offset=capacity * CIPHERTEXT_SIZE,
    )
    return data, handles


def _plain_arena_from_rows(
    row_bytes: bytes, handle_bytes: bytes, size: int
) -> "CiphertextArena":
    """Rebuild a process-local arena from serialized rows (pickle support)."""
    arena = CiphertextArena(initial_capacity=max(size, 1))
    if size:
        rows = arena.reserve(size)
        rows[:] = np.frombuffer(row_bytes, dtype=np.uint8).reshape(
            size, CIPHERTEXT_SIZE
        )
        arena._handles[:size] = np.frombuffer(handle_bytes, dtype=np.int64)
    return arena


def _reap_shared_segments(segments: dict) -> None:
    """Unlink/close every segment a shared arena still owns.

    Module-level (no reference back to the arena) so it can serve as a
    ``weakref.finalize`` callback: it runs deterministically when the arena
    is garbage collected *or* at interpreter exit -- whichever comes first --
    instead of depending on ``__del__`` timing.  Unlinking is the part that
    prevents ``/dev/shm`` leaks; a mapping pinned by a live numpy view is
    released with the process.
    """
    for slot in ("current", "pending"):
        segment = segments.get(slot)
        if segment is None:
            continue
        segments[slot] = None
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view still pins the map
            pass
    for segment in segments.get("retired", ()):
        try:
            segment.close()
        except BufferError:  # pragma: no cover - still pinned
            pass
    segments["retired"] = []


def _close_attached_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach one attached segment (``weakref.finalize`` callback)."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a row view is still alive
        pass


@dataclass(frozen=True)
class ArenaSegmentHandle:
    """Cross-process address of one ciphertext row: ``(segment_name, row)``.

    Handles are minted by a :class:`SharedCiphertextArena` (typically inside
    a shard worker process) and resolved by an :class:`ArenaSegmentCache` in
    another process.  ``segment_name`` is the arena's segment at mint time;
    growth and compaction copy rows verbatim at unchanged indices into a
    fresh segment, so a stale handle still resolves correctly against the
    arena's *current* segment once the swap has been published.
    """

    segment_name: str
    row: int

    @property
    def arena_id(self) -> str:
        """The owning arena's stable id (segment names are ``id.g<n>``)."""
        return self.segment_name.rsplit(".g", 1)[0]


class SharedCiphertextArena(CiphertextArena):
    """A :class:`CiphertextArena` whose rows live in named shared memory.

    Same contract and row layout as the in-process arena (the Hypothesis
    suite pins byte-identity), but the backing buffer is a
    ``multiprocessing.shared_memory`` segment named ``<arena_id>.g<n>``, so
    another process can attach it by name and read ciphertext rows (and
    their handles) zero-copy.  Growth doubles into a *fresh* named segment
    (generation ``n+1``), copies rows verbatim and unlinks the old segment;
    readers learn of the swap through :meth:`export_state` -- and because
    rows are immutable once written, a reader still holding the old mapping
    sees correct bytes for every row that existed before the swap.

    The creating process owns the segment: call :meth:`release` to unlink it
    when the arena is dropped (shard workers do this on shutdown).  As a
    backstop, a ``weakref.finalize`` reaper unlinks the segments when the
    arena is garbage collected or the interpreter exits -- unlike ``__del__``
    this is deterministic at shutdown, so an unclosed arena can no longer
    leak ``/dev/shm`` segments past process exit.

    Pickling serializes the *contents* and reconstructs a process-local
    :class:`CiphertextArena` (rows, handles and indices preserved verbatim):
    a shared-memory mapping is only meaningful inside its creating host, so
    snapshots and cross-process payloads always carry plain arenas.
    """

    def __init__(self, initial_capacity: int = 64, name: str | None = None) -> None:
        self._arena_id = name if name is not None else _new_arena_id()
        self._generation = 0
        #: Mutable box owning the shm segments; shared with the finalizer so
        #: the reaper never needs a reference back to ``self``.
        self._segments: dict = {"current": None, "pending": None, "retired": []}
        self._finalizer = weakref.finalize(
            self, _reap_shared_segments, self._segments
        )
        super().__init__(initial_capacity)

    # -- storage backend ------------------------------------------------------

    def _allocate(self, capacity: int) -> tuple[np.ndarray, np.ndarray]:
        segment = shared_memory.SharedMemory(
            name=f"{self._arena_id}.g{self._generation + 1}",
            create=True,
            size=capacity * _SEGMENT_ROW_STRIDE,
        )
        self._generation += 1
        self._segments["pending"] = segment
        return _segment_views(segment.buf, capacity)

    def _adopt(self, data: np.ndarray, handles: np.ndarray) -> None:
        old = self._segments["current"]
        self._segments["current"] = self._segments["pending"]
        self._segments["pending"] = None
        super()._adopt(data, handles)
        if old is not None:
            self._retire(old)

    def _retire(self, segment: shared_memory.SharedMemory) -> None:
        """Unlink a superseded segment; close it when no views pin it."""
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            segment.close()
        except BufferError:
            # A numpy view over the old buffer is still alive somewhere;
            # the mapping is released with the process (the name is gone
            # already, so nothing leaks past process exit).
            self._segments["retired"].append(segment)

    def release(self) -> None:
        """Unlink the current segment (idempotent; creator-side cleanup)."""
        self._data = np.empty((0, CIPHERTEXT_SIZE), dtype=np.uint8)
        self._handles = np.empty(0, dtype=np.int64)
        # The finalizer doubles as the release implementation: it is
        # idempotent (finalize callbacks run at most once) and detaching it
        # here means a released arena costs nothing at GC/exit time.
        self._finalizer()

    def __reduce__(self):
        return (
            _plain_arena_from_rows,
            (
                self._data[: self._size].tobytes(),
                self._handles[: self._size].tobytes(),
                self._size,
            ),
        )

    # -- publication ----------------------------------------------------------

    @property
    def arena_id(self) -> str:
        """Stable id of this arena across growth/compaction swaps."""
        return self._arena_id

    @property
    def generation(self) -> int:
        """How many segments this arena has allocated so far."""
        return self._generation

    @property
    def segment_name(self) -> str:
        """Name of the current backing segment (``<arena_id>.g<n>``)."""
        segment = self._segments["current"]
        if segment is None:
            raise RuntimeError("arena released")
        return segment.name

    def handle_for(self, index: int) -> ArenaSegmentHandle:
        """The cross-process handle of row ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return ArenaSegmentHandle(segment_name=self.segment_name, row=index)

    def export_state(self) -> dict:
        """The published view of this arena: current segment name and size.

        This is the "swap publication" message workers send the coordinator
        after every ingest: feeding it to
        :meth:`ArenaSegmentCache.publish` lets stale handles resolve against
        the current segment.
        """
        return {
            "arena_id": self._arena_id,
            "segment_name": self.segment_name,
            "size": self._size,
            "generation": self._generation,
        }


class AttachedArenaView:
    """Read-only attachment to one published shared-arena segment.

    Exposes the same ``row``/``handle_at``/``record`` surface as the arena
    itself, so :class:`ArenaRecord` views work identically whether they are
    backed by the local arena or by an attachment in another process --
    nothing downstream of the attach can tell the difference (and no bytes
    are copied either way).
    """

    def __init__(self, segment_name: str, size: int) -> None:
        # Arena ids embed the creating pid: an attach within the creator's
        # own process (tests, single-process fleets) must leave the creator's
        # resource-tracker registration alone.
        created_here = segment_name.startswith(f"repro-arena-{os.getpid()}-")
        self._segment = attach_shared_memory(segment_name, untrack=not created_here)
        self._name = segment_name
        self._finalizer = weakref.finalize(
            self, _close_attached_segment, self._segment
        )
        capacity = len(self._segment.buf) // _SEGMENT_ROW_STRIDE
        if size > capacity:
            self._finalizer()
            raise ValueError(
                f"published size {size} exceeds segment capacity {capacity}"
            )
        self._data, self._handles = _segment_views(self._segment.buf, capacity)
        self._size = size

    def __len__(self) -> int:
        return self._size

    @property
    def segment_name(self) -> str:
        """Name of the attached segment."""
        return self._name

    def row(self, index: int) -> memoryview:
        """Read-only zero-copy view of row ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return self._data[index].data.toreadonly()

    def handle_at(self, index: int) -> int:
        """Cipher handle of row ``index`` (read from the shared segment)."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return int(self._handles[index])

    def record(self, index: int) -> ArenaRecord:
        """Zero-copy :class:`ArenaRecord` over the attached row."""
        if not 0 <= index < self._size:
            raise IndexError(f"arena row {index} out of range (size {self._size})")
        return ArenaRecord(self, index)

    def records(self) -> tuple[ArenaRecord, ...]:
        """Views of every published ciphertext, in insertion order."""
        return tuple(ArenaRecord(self, index) for index in range(self._size))

    def close(self) -> None:
        """Detach from the segment (never unlinks -- the creator owns it)."""
        self._data = np.empty((0, CIPHERTEXT_SIZE), dtype=np.uint8)
        self._handles = np.empty(0, dtype=np.int64)
        self._size = 0
        self._finalizer()


class ArenaSegmentCache:
    """Coordinator-side resolver for :class:`ArenaSegmentHandle`\\ s.

    Tracks, per arena id, the arena's *current* published segment (fed by
    :meth:`publish` from worker ``export_state`` messages) and keeps one
    attachment per segment.  Handles minted before a growth swap resolve
    against the current segment -- row indices are invariant under growth
    and compaction, which the shared-arena Hypothesis suite pins.
    """

    def __init__(self) -> None:
        self._views: dict[str, AttachedArenaView] = {}
        self._current: dict[str, dict] = {}

    def publish(self, state: Mapping) -> AttachedArenaView:
        """Record an arena's published state; return the current attachment.

        Publishes are generation-ordered: a state older than the one already
        known for the arena (a delayed/re-delivered message from before a
        growth swap) is ignored rather than re-attached -- its segment name
        is already unlinked, and rolling ``_current`` back would strand every
        handle minted since the swap.
        """
        arena_id = state["arena_id"]
        segment_name = state["segment_name"]
        known = self._current.get(arena_id)
        if known is not None:
            if state["generation"] < known["generation"]:
                return self.publish(known)
            if known["segment_name"] != segment_name:
                # The arena grew or compacted into a fresh segment: drop the
                # superseded attachment (its name may already be unlinked).
                stale = self._views.pop(known["segment_name"], None)
                if stale is not None:
                    stale.close()
        self._current[arena_id] = dict(state)
        view = self._views.get(segment_name)
        if view is None or len(view) < state["size"]:
            if view is not None:
                view.close()
            view = AttachedArenaView(segment_name, state["size"])
            self._views[segment_name] = view
        return view

    def resolve(self, handle: ArenaSegmentHandle) -> ArenaRecord:
        """Resolve a handle to a zero-copy record view.

        The handle's own segment name is only a hint: resolution goes
        through the arena's current published segment, so handles minted
        before a growth/compaction swap stay valid.
        """
        state = self._current.get(handle.arena_id)
        if state is None:
            raise KeyError(
                f"no published state for arena {handle.arena_id!r}; "
                "feed export_state() to publish() first"
            )
        view = self.publish(state)
        return view.record(handle.row)

    def close(self) -> None:
        """Detach every cached attachment (idempotent)."""
        for view in self._views.values():
            view.close()
        self._views = {}
        self._current = {}


@dataclass
class RecordCipher:
    """Keyed cipher that encrypts records into fixed-size ciphertexts.

    Parameters
    ----------
    key:
        32-byte secret key.  Generated randomly when omitted.
    """

    key: bytes = field(default_factory=lambda: os.urandom(32))
    _next_handle: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.key) < 16:
            raise ValueError("key must be at least 16 bytes")
        # Precomputed hash prototypes for the bulk paths: copying a keyed
        # state skips the key schedule on every call while producing digests
        # identical to ``blake2b(data, key=...)`` / ``hmac.new(key, data,
        # sha256)``.  The HMAC is kept as its definition -- inner/outer
        # SHA-256 states over the ipad/opad-masked key -- because the
        # ``hmac`` module's pure-Python wrappers cost more than the hashing
        # itself at ciphertext-record sizes.
        self._blake_proto = hashlib.blake2b(key=self.key, digest_size=64)
        hmac_key = (
            hashlib.sha256(self.key).digest() if len(self.key) > 64 else self.key
        )
        padded = hmac_key.ljust(64, b"\x00")
        self._hmac_inner = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
        self._hmac_outer = hashlib.sha256(bytes(b ^ 0x5C for b in padded))

    def __getstate__(self) -> dict:
        # The hash prototypes are C hashlib objects and cannot be pickled;
        # they are pure functions of the key, so drop them here and rebuild
        # them on restore.
        return {"key": self.key, "_next_handle": self._next_handle}

    def __setstate__(self, state: dict) -> None:
        self.key = state["key"]
        self._next_handle = state["_next_handle"]
        self.__post_init__()

    def rotated(self, new_key: bytes | None = None) -> "RecordCipher":
        """A cipher under a fresh key that continues this handle sequence.

        Handles are opaque server-side identifiers, not key material: a
        rotation must keep minting from where the old cipher stopped so
        existing :class:`ArenaRecord` handles stay unique alongside
        post-rotation ones.
        """
        cipher = RecordCipher(
            key=new_key if new_key is not None else os.urandom(32)
        )
        cipher._next_handle = self._next_handle
        return cipher

    def encrypt(self, record: Record) -> EncryptedRecord:
        """Encrypt ``record`` into a fixed-size :class:`EncryptedRecord`.

        This is the per-record reference path, kept with its original
        fresh-keyed hash construction (one keystream derivation, one HMAC key
        schedule and one owning ``bytes`` ciphertext per record) -- it is
        what the arena bulk path is benchmarked against.  Outputs are
        byte-identical to the bulk path for equal nonces.
        """
        plaintext = self._serialize(record)
        nonce = os.urandom(NONCE_SIZE)
        keystream = self._keystream(nonce, len(plaintext))
        body = _xor(plaintext, keystream)
        tag = hmac.new(self.key, nonce + body, hashlib.sha256).digest()
        handle = self._next_handle
        self._next_handle += 1
        return EncryptedRecord(ciphertext=nonce + body + tag, handle=handle)

    def encrypt_many(self, records: Iterable[Record]) -> list[EncryptedRecord]:
        """Encrypt a batch of records into owning :class:`EncryptedRecord`\\ s.

        One call per flush instead of one per record; every record still gets
        its own fresh nonce and fixed-size ciphertext, so a batch leaks
        exactly what the same records leaked when encrypted one at a time:
        the count.  This is the object-backed reference path; the arena fast
        path is :meth:`encrypt_many_into`.
        """
        return [self.encrypt(record) for record in records]

    def encrypt_many_into(
        self, records: Sequence[Record], arena: CiphertextArena
    ) -> list[int]:
        """Encrypt a batch straight into reserved arena rows; return handles.

        The bulk path the ingest hot loop runs: one ``os.urandom`` call for
        the whole batch's nonces, every keystream digest joined into a single
        2-D ``uint8`` matrix, one vectorized XOR writing bodies directly into
        the arena slots, and tags appended with prototype-copied HMAC states.
        No intermediate ``bytes`` ciphertexts and no per-record
        ``EncryptedRecord`` construction or length validation -- the arena row
        shape enforces the fixed ciphertext size for the whole batch at once.
        Ciphertexts are byte-for-byte what :meth:`encrypt` would have produced
        for the same nonces, so :meth:`decrypt` handles both layouts.
        """
        n = len(records)
        if n == 0:
            return []
        plaintext = b"".join(self._serialize(record) for record in records)
        nonces = os.urandom(NONCE_SIZE * n)

        rows = arena.reserve(n)
        rows[:, :NONCE_SIZE] = np.frombuffer(nonces, dtype=np.uint8).reshape(
            n, NONCE_SIZE
        )

        blake_proto = self._blake_proto
        digests: list[bytes] = []
        for index in range(n):
            nonce = nonces[index * NONCE_SIZE : (index + 1) * NONCE_SIZE]
            for counter in _KEYSTREAM_COUNTERS:
                h = blake_proto.copy()
                h.update(nonce)
                h.update(counter)
                digests.append(h.digest())
        keystream = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(
            n, PLAINTEXT_BLOCK_SIZE
        )
        bodies = np.frombuffer(plaintext, dtype=np.uint8).reshape(
            n, PLAINTEXT_BLOCK_SIZE
        )
        np.bitwise_xor(bodies, keystream, out=rows[:, NONCE_SIZE:_BODY_END])

        hmac_inner, hmac_outer = self._hmac_inner, self._hmac_outer
        row_view = memoryview(rows).cast("B")
        tags: list[bytes] = []
        for index in range(n):
            inner = hmac_inner.copy()
            inner.update(row_view[index * CIPHERTEXT_SIZE : index * CIPHERTEXT_SIZE + _BODY_END])
            outer = hmac_outer.copy()
            outer.update(inner.digest())
            tags.append(outer.digest())
        rows[:, _BODY_END:] = np.frombuffer(b"".join(tags), dtype=np.uint8).reshape(
            n, 32
        )

        start_handle = self._next_handle
        self._next_handle += n
        handles = list(range(start_handle, start_handle + n))
        arena.set_handles(len(arena) - n, handles)
        return handles

    def decrypt(self, encrypted: "EncryptedRecord | ArenaRecord") -> Record:
        """Decrypt an encrypted record (either storage layout) back to a
        :class:`Record`.

        Raises ``ValueError`` if the authentication tag does not verify.
        """
        ciphertext = encrypted.ciphertext
        if not isinstance(ciphertext, bytes):
            ciphertext = bytes(ciphertext)
        nonce = ciphertext[:NONCE_SIZE]
        body = ciphertext[NONCE_SIZE:-32]
        tag = ciphertext[-32:]
        expected = hmac.new(self.key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise ValueError("ciphertext failed authentication")
        keystream = self._keystream(nonce, len(body))
        plaintext = _xor(body, keystream)
        return self._deserialize(plaintext)

    def decrypt_many(
        self, encrypted: Iterable["EncryptedRecord | ArenaRecord"]
    ) -> list[Record]:
        """Decrypt a batch with one vectorized keystream XOR.

        Tags are verified per record (a single bad row must fail loudly, not
        poison the batch silently); keystream derivation and the XOR over the
        whole batch run on 2-D arrays like the encrypt bulk path.
        """
        batch = list(encrypted)
        n = len(batch)
        if n == 0:
            return []
        rows = np.empty((n, CIPHERTEXT_SIZE), dtype=np.uint8)
        for index, record in enumerate(batch):
            ciphertext = record.ciphertext
            if len(ciphertext) != CIPHERTEXT_SIZE:
                raise ValueError(
                    f"ciphertext must be exactly {CIPHERTEXT_SIZE} bytes, "
                    f"got {len(ciphertext)}"
                )
            rows[index] = np.frombuffer(ciphertext, dtype=np.uint8)

        hmac_inner, hmac_outer = self._hmac_inner, self._hmac_outer
        blake_proto = self._blake_proto
        digests: list[bytes] = []
        row_view = memoryview(rows).cast("B")
        for index in range(n):
            offset = index * CIPHERTEXT_SIZE
            authenticated = row_view[offset : offset + _BODY_END]
            inner = hmac_inner.copy()
            inner.update(authenticated)
            outer = hmac_outer.copy()
            outer.update(inner.digest())
            expected = outer.digest()
            if not hmac.compare_digest(
                row_view[offset + _BODY_END : offset + CIPHERTEXT_SIZE], expected
            ):
                raise ValueError("ciphertext failed authentication")
            nonce = authenticated[:NONCE_SIZE]
            for counter in _KEYSTREAM_COUNTERS:
                b = blake_proto.copy()
                b.update(nonce)
                b.update(counter)
                digests.append(b.digest())
        keystream = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(
            n, PLAINTEXT_BLOCK_SIZE
        )
        plaintexts = (rows[:, NONCE_SIZE:_BODY_END] ^ keystream).tobytes()
        return [
            self._deserialize(
                plaintexts[
                    index * PLAINTEXT_BLOCK_SIZE : (index + 1) * PLAINTEXT_BLOCK_SIZE
                ]
            )
            for index in range(n)
        ]

    def reencrypt_arena(
        self, arena: "CiphertextArena", new_cipher: "RecordCipher"
    ) -> int:
        """Re-encrypt every arena row *in place* under ``new_cipher``'s key.

        Rotation works at the padded-plaintext-block level: each row's tag is
        verified under this (old) key, the 256-byte padded block is recovered
        by XORing off the old keystream, and that exact block is re-encrypted
        under ``new_cipher`` with a fresh nonce -- no serialize round trip,
        so decrypted payloads are byte-identical before and after.  Rows,
        handles and row indices are untouched, which keeps every outstanding
        :class:`ArenaRecord` / :class:`ArenaSegmentHandle` valid.  Returns
        the number of rows re-encrypted.
        """
        n = len(arena)
        if n == 0:
            return 0
        rows = arena._data[:n]
        row_view = memoryview(rows).cast("B")

        # Verify + strip the old keystream (batched like decrypt_many).
        hmac_inner, hmac_outer = self._hmac_inner, self._hmac_outer
        blake_proto = self._blake_proto
        digests: list[bytes] = []
        for index in range(n):
            offset = index * CIPHERTEXT_SIZE
            authenticated = row_view[offset : offset + _BODY_END]
            inner = hmac_inner.copy()
            inner.update(authenticated)
            outer = hmac_outer.copy()
            outer.update(inner.digest())
            if not hmac.compare_digest(
                row_view[offset + _BODY_END : offset + CIPHERTEXT_SIZE],
                outer.digest(),
            ):
                raise ValueError(
                    "ciphertext failed authentication during re-keying"
                )
            nonce = authenticated[:NONCE_SIZE]
            for counter in _KEYSTREAM_COUNTERS:
                h = blake_proto.copy()
                h.update(nonce)
                h.update(counter)
                digests.append(h.digest())
        old_keystream = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(
            n, PLAINTEXT_BLOCK_SIZE
        )
        plaintext_blocks = rows[:, NONCE_SIZE:_BODY_END] ^ old_keystream

        # Fresh nonces + new keystream + new tags (batched like
        # encrypt_many_into), written straight back into the same rows.
        nonces = os.urandom(NONCE_SIZE * n)
        rows[:, :NONCE_SIZE] = np.frombuffer(nonces, dtype=np.uint8).reshape(
            n, NONCE_SIZE
        )
        new_proto = new_cipher._blake_proto
        digests = []
        for index in range(n):
            nonce = nonces[index * NONCE_SIZE : (index + 1) * NONCE_SIZE]
            for counter in _KEYSTREAM_COUNTERS:
                h = new_proto.copy()
                h.update(nonce)
                h.update(counter)
                digests.append(h.digest())
        new_keystream = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(
            n, PLAINTEXT_BLOCK_SIZE
        )
        np.bitwise_xor(
            plaintext_blocks, new_keystream, out=rows[:, NONCE_SIZE:_BODY_END]
        )

        new_inner, new_outer = new_cipher._hmac_inner, new_cipher._hmac_outer
        tags: list[bytes] = []
        for index in range(n):
            offset = index * CIPHERTEXT_SIZE
            inner = new_inner.copy()
            inner.update(row_view[offset : offset + _BODY_END])
            outer = new_outer.copy()
            outer.update(inner.digest())
            tags.append(outer.digest())
        rows[:, _BODY_END:] = np.frombuffer(b"".join(tags), dtype=np.uint8).reshape(
            n, 32
        )
        return n

    def reencrypt_record(
        self, ciphertext: bytes, new_cipher: "RecordCipher"
    ) -> bytes:
        """Re-encrypt one object-backed ciphertext under ``new_cipher``'s key.

        Same block-level contract as :meth:`reencrypt_arena`: the padded
        plaintext block is carried over verbatim, so the record decrypts
        byte-identically under the new key.
        """
        nonce = ciphertext[:NONCE_SIZE]
        body = ciphertext[NONCE_SIZE:-32]
        tag = ciphertext[-32:]
        expected = hmac.new(self.key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise ValueError("ciphertext failed authentication during re-keying")
        plaintext = _xor(body, self._keystream(nonce, len(body)))
        new_nonce = os.urandom(NONCE_SIZE)
        new_body = _xor(plaintext, new_cipher._keystream(new_nonce, len(plaintext)))
        new_tag = hmac.new(
            new_cipher.key, new_nonce + new_body, hashlib.sha256
        ).digest()
        return new_nonce + new_body + new_tag

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            block = hashlib.blake2b(
                nonce + counter.to_bytes(8, "big"), key=self.key, digest_size=64
            ).digest()
            blocks.append(block)
            counter += 1
        return b"".join(blocks)[:length]

    @staticmethod
    def _record_json(record: Record) -> str | None:
        """Hand-rolled canonical JSON for the common scalar-valued record.

        Byte-for-byte equal to ``json.dumps(payload, sort_keys=True,
        separators=(",", ":"))`` for records whose field values are plain
        ``str`` / exact ``int`` / finite exact ``float`` / ``bool`` / ``None``
        (every workload in the repository) -- the property test in
        ``tests/test_edb_crypto.py`` pins the equality.  Returns ``None`` for
        anything else (numpy scalars, containers, non-string keys, NaN/inf),
        sending the record down the stock ``json.dumps`` path.  Serialization
        was the single largest per-record cost left on the encrypted ingest
        hot loop once hashing was batched.
        """
        if type(record.arrival_time) is not int or type(record.table) is not str:
            return None
        parts = []
        for key in sorted(record.values):
            if type(key) is not str:
                return None
            value = record.values[key]
            if value is True:
                scalar = "true"
            elif value is False:
                scalar = "false"
            elif type(value) is int:
                scalar = repr(value)
            elif type(value) is float:
                # json.dumps renders finite floats with float.__repr__ and
                # non-finite ones as NaN/Infinity; only the former is common.
                if value != value or math.isinf(value):
                    return None
                scalar = repr(value)
            elif type(value) is str:
                scalar = _escape_json_string(value)
            elif value is None:
                scalar = "null"
            else:
                return None
            parts.append(f"{_escape_json_string(key)}:{scalar}")
        return (
            f'{{"arrival_time":{record.arrival_time!r},'
            f'"is_dummy":{"true" if record.is_dummy else "false"},'
            f'"table":{_escape_json_string(record.table)},'
            f'"values":{{{",".join(parts)}}}}}'
        )

    @staticmethod
    def _serialize(record: Record) -> bytes:
        encoded = RecordCipher._record_json(record)
        if encoded is None:
            payload: dict[str, Any] = {
                "values": dict(record.values),
                "arrival_time": record.arrival_time,
                "is_dummy": record.is_dummy,
                "table": record.table,
            }
            encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        raw = encoded.encode()
        if len(raw) > PLAINTEXT_BLOCK_SIZE - 4:
            raise ValueError(
                f"record serialization of {len(raw)} bytes exceeds the "
                f"{PLAINTEXT_BLOCK_SIZE - 4}-byte plaintext block"
            )
        length_prefix = len(raw).to_bytes(4, "big")
        padding = b"\x00" * (PLAINTEXT_BLOCK_SIZE - 4 - len(raw))
        return length_prefix + raw + padding

    @staticmethod
    def _deserialize(plaintext: bytes) -> Record:
        length = int.from_bytes(plaintext[:4], "big")
        payload = json.loads(plaintext[4 : 4 + length].decode())
        return Record(
            values=payload["values"],
            arrival_time=payload["arrival_time"],
            is_dummy=payload["is_dummy"],
            table=payload["table"],
        )
