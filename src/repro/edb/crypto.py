"""Simulated record-level encryption.

The paper assumes an *atomic* encrypted database: every record (real or dummy)
is encrypted independently into a fixed-size ciphertext under a semantically
secure scheme, so the server cannot tell real records from dummies.  This
module simulates exactly that contract:

* :class:`RecordCipher` derives a per-record keystream from a secret key and a
  random 128-bit nonce (a keyed BLAKE2b PRF in counter mode) and XORs it over
  a canonical, padded serialization of the record.
* Every ciphertext has the same length regardless of the plaintext content or
  the ``is_dummy`` flag, which is what makes the update volume ``|γ_t|`` the
  *only* information the server learns from an update.

This is a simulation of AES-CTR-style encryption for a reproduction study: it
provides the indistinguishability property the analysis needs (and tests
check), but it has not been audited for production cryptographic use.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.edb.records import Record

__all__ = ["EncryptedRecord", "RecordCipher", "CIPHERTEXT_SIZE"]

#: Fixed plaintext-block size (bytes) every record is padded to before
#: encryption.  Large enough for the paper's taxi schema with slack; the
#: cipher raises if a record does not fit rather than silently leaking length.
PLAINTEXT_BLOCK_SIZE: int = 256

#: Nonce length in bytes prepended to every ciphertext.
NONCE_SIZE: int = 16

#: Total ciphertext size: nonce + padded body + authentication tag.
CIPHERTEXT_SIZE: int = NONCE_SIZE + PLAINTEXT_BLOCK_SIZE + 32


def _xor(data: bytes, keystream: bytes) -> bytes:
    """Vectorized byte-wise XOR (one NumPy op instead of a Python byte loop)."""
    return (
        np.frombuffer(data, dtype=np.uint8) ^ np.frombuffer(keystream, dtype=np.uint8)
    ).tobytes()


@dataclass(frozen=True)
class EncryptedRecord:
    """An encrypted record as stored by the server.

    The server-visible surface is only ``ciphertext`` (fixed size) and the
    opaque ``handle`` used to address the record inside the outsourced
    structure.  Nothing about the plaintext, including whether it is a dummy,
    is derivable from these fields without the key.
    """

    ciphertext: bytes
    handle: int

    def __post_init__(self) -> None:
        if len(self.ciphertext) != CIPHERTEXT_SIZE:
            raise ValueError(
                f"ciphertext must be exactly {CIPHERTEXT_SIZE} bytes, "
                f"got {len(self.ciphertext)}"
            )

    @property
    def size_bytes(self) -> int:
        """Server-side storage footprint of this record."""
        return len(self.ciphertext)


@dataclass
class RecordCipher:
    """Keyed cipher that encrypts records into fixed-size ciphertexts.

    Parameters
    ----------
    key:
        32-byte secret key.  Generated randomly when omitted.
    """

    key: bytes = field(default_factory=lambda: os.urandom(32))
    _next_handle: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.key) < 16:
            raise ValueError("key must be at least 16 bytes")

    def encrypt(self, record: Record) -> EncryptedRecord:
        """Encrypt ``record`` into a fixed-size :class:`EncryptedRecord`."""
        plaintext = self._serialize(record)
        nonce = os.urandom(NONCE_SIZE)
        keystream = self._keystream(nonce, len(plaintext))
        body = _xor(plaintext, keystream)
        tag = hmac.new(self.key, nonce + body, hashlib.sha256).digest()
        handle = self._next_handle
        self._next_handle += 1
        return EncryptedRecord(ciphertext=nonce + body + tag, handle=handle)

    def encrypt_many(self, records: Iterable[Record]) -> list[EncryptedRecord]:
        """Encrypt a batch of records (the batched-ingestion entry point).

        One call per flush instead of one per record; every record still gets
        its own fresh nonce and fixed-size ciphertext, so a batch leaks
        exactly what the same records leaked when encrypted one at a time:
        the count.
        """
        return [self.encrypt(record) for record in records]

    def decrypt(self, encrypted: EncryptedRecord) -> Record:
        """Decrypt an :class:`EncryptedRecord` back into a :class:`Record`.

        Raises ``ValueError`` if the authentication tag does not verify.
        """
        nonce = encrypted.ciphertext[:NONCE_SIZE]
        body = encrypted.ciphertext[NONCE_SIZE:-32]
        tag = encrypted.ciphertext[-32:]
        expected = hmac.new(self.key, nonce + body, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise ValueError("ciphertext failed authentication")
        keystream = self._keystream(nonce, len(body))
        plaintext = _xor(body, keystream)
        return self._deserialize(plaintext)

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < length:
            block = hashlib.blake2b(
                nonce + counter.to_bytes(8, "big"), key=self.key, digest_size=64
            ).digest()
            blocks.append(block)
            counter += 1
        return b"".join(blocks)[:length]

    @staticmethod
    def _serialize(record: Record) -> bytes:
        payload: dict[str, Any] = {
            "values": dict(record.values),
            "arrival_time": record.arrival_time,
            "is_dummy": record.is_dummy,
            "table": record.table,
        }
        raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        if len(raw) > PLAINTEXT_BLOCK_SIZE - 4:
            raise ValueError(
                f"record serialization of {len(raw)} bytes exceeds the "
                f"{PLAINTEXT_BLOCK_SIZE - 4}-byte plaintext block"
            )
        length_prefix = len(raw).to_bytes(4, "big")
        padding = b"\x00" * (PLAINTEXT_BLOCK_SIZE - 4 - len(raw))
        return length_prefix + raw + padding

    @staticmethod
    def _deserialize(plaintext: bytes) -> Record:
        length = int.from_bytes(plaintext[:4], "big")
        payload = json.loads(plaintext[4 : 4 + length].decode())
        return Record(
            values=payload["values"],
            arrival_time=payload["arrival_time"],
            is_dummy=payload["is_dummy"],
            table=payload["table"],
        )
