"""Plaintext records, schemas and dummy records.

DP-Sync treats the outsourced database as *atomic*: every logical record is
encrypted independently into one ciphertext.  Records here are small immutable
objects carrying a field dictionary plus bookkeeping used by the framework:

* ``arrival_time`` -- the time unit at which the owner received the record
  (drives the update-pattern analysis and the logical-gap metric);
* ``is_dummy`` -- whether the record is a dummy inserted purely to pad an
  update volume.  Dummy records are indistinguishable from real ones once
  encrypted (see :mod:`repro.edb.crypto`) and are filtered out of query
  answers by the dummy-aware query rewriting (Appendix B).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "DUMMY_SENTINEL",
    "Schema",
    "Record",
    "SchemaDummyFactory",
    "make_dummy_record",
    "count_real",
    "count_dummy",
]

#: Value stored in every field of a dummy record.  It is outside the domain of
#: all real attributes used by the paper's workloads (pickup ids are >= 1,
#: timestamps are >= 0), so a dummy can never accidentally satisfy a filter
#: even without rewriting -- rewriting is still applied, matching Appendix B.
DUMMY_SENTINEL: int = -1

_record_counter = itertools.count()


@dataclass(frozen=True)
class Schema:
    """A named, ordered collection of attributes for a single table.

    Attributes
    ----------
    name:
        Table name (e.g. ``"YellowCab"``).
    attributes:
        Ordered tuple of attribute names.  The implicit ``isDummy`` attribute
        used by query rewriting is *not* listed here; it lives on the record
        object itself.
    key:
        Optional attribute used as the table's natural key.
    """

    name: str
    attributes: tuple[str, ...]
    key: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("schema name must be non-empty")
        if not self.attributes:
            raise ValueError("schema must declare at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in schema {self.name!r}")
        if self.key is not None and self.key not in self.attributes:
            raise ValueError(
                f"key {self.key!r} is not an attribute of schema {self.name!r}"
            )

    def validate(self, values: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` if ``values`` does not match the schema."""
        missing = [a for a in self.attributes if a not in values]
        if missing:
            raise ValueError(f"record is missing attributes {missing} for {self.name}")
        extra = [a for a in values if a not in self.attributes]
        if extra:
            raise ValueError(f"record has unknown attributes {extra} for {self.name}")


@dataclass(frozen=True)
class Record:
    """A single (plaintext) record of a growing database.

    Records compare by identity of their ``record_id`` which is assigned at
    construction time; two records with equal field values are still distinct
    rows, matching relational bag semantics.
    """

    values: Mapping[str, Any]
    arrival_time: int = 0
    is_dummy: bool = False
    table: str = ""
    record_id: int = field(default_factory=lambda: next(_record_counter))

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        # Freeze the mapping so records are safely hashable/shareable.
        object.__setattr__(self, "values", dict(self.values))

    def __getitem__(self, attribute: str) -> Any:
        return self.values[attribute]

    def get(self, attribute: str, default: Any = None) -> Any:
        """Dictionary-style access with a default."""
        return self.values.get(attribute, default)

    def __hash__(self) -> int:
        return hash(self.record_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.record_id == other.record_id

    def with_values(self, **overrides: Any) -> "Record":
        """Return a copy with some field values replaced (new record id)."""
        new_values = dict(self.values)
        new_values.update(overrides)
        return Record(
            values=new_values,
            arrival_time=self.arrival_time,
            is_dummy=self.is_dummy,
            table=self.table,
        )


def make_dummy_record(schema: Schema, arrival_time: int = 0) -> Record:
    """Create a dummy record conforming to ``schema``.

    Every attribute is set to :data:`DUMMY_SENTINEL`.  The record carries
    ``is_dummy=True`` so that dummy-aware query rewriting can exclude it.
    """
    values = {attribute: DUMMY_SENTINEL for attribute in schema.attributes}
    return Record(
        values=values,
        arrival_time=arrival_time,
        is_dummy=True,
        table=schema.name,
    )


@dataclass(frozen=True)
class SchemaDummyFactory:
    """Picklable ``dummy_factory`` callable bound to one schema.

    Strategies hold their dummy factory for the lifetime of a run; binding
    the schema with a lambda would make the whole strategy state unpicklable,
    which the durable store (``repro.edb.store``) relies on for
    kill-and-resume snapshots.
    """

    schema: Schema

    def __call__(self, arrival_time: int = 0) -> Record:
        return make_dummy_record(self.schema, arrival_time)


def count_real(records: Iterable[Record]) -> int:
    """Number of non-dummy records in ``records``."""
    return sum(1 for record in records if not record.is_dummy)


def count_dummy(records: Iterable[Record]) -> int:
    """Number of dummy records in ``records``."""
    return sum(1 for record in records if record.is_dummy)
