"""The secure-outsourced-growing-database (SOGDB) protocol interface.

Definition 1 of the paper specifies an encrypted database as three protocols
plus a synchronization algorithm::

    (⊥, DS_0, ⊥) <- Setup((λ, D_0), ⊥, ⊥)
    (⊥, DS'_t, ⊥) <- Update(γ, DS_t, ⊥)
    (⊥, ⊥, a_t)  <- Query(⊥, DS_t, q_t)

The ``Sync`` algorithm lives in :mod:`repro.core.strategies`; this module
defines the server-side EDB interface shared by the two simulated back-ends
(:class:`repro.edb.oblidb.ObliDB` and :class:`repro.edb.crypte.CryptEpsilon`).

The base class handles the bookkeeping that is common to every atomic EDB:

* one ciphertext per record (real or dummy), with optional *actual*
  encryption via :class:`repro.edb.crypto.RecordCipher` (disabled by default
  in large simulations because only the count and fixed ciphertext size are
  observable -- tests enable it to check the indistinguishability contract);
* an update-history transcript (time, volume) which is exactly the
  update-pattern leakage DP-Sync reasons about;
* per-table plaintext mirrors over which the "enclave side" of the query
  protocol is evaluated;
* cost-model charging for Setup/Update/Query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.edb.cost_model import CostModel, CostParameters, UnsupportedQueryError
from repro.edb.crypto import (
    ArenaRecord,
    CiphertextArena,
    EncryptedRecord,
    RecordCipher,
)
from repro.edb.leakage import LeakageClass, LeakageProfile
from repro.edb.records import Record, count_dummy
from repro.query.ast import Query
from repro.query.columnar import ColumnarExecutor
from repro.query.executor import Answer, ExecutionStats, PlaintextExecutor
from repro.query.views import StaleWindowError, ViewRegistry, can_maintain

__all__ = [
    "EDB_MODES",
    "CIPHERTEXT_STORES",
    "UpdateResult",
    "QueryResult",
    "EncryptedDatabase",
    "UnsupportedQueryError",
    "resolve_edb_mode",
    "resolve_ciphertext_store",
]

#: Implementation modes shared by every back-end: ``"fast"`` runs the
#: vectorized columnar operators and the array-backed ORAM, ``"reference"``
#: runs the original pure-Python row-at-a-time path.  The two are
#: observationally identical -- same sync times, update volumes, query
#: answers and leakage -- which ``tests/test_edb_differential.py`` enforces.
EDB_MODES = ("fast", "reference")


def resolve_edb_mode(mode: str) -> str:
    """Validate (and normalize) an EDB implementation-mode flag."""
    normalized = mode.lower()
    if normalized not in EDB_MODES:
        raise ValueError(f"edb mode must be one of {EDB_MODES}, got {mode!r}")
    return normalized


#: Server-side ciphertext layouts when encryption is simulated: ``"arena"``
#: keeps all ciphertexts of a table in one contiguous capacity-doubling
#: ndarray (bulk encrypt, zero-copy views); ``"objects"`` keeps one owning
#: :class:`EncryptedRecord` per record (the per-record reference path).
CIPHERTEXT_STORES = ("arena", "objects")


def resolve_ciphertext_store(store: str | None, mode: str) -> str:
    """Normalize a ciphertext-store flag, defaulting from the EDB mode.

    ``None`` follows the implementation mode (fast -> arena, reference ->
    objects); an explicit value overrides it, which the differential bench
    uses to A/B the storage layouts under an otherwise identical fast-mode
    configuration.
    """
    if store is None:
        return "arena" if resolve_edb_mode(mode) == "fast" else "objects"
    normalized = store.lower()
    if normalized not in CIPHERTEXT_STORES:
        raise ValueError(
            f"ciphertext store must be one of {CIPHERTEXT_STORES}, got {store!r}"
        )
    return normalized


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of a Setup or Update protocol invocation."""

    time: int
    records_added: int
    dummies_added: int
    bytes_added: float
    duration_seconds: float

    @property
    def total_added(self) -> int:
        """Total ciphertexts added (``|γ_t|`` -- the update volume)."""
        return self.records_added + self.dummies_added


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a Query protocol invocation."""

    query_name: str
    answer: Answer
    qet_seconds: float
    records_scanned: int
    noise_injected: bool = False


class EncryptedDatabase:
    """Base class for simulated encrypted-database back-ends.

    Parameters
    ----------
    cost_parameters:
        Back-end specific cost constants (see :mod:`repro.edb.cost_model`).
    scheme_name:
        Human-readable name used in leakage profiles and reports.
    query_leakage_class:
        The query-side leakage class the back-end belongs to.
    simulate_encryption:
        When true, every record is actually run through
        :class:`RecordCipher`; when false only counts/bytes are tracked,
        which is observationally equivalent for the update pattern and much
        faster for the 43,200-step experiments.
    rng:
        Random generator used by back-ends that inject DP noise.
    mode:
        ``"fast"`` (default) evaluates queries with the vectorized columnar
        operators; ``"reference"`` keeps the original row-at-a-time
        interpreter.  Both modes are bit-identical in every observable
        (answers, costs, update pattern, leakage).
    """

    def __init__(
        self,
        cost_parameters: CostParameters,
        scheme_name: str,
        query_leakage_class: LeakageClass,
        simulate_encryption: bool = False,
        rng: np.random.Generator | None = None,
        mode: str = "fast",
        ciphertext_store: str | None = None,
    ) -> None:
        self._cost_model = CostModel(cost_parameters)
        self._scheme_name = scheme_name
        self._query_leakage_class = query_leakage_class
        self._simulate_encryption = simulate_encryption
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mode = resolve_edb_mode(mode)
        self._ciphertext_store = resolve_ciphertext_store(ciphertext_store, self._mode)
        self._cipher = RecordCipher() if simulate_encryption else None
        self._executor = (
            ColumnarExecutor() if self._mode == "fast" else PlaintextExecutor()
        )
        self._ciphertexts: dict[str, list[EncryptedRecord]] = {}
        self._arenas: dict[str, CiphertextArena] = {}
        self._arena_factory: Callable[[], CiphertextArena] = CiphertextArena
        self._table_totals: dict[str, int] = {}
        self._table_dummies: dict[str, int] = {}
        self._update_history: list[UpdateResult] = []
        self._storage_bytes = 0.0
        self._is_setup = False
        # Delta-maintained views (derived state: the durable store never
        # persists the maintained counters, only the registered queries).
        self._views = ViewRegistry()
        self._view_answering = True
        # Simulated server-work ledger: what execution actually cost, as
        # opposed to the analyst-visible QET observable (which stays pinned
        # to the rescan cost model so views never change what the analyst
        # sees).  Queries answered from maintained state charge O(1) here;
        # rescans charge the full model cost; ingest deltas charge per-view
        # maintenance.
        self._query_work_seconds = 0.0
        self._view_maintenance_seconds = 0.0
        self._maintained_query_count = 0

    # -- protocol surface ---------------------------------------------------

    def setup(self, records: Iterable[Record], time: int = 0) -> UpdateResult:
        """Run the Setup protocol with the initial record set ``γ_0``."""
        if self._is_setup:
            raise RuntimeError("Setup may only be invoked once")
        self._is_setup = True
        result = self._ingest(list(records), time, is_setup=True)
        return result

    def update(self, records: Iterable[Record], time: int) -> UpdateResult:
        """Run the Update protocol, appending ``γ_t`` to the outsourced data."""
        if not self._is_setup:
            raise RuntimeError("Update invoked before Setup")
        return self._ingest(list(records), time, is_setup=False)

    def insert_many(
        self, batches: Mapping[str, Sequence[Record]], time: int
    ) -> UpdateResult:
        """Batched Update protocol: records pre-grouped by table.

        One invocation ingests the whole batch through a single cost-model
        charge (one update round-trip, one storage charge), exactly like
        :meth:`update`, but skips the per-record regrouping pass -- the owner
        already knows every record of a decision targets its own table.
        """
        if not self._is_setup:
            raise RuntimeError("Update invoked before Setup")
        grouped = {table: list(rows) for table, rows in batches.items() if rows}
        return self._ingest_grouped(grouped, time, is_setup=False)

    @property
    def query_executors(self) -> tuple[str, ...]:
        """Enclave-side execution strategies this EDB can run a query with.

        ``"columnar"`` is the vectorized fast path (fast mode only);
        ``"rows"`` the row-at-a-time plan interpreter.  Both produce
        bit-identical answers and work counters -- only wall clock differs --
        which is what lets the scatter planner pick per shard.
        """
        if self._mode == "fast":
            return ("columnar", "rows")
        return ("rows",)

    def query(
        self, query: Query, time: int = 0, executor: str | None = None
    ) -> QueryResult:
        """Run the Query protocol and return the analyst-visible answer.

        ``executor`` optionally forces one of :attr:`query_executors` (or
        ``"maintained"`` for a registered view); ``None`` answers from
        maintained view state when a view covers the query and view
        answering is enabled, else runs the mode's default rescan.  The
        choice is invisible in the analyst-visible observables (answer, QET,
        noise flag): the QET observable stays pinned to the rescan cost
        model, and only the *simulated work ledger*
        (:attr:`simulated_work_seconds`) records the cheaper maintained
        execution.
        """
        if not self._is_setup:
            raise RuntimeError("Query invoked before Setup")
        if not self._cost_model.supports(query):
            raise UnsupportedQueryError(
                f"{self._scheme_name} does not support {type(query).__name__}"
            )
        if executor == "maintained":
            if not self._views.covers(query):
                raise ValueError(
                    f"query {query.name!r} has no registered view to answer from"
                )
            use_maintained = True
        elif executor is not None:
            if executor not in self.query_executors:
                raise ValueError(
                    f"query executor must be one of {self.query_executors}, "
                    f"got {executor!r}"
                )
            use_maintained = False
        else:
            use_maintained = self._view_answering and self._views.covers(query)
        if use_maintained:
            try:
                answer = self._views.answer(query, time)
            except StaleWindowError:
                # A window ending behind the view's retained horizon cannot
                # be answered from the ring buffer; the rescan path gives
                # the identical exact answer.  A forced "maintained"
                # executor surfaces the error instead of silently rescanning.
                if executor == "maintained":
                    raise
                use_maintained = False
        if use_maintained:
            stats = ExecutionStats()
            self._query_work_seconds += self._cost_model.maintained_query_cost(
                query, answer
            )
            self._maintained_query_count += 1
        else:
            if executor == "rows":
                answer, stats = self._executor.execute_rows_with_stats(
                    query, rewrite=True, time=time
                )
            else:
                answer, stats = self._executor.execute_with_stats(
                    query, rewrite=True, time=time
                )
            self._query_work_seconds += self._cost_model.query_cost(
                query, dict(self._table_totals)
            )
        answer, noise_injected = self._postprocess_answer(query, answer)
        qet = self._cost_model.query_cost(query, dict(self._table_totals))
        return QueryResult(
            query_name=query.name,
            answer=answer,
            qet_seconds=qet,
            records_scanned=stats.rows_scanned,
            noise_injected=noise_injected,
        )

    # -- delta-maintained views ----------------------------------------------

    def register_view(self, query: Query) -> bool:
        """Register a delta-maintained view answering ``query``.

        Bootstraps from the current outsourced tables (so registration is
        valid at any point of the stream, including restore-time rebuilds)
        and maintains an O(|batch|) delta on every later ingest.  Idempotent;
        returns ``False`` when the view already existed.  Raises for query
        shapes outside the maintainable fragment or unsupported by the
        back-end.
        """
        if not self._cost_model.supports(query):
            raise UnsupportedQueryError(
                f"{self._scheme_name} does not support {type(query).__name__}"
            )
        if not can_maintain(query):
            raise TypeError(
                f"query shape {type(query).__name__} is not delta-maintainable"
            )
        return self._views.register(query, self._executor.tables)

    @property
    def registered_views(self) -> tuple[Query, ...]:
        """Queries with a registered maintained view, in registration order."""
        return self._views.registered()

    @property
    def view_answering(self) -> bool:
        """Whether registered views answer queries (else views only maintain)."""
        return self._view_answering

    def set_view_answering(self, enabled: bool) -> None:
        """Toggle answering from maintained views.

        ``False`` forces every query back onto the rescan path while views
        keep maintaining their state -- the differential-testing switch: the
        answers must be byte-identical either way.
        """
        self._view_answering = bool(enabled)

    @property
    def query_work_seconds(self) -> float:
        """Simulated seconds of query execution work actually performed."""
        return self._query_work_seconds

    @property
    def view_maintenance_seconds(self) -> float:
        """Simulated seconds spent applying ingest deltas to views."""
        return self._view_maintenance_seconds

    @property
    def simulated_work_seconds(self) -> float:
        """Total simulated server work: query execution plus view upkeep."""
        return self._query_work_seconds + self._view_maintenance_seconds

    @property
    def maintained_query_count(self) -> int:
        """Number of queries answered from maintained view state."""
        return self._maintained_query_count

    # -- observable state ----------------------------------------------------

    @property
    def scheme_name(self) -> str:
        """Name of the simulated scheme."""
        return self._scheme_name

    @property
    def edb_mode(self) -> str:
        """Implementation mode: ``"fast"`` or ``"reference"``."""
        return self._mode

    @property
    def ciphertext_store(self) -> str:
        """Ciphertext layout when encryption is simulated: arena or objects."""
        return self._ciphertext_store

    @property
    def is_setup(self) -> bool:
        """Whether Setup has run."""
        return self._is_setup

    @property
    def update_history(self) -> tuple[UpdateResult, ...]:
        """Transcript of all Setup/Update invocations (the update pattern)."""
        return tuple(self._update_history)

    @property
    def outsourced_count(self) -> int:
        """Total number of ciphertexts stored (real + dummy)."""
        return sum(self._table_totals.values())

    @property
    def dummy_count(self) -> int:
        """Total number of dummy ciphertexts stored."""
        return sum(self._table_dummies.values())

    @property
    def real_count(self) -> int:
        """Total number of real (non-dummy) ciphertexts stored."""
        return self.outsourced_count - self.dummy_count

    @property
    def storage_bytes(self) -> float:
        """Simulated server-side storage footprint in bytes."""
        return self._storage_bytes

    def table_size(self, table: str) -> int:
        """Ciphertext count (real + dummy) for one table."""
        return self._table_totals.get(table, 0)

    def table_dummy_count(self, table: str) -> int:
        """Dummy ciphertext count for one table."""
        return self._table_dummies.get(table, 0)

    def ciphertexts(self, table: str) -> Sequence[EncryptedRecord | ArenaRecord]:
        """Stored ciphertexts (only populated when encryption is simulated).

        Arena-backed tables return zero-copy :class:`ArenaRecord` views; the
        object-backed store returns the owning :class:`EncryptedRecord`\\ s.
        Both expose the same ``ciphertext``/``handle``/``size_bytes`` surface.
        """
        if self._ciphertext_store == "arena":
            arena = self._arenas.get(table)
            return arena.records() if arena is not None else ()
        return tuple(self._ciphertexts.get(table, ()))

    def ciphertext_arena(self, table: str) -> CiphertextArena | None:
        """The table's backing arena (``None`` for object-backed storage)."""
        return self._arenas.get(table)

    def set_arena_factory(self, factory: Callable[[], CiphertextArena]) -> None:
        """Choose the arena class backing tables ingested *from now on*.

        Shard worker processes call this at startup with
        :class:`~repro.edb.crypto.SharedCiphertextArena` so their ciphertext
        rows land in named shared memory the coordinator can read zero-copy.
        Arenas that already exist keep their backend; shards are handed to
        workers empty (before Setup), so in practice every arena is created
        through the installed factory.
        """
        self._arena_factory = factory

    def rebuild_arenas(self) -> None:
        """Recreate every table arena through the installed factory.

        Used after restoring a durable snapshot inside a shard worker:
        restored arenas are process-local :class:`CiphertextArena`\\ s, and
        the worker (which has just installed the shared-memory factory)
        rebuilds them so the coordinator can attach by name again.  Rows,
        handles and row indices are copied verbatim, so every outstanding
        handle stays valid.
        """
        for table, arena in list(self._arenas.items()):
            size = len(arena)
            rebuilt = self._arena_factory()
            if size:
                rows = rebuilt.reserve(size)
                rows[:] = arena._data[:size]
                rebuilt.set_handles(0, arena._handles[:size])
            self._arenas[table] = rebuilt
            arena.release()

    def rotate_key(self, new_key: bytes | None = None) -> RecordCipher:
        """Re-encrypt every stored ciphertext in place under a fresh key.

        The key lifecycle operation of the durable store: arena rows are
        re-keyed *in place* (row indices, handles and zero-copy views all
        stay valid) and object-store ciphertexts are replaced handle-for-
        handle, so decrypted payloads are byte-identical before and after.
        Returns the new cipher (also installed as :attr:`cipher`).
        """
        if self._cipher is None:
            raise RuntimeError(
                "key rotation requires simulate_encryption=True"
            )
        new_cipher = self._cipher.rotated(new_key)
        for arena in self._arenas.values():
            self._cipher.reencrypt_arena(arena, new_cipher)
        for table, encrypted in self._ciphertexts.items():
            self._ciphertexts[table] = [
                EncryptedRecord(
                    ciphertext=self._cipher.reencrypt_record(
                        record.ciphertext, new_cipher
                    ),
                    handle=record.handle,
                )
                for record in encrypted
            ]
        self._cipher = new_cipher
        return new_cipher

    def close(self) -> None:
        """Release arena resources (shared-memory segments, if any).

        Idempotent, and a no-op for plain in-process arenas; callers that may
        hold process-backed or shared-arena EDBs should always close.
        """
        for arena in self._arenas.values():
            arena.release()

    @property
    def cipher(self) -> RecordCipher | None:
        """The record cipher (``None`` unless encryption is simulated)."""
        return self._cipher

    @property
    def cost_model(self) -> CostModel:
        """The back-end's cost model."""
        return self._cost_model

    @property
    def leakage_profile(self) -> LeakageProfile:
        """What this back-end leaks; update leakage is the update pattern only."""
        return LeakageProfile(
            scheme=self._scheme_name,
            query_class=self._query_leakage_class,
            update_leaks_only_pattern=True,
            reveals_exact_volume=self._query_leakage_class
            in (LeakageClass.L1, LeakageClass.L2),
            reveals_access_pattern=self._query_leakage_class is LeakageClass.L2,
        )

    def supports(self, query: Query) -> bool:
        """Whether the back-end can run ``query``."""
        return self._cost_model.supports(query)

    # -- hooks for subclasses -------------------------------------------------

    def _postprocess_answer(self, query: Query, answer: Answer) -> tuple[Answer, bool]:
        """Back-end specific answer transformation (e.g. DP noise).

        Returns the (possibly modified) answer and whether noise was injected.
        """
        return answer, False

    def _on_records_stored(self, table: str, records: Sequence[Record]) -> None:
        """Hook invoked after records are added to ``table`` (e.g. ORAM insert)."""

    # -- internals -------------------------------------------------------------

    def _ingest(self, records: list[Record], time: int, is_setup: bool) -> UpdateResult:
        by_table: dict[str, list[Record]] = {}
        for record in records:
            table = record.table or "default"
            by_table.setdefault(table, []).append(record)
        return self._ingest_grouped(by_table, time, is_setup)

    def _ingest_grouped(
        self, by_table: dict[str, list[Record]], time: int, is_setup: bool
    ) -> UpdateResult:
        num_records = 0
        dummies = 0
        for table, rows in by_table.items():
            self._executor.append(table, rows)
            table_dummies = count_dummy(rows)
            num_records += len(rows)
            dummies += table_dummies
            self._table_totals[table] = self._table_totals.get(table, 0) + len(rows)
            self._table_dummies[table] = self._table_dummies.get(table, 0) + table_dummies
            if self._cipher is not None:
                if self._ciphertext_store == "arena":
                    arena = self._arenas.get(table)
                    if arena is None:
                        arena = self._arenas[table] = self._arena_factory()
                    self._cipher.encrypt_many_into(rows, arena)
                else:
                    encrypted = self._cipher.encrypt_many(rows)
                    self._ciphertexts.setdefault(table, []).extend(encrypted)
            self._on_records_stored(table, rows)
            if self._views:
                # Views observe exactly the post-flush server-side batch (the
                # dummy-padded γ_t, never the owner's raw stream); dummy rows
                # are skipped inside the states, matching the dummy-rewritten
                # scans the rescan path runs.
                observers = self._views.apply_delta(table, rows)
                if observers:
                    self._view_maintenance_seconds += (
                        self._cost_model.view_maintenance_cost(len(rows), observers)
                    )

        bytes_added = self._cost_model.storage_bytes(num_records)
        self._storage_bytes += bytes_added
        duration = self._cost_model.ingest_cost(num_records, is_setup=is_setup)
        result = UpdateResult(
            time=time,
            records_added=num_records - dummies,
            dummies_added=dummies,
            bytes_added=bytes_added,
            duration_seconds=duration,
        )
        self._update_history.append(result)
        return result
