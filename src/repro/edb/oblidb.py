"""ObliDB-style L-0 encrypted database simulator.

ObliDB (Eskandarian & Zaharia) runs SQL operators inside an SGX enclave and
hides access patterns by either scanning flat tables obliviously or storing
them in an ORAM.  For DP-Sync it is the representative of the **L-0** leakage
group: queries leak neither access patterns nor response volumes, so dummy
records can never be identified through the query protocol.

The simulator reproduces the observable behaviour that matters to DP-Sync:

* every outsourced record (real or dummy) occupies one fixed-size ciphertext;
* queries are answered exactly (no noise), after the dummy-aware rewriting of
  Appendix B, so query error is caused solely by records the owner has not
  yet synchronized;
* query time is charged for touching *every* outsourced record (flat mode) or
  every ORAM path (indexed mode), so QET grows with the dummy count;
* an optional :class:`~repro.edb.oram.PathORAM` per table demonstrates the
  oblivious storage layer and is exercised by the obliviousness tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.edb.base import EncryptedDatabase
from repro.edb.cost_model import OBLIDB_COSTS, CostParameters
from repro.edb.leakage import LeakageClass
from repro.edb.oram import PathORAM, ReferencePathORAM, make_oram
from repro.edb.records import Record

__all__ = ["ObliDB"]


class ObliDB(EncryptedDatabase):
    """Simulated ObliDB back-end (L-0: access-pattern and volume hiding).

    Parameters
    ----------
    storage_mode:
        ``"flat"`` (default) models ObliDB's oblivious full-scan operators;
        ``"oram"`` additionally stores every ciphertext in a Path ORAM and
        charges the ORAM factor on queries.
    oram_capacity:
        Capacity of each per-table ORAM when ``storage_mode="oram"``.
    simulate_encryption:
        Forwarded to :class:`repro.edb.base.EncryptedDatabase`.
    mode:
        ``"fast"`` (default) uses the vectorized columnar operators and the
        array-backed batch-evicting :class:`~repro.edb.oram.PathORAM`;
        ``"reference"`` keeps the pure-Python row interpreter and
        :class:`~repro.edb.oram.ReferencePathORAM`.
    """

    def __init__(
        self,
        storage_mode: str = "flat",
        oram_capacity: int = 65_536,
        simulate_encryption: bool = False,
        cost_parameters: CostParameters = OBLIDB_COSTS,
        rng: np.random.Generator | None = None,
        mode: str = "fast",
        ciphertext_store: str | None = None,
    ) -> None:
        if storage_mode not in ("flat", "oram"):
            raise ValueError(f"storage_mode must be 'flat' or 'oram', got {storage_mode!r}")
        super().__init__(
            cost_parameters=cost_parameters,
            scheme_name="ObliDB",
            query_leakage_class=LeakageClass.L0,
            simulate_encryption=simulate_encryption,
            rng=rng,
            mode=mode,
            ciphertext_store=ciphertext_store,
        )
        self._storage_mode = storage_mode
        self._oram_capacity = oram_capacity
        self._orams: dict[str, PathORAM | ReferencePathORAM] = {}
        self._next_block_id = 0

    @property
    def storage_mode(self) -> str:
        """Either ``"flat"`` or ``"oram"``."""
        return self._storage_mode

    def oram_for(self, table: str) -> PathORAM | ReferencePathORAM | None:
        """The per-table ORAM, or ``None`` in flat mode / unknown table."""
        return self._orams.get(table)

    def _on_records_stored(self, table: str, records: Sequence[Record]) -> None:
        if self._storage_mode != "oram":
            return
        oram = self._orams.get(table)
        if oram is None:
            oram = make_oram(
                capacity=self._oram_capacity, rng=self._rng, mode=self.edb_mode
            )
            self._orams[table] = oram
        start = self._next_block_id
        self._next_block_id += len(records)
        oram.write_many(
            (start + offset, record) for offset, record in enumerate(records)
        )
