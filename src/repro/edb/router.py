"""Hash-partitioned sharding of the outsourced database.

A :class:`ShardRouter` presents the same Setup/Update/Query protocol surface
as a single :class:`~repro.edb.base.EncryptedDatabase` while hash-partitioning
each table's records across K independent back-end shards (each with its own
ORAM, cost model and RNG).  Owners and analysts talk to the router exactly as
they would to one EDB; the router

* routes every record by a stable hash of its per-table arrival ordinal
  (deterministic for a fixed ``route_seed``, uniform across shards, and
  independent of record *content* so dummy padding spreads like real data);
* runs Setup on every shard (each shard must be initialized before it can
  accept Updates), then forwards each Update to only the shards that
  receive records (an empty per-shard *update* would itself be an extra
  observable protocol invocation) and aggregates the outcome into one
  :class:`~repro.edb.base.UpdateResult` whose duration is the *maximum* over
  the shards touched -- shards are independent machines that ingest in
  parallel;
* answers queries by scatter-gather (:mod:`repro.query.scatter`): partial
  counts / group histograms / per-side join histograms per shard, merged
  deterministically, with the gathered QET again the per-shard maximum.
  On exact back-ends the gathered answers equal the unsharded ones; on an
  L-DP back-end every shard injects its own noise, so gathered answers sum
  K independent draws (see :mod:`repro.query.scatter`);
* exposes the aggregated update transcript through :attr:`update_history`,
  so :func:`repro.edb.leakage.update_pattern_observables` projects a sharded
  deployment to the same ``(time, volume)`` leakage as an unsharded one,
  while :meth:`per_shard_observables` gives the finer per-shard view.

Shard fan-out runs on a **pluggable executor** (``executor="threads"`` by
default): Setup, per-shard batched Updates and scatter queries execute
concurrently on a thread pool sized to the shard count -- the columnar /
ndarray shard work spends its time in NumPy kernels and hash primitives that
release the GIL, so on multi-core hardware the per-shard *simulated* QET
model (max over shards) is matched by a real wall-clock speedup, which
:attr:`measured` records.  ``executor="serial"`` keeps the original
sequential loop.  ``executor="processes"`` escapes the GIL entirely: each
shard moves into a persistent worker process
(:mod:`repro.edb.shard_worker`) that owns the shard's EDB, ORAM and RNG
stream, and the router's fan-out threads merely block on pipe round-trips
(releasing the GIL) while workers compute truly in parallel; ciphertexts
live in shared-memory arenas the coordinator reads zero-copy.  Shards are
mutated only by their own call and partials are merged in shard-index
order, so answers, transcripts and per-shard state are byte-identical under
every executor (``tests/test_scatter_concurrency.py`` pins this).

With ``K = 1`` every call is forwarded verbatim to the single shard, so a
one-shard router is byte-identical to the unrouted back-end in every
observable (``tests/test_shard_router.py`` pins this).
"""

from __future__ import annotations

import hashlib
import logging
import time as _time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.edb.base import EncryptedDatabase, QueryResult, UpdateResult
from repro.edb.cost_model import CostModel, UnsupportedQueryError
from repro.edb.leakage import LeakageClass, LeakageProfile, update_pattern_observables
from repro.edb.records import Record
from repro.edb.shard_worker import ShardWorkerClient
from repro.query.ast import JoinCountQuery, MultiJoinCountQuery, Query
from repro.query.planner import (
    QueryPlan,
    QueryPlanner,
    resolve_planner_mode,
)
from repro.query.scatter import (
    drain_futures,
    join_count_from_histograms,
    join_side_probes,
    join_upper_bound,
    merge_grouped_counts,
    merge_partial_answers,
    multi_join_count_from_histograms,
    multi_join_probes,
    ordered_join_probes,
    scatter_map,
)
from repro.query.views import can_maintain
from repro.util.mp import preferred_mp_context, usable_cpus

__all__ = ["SHARD_EXECUTORS", "WallClockStats", "ShardRouter", "resolve_shard_executor"]

logger = logging.getLogger(__name__)

#: Supported shard fan-out executors: ``"threads"`` scatters protocol calls
#: across a pool with one worker per shard; ``"serial"`` visits shards in a
#: plain loop; ``"processes"`` moves each shard into a persistent worker
#: process (true parallelism, shared-memory ciphertext arenas).  Observables
#: are identical across all three; only wall clock moves.
SHARD_EXECUTORS = ("threads", "serial", "processes")

#: Concurrent executors already warned about on a single-CPU host, so the
#: footgun warning fires once per executor per process, not once per cell.
_warned_single_cpu: set[str] = set()


def _release_router_resources(resources: dict) -> None:
    """Shut down a router's fan-out pool and worker clients.

    Module-level over a shared mutable box (no reference back to the router)
    so it can double as a ``weakref.finalize`` callback: worker processes
    and their shared-memory arenas are reaped deterministically when the
    router is garbage collected or the interpreter exits, instead of
    depending on ``__del__`` timing.  Safe to call repeatedly --
    ``client.close()`` is idempotent and the pool slot is cleared.
    """
    pool = resources.get("pool")
    if pool is not None:
        resources["pool"] = None
        pool.shutdown(wait=False, cancel_futures=True)
    for client in resources.get("clients", ()):
        client.close()


def _resolve_supervision(supervisor, faults):
    """Normalize the router's ``(supervisor, faults)`` inputs.

    Returns ``(SupervisorConfig | None, FaultSchedule | None)``.  A
    non-empty fault schedule implies supervision with the default config --
    injecting faults into an unsupervised fleet would just be crashing it.
    Imports lazily so unsupervised routers never pay for the fleet modules.
    """
    schedule = None
    if faults:
        from repro.testing.chaos import FaultSchedule, parse_fault_schedule

        schedule = (
            faults if isinstance(faults, FaultSchedule) else parse_fault_schedule(faults)
        )
        if len(schedule) == 0:
            schedule = None
    config = None
    if supervisor is not None and supervisor != "off":
        from repro.fleet.supervisor import SupervisorConfig, resolve_supervisor_mode

        if isinstance(supervisor, SupervisorConfig):
            config = supervisor
        elif resolve_supervisor_mode(supervisor) == "on":
            config = SupervisorConfig()
    if config is None and schedule is not None:
        from repro.fleet.supervisor import SupervisorConfig

        config = SupervisorConfig()
    return config, schedule


def resolve_shard_executor(executor: str) -> str:
    """Validate (and normalize) a shard-executor flag.

    Choosing a concurrent executor on a host with one usable CPU is a
    footgun -- fan-out adds coordination cost with no cores to spread the
    work over -- so that combination logs a one-time warning: simulated QET
    is unaffected (it is model-derived), but *measured* wall clock will not
    improve and may regress.
    """
    normalized = executor.lower()
    if normalized not in SHARD_EXECUTORS:
        raise ValueError(
            f"shard executor must be one of {SHARD_EXECUTORS}, got {executor!r}"
        )
    if (
        normalized in ("threads", "processes")
        and normalized not in _warned_single_cpu
        and usable_cpus() == 1
    ):
        _warned_single_cpu.add(normalized)
        logger.warning(
            "shard executor %r selected on a single-CPU host: measured "
            "wall clock will not improve (simulated QET is unaffected)",
            normalized,
        )
    return normalized


@dataclass
class WallClockStats:
    """Measured wall-clock spent inside the router's protocol surface.

    This is the *measured* counterpart of the simulated cost model: QET and
    ingest durations reported in protocol results stay model-derived (and
    hardware independent), while these counters record what the coordinator
    actually waited, so benchmarks can put real and simulated speedups side
    by side without conflating them.

    Every surface counts *attempts*: a call that raises (unsupported query,
    pre-Setup protocol error) still contributes its call and wall clock, so
    calls/seconds share one basis across setup/update/query.

    The process executor additionally splits the coordinator's wall clock
    per shard: :attr:`per_shard_busy_seconds` is each worker's self-reported
    execution time (true shard compute, measured inside the worker), and
    :attr:`serialization_seconds` the remainder of the pipe round-trips --
    argument/result pickling, transport and scheduling, i.e. what the
    process boundary costs over an in-process call.  Both stay zero for the
    in-process executors, where no boundary exists.
    """

    setup_calls: int = 0
    setup_seconds: float = 0.0
    update_calls: int = 0
    update_seconds: float = 0.0
    query_calls: int = 0
    query_seconds: float = 0.0
    per_shard_busy_seconds: dict[int, float] = field(default_factory=dict)
    serialization_seconds: float = 0.0
    worker_commands: int = 0
    #: Supervisor health state (repro.fleet.supervisor): every counter stays
    #: zero on an unsupervised (or fault-free, retry-free) fleet.  Retries,
    #: rebuilds and replay only ever move *measured* wall clock -- simulated
    #: QET and all protocol observables are recovery-invariant by contract.
    recoveries: int = 0
    retries: int = 0
    replayed_batches: int = 0
    recovery_seconds: float = 0.0
    degraded_shards: int = 0
    dropped_batches: int = 0

    @property
    def mean_query_seconds(self) -> float:
        """Mean measured wall clock per gathered query."""
        return self.query_seconds / self.query_calls if self.query_calls else 0.0

    def health(self) -> dict:
        """The supervisor health counters as a plain dict."""
        return {
            "recoveries": self.recoveries,
            "retries": self.retries,
            "replayed_batches": self.replayed_batches,
            "recovery_seconds": self.recovery_seconds,
            "degraded_shards": self.degraded_shards,
            "dropped_batches": self.dropped_batches,
        }

    def reset(self) -> None:
        """Zero all counters (benchmarks reset between phases)."""
        self.setup_calls = 0
        self.setup_seconds = 0.0
        self.update_calls = 0
        self.update_seconds = 0.0
        self.query_calls = 0
        self.query_seconds = 0.0
        self.per_shard_busy_seconds = {}
        self.serialization_seconds = 0.0
        self.worker_commands = 0
        self.recoveries = 0
        self.retries = 0
        self.replayed_batches = 0
        self.recovery_seconds = 0.0
        self.degraded_shards = 0
        self.dropped_batches = 0


class ShardRouter:
    """Route one logical EDB across K independent back-end shards.

    Parameters
    ----------
    shards:
        The already-constructed back-end shards.  They should be of the same
        scheme (the router reports shard 0's scheme name, cost model and
        leakage profile as its own).
    route_seed:
        Seed folded into the routing hash; two routers with equal seeds and
        shard counts route identically.
    executor:
        Shard fan-out executor: ``"threads"`` (default) runs per-shard
        protocol work on a thread pool with one worker per shard,
        ``"serial"`` visits shards sequentially, ``"processes"`` moves each
        shard into a persistent worker process at construction time (the
        shard object crosses the process boundary exactly once; afterwards
        only commands and results travel the pipes).  Gathered answers and
        all transcripts are byte-identical across executors.
    planner:
        ``"off"`` (default) scatters every query to every shard exactly as
        before; ``"on"`` routes queries through a
        :class:`~repro.query.planner.QueryPlanner` (cost-based shard
        pruning, executor choice, join probe ordering -- all
        observable-identical, see :meth:`explain`).  A pre-built
        :class:`~repro.query.planner.QueryPlanner` instance may be passed
        directly (e.g. with a plan-override hook for tests).
    supervisor:
        ``None``/``"off"`` (default) leaves shard failures terminal exactly
        as before; ``"on"`` (or a pre-built
        :class:`~repro.fleet.supervisor.SupervisorConfig`) wraps every
        shard in the self-healing supervision layer: per-command deadlines,
        deterministic retry/backoff, snapshot+replay rebuild of dead
        workers, and the configured degradation policy.  Recovery is
        observable-invisible by contract (``tests/test_chaos_recovery.py``).
    faults:
        Deterministic fault schedule (``kind[:shard]@N`` grid syntax, or a
        pre-built :class:`~repro.testing.chaos.FaultSchedule`).  A
        non-empty schedule implies supervision (default config) when
        ``supervisor`` is off.
    """

    def __init__(
        self,
        shards: Sequence[EncryptedDatabase],
        route_seed: int = 0,
        executor: str = "threads",
        planner: "str | QueryPlanner" = "off",
        supervisor=None,
        faults="",
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("a ShardRouter needs at least one shard")
        self._route_seed = int(route_seed)
        self._executor = resolve_shard_executor(executor)
        if isinstance(planner, QueryPlanner):
            self._planner: QueryPlanner | None = planner
        elif resolve_planner_mode(planner) == "on":
            self._planner = QueryPlanner()
        else:
            self._planner = None
        #: Measured ledger first: the supervisor wrappers built below share
        #: it as their health sink.
        self.measured = WallClockStats()
        supervisor_config, fault_schedule = _resolve_supervision(supervisor, faults)
        self._supervisor_meta = (
            supervisor_config.to_meta() if supervisor_config is not None else None
        )
        self._supervisor = None
        self._clients: list = []
        if self._executor == "processes":
            context = preferred_mp_context()
            timeout_s = (
                supervisor_config.resolved_timeout()
                if supervisor_config is not None
                else None
            )
            raw_clients = [
                ShardWorkerClient(shard, index, context, timeout_s=timeout_s)
                for index, shard in enumerate(shards)
            ]
            if supervisor_config is not None:
                from repro.fleet.supervisor import ShardSupervisor

                self._supervisor = ShardSupervisor(
                    supervisor_config,
                    fault_schedule,
                    self._executor,
                    self.measured,
                    context=context,
                )
                self._clients = self._supervisor.wrap(raw_clients)
            else:
                self._clients = raw_clients
            self._shards: list = list(self._clients)
        elif supervisor_config is not None:
            from repro.fleet.supervisor import ShardSupervisor

            self._supervisor = ShardSupervisor(
                supervisor_config, fault_schedule, self._executor, self.measured
            )
            #: In-process wrappers report constant (0, 0, 0) worker stats, so
            #: the delta absorption below skips them; they still live in the
            #: resource box so close()/finalize tears down their scratch.
            self._clients = self._supervisor.wrap(shards)
            self._shards = list(self._clients)
        else:
            self._shards = shards
        #: Per-client (busy, overhead, commands) snapshots so measured stats
        #: absorb only the *delta* each protocol call produced -- keeping
        #: ``measured.reset()`` meaningful across benchmark phases.
        self._client_marks = [client.stats() for client in self._clients]
        self._pool: ThreadPoolExecutor | None = None
        #: Mutable box shared with the finalizer: the pool is created lazily
        #: by :meth:`_pool_map`, so the box is updated there as well.
        self._resources: dict = {"pool": None, "clients": self._clients}
        self._finalizer = weakref.finalize(
            self, _release_router_resources, self._resources
        )
        self._ordinals: dict[str, int] = {}
        #: Router-level registered view queries, in registration order.  For
        #: joins the *shards* register the scatter probes instead (a join
        #: over hash-partitioned sides has no shard-local view), so this list
        #: is the only place the original join query is remembered.
        self._view_queries: list[Query] = []
        self._view_answering = True
        #: Partition metadata: per table, how many records were routed to
        #: each shard.  Maintained coordinator-side during partitioning (no
        #: extra shard round-trips), committed together with the staged
        #: ordinals, and what the planner's shard pruning proves from.
        self._table_shard_counts: dict[str, list[int]] = {}
        self._update_history: list[UpdateResult] = []

    # -- executor ------------------------------------------------------------

    @property
    def shard_executor(self) -> str:
        """The configured fan-out executor (one of :data:`SHARD_EXECUTORS`)."""
        return self._executor

    @property
    def supervisor_mode(self) -> str:
        """``"on"`` when shards run behind the self-healing supervisor."""
        return "off" if self._supervisor_meta is None else "on"

    @property
    def supervisor(self):
        """The :class:`~repro.fleet.supervisor.ShardSupervisor` (or ``None``)."""
        return self._supervisor

    def _map(self, fn: Callable, items: Sequence) -> list:
        """Scatter ``fn`` over ``items``, gathering results in item order.

        The thread pool drives both concurrent executors: with in-process
        shards the NumPy/hashing kernels release the GIL; with process
        shards each pool thread blocks on its worker's pipe (releasing the
        GIL) while the workers compute truly in parallel.
        """
        executor_map = None
        if self._executor in ("threads", "processes") and len(items) > 1:
            executor_map = self._pool_map
        return scatter_map(executor_map, fn, items)

    def _pool_map(self, fn: Callable, items: Sequence) -> list:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._shards),
                thread_name_prefix="shard-router",
            )
            self._resources["pool"] = self._pool
        # submit + drain (not Executor.map): when one shard call fails, the
        # sibling calls are waited to completion before the error propagates,
        # so no scatter thread is left blocked on a pipe or mid-mutation when
        # the caller (or the supervisor) starts acting on the failure.
        futures = [self._pool.submit(fn, item) for item in items]
        return drain_futures(futures)

    def _absorb_worker_stats(self) -> None:
        """Fold worker-side counters accumulated since the last call into
        :attr:`measured` (per-shard busy seconds, serialization overhead)."""
        for position, client in enumerate(self._clients):
            busy0, overhead0, commands0 = self._client_marks[position]
            busy, overhead, commands = client.stats()
            self._client_marks[position] = (busy, overhead, commands)
            if commands == commands0:
                continue
            shard_busy = self.measured.per_shard_busy_seconds
            shard_busy[client.shard_index] = (
                shard_busy.get(client.shard_index, 0.0) + busy - busy0
            )
            self.measured.serialization_seconds += overhead - overhead0
            self.measured.worker_commands += commands - commands0

    def close(self) -> None:
        """Shut down the fan-out pool and any worker processes (idempotent)."""
        self._pool = None
        _release_router_resources(self._resources)

    def rotate_key(self, new_key: bytes | None = None) -> None:
        """Re-key every shard in place (fan-out like any protocol call).

        Each shard keeps its own independent record cipher; with the
        default ``new_key=None`` every shard draws a fresh key of its own,
        while an explicit key is installed on all shards (single-shard
        routers and tests).  Arena rows are re-encrypted in place, so all
        outstanding handles and zero-copy views stay valid.
        """
        self._map(lambda shard: shard.rotate_key(new_key), self._shards)
        self._absorb_worker_stats()

    # -- topology -----------------------------------------------------------

    @property
    def shards(self) -> tuple[EncryptedDatabase, ...]:
        """The back-end shards, in shard-index order."""
        return tuple(self._shards)

    @property
    def n_shards(self) -> int:
        """Number of shards records are partitioned across."""
        return len(self._shards)

    def shard_index(self, table: str, ordinal: int) -> int:
        """Shard receiving the ``ordinal``-th record ever routed to ``table``.

        A pure function of ``(route_seed, table, ordinal)``: routing is a
        partition by construction (exactly one index per record) and stable
        across runs, which the shard-router property tests rely on.
        """
        if len(self._shards) == 1:
            return 0
        key = f"{self._route_seed}:{table}:{ordinal}".encode()
        digest = hashlib.blake2s(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % len(self._shards)

    # -- protocol surface ---------------------------------------------------

    def setup(self, records: Iterable[Record], time: int = 0) -> UpdateResult:
        """Run Setup on every shard (each must be initialized, even if empty)."""
        started = _time.perf_counter()
        try:
            if len(self._shards) == 1:
                records = list(records)
                result = self._shards[0].setup(records, time=time)
                if self._planner is not None:
                    self._tally_single_shard(self._group(records))
                self._update_history.append(result)
                return result
            parts, staged_ordinals, staged_counts = self._partition(
                self._group(records)
            )
            results = self._map(
                lambda pair: pair[0].setup(
                    [r for rows in pair[1].values() for r in rows], time=time
                ),
                list(zip(self._shards, parts)),
            )
            self._commit_routing(staged_ordinals, staged_counts)
            return self._aggregate(results, time)
        finally:
            self.measured.setup_calls += 1
            self.measured.setup_seconds += _time.perf_counter() - started
            self._absorb_worker_stats()

    def update(self, records: Iterable[Record], time: int) -> UpdateResult:
        """Run Update on the shards receiving records (empty γ goes to shard 0)."""
        started = _time.perf_counter()
        try:
            if len(self._shards) == 1:
                records = list(records)
                result = self._shards[0].update(records, time=time)
                if self._planner is not None:
                    self._tally_single_shard(self._group(records))
                self._update_history.append(result)
                return result
            parts, staged_ordinals, staged_counts = self._partition(
                self._group(records)
            )
            return self._scatter_update(parts, staged_ordinals, staged_counts, time)
        finally:
            self.measured.update_calls += 1
            self.measured.update_seconds += _time.perf_counter() - started
            self._absorb_worker_stats()

    def insert_many(
        self, batches: Mapping[str, Sequence[Record]], time: int
    ) -> UpdateResult:
        """Batched Update: records pre-grouped by table, routed per record."""
        started = _time.perf_counter()
        try:
            if len(self._shards) == 1:
                result = self._shards[0].insert_many(batches, time=time)
                if self._planner is not None:
                    self._tally_single_shard(
                        {t: list(rows) for t, rows in batches.items() if rows}
                    )
                self._update_history.append(result)
                return result
            grouped = {table: list(rows) for table, rows in batches.items() if rows}
            parts, staged_ordinals, staged_counts = self._partition(grouped)
            return self._scatter_update(parts, staged_ordinals, staged_counts, time)
        finally:
            self.measured.update_calls += 1
            self.measured.update_seconds += _time.perf_counter() - started
            self._absorb_worker_stats()

    def query(self, query: Query, time: int = 0) -> QueryResult:
        """Scatter the query to every shard and gather the partial aggregates.

        With a planner configured, the scatter is *planned* first
        (:mod:`repro.query.planner`): the target shard set, per-shard
        executor and join probe order come from the chosen plan, and the
        measured runtime feeds the planner's calibrator afterwards.  Every
        plan choice yields the same gathered answer, QET observables and
        transcripts as the fan-out path -- the plan-invariance tests pin it.
        """
        started = _time.perf_counter()
        try:
            if self._planner is not None:
                return self._query_planned(query, time)
            if len(self._shards) == 1:
                return self._shards[0].query(query, time=time)
            if not self.is_setup:
                raise RuntimeError("Query invoked before Setup")
            if not self.supports(query):
                raise UnsupportedQueryError(
                    f"{self.scheme_name} does not support {type(query).__name__}"
                )
            if isinstance(query, JoinCountQuery):
                return self._gather_join(query, time)
            if isinstance(query, MultiJoinCountQuery):
                return self._gather_multi_join(query, time)
            results = self._map(
                lambda shard: shard.query(query, time=time), self._shards
            )
            return QueryResult(
                query_name=query.name,
                answer=merge_partial_answers(query, [r.answer for r in results]),
                qet_seconds=max(r.qet_seconds for r in results),
                records_scanned=sum(r.records_scanned for r in results),
                noise_injected=any(r.noise_injected for r in results),
            )
        finally:
            self.measured.query_calls += 1
            self.measured.query_seconds += _time.perf_counter() - started
            self._absorb_worker_stats()

    # -- planner integration -------------------------------------------------

    @property
    def planner_mode(self) -> str:
        """``"on"`` when queries run through a :class:`QueryPlanner`."""
        return "off" if self._planner is None else "on"

    @property
    def planner(self) -> QueryPlanner | None:
        """The configured planner (``None`` when the planner is off)."""
        return self._planner

    def explain(self, query: "Query | str") -> dict | None:
        """Planner report for the most recent run of ``query``.

        ``None`` when the planner is off or the query never ran; otherwise
        the chosen plan, estimated vs measured cost, and why each
        alternative lost (see :meth:`repro.query.planner.QueryPlanner.explain`).
        """
        if self._planner is None:
            return None
        return self._planner.explain(query)

    def table_shard_counts(self, table: str) -> tuple[int, ...]:
        """Routed-record count per shard for one table (partition metadata)."""
        counts = self._table_shard_counts.get(table)
        if counts is None:
            return (0,) * len(self._shards)
        return tuple(counts)

    def _planner_shard_tables(self, query: Query) -> list[dict[str, int]]:
        """Per-shard routed sizes of the query's tables, for plan costing."""
        zeros = [0] * len(self._shards)
        per_table = {
            table: self._table_shard_counts.get(table, zeros)
            for table in query.tables
        }
        return [
            {table: counts[index] for table, counts in per_table.items()}
            for index in range(len(self._shards))
        ]

    def _query_planned(self, query: Query, time: int) -> QueryResult:
        if not self.is_setup:
            raise RuntimeError("Query invoked before Setup")
        if not self.supports(query):
            raise UnsupportedQueryError(
                f"{self.scheme_name} does not support {type(query).__name__}"
            )
        # Shards holding none of a query's records still answer on an L-DP
        # back-end -- with a noise draw the gathered sum must include -- so
        # pruning is only sound where answers are exact.
        executors = tuple(self._shards[0].query_executors)
        if self._view_answering and self.views_cover(query):
            # The maintained alternative is enumerated alongside the rescans
            # so explain() shows what answering from view state would cost;
            # the override hook can still force a rescan executor for
            # differential testing.
            executors = ("maintained",) + executors
        plan = self._planner.plan(
            query,
            shard_tables=self._planner_shard_tables(query),
            cost_model=self.cost_model,
            backend=self.scheme_name,
            executors=executors,
            allow_pruning=self.leakage_profile.query_class is not LeakageClass.LDP,
        )
        started = _time.perf_counter()
        result = self._execute_plan(query, plan, time)
        self._planner.observe(plan, _time.perf_counter() - started)
        return result

    def _execute_plan(self, query: Query, plan: QueryPlan, time: int) -> QueryResult:
        chosen = plan.chosen
        if len(self._shards) == 1:
            # One shard executes the original query directly (joins
            # included); the only planner degree of freedom is the executor.
            result = self._shards[0].query(query, time=time, executor=chosen.executor)
            plan.executed_qet_seconds = (result.qet_seconds,)
            return result
        if isinstance(query, JoinCountQuery):
            return self._gather_join(query, time, plan=plan)
        if isinstance(query, MultiJoinCountQuery):
            return self._gather_multi_join(query, time, plan=plan)
        results = self._map(
            lambda index: self._shards[index].query(
                query, time=time, executor=chosen.executor
            ),
            list(chosen.shard_indices),
        )
        plan.executed_qet_seconds = tuple(r.qet_seconds for r in results)
        return QueryResult(
            query_name=query.name,
            answer=merge_partial_answers(query, [r.answer for r in results]),
            qet_seconds=max(r.qet_seconds for r in results),
            records_scanned=sum(r.records_scanned for r in results),
            noise_injected=any(r.noise_injected for r in results),
        )

    # -- delta-maintained views ----------------------------------------------

    def register_view(self, query: Query) -> bool:
        """Register a delta-maintained view for ``query`` across the fleet.

        With one shard the query registers verbatim.  With K > 1 the join
        shapes have no shard-local view (hash-partitioned sides join across
        shards), so every shard registers the *scatter probes* instead --
        per-side key histograms the gather step already merges -- and the
        router remembers the original query.  Returns ``False`` when the
        query was already registered.
        """
        if not self.supports(query):
            raise UnsupportedQueryError(
                f"{self.scheme_name} does not support {type(query).__name__}"
            )
        if not can_maintain(query):
            raise TypeError(
                f"query shape {type(query).__name__} is not delta-maintainable"
            )
        if query in self._view_queries:
            return False
        try:
            if len(self._shards) == 1:
                self._shards[0].register_view(query)
            else:
                probes = self._shard_view_queries(query)
                self._map(
                    lambda shard: [shard.register_view(p) for p in probes],
                    self._shards,
                )
        finally:
            self._absorb_worker_stats()
        self._view_queries.append(query)
        return True

    def _shard_view_queries(self, query: Query) -> tuple[Query, ...]:
        """What each shard maintains for one router-level view query."""
        if isinstance(query, JoinCountQuery):
            return join_side_probes(query)
        if isinstance(query, MultiJoinCountQuery):
            return multi_join_probes(query)
        return (query,)

    def views_cover(self, query: Query) -> bool:
        """Whether a registered router-level view answers ``query``."""
        return query in self._view_queries

    @property
    def registered_views(self) -> tuple[Query, ...]:
        """Router-level view queries, in registration order."""
        return tuple(self._view_queries)

    @property
    def view_answering(self) -> bool:
        """Whether registered views answer queries (else views only maintain)."""
        return self._view_answering

    def set_view_answering(self, enabled: bool) -> None:
        """Toggle answering from maintained views, on every shard.

        The differential-testing switch: with ``False`` every shard falls
        back to its rescan path while views keep maintaining state, and the
        gathered answers must be byte-identical either way.
        """
        enabled = bool(enabled)
        self._view_answering = enabled
        try:
            self._map(
                lambda shard: shard.set_view_answering(enabled), self._shards
            )
        finally:
            self._absorb_worker_stats()

    @property
    def query_work_seconds(self) -> float:
        """Simulated query-execution work summed across the shards."""
        return sum(shard.query_work_seconds for shard in self._shards)

    @property
    def view_maintenance_seconds(self) -> float:
        """Simulated view-upkeep work summed across the shards."""
        return sum(shard.view_maintenance_seconds for shard in self._shards)

    @property
    def simulated_work_seconds(self) -> float:
        """Total simulated server work (queries + view upkeep), all shards."""
        return sum(shard.simulated_work_seconds for shard in self._shards)

    @property
    def maintained_query_count(self) -> int:
        """Queries answered from maintained view state, summed over shards."""
        return sum(shard.maintained_query_count for shard in self._shards)

    # -- observable state ----------------------------------------------------

    @property
    def scheme_name(self) -> str:
        """Scheme of the shards (shard 0's name)."""
        return self._shards[0].scheme_name

    @property
    def edb_mode(self) -> str:
        """Implementation mode of the shards (shard 0's mode)."""
        return self._shards[0].edb_mode

    @property
    def is_setup(self) -> bool:
        """Whether Setup has run on every shard."""
        return all(shard.is_setup for shard in self._shards)

    @property
    def update_history(self) -> tuple[UpdateResult, ...]:
        """Aggregated transcript: one ``(time, total volume)`` entry per
        router-level Setup/Update invocation, regardless of shard count."""
        return tuple(self._update_history)

    def per_shard_observables(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """The finer-grained per-shard ``(time, volume)`` transcripts."""
        return tuple(
            update_pattern_observables(shard.update_history)
            for shard in self._shards
        )

    @property
    def outsourced_count(self) -> int:
        """Total ciphertexts stored across all shards."""
        return sum(shard.outsourced_count for shard in self._shards)

    @property
    def dummy_count(self) -> int:
        """Total dummy ciphertexts stored across all shards."""
        return sum(shard.dummy_count for shard in self._shards)

    @property
    def real_count(self) -> int:
        """Total real ciphertexts stored across all shards."""
        return sum(shard.real_count for shard in self._shards)

    @property
    def storage_bytes(self) -> float:
        """Total simulated storage footprint across all shards."""
        return sum(shard.storage_bytes for shard in self._shards)

    def table_size(self, table: str) -> int:
        """Ciphertext count (real + dummy) for one table, across shards."""
        return sum(shard.table_size(table) for shard in self._shards)

    def table_dummy_count(self, table: str) -> int:
        """Dummy ciphertext count for one table, across shards."""
        return sum(shard.table_dummy_count(table) for shard in self._shards)

    @property
    def cost_model(self) -> CostModel:
        """The shards' cost model (shard 0's; shards share a scheme)."""
        return self._shards[0].cost_model

    @property
    def leakage_profile(self) -> LeakageProfile:
        """The shards' leakage profile (shard 0's; shards share a scheme)."""
        return self._shards[0].leakage_profile

    def supports(self, query: Query) -> bool:
        """Whether the sharded deployment can run ``query``.

        Delegates to the shards' scheme rule on the *original* query shape:
        a back-end without join support stays join-free even though the
        scatter plan would only send it group-by probes.
        """
        return self._shards[0].supports(query)

    # -- internals -----------------------------------------------------------

    def _group(self, records: Iterable[Record]) -> dict[str, list[Record]]:
        by_table: dict[str, list[Record]] = {}
        for record in records:
            by_table.setdefault(record.table or "default", []).append(record)
        return by_table

    def _partition(
        self, by_table: Mapping[str, Sequence[Record]]
    ) -> tuple[list[dict[str, list[Record]]], dict[str, int], dict[str, list[int]]]:
        """Split grouped records into per-shard groups with *staged* routing.

        Returns ``(parts, staged_ordinals, staged_counts)``.  Routing state
        (``self._ordinals``, ``self._table_shard_counts``) is **not** mutated
        here: the caller commits the staged values via :meth:`_commit_routing`
        only after every touched shard succeeded.  A failed Setup/Update
        (pre-Setup protocol error, a dead worker, any shard raise) therefore
        leaves routing untouched, so a retry routes every record exactly like
        a run that never failed -- the replay-determinism guarantee the
        planner's correctness story leans on.
        """
        parts: list[dict[str, list[Record]]] = [{} for _ in self._shards]
        staged_ordinals: dict[str, int] = {}
        staged_counts: dict[str, list[int]] = {}
        for table, rows in by_table.items():
            ordinal = self._ordinals.get(table, 0)
            counts = [0] * len(self._shards)
            for record in rows:
                index = self.shard_index(table, ordinal)
                parts[index].setdefault(table, []).append(record)
                counts[index] += 1
                ordinal += 1
            staged_ordinals[table] = ordinal
            staged_counts[table] = counts
        return parts, staged_ordinals, staged_counts

    def _commit_routing(
        self, staged_ordinals: Mapping[str, int], staged_counts: Mapping[str, list[int]]
    ) -> None:
        """Fold staged routing state in, after the scatter succeeded."""
        self._ordinals.update(staged_ordinals)
        for table, counts in staged_counts.items():
            totals = self._table_shard_counts.setdefault(
                table, [0] * len(self._shards)
            )
            for index, count in enumerate(counts):
                totals[index] += count

    def _tally_single_shard(self, by_table: Mapping[str, Sequence[Record]]) -> None:
        """Partition metadata for the K=1 fast paths (planner enabled only)."""
        for table, rows in by_table.items():
            totals = self._table_shard_counts.setdefault(table, [0])
            totals[0] += len(rows)

    def _scatter_update(
        self,
        parts: Sequence[Mapping[str, Sequence[Record]]],
        staged_ordinals: Mapping[str, int],
        staged_counts: Mapping[str, list[int]],
        time: int,
    ) -> UpdateResult:
        touched = [index for index, part in enumerate(parts) if part]
        if not touched:
            # An empty synchronization is still one observable protocol
            # round-trip; it travels through the first shard.
            results = [self._shards[0].insert_many({}, time=time)]
        else:
            results = self._map(
                lambda index: self._shards[index].insert_many(parts[index], time=time),
                touched,
            )
        self._commit_routing(staged_ordinals, staged_counts)
        return self._aggregate(results, time)

    def _aggregate(self, results: Sequence[UpdateResult], time: int) -> UpdateResult:
        aggregate = UpdateResult(
            time=time,
            records_added=sum(r.records_added for r in results),
            dummies_added=sum(r.dummies_added for r in results),
            bytes_added=sum(r.bytes_added for r in results),
            # Shards ingest in parallel: the deployment-level duration is the
            # slowest shard, which is where shard-count throughput scaling
            # comes from.
            duration_seconds=max(r.duration_seconds for r in results),
        )
        self._update_history.append(aggregate)
        return aggregate

    def _gather_join(
        self, query: JoinCountQuery, time: int, plan: QueryPlan | None = None
    ) -> QueryResult:
        """Distributed join count via per-side key histograms.

        Hash-partitioned sides cannot be joined shard-locally, so each shard
        contributes one histogram per side (an ordinary dummy-aware group-by
        through its Query protocol); the merged histograms' dot product is
        the exact join count.  Each shard runs its two probes sequentially;
        shards run in parallel, so the gathered QET is the slowest shard's
        probe total.

        A plan chooses the shard set, per-probe executor and probe order
        (predicted-smaller side first).  The dot product is symmetric and
        per-shard QET sums both probes, so none of that moves an observable;
        the first probe's merged cardinality is recorded on the plan as a
        UES-style upper bound on the gathered join count.
        """
        if plan is None:
            targets: Sequence[int] = range(len(self._shards))
            first_side = "left"
            executor: str | None = None
        else:
            targets = plan.chosen.shard_indices
            first_side = plan.chosen.first_side or "left"
            executor = plan.chosen.executor
        (first_probe, _), (second_probe, _) = ordered_join_probes(query, first_side)
        probe_pairs = self._map(
            lambda index: (
                self._shards[index].query(first_probe, time=time, executor=executor),
                self._shards[index].query(second_probe, time=time, executor=executor),
            ),
            list(targets),
        )
        first_parts: list[Mapping] = []
        second_parts: list[Mapping] = []
        shard_qets: list[float] = []
        scanned = 0
        noise = False
        for first_result, second_result in probe_pairs:
            first_parts.append(first_result.answer)
            second_parts.append(second_result.answer)
            shard_qets.append(first_result.qet_seconds + second_result.qet_seconds)
            scanned += first_result.records_scanned + second_result.records_scanned
            noise = (
                noise or first_result.noise_injected or second_result.noise_injected
            )
        merged_first = merge_grouped_counts(first_parts)
        merged_second = merge_grouped_counts(second_parts)
        answer = join_count_from_histograms(merged_first, merged_second)
        if plan is not None:
            second_table = (
                query.right_table if first_side == "left" else query.left_table
            )
            plan.first_probe_cardinality = sum(merged_first.values())
            plan.join_upper_bound = join_upper_bound(
                merged_first, sum(self.table_shard_counts(second_table))
            )
            plan.executed_qet_seconds = tuple(shard_qets)
        return QueryResult(
            query_name=query.name,
            answer=answer,
            qet_seconds=max(shard_qets),
            records_scanned=scanned,
            noise_injected=noise,
        )

    def _gather_multi_join(
        self, query: MultiJoinCountQuery, time: int, plan: QueryPlan | None = None
    ) -> QueryResult:
        """Distributed multi-way star-join count via per-side key histograms.

        The binary gather generalized: each shard answers one group-by probe
        per join side (sequentially, so the per-shard QET is the probe sum),
        the coordinator merges each side's histograms across shards and the
        product-sum over the shared key is the exact star-join count.
        """
        if plan is None:
            targets: Sequence[int] = range(len(self._shards))
            executor: str | None = None
        else:
            targets = plan.chosen.shard_indices
            executor = plan.chosen.executor
        probes = multi_join_probes(query)
        probe_rows = self._map(
            lambda index: tuple(
                self._shards[index].query(probe, time=time, executor=executor)
                for probe in probes
            ),
            list(targets),
        )
        side_parts: list[list[Mapping]] = [[] for _ in probes]
        shard_qets: list[float] = []
        scanned = 0
        noise = False
        for results in probe_rows:
            for side, result in enumerate(results):
                side_parts[side].append(result.answer)
            shard_qets.append(sum(result.qet_seconds for result in results))
            scanned += sum(result.records_scanned for result in results)
            noise = noise or any(result.noise_injected for result in results)
        merged = [merge_grouped_counts(parts) for parts in side_parts]
        answer = multi_join_count_from_histograms(merged)
        if plan is not None:
            plan.executed_qet_seconds = tuple(shard_qets)
        return QueryResult(
            query_name=query.name,
            answer=answer,
            qet_seconds=max(shard_qets),
            records_scanned=scanned,
            noise_injected=noise,
        )
