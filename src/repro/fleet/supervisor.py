"""Self-healing shard supervision: deadlines, retry, snapshot + replay rebuild.

The fleet's availability story.  A :class:`SupervisedShard` wraps one shard
(an in-process :class:`~repro.edb.base.EncryptedDatabase` or a
:class:`~repro.edb.shard_worker.ShardWorkerClient` proxy) and funnels every
router call through one choke point that

* enforces the per-command pipe deadline the client layer provides
  (:class:`~repro.edb.shard_worker.ShardWorkerTimeout` instead of a hang);
* retries :class:`~repro.edb.shard_worker.TransientShardError` failures with
  bounded, *deterministic* exponential backoff -- the jitter stream is
  ``SeedSequence([seed, shard_index])``-derived, so a chaos run's timing
  decisions replay from the seed alone;
* rebuilds a dead shard from its newest durable
  :class:`~repro.edb.store.SnapshotStore` generation plus the coordinator's
  :class:`~repro.edb.store.ReplayLog` of every mutating command journaled
  since -- queries included, because an L-DP back-end draws noise per query,
  and the rebuilt RNG stream must resume exactly where the dead worker's
  was.  Under the process executor the replayed shard is handed to a fresh
  worker (fork inheritance), which re-shares its ciphertext arenas into new
  shared-memory segments and re-registers its views through the restore
  path;
* applies the configured degradation policy when retries are exhausted:
  ``"recover"`` (default) re-raises after ``max_retries`` rebuilds,
  ``"raise"`` fails fast on the first transient error, ``"degrade"`` takes
  the shard out of rotation and answers neutrally (zero-volume ingests,
  zero-count queries) while the rest of the fleet keeps serving.

The recovery invariant -- pinned by ``tests/test_chaos_recovery.py`` -- is
that a recovered run is *byte-identical* to a fault-free run in every
paper-level observable: answers, QET, noise flags, and the aggregate and
per-shard ``(t, |γ|)`` update-pattern transcripts.  Three design choices
carry it:

1. commands are journaled only *after* they succeed, and a rebuilt shard is
   restored from snapshot + journal, so a command that half-applied before
   a crash is never double-executed -- the retry runs against a shard that
   provably never saw it;
2. the router's staged-ordinal routing commits only after a scatter
   succeeds, so the retried batch partitions exactly like a run that never
   failed;
3. retry/backoff/rebuild cost lands only in the *measured* wall-clock
   ledger (:class:`~repro.edb.router.WallClockStats` health counters) --
   simulated QET and every protocol result stay model-derived.

Health state (recoveries, retries, replayed batches, recovery seconds,
degraded shards, dropped batches) is folded into the router's ``measured``
ledger under a supervisor-level lock, and surfaced through
``Deployment.health``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time as _time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.edb.shard_worker import (
    ShardWorkerClient,
    TransientShardError,
    default_shard_timeout,
)
from repro.edb.store import ReplayLog, SnapshotStore, restore_backend, snapshot_backend
from repro.query.ast import GroupByCountQuery
from repro.testing.chaos import (
    PROCESS_ONLY_KINDS,
    ChaosWorkerFault,
    Fault,
    FaultSchedule,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edb.base import EncryptedDatabase, QueryResult, UpdateResult
    from repro.edb.router import WallClockStats
    from repro.query.ast import Query

__all__ = [
    "SupervisorConfig",
    "SupervisedShard",
    "ShardSupervisor",
    "resolve_supervisor_mode",
    "ON_SHARD_FAILURE_POLICIES",
]

#: Degradation policies: ``recover`` retries + rebuilds then re-raises,
#: ``raise`` fails fast on the first transient error, ``degrade`` takes the
#: shard out of rotation and answers neutrally once retries are exhausted.
ON_SHARD_FAILURE_POLICIES = ("recover", "raise", "degrade")

#: Commands that mutate shard state (or its RNG stream) and therefore must
#: be journaled for replay.  ``query`` belongs here because L-DP back-ends
#: consume a noise draw per query -- replay must advance the rebuilt RNG
#: exactly as far as the dead shard's had advanced.
_MUTATING_COMMANDS = frozenset(
    {
        "setup",
        "update",
        "insert_many",
        "query",
        "register_view",
        "set_view_answering",
        "rotate_key",
    }
)

_SHARD_BLOB = "shard.pkl"


def resolve_supervisor_mode(mode: str) -> str:
    """Validate (and normalize) a supervisor grid flag (``"off"``/``"on"``)."""
    normalized = str(mode).lower()
    if normalized not in ("off", "on"):
        raise ValueError(f"supervisor must be 'off' or 'on', got {mode!r}")
    return normalized


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for the self-healing shard fleet.

    ``timeout_s=None`` defers to the process-wide deadline
    (``REPRO_SHARD_TIMEOUT_S``, default 60s).  ``seed`` feeds the
    deterministic backoff jitter.  ``directory=None`` puts the per-shard
    snapshot/journal scratch in a fresh temp directory removed on close;
    pass a path to keep recovery state somewhere durable.
    """

    timeout_s: float | None = None
    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0
    on_shard_failure: str = "recover"
    snapshot_every: int = 32
    directory: "str | None" = None
    keep: int = 2

    def __post_init__(self) -> None:
        if self.on_shard_failure not in ON_SHARD_FAILURE_POLICIES:
            raise ValueError(
                f"on_shard_failure must be one of {ON_SHARD_FAILURE_POLICIES}, "
                f"got {self.on_shard_failure!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None for default)")

    def resolved_timeout(self) -> float:
        """The effective per-command deadline in seconds."""
        return default_shard_timeout() if self.timeout_s is None else self.timeout_s

    def to_meta(self) -> dict:
        """Persistable policy (scratch directory excluded: restore gets a
        fresh one -- recovery scratch is machine-local, not deployment
        state)."""
        meta = asdict(self)
        meta.pop("directory")
        return meta

    @classmethod
    def from_meta(cls, meta: Mapping) -> "SupervisorConfig":
        """Rebuild a config from :meth:`to_meta` output."""
        fields = {k: v for k, v in dict(meta).items() if k != "directory"}
        return cls(**fields)


class SupervisedShard:
    """One shard behind the supervisor's retry / rebuild / degrade loop.

    Exposes the same surface as the object it wraps (protocol methods,
    observable properties, zero-copy helpers, worker stats), so the router's
    scatter-gather code runs unchanged over supervised shards of any
    executor.
    """

    def __init__(
        self,
        live,
        index: int,
        config: SupervisorConfig,
        schedule: FaultSchedule | None,
        executor: str,
        health: "WallClockStats",
        health_lock,
        directory: str | Path,
        context=None,
        cleanup_base: bool = False,
    ) -> None:
        self.shard_index = index
        self._live = live
        self._config = config
        self._schedule = schedule
        self._executor = executor
        self._health = health
        self._health_lock = health_lock
        self._context = context
        self._base_dir = Path(directory)
        self._cleanup_base = cleanup_base
        self._dir = self._base_dir / f"shard-{index:03d}"
        self._store = SnapshotStore(self._dir / "snapshots", keep=config.keep)
        self._journal = ReplayLog(self._dir / "journal")
        self._rng = np.random.default_rng(
            np.random.SeedSequence([int(config.seed), int(index)])
        )
        self._mutation_count = 0
        self._since_snapshot = 0
        self._degraded = False
        self._closed = False
        # Dead proxies' final counters fold in here so stats() stays
        # monotonic across rebuilds (the router absorbs deltas against it).
        self._stats_base = (0.0, 0.0, 0)
        # Static facts cached once: the degrade path answers from them, and
        # they are invariant across rebuilds (same scheme, same cost model).
        self._scheme_name = live.scheme_name
        self._edb_mode = live.edb_mode
        self._ciphertext_store = getattr(live, "ciphertext_store", None)
        self._cost_model = live.cost_model
        self._leakage_profile = live.leakage_profile
        self._query_executors = tuple(getattr(live, "query_executors", ("rows",)))
        # Generation 0 baseline: every shard is recoverable from the instant
        # it is supervised, even before its first cadence snapshot.
        self._snapshot_seq = self._snapshot_now()

    # -- the choke point ------------------------------------------------------

    def _invoke(self, command: str, *args):
        if self._degraded:
            return self._neutral(command, args)
        fault: Fault | None = None
        if command in _MUTATING_COMMANDS:
            self._mutation_count += 1
            if self._schedule is not None:
                fault = self._schedule.pop(self.shard_index, self._mutation_count)
        attempt = 0
        while True:
            try:
                if fault is not None:
                    pending, fault = fault, None
                    self._fire_fault(pending, command, args)
                result = self._apply(command, args)
                break
            except TransientShardError as exc:
                if self._config.on_shard_failure == "raise":
                    raise
                if attempt >= self._config.max_retries:
                    if self._config.on_shard_failure == "degrade":
                        self._mark_degraded()
                        return self._neutral(command, args)
                    raise
                attempt += 1
                self._backoff(attempt)
                self._recover(exc)
        if command in _MUTATING_COMMANDS:
            # Staged, not fsync'd: recovery replays from the in-memory
            # journal (the coordinator outlives its workers), and the next
            # snapshot boundary flushes the backlog durably in one batch --
            # keeping the fault-free hot path at dictionary-insert cost.
            self._journal.stage(
                {"tag": self._snapshot_seq, "command": command, "args": args}
            )
            self._since_snapshot += 1
            if self._since_snapshot >= self._config.snapshot_every:
                self._snapshot_seq = self._snapshot_now()
        return result

    def _apply(self, command: str, args: tuple):
        if command == "attr":
            (name,) = args
            return getattr(self._live, name)
        if command == "snapshot":
            return self._live_snapshot_bytes()
        return getattr(self._live, command)(*args)

    def _live_snapshot_bytes(self) -> bytes:
        if hasattr(self._live, "snapshot"):
            return self._live.snapshot()
        return snapshot_backend(self._live)

    # -- retry / backoff / rebuild --------------------------------------------

    def _backoff(self, attempt: int) -> None:
        base = self._config.backoff_base_s * (2.0 ** (attempt - 1))
        delay = min(self._config.backoff_cap_s, base)
        # Deterministic jitter in [0.5, 1.0) x delay: decorrelates shards
        # that failed together without sacrificing replayability.
        _time.sleep(delay * (0.5 + 0.5 * float(self._rng.random())))

    def _recover(self, cause: TransientShardError) -> None:
        """Discard the (possibly half-mutated) live shard and rebuild it
        from the newest durable snapshot plus the replay journal."""
        started = _time.perf_counter()
        with self._health_lock:
            self._health.retries += 1
        self._teardown_live()
        seq = self._store.latest_sequence()
        if seq is None:  # pragma: no cover - generation 0 is written eagerly
            raise RuntimeError(
                f"shard {self.shard_index} has no valid snapshot to recover "
                f"from (after {cause})"
            )
        blob = self._store.load_latest().read_blob(_SHARD_BLOB)
        edb = restore_backend(blob)
        # Replay everything journaled at or after the restored generation,
        # coordinator-side, against the restored EDB -- faults and journaling
        # are *not* re-entered here, so replay never recurses or re-fires.
        entries = self._journal.entries(min_tag=seq)
        for entry in entries:
            getattr(edb, entry["command"])(*entry["args"])
        self._snapshot_seq = seq
        if self._executor == "processes":
            # Fork inheritance carries the replayed state into a fresh
            # worker, which re-shares its arenas into new shm segments and
            # re-registers views via the restore path it just ran.
            self._live = ShardWorkerClient(
                edb,
                self.shard_index,
                self._context,
                timeout_s=self._config.resolved_timeout(),
            )
        else:
            self._live = edb
        with self._health_lock:
            self._health.recoveries += 1
            self._health.replayed_batches += len(entries)
            self._health.recovery_seconds += _time.perf_counter() - started

    def _teardown_live(self) -> None:
        live, self._live = self._live, None
        if live is None:
            return
        try:
            process = getattr(live, "process", None)
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=self._config.resolved_timeout())
            if hasattr(live, "stats"):
                busy, overhead, commands = live.stats()
                base_busy, base_overhead, base_commands = self._stats_base
                self._stats_base = (
                    base_busy + busy,
                    base_overhead + overhead,
                    base_commands + commands,
                )
            live.close()
        except Exception:  # noqa: BLE001 - teardown is best-effort by design
            pass

    def _mark_degraded(self) -> None:
        self._degraded = True
        self._teardown_live()
        with self._health_lock:
            self._health.degraded_shards += 1

    # -- snapshots -------------------------------------------------------------

    def _snapshot_now(self) -> int:
        """Write one durable generation of the live shard; prunes the journal
        prefix no valid fallback generation can need any more."""
        blob = self._live_snapshot_bytes()
        seq = self._store.save({_SHARD_BLOB: blob})
        self._since_snapshot = 0
        self._journal.flush()
        # keep-2 means the oldest reachable fallback is seq-1; its replay
        # needs entries tagged >= seq-1, so only strictly older ones go.
        self._journal.prune(min_tag=seq - 1)
        return seq

    # -- fault injection -------------------------------------------------------

    def _fire_fault(self, fault: Fault, command: str, args: tuple) -> None:
        if fault.kind in PROCESS_ONLY_KINDS and self._executor != "processes":
            return
        if fault.kind == "kill":
            process = self._live.process
            process.kill()
            process.join(timeout=self._config.resolved_timeout())
            return  # the command itself now raises ShardWorkerDied
        if fault.kind == "delay":
            # Worker oversleeps its next reply by 3x the deadline, so the
            # coordinator's poll() reliably times out first.
            self._live.chaos_delay(self._config.resolved_timeout() * 3.0)
            return
        if fault.kind == "drop":
            self._live.chaos_drop()
            return  # the swallowed command never gets a reply -> timeout
        if fault.kind == "lostshm":
            self._vanish_arena_segments()
            process = self._live.process
            process.kill()
            process.join(timeout=self._config.resolved_timeout())
            return
        if fault.kind == "tornsnap":
            seq = self._snapshot_now()
            # Tear the fresh generation: without its manifest it is an
            # aborted write by construction, so recovery must fall back to
            # the previous generation and a longer replay.
            manifest = self._store._snapshot_dir(seq) / "MANIFEST.json"
            manifest.unlink(missing_ok=True)
            self._crash_live(command)
            return
        if fault.kind == "raise":
            self._half_apply(command, args)
            raise ChaosWorkerFault(self.shard_index, command)
        raise AssertionError(f"unhandled fault kind {fault.kind!r}")

    def _crash_live(self, command: str) -> None:
        """Make the live shard fail: kill its worker, or (in-process) raise."""
        process = getattr(self._live, "process", None)
        if process is not None:
            process.kill()
            process.join(timeout=self._config.resolved_timeout())
            return
        raise ChaosWorkerFault(self.shard_index, command)

    def _vanish_arena_segments(self) -> None:
        """Unlink the worker's published shm segments out from under it."""
        from multiprocessing import shared_memory

        try:
            states = self._live._call("arena_states")
        except TransientShardError:
            return
        for state in states.values():
            try:
                segment = shared_memory.SharedMemory(name=state["segment_name"])
                segment.close()
                segment.unlink()
            except Exception:  # noqa: BLE001 - already gone is the goal
                pass

    def _half_apply(self, command: str, args: tuple) -> None:
        """Tear the live shard's in-memory state mid-batch on purpose.

        Applies roughly half of an ingest (torn tables, torn history) or an
        extra discarded query (torn RNG stream / work counters) before the
        injected raise, so recovery provably cannot get away with resuming
        the live object -- only a snapshot+replay rebuild survives the
        differential.
        """
        try:
            if command in ("setup", "update"):
                records, time = args
                getattr(self._live, command)(records[: len(records) // 2], time)
            elif command == "insert_many":
                batches, time = args
                torn = {t: rows[: max(1, len(rows) // 2)] for t, rows in batches.items()}
                self._live.insert_many(torn, time)
            elif command == "query":
                self._live.query(args[0], args[1], args[2])
        except Exception:  # noqa: BLE001 - a torn apply may legally fail too
            pass

    # -- degrade-mode neutrals -------------------------------------------------

    def _neutral(self, command: str, args: tuple):
        from repro.edb.base import QueryResult, UpdateResult

        if command in ("setup", "update", "insert_many"):
            with self._health_lock:
                self._health.dropped_batches += 1
            return UpdateResult(
                time=args[-1],
                records_added=0,
                dummies_added=0,
                bytes_added=0.0,
                duration_seconds=0.0,
            )
        if command == "query":
            query = args[0]
            with self._health_lock:
                self._health.dropped_batches += 1
            answer = {} if isinstance(query, GroupByCountQuery) else 0
            return QueryResult(
                query_name=query.name,
                answer=answer,
                qet_seconds=0.0,
                records_scanned=0,
                noise_injected=False,
            )
        if command == "supports":
            # Fidelity trade-off, documented: a degraded shard still reports
            # scheme capability (from the cached cost model) so the fleet's
            # supported-query surface does not flap with shard health.
            return self._cost_model.supports(args[0])
        if command in ("table_size", "table_dummy_count"):
            return 0
        if command == "register_view":
            return True
        if command in ("set_view_answering", "rotate_key"):
            return None
        if command == "snapshot":
            # Last durable state; restore of a degraded fleet resumes from it.
            return self._store.load_latest().read_blob(_SHARD_BLOB)
        if command == "attr":
            (name,) = args
            defaults = {
                "is_setup": True,
                "update_history": (),
                "outsourced_count": 0,
                "dummy_count": 0,
                "real_count": 0,
                "storage_bytes": 0.0,
                "registered_views": (),
                "view_answering": True,
                "query_work_seconds": 0.0,
                "view_maintenance_seconds": 0.0,
                "simulated_work_seconds": 0.0,
                "maintained_query_count": 0,
            }
            if name in defaults:
                return defaults[name]
        raise RuntimeError(
            f"shard {self.shard_index} is degraded and has no neutral answer "
            f"for {command!r}"
        )

    # -- protocol surface (what the router scatters) ---------------------------

    def setup(self, records: Iterable, time: int = 0) -> "UpdateResult":
        return self._invoke("setup", list(records), time)

    def update(self, records: Iterable, time: int) -> "UpdateResult":
        return self._invoke("update", list(records), time)

    def insert_many(self, batches: Mapping, time: int) -> "UpdateResult":
        return self._invoke("insert_many", dict(batches), time)

    def query(
        self, query: "Query", time: int = 0, executor: "str | None" = None
    ) -> "QueryResult":
        return self._invoke("query", query, time, executor)

    def supports(self, query: "Query") -> bool:
        return self._invoke("supports", query)

    def register_view(self, query: "Query") -> bool:
        return self._invoke("register_view", query)

    def set_view_answering(self, enabled: bool) -> None:
        return self._invoke("set_view_answering", bool(enabled))

    def rotate_key(self, new_key: "bytes | None" = None) -> None:
        self._invoke("rotate_key", new_key)

    def table_size(self, table: str) -> int:
        return self._invoke("table_size", table)

    def table_dummy_count(self, table: str) -> int:
        return self._invoke("table_dummy_count", table)

    def snapshot(self) -> bytes:
        """Authoritative serialized state of the live shard."""
        return self._invoke("snapshot")

    # -- cached static facts ---------------------------------------------------

    @property
    def scheme_name(self) -> str:
        return self._scheme_name

    @property
    def edb_mode(self) -> str:
        return self._edb_mode

    @property
    def ciphertext_store(self) -> "str | None":
        return self._ciphertext_store

    @property
    def cost_model(self):
        return self._cost_model

    @property
    def leakage_profile(self):
        return self._leakage_profile

    @property
    def query_executors(self) -> tuple[str, ...]:
        return self._query_executors

    # -- supervised dynamic reads ----------------------------------------------

    @property
    def is_setup(self) -> bool:
        return self._invoke("attr", "is_setup")

    @property
    def update_history(self) -> tuple:
        return self._invoke("attr", "update_history")

    @property
    def outsourced_count(self) -> int:
        return self._invoke("attr", "outsourced_count")

    @property
    def dummy_count(self) -> int:
        return self._invoke("attr", "dummy_count")

    @property
    def real_count(self) -> int:
        return self._invoke("attr", "real_count")

    @property
    def storage_bytes(self) -> float:
        return self._invoke("attr", "storage_bytes")

    @property
    def registered_views(self) -> tuple:
        return self._invoke("attr", "registered_views")

    @property
    def view_answering(self) -> bool:
        return self._invoke("attr", "view_answering")

    @property
    def query_work_seconds(self) -> float:
        return self._invoke("attr", "query_work_seconds")

    @property
    def view_maintenance_seconds(self) -> float:
        return self._invoke("attr", "view_maintenance_seconds")

    @property
    def simulated_work_seconds(self) -> float:
        return self._invoke("attr", "simulated_work_seconds")

    @property
    def maintained_query_count(self) -> int:
        return self._invoke("attr", "maintained_query_count")

    # -- worker plumbing passthrough -------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether this shard has been taken out of rotation."""
        return self._degraded

    @property
    def live(self):
        """The currently wrapped shard (proxy or EDB; ``None`` after close)."""
        return self._live

    @property
    def process(self):
        """The live worker process handle (``None`` for in-process shards)."""
        return getattr(self._live, "process", None)

    @property
    def cipher(self):
        return getattr(self._live, "cipher", None)

    def arena_cache(self):
        return self._live.arena_cache()

    def ciphertexts(self, table: str) -> tuple:
        return self._live.ciphertexts(table)

    def stats(self) -> tuple[float, float, int]:
        """Monotonic (busy, overhead, commands) across worker generations."""
        base_busy, base_overhead, base_commands = self._stats_base
        if self._live is not None and hasattr(self._live, "stats"):
            busy, overhead, commands = self._live.stats()
            return (
                base_busy + busy,
                base_overhead + overhead,
                base_commands + commands,
            )
        return self._stats_base

    def close(self) -> None:
        """Tear down the live shard and remove the recovery scratch."""
        if self._closed:
            return
        self._closed = True
        self._teardown_live()
        shutil.rmtree(self._dir, ignore_errors=True)
        if self._cleanup_base:
            try:
                self._base_dir.rmdir()
            except OSError:
                pass


class ShardSupervisor:
    """Builds and owns the fleet's :class:`SupervisedShard` wrappers.

    One supervisor per router: it resolves the scratch directory, shares the
    health sink (the router's measured ledger) and its lock across shards,
    and hands each wrapper its slice of the fault schedule.
    """

    def __init__(
        self,
        config: SupervisorConfig,
        schedule: FaultSchedule | None,
        executor: str,
        health: "WallClockStats",
        context=None,
    ) -> None:
        import threading

        self.config = config
        self.schedule = schedule
        self._executor = executor
        self._health = health
        self._health_lock = threading.Lock()
        self._context = context
        if config.directory is not None:
            self._directory = Path(config.directory)
            self._directory.mkdir(parents=True, exist_ok=True)
            self._cleanup_base = False
        else:
            # Recovery scratch is machine-local and process-lifetime: it only
            # has to survive *worker* deaths, never a host reboot, so a tmpfs
            # (when the platform has one) takes the fsync of every journal
            # append out of the ingest path -- the difference between a ~free
            # supervision layer and a measurable one.
            scratch_root = "/dev/shm" if os.path.isdir("/dev/shm") else None
            self._directory = Path(
                tempfile.mkdtemp(prefix="repro-supervisor-", dir=scratch_root)
            )
            self._cleanup_base = True
        self.shards: list[SupervisedShard] = []

    @property
    def directory(self) -> Path:
        """The supervisor's recovery scratch root."""
        return self._directory

    def wrap(self, shards: Sequence) -> list[SupervisedShard]:
        """Wrap already-built shards (proxies or EDBs) for supervision."""
        self.shards = [
            SupervisedShard(
                live,
                index,
                self.config,
                self.schedule,
                self._executor,
                self._health,
                self._health_lock,
                self._directory,
                context=self._context,
                cleanup_base=self._cleanup_base,
            )
            for index, live in enumerate(shards)
        ]
        return self.shards

    def close(self) -> None:
        """Close every wrapper (idempotent; wrappers remove their scratch)."""
        for shard in self.shards:
            shard.close()
