"""Multi-owner fleet deployments over (possibly sharded) encrypted databases.

The paper specifies DP-Sync for a single owner outsourcing one growing table.
This package scales that shape out horizontally:

* :class:`~repro.fleet.deployment.Deployment` coordinates a fleet of
  :class:`~repro.core.owner.Owner` members -- each with its own
  synchronization strategy, ``SeedSequence``-spawned noise stream, privacy
  accountant and update-pattern transcript -- over one shared EDB, which may
  itself be a :class:`~repro.edb.router.ShardRouter` partitioning records
  across K independent back-end shards.
* Queries go through one fleet-level analyst: ground truth is the union of
  the members' logical databases (plus any externally registered table
  sources), and sharded back-ends answer by scatter-gather.
* :class:`~repro.fleet.supervisor.ShardSupervisor` makes the shard fleet
  self-healing: per-command deadlines, bounded deterministic retry, and
  snapshot+replay-log worker recovery that is byte-invisible in every
  paper-level observable (see :mod:`repro.testing.chaos` for the matching
  deterministic fault-injection layer).

The single-table :class:`~repro.core.framework.DPSync` facade is a thin
``n_owners=1`` deployment; the fleet differential tests pin that wrapper
bit-identical to the paper's single-owner runs.
"""

from repro.fleet.deployment import Deployment
from repro.fleet.supervisor import (
    ShardSupervisor,
    SupervisedShard,
    SupervisorConfig,
    resolve_supervisor_mode,
)

__all__ = [
    "Deployment",
    "ShardSupervisor",
    "SupervisedShard",
    "SupervisorConfig",
    "resolve_supervisor_mode",
]
