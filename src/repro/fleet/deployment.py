"""The fleet coordinator.

A :class:`Deployment` owns N fleet members (:class:`~repro.core.owner.Owner`
instances).  Members may own distinct tables (the paper's join experiment) or
*share* a table -- e.g. one owner per ingestion region, each receiving a
partition of the table's arrival stream (see
:func:`repro.workload.scenarios.partition_fleet`).  Every member keeps its own
synchronization strategy, noise stream, privacy accountant and update-pattern
transcript, so the per-owner DP guarantee of the paper holds member-wise; the
fleet-level update-pattern guarantee is the parallel composition over members
(disjoint record ownership), i.e. the maximum of the member epsilons.

The deployment also hosts the fleet-level analyst: ground truth is computed
over the union of the members' logical databases plus any table sources
registered with :meth:`register_table_source` (sibling deployments sharing
the same EDB -- the multi-table join setup).  Queries whose tables are not
all ingested by this deployment's own members bypass the incrementally
maintained aggregates and rescan the provided sources, which keeps join
ground truth correct when a foreign table grows outside this deployment.
"""

from __future__ import annotations

import logging
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.analyst import Analyst, AnalystObservation
from repro.core.owner import Owner
from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.registry import make_strategy
from repro.core.update_pattern import UpdatePattern
from repro.edb.records import Record, Schema, SchemaDummyFactory
from repro.query.ast import Query
from repro.query.incremental import IncrementalTruth
from repro.query.sql import parse_query

__all__ = ["Deployment"]

logger = logging.getLogger(__name__)


class Deployment:
    """Coordinates a fleet of owners outsourcing to one (possibly sharded) EDB.

    Parameters
    ----------
    edb:
        The shared encrypted database -- a single back-end or a
        :class:`~repro.edb.router.ShardRouter` over K shards.
    truth_source:
        Optional :class:`~repro.query.incremental.IncrementalTruth`; when
        given, every record delivered through :meth:`receive` (and the
        initial databases passed to :meth:`start`) feeds the maintained
        ground-truth aggregates.
    """

    def __init__(
        self, edb, truth_source: IncrementalTruth | None = None
    ) -> None:
        self._edb = edb
        self._truth = truth_source
        self._members: dict[str, Owner] = {}
        self._table_sources: dict[str, Callable[[], Sequence[Record]]] = {}
        #: Source tables recorded in a restored snapshot but not yet
        #: re-registered (sources are arbitrary callables the store cannot
        #: persist).  Queries touching them raise until re-registration.
        self._pending_table_sources: set[str] = set()
        self._analyst = Analyst(
            edb, truth_source=truth_source, maintained_tables=self._owned_tables
        )
        self._started = False

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        schemas: Mapping[str, Schema] | Schema,
        edb,
        n_owners: int = 1,
        strategy: str = "dp-timer",
        epsilon: float = 0.5,
        period: int = 30,
        theta: int = 15,
        flush: FlushPolicy | None = None,
        seed: int = 0,
        truth_source: IncrementalTruth | None = None,
    ) -> "Deployment":
        """Build a fleet of ``n_owners`` members per table.

        Member RNG streams are spawned from one ``SeedSequence(seed)`` in
        member order, so adding a table or an owner never disturbs the noise
        of the others, and a fixed seed reproduces the whole fleet.  Members
        of table ``T`` are named ``T`` when ``n_owners == 1`` and ``T#i``
        otherwise (matching the stream names
        :func:`repro.workload.scenarios.partition_fleet` produces).
        """
        if n_owners < 1:
            raise ValueError("n_owners must be >= 1")
        if isinstance(schemas, Schema):
            schemas = {schemas.name: schemas}
        deployment = cls(edb, truth_source=truth_source)
        members = [
            (f"{table}#{index}" if n_owners > 1 else table, schema)
            for table, schema in schemas.items()
            for index in range(n_owners)
        ]
        children = np.random.SeedSequence(seed).spawn(len(members))
        for (name, schema), child in zip(members, children):
            member_strategy = make_strategy(
                strategy,
                dummy_factory=SchemaDummyFactory(schema),
                rng=np.random.default_rng(child),
                epsilon=epsilon,
                period=period,
                theta=theta,
                flush=flush,
            )
            deployment.add_owner(name, schema, member_strategy)
        return deployment

    def add_owner(self, name: str, schema: Schema, strategy: SyncStrategy) -> Owner:
        """Register one fleet member (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("owners must be added before start()")
        if name in self._members:
            raise ValueError(f"duplicate owner name {name!r}")
        if schema.name in self._table_sources:
            # Mirror of the register_table_source guard: an owned table with
            # an external source would double-count in ground truth.
            raise ValueError(
                f"table {schema.name!r} already has an external source"
            )
        owner = Owner(schema=schema, strategy=strategy, edb=self._edb, name=name)
        self._members[name] = owner
        return owner

    def register_table_source(
        self, table: str, source: Callable[[], Sequence[Record]]
    ) -> None:
        """Expose an external logical table to this deployment's ground truth.

        Used when several deployments (or :class:`~repro.core.framework.DPSync`
        facades) share one EDB and a query joins across their tables: the
        analyst's ground truth then includes the sibling's logical records.
        """
        if table in self._table_sources:
            raise ValueError(f"table source {table!r} already registered")
        if table in self._owned_tables():
            # The member's own records already feed logical_tables(); adding
            # an external source for the same table would double-count every
            # shared record in ground truth.
            raise ValueError(
                f"table {table!r} is already owned by this deployment"
            )
        self._table_sources[table] = source
        self._pending_table_sources.discard(table)

    # -- lifecycle ------------------------------------------------------------

    def start(
        self, initial: Mapping[str, Sequence[Record]] | None = None
    ) -> None:
        """Initialize every member (Setup / time-0 Update), in member order.

        ``initial`` maps member names to their initial databases ``D_0``;
        omitted members start empty.  The first member initializes the shared
        EDB through Setup, later members register their initial outsourcing
        through Update at time 0.
        """
        if self._started:
            raise RuntimeError("deployment already started")
        if not self._members:
            raise ValueError("deployment has no owners")
        unknown = set(initial or ()) - set(self._members)
        if unknown:
            raise KeyError(f"initial records for unknown owners {sorted(unknown)}")
        for name, owner in self._members.items():
            records = list((initial or {}).get(name, ()))
            owner.initialize(records)
            if self._truth is not None:
                self._truth.ingest(owner.table, records)
        self._started = True

    # -- durability ------------------------------------------------------------

    def save(self, directory, passphrase: str | None = None) -> dict:
        """Write a durable snapshot of the whole deployment to ``directory``.

        One :class:`~repro.edb.store.EncryptedStore` holding the shared EDB
        (or shard router, shards snapshotted inside their workers), every
        member's client-side state and the analyst's observation log --
        enough for :meth:`restore` to resume with bit-identical behaviour.
        Registered external table sources are *not* persisted (they are
        arbitrary callables); re-register them after restoring.  Returns
        the committed manifest.
        """
        import pickle

        from repro.edb import store as edb_store

        store = edb_store.EncryptedStore(directory, passphrase=passphrase)
        kind, blob = edb_store.snapshot_edb(self._edb)
        store.write_blob("edb.pkl", blob)
        store.write_blob(
            "owners.pkl",
            pickle.dumps(
                {
                    name: owner.export_state()
                    for name, owner in self._members.items()
                }
            ),
        )
        store.write_blob("truth.pkl", pickle.dumps(self._truth))
        store.write_blob(
            "observations.pkl", pickle.dumps(list(self._analyst.observations))
        )
        return store.commit(
            {
                "kind": "deployment",
                "edb_kind": kind,
                "started": self._started,
                "members": list(self._members),
                # Source tables are recorded by *name* so restore can demand
                # their re-registration before join ground truth goes wrong.
                "table_sources": sorted(self._table_sources),
            }
        )

    @classmethod
    def restore(cls, directory, passphrase: str | None = None) -> "Deployment":
        """Rebuild a deployment from a :meth:`save` snapshot.

        Every blob is checksum-verified (and unsealed, when a passphrase
        was used); restored shard routers come back under their original
        executor, with worker processes re-sharing the restored arenas.
        """
        import pickle

        from repro.edb import store as edb_store

        store = edb_store.EncryptedStore(directory, passphrase=passphrase)
        meta = store.manifest()["meta"]
        if meta.get("kind") != "deployment":
            raise edb_store.StoreIntegrityError(
                f"store at {directory} does not hold a deployment snapshot"
            )
        edb = edb_store.restore_edb(meta["edb_kind"], store.read_blob("edb.pkl"))
        truth = pickle.loads(store.read_blob("truth.pkl"))
        deployment = cls(edb, truth_source=truth)
        owner_states = pickle.loads(store.read_blob("owners.pkl"))
        for name in meta["members"]:
            deployment._members[name] = Owner.from_state(
                owner_states[name], edb
            )
        deployment._analyst._observations.extend(
            pickle.loads(store.read_blob("observations.pkl"))
        )
        deployment._started = meta["started"]
        pending = set(meta.get("table_sources", ()))
        if pending:
            # Sources are arbitrary callables the snapshot cannot carry; warn
            # immediately, and refuse (in query()) to compute ground truth
            # over the affected tables until they are re-registered --
            # silently missing a source table would freeze part of the join
            # ground truth without any error.
            deployment._pending_table_sources = pending
            logger.warning(
                "restored deployment recorded external table sources %s; "
                "re-register them with register_table_source() before "
                "querying their tables",
                sorted(pending),
            )
        return deployment

    def receive(
        self, owner_name: str, time: int, update: Record | None
    ) -> SyncDecision:
        """Deliver the logical update ``u_t`` of one member for time ``time``."""
        if not self._started:
            raise RuntimeError("call start() before receive()")
        owner = self._members[owner_name]
        decision = owner.tick(time, update)
        if update is not None and self._truth is not None:
            self._truth.ingest_one(owner.table, update)
        return decision

    def query(self, query: Query | str, time: int | None = None) -> AnalystObservation:
        """Run a query (AST or SQL) through the fleet's Query protocol."""
        if not self._started:
            raise RuntimeError("call start() before query()")
        parsed = parse_query(query) if isinstance(query, str) else query
        missing = self._pending_table_sources.intersection(parsed.tables)
        if missing:
            raise RuntimeError(
                f"query {parsed.name!r} touches restored table source(s) "
                f"{sorted(missing)} that were not re-registered after "
                "restore; call register_table_source() for each (ground "
                "truth would silently miss their records otherwise)"
            )
        at = time if time is not None else self.current_time
        return self._analyst.query(parsed, self.logical_tables, time=at)

    # -- fleet state -----------------------------------------------------------

    @property
    def owners(self) -> dict[str, Owner]:
        """The fleet members, keyed by member name (insertion order)."""
        return dict(self._members)

    def member(self, name: str) -> Owner:
        """One fleet member by name."""
        return self._members[name]

    @property
    def n_owners(self) -> int:
        """Number of fleet members."""
        return len(self._members)

    @property
    def edb(self):
        """The shared encrypted database (or shard router)."""
        return self._edb

    @property
    def measured_edb_stats(self):
        """Measured wall-clock of the shared EDB's protocol surface.

        A :class:`~repro.edb.router.WallClockStats` when the fleet outsources
        through a :class:`~repro.edb.router.ShardRouter` (whose pluggable
        executor makes the per-shard fan-out genuinely concurrent), ``None``
        for a plain back-end.  This is the *measured* side of the ledger; the
        simulated QET/ingest durations in protocol results stay model-derived
        so they remain hardware independent and bit-reproducible.
        """
        return getattr(self._edb, "measured", None)

    @property
    def health(self) -> dict | None:
        """Recovery/degradation health of the shared EDB's shard fleet.

        A dict of the supervised router's health counters (``recoveries``,
        ``retries``, ``replayed_batches``, ``recovery_seconds``,
        ``degraded_shards``, ``dropped_batches`` -- see
        :meth:`repro.edb.router.WallClockStats.health`), or ``None`` for a
        plain back-end with no measured ledger.  All counters stay zero on
        an unsupervised router; recoveries never show up anywhere else
        because healed shards are byte-invisible in the paper-level
        observables.
        """
        measured = getattr(self._edb, "measured", None)
        if measured is None:
            return None
        health = getattr(measured, "health", None)
        return health() if callable(health) else None

    def explain(self, query) -> dict | None:
        """Planner report for the most recent run of ``query``.

        Forwards to the shared EDB's ``explain`` surface
        (:meth:`repro.edb.router.ShardRouter.explain`): the chosen scatter
        plan, estimated vs measured cost, and why each alternative lost.
        ``None`` when the EDB has no planner (plain back-end, or a router
        constructed with ``planner="off"``) or the query never ran.
        """
        explain = getattr(self._edb, "explain", None)
        if explain is None:
            return None
        return explain(query)

    def close(self) -> None:
        """Release the shared EDB's resources (idempotent).

        Required for routers running the process shard executor, whose
        worker processes and shared-memory ciphertext arenas outlive the
        deployment object unless explicitly shut down; a no-op for plain
        in-process back-ends.
        """
        close = getattr(self._edb, "close", None)
        if close is not None:
            close()

    @property
    def analyst(self) -> Analyst:
        """The fleet-level analyst."""
        return self._analyst

    @property
    def truth_source(self) -> IncrementalTruth | None:
        """The maintained ground-truth aggregates, when enabled."""
        return self._truth

    @property
    def current_time(self) -> int:
        """Latest time unit processed by any member."""
        if not self._members:
            return 0
        return max(owner.current_time for owner in self._members.values())

    @property
    def epsilon(self) -> float:
        """Fleet-level update-pattern guarantee.

        Members own disjoint record streams, so the fleet composes in
        parallel: the guarantee is the worst (maximum) member epsilon.
        """
        if not self._members:
            return 0.0
        return max(owner.strategy.epsilon for owner in self._members.values())

    def update_patterns(self) -> dict[str, UpdatePattern]:
        """Per-member server-observable update transcripts."""
        return {name: owner.update_pattern for name, owner in self._members.items()}

    def logical_tables(self) -> dict[str, list[Record]]:
        """Ground-truth view: union of member logical databases per table,
        extended by any registered external table sources."""
        tables: dict[str, list[Record]] = {}
        for owner in self._members.values():
            tables.setdefault(owner.table, []).extend(owner.logical_database)
        for table, source in self._table_sources.items():
            tables.setdefault(table, []).extend(source())
        return tables

    def logical_size(self) -> int:
        """Total real records received by the fleet."""
        return sum(owner.logical_size for owner in self._members.values())

    # -- internals -------------------------------------------------------------

    def _owned_tables(self) -> set[str]:
        """Tables whose inserts flow through this deployment's truth source."""
        return {owner.table for owner in self._members.values()}
