"""Scheduled-event primitives.

The scheduler is a plain binary heap of ``(time, priority, sequence)`` keys.
``priority`` is an arbitrary comparable (the engine uses ``(class, index)``
tuples so all owner wake-ups of a tick precede the query schedule);
``sequence`` is a monotonically increasing tiebreaker that keeps the order of
same-key events stable and ensures payloads are never compared.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ScheduledEvent", "EventScheduler"]


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One heap entry: ``(time, priority, sequence)`` plus an opaque payload."""

    time: int
    priority: Any
    sequence: int
    payload: Any = field(compare=False)


class EventScheduler:
    """A min-heap of :class:`ScheduledEvent`, popped in time/priority order."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._pushed = 0
        self._popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: int, priority: Any, payload: Any) -> ScheduledEvent:
        """Push an event; same-key events pop in insertion order."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = ScheduledEvent(
            time=time, priority=priority, sequence=next(self._sequence), payload=payload
        )
        heapq.heappush(self._heap, event)
        self._pushed += 1
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty scheduler")
        self._popped += 1
        return heapq.heappop(self._heap)

    def peek_time(self) -> int | None:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed."""
        return self._pushed

    @property
    def events_processed(self) -> int:
        """Total events ever popped."""
        return self._popped
