"""The event-driven engine.

:class:`Engine` advances simulated time by popping scheduled events instead
of iterating every time unit.  Two kinds of participants register on it:

* **streams** -- one per (owner, workload) pair.  A stream is woken at every
  logical arrival of its workload and at every self-scheduled time its
  strategy reports through ``next_self_event`` (the
  :meth:`~repro.core.strategies.base.SyncStrategy.next_event` hint).  A wake
  calls ``deliver(time, update)`` -- in the simulator that is
  :meth:`repro.core.owner.Owner.tick`.
* **periodic callbacks** -- e.g. the analyst's query schedule.  They fire at
  every multiple of their interval, *after* all stream activity of that time
  unit (streams carry a lower priority class).

Within one time unit, streams fire in registration order, then periodics in
registration order -- exactly the iteration order of the legacy per-tick
loop, so a run over the engine reproduces the loop's transcript verbatim
whenever skipped ticks are strategy no-ops (which ``next_event`` guarantees).

Stale wake-ups (a self-event and an arrival landing on the same tick) are
deduplicated by tracking each stream's last delivered time; a stream is
never delivered the same time unit twice and never travels backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.edb.records import Record
from repro.engine.events import EventScheduler

__all__ = ["Engine", "EngineStats"]

#: Priority classes: all stream wake-ups of a tick precede all periodics.
_STREAM_CLASS = 0
_PERIODIC_CLASS = 1


@dataclass
class EngineStats:
    """Work counters of one engine run (exposed for tests and benchmarks)."""

    events_scheduled: int = 0
    events_processed: int = 0
    ticks_delivered: int = 0
    stale_skipped: int = 0
    periodic_fired: int = 0
    #: Stream wake-ups that carried an arrival record.  Together with
    #: ``ticks_delivered`` this separates real ingestion work from pure
    #: self-scheduled wake-ups (timer/flush boundaries).
    arrivals_delivered: int = 0


@dataclass
class _Stream:
    name: str
    deliver: Callable[[int, Record | None], object]
    arrivals: Iterator[tuple[int, Record]]
    next_self_event: Callable[[int], int | None] | None
    index: int
    pending: tuple[int, Record] | None = None
    last_tick: int = 0


@dataclass
class _Periodic:
    callback: Callable[[int], object]
    interval: int
    index: int


class Engine:
    """Scheduled-event simulation core bounded by ``horizon`` time units."""

    def __init__(self, horizon: int, start_time: int = 0) -> None:
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if not 0 <= start_time <= horizon:
            raise ValueError(
                f"start_time must be in [0, {horizon}], got {start_time}"
            )
        self._horizon = horizon
        self._start_time = start_time
        self._scheduler = EventScheduler()
        self._streams: list[_Stream] = []
        self._periodics: list[_Periodic] = []
        self._stats = EngineStats()
        self._ran = False

    @property
    def horizon(self) -> int:
        """Last time unit (inclusive) the engine will process."""
        return self._horizon

    @property
    def stats(self) -> EngineStats:
        """Work counters (populated by :meth:`run`)."""
        return self._stats

    # -- registration -----------------------------------------------------------

    def add_stream(
        self,
        name: str,
        deliver: Callable[[int, Record | None], object],
        arrivals: Iterable[tuple[int, Record]] = (),
        next_self_event: Callable[[int], int | None] | None = None,
        resume_at: int = 0,
    ) -> None:
        """Register a stream.

        Parameters
        ----------
        name:
            Label used in error messages.
        deliver:
            Called as ``deliver(time, update)`` at every wake-up of the
            stream; ``update`` is the arrival record when the wake-up
            coincides with one, else ``None``.
        arrivals:
            Iterable of ``(time, record)`` pairs with strictly increasing
            times (e.g. :meth:`GrowingDatabase.arrivals`); consumed lazily.
        next_self_event:
            Optional hint called after every delivery (and once with
            ``resume_at`` before the run) returning the next time the stream
            must be woken even without an arrival, or ``None``.
        resume_at:
            Last time unit already delivered to the stream in a previous
            (persisted) run.  Arrivals at or before this time are consumed
            without delivery and the first self-event hint is taken at this
            time rather than 0.
        """
        if self._ran:
            raise RuntimeError("streams must be registered before run()")
        if resume_at < 0:
            raise ValueError("resume_at must be non-negative")
        self._streams.append(
            _Stream(
                name=name,
                deliver=deliver,
                arrivals=iter(arrivals),
                next_self_event=next_self_event,
                index=len(self._streams),
                last_tick=resume_at,
            )
        )

    def add_periodic(self, interval: int, callback: Callable[[int], object]) -> None:
        """Register ``callback(time)`` to fire at every multiple of ``interval``."""
        if self._ran:
            raise RuntimeError("periodic callbacks must be registered before run()")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._periodics.append(
            _Periodic(callback=callback, interval=interval, index=len(self._periodics))
        )

    # -- execution ----------------------------------------------------------------

    def run(self) -> EngineStats:
        """Process every scheduled event up to the horizon (once per engine)."""
        if self._ran:
            raise RuntimeError("an Engine instance may only run once")
        self._ran = True
        for stream in self._streams:
            self._pull_arrival(stream)
            self._schedule_self(stream, stream.last_tick)
        for periodic in self._periodics:
            first = ((self._start_time // periodic.interval) + 1) * periodic.interval
            if first <= self._horizon:
                self._scheduler.schedule(
                    first, (_PERIODIC_CLASS, periodic.index), periodic
                )
        while self._scheduler:
            event = self._scheduler.pop()
            if event.priority[0] == _STREAM_CLASS:
                self._wake_stream(event.payload, event.time)
            else:
                self._fire_periodic(event.payload, event.time)
        self._stats.events_scheduled = self._scheduler.events_scheduled
        self._stats.events_processed = self._scheduler.events_processed
        return self._stats

    # -- internals ------------------------------------------------------------------

    def _pull_arrival(self, stream: _Stream) -> None:
        """Advance the arrival iterator and schedule the wake-up, if any."""
        while True:
            entry = next(stream.arrivals, None)
            if entry is None:
                stream.pending = None
                return
            time, record = entry
            if stream.pending is not None and time <= stream.pending[0]:
                raise ValueError(
                    f"stream {stream.name!r}: arrival times must be strictly "
                    f"increasing (got {time} after {stream.pending[0]})"
                )
            if time > stream.last_tick:
                break
            # Resumed stream: this arrival was already delivered before the
            # snapshot.  Consume it, keeping monotonicity validation anchored.
            stream.pending = entry
        if time > self._horizon:
            # Times are increasing, so everything further is out of range too.
            stream.pending = None
            return
        stream.pending = (time, record)
        self._scheduler.schedule(time, (_STREAM_CLASS, stream.index), stream)

    def _schedule_self(self, stream: _Stream, now: int) -> None:
        if stream.next_self_event is None:
            return
        when = stream.next_self_event(now)
        if when is None:
            return
        if when <= now:
            raise ValueError(
                f"stream {stream.name!r}: next_event must be in the future "
                f"(got {when} at time {now})"
            )
        if when <= self._horizon:
            self._scheduler.schedule(when, (_STREAM_CLASS, stream.index), stream)

    def _wake_stream(self, stream: _Stream, time: int) -> None:
        if time <= stream.last_tick:
            # A self-event and an arrival landed on the same tick; the first
            # wake-up already delivered it.
            self._stats.stale_skipped += 1
            return
        update: Record | None = None
        if stream.pending is not None and stream.pending[0] == time:
            update = stream.pending[1]
            self._stats.arrivals_delivered += 1
            self._pull_arrival(stream)
        stream.deliver(time, update)
        stream.last_tick = time
        self._stats.ticks_delivered += 1
        self._schedule_self(stream, time)

    def _fire_periodic(self, periodic: _Periodic, time: int) -> None:
        periodic.callback(time)
        self._stats.periodic_fired += 1
        following = time + periodic.interval
        if following <= self._horizon:
            self._scheduler.schedule(
                following, (_PERIODIC_CLASS, periodic.index), periodic
            )
