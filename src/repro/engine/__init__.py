"""Event-driven simulation core.

The engine replaces the per-tick simulator loop: instead of touching every
owner at every time unit, work is scheduled on a priority heap of
``(time, priority, sequence)`` events.  Owners are woken only at logical
arrivals (fed by :meth:`repro.workload.stream.GrowingDatabase.arrivals`) and
at the self-scheduled times their strategies report via
:meth:`repro.core.strategies.base.SyncStrategy.next_event`; the query
schedule runs as a periodic event after all owner activity of a tick.

Quiet stretches are skipped in ``O(log n)`` heap operations instead of
``O(horizon)`` dead Python iterations, while the event ordering reproduces
the legacy loop's behaviour exactly (see ``tests/test_engine_equivalence``).
"""

from repro.engine.core import Engine, EngineStats
from repro.engine.events import EventScheduler, ScheduledEvent

__all__ = ["Engine", "EngineStats", "EventScheduler", "ScheduledEvent"]
