"""Analysis tooling: theoretical-bound checks, trade-off sweeps and attacks.

* :mod:`repro.analysis.bounds` -- compares empirical logical gaps and
  outsourced sizes against the Theorem 6-9 bounds;
* :mod:`repro.analysis.tradeoff` -- summarizes privacy/accuracy/performance
  sweeps into the series plotted in Figures 5 and 6;
* :mod:`repro.analysis.attacks` -- the update-pattern inference attack from
  the introduction's IoT example, used to demonstrate what SUR leaks and what
  the DP strategies prevent.
"""

from repro.analysis.bounds import BoundCheck, check_ant_bounds, check_timer_bounds
from repro.analysis.tradeoff import (
    parameter_tradeoff_series,
    privacy_tradeoff_series,
    tradeoff_scatter,
)
from repro.analysis.attacks import (
    OccupancyInference,
    infer_activity_from_pattern,
)

__all__ = [
    "BoundCheck",
    "OccupancyInference",
    "check_ant_bounds",
    "check_timer_bounds",
    "infer_activity_from_pattern",
    "parameter_tradeoff_series",
    "privacy_tradeoff_series",
    "tradeoff_scatter",
]
