"""Update-pattern inference attack (the introduction's IoT example).

The paper motivates update-pattern hiding with a building-sensor story: an
adversarial building admin who sees *when* backups are posted can infer which
floor a person visited, without decrypting anything.  This module implements
that adversary against the update-pattern transcript:

* under **SUR**, updates coincide exactly with sensor events, so the
  adversary reconstructs the activity timeline perfectly;
* under the **DP strategies**, update times are data independent (fixed
  schedule or noisy-threshold crossings) and volumes are noisy, so the
  adversary's reconstruction accuracy collapses towards chance.

The attack is deliberately simple (it guesses that an event occurred in every
time unit covered by an update) because the point of the experiment -- and of
the tests built on it -- is the *gap* between SUR and the DP strategies, not
adversarial sophistication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.update_pattern import UpdatePattern

__all__ = ["OccupancyInference", "infer_activity_from_pattern"]


@dataclass(frozen=True)
class OccupancyInference:
    """Result of the adversary's attempt to reconstruct the activity timeline."""

    predicted_active_times: tuple[int, ...]
    true_active_times: tuple[int, ...]
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def infer_activity_from_pattern(
    pattern: UpdatePattern,
    true_activity: Sequence[bool],
    lookback: int = 0,
) -> OccupancyInference:
    """Reconstruct the event timeline from an update-pattern transcript.

    The adversary predicts that one event occurred per unit of update volume,
    placed at the update time and the ``lookback`` preceding time units
    (modelling "the sensor uploads right after the event" for SUR, and a
    window guess for batched strategies).

    Parameters
    ----------
    pattern:
        The observed update pattern.
    true_activity:
        ``true_activity[t-1]`` says whether a real event happened at time t.
    lookback:
        How many time units before each update the adversary also marks as
        active.
    """
    horizon = len(true_activity)
    predicted: set[int] = set()
    for event in pattern:
        if event.time == 0:
            continue
        for offset in range(lookback + 1):
            t = event.time - offset
            if 1 <= t <= horizon:
                predicted.add(t)

    truth = {t + 1 for t, active in enumerate(true_activity) if active}
    true_positives = len(predicted & truth)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    return OccupancyInference(
        predicted_active_times=tuple(sorted(predicted)),
        true_active_times=tuple(sorted(truth)),
        precision=precision,
        recall=recall,
    )
