"""Trade-off summaries for the sweep experiments (Figures 4-6).

These functions turn the raw sweep outputs of
:mod:`repro.simulation.experiment` into the (x, y) series the paper plots:

* privacy parameter epsilon vs average L1 error / average QET (Figure 5);
* non-privacy parameter (T or theta) vs the same metrics (Figure 6);
* the accuracy-vs-performance scatter of the strategies (Figure 4).
"""

from __future__ import annotations

from typing import Mapping

from repro.simulation.results import RunResult

__all__ = [
    "privacy_tradeoff_series",
    "parameter_tradeoff_series",
    "tradeoff_scatter",
]


def privacy_tradeoff_series(
    sweep: Mapping[str, Mapping[float, RunResult]],
    query_name: str = "Q2",
) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Figure 5 series: per strategy, epsilon -> (error series, qet series).

    Returns ``{strategy: {"error": [(eps, err)], "qet": [(eps, qet)]}}``.
    """
    series: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for strategy, by_epsilon in sweep.items():
        error_points: list[tuple[float, float]] = []
        qet_points: list[tuple[float, float]] = []
        for epsilon in sorted(by_epsilon):
            result = by_epsilon[epsilon]
            error_points.append((epsilon, result.mean_l1_error(query_name)))
            qet_points.append((epsilon, result.mean_qet(query_name)))
        series[strategy] = {"error": error_points, "qet": qet_points}
    return series


def parameter_tradeoff_series(
    sweep: Mapping[int, RunResult],
    query_name: str = "Q2",
) -> dict[str, list[tuple[float, float]]]:
    """Figure 6 series: parameter value -> mean error / mean QET."""
    error_points: list[tuple[float, float]] = []
    qet_points: list[tuple[float, float]] = []
    for value in sorted(sweep):
        result = sweep[value]
        error_points.append((float(value), result.mean_l1_error(query_name)))
        qet_points.append((float(value), result.mean_qet(query_name)))
    return {"error": error_points, "qet": qet_points}


def tradeoff_scatter(
    results: Mapping[str, RunResult],
    query_name: str = "Q2",
) -> dict[str, tuple[float, float]]:
    """Figure 4 scatter: strategy -> (mean QET, mean L1 error) for one query."""
    scatter: dict[str, tuple[float, float]] = {}
    for strategy, result in results.items():
        scatter[strategy] = (result.mean_qet(query_name), result.mean_l1_error(query_name))
    return scatter
