"""Empirical-vs-theoretical bound checks (Theorems 6-9).

These helpers replay a strategy over a workload and compare the observed
logical gap and outsourced data size against the paper's high-probability
bounds.  They are used by tests (the bounds must hold with at least the
stated probability) and by the ablation benches (to show how the flush
mechanism tightens the gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.dp.theory import (
    ant_logical_gap_bound,
    ant_outsourced_bound,
    timer_logical_gap_bound,
    timer_outsourced_bound,
)
from repro.edb.records import Record, Schema, make_dummy_record
from repro.workload.stream import GrowingDatabase

__all__ = ["BoundCheck", "check_timer_bounds", "check_ant_bounds"]


@dataclass(frozen=True)
class BoundCheck:
    """Outcome of one bound check at one point in time."""

    time: int
    observed: float
    bound: float
    holds: bool
    detail: str = ""


def _replay(
    strategy_factory: Callable[[Schema], object],
    workload: GrowingDatabase,
    observe_times: Sequence[int],
) -> tuple[list[tuple[int, int, int, int]], object]:
    """Replay a strategy without an EDB, recording per-time bookkeeping.

    Returns ``(observations, strategy)`` where each observation is
    ``(time, logical_gap_excess, outsourced_total, logical_size)`` with
    ``logical_gap_excess`` being the gap minus the records received since the
    last synchronization (the ``c_t`` term the theorems exclude).
    """
    schema = Schema(
        name=workload.table,
        attributes=tuple(
            next(
                iter(
                    [r for r in workload.initial]
                    + [u for u in workload.updates if u is not None]
                )
            ).values.keys()
        ),
    )
    strategy = strategy_factory(schema)
    outsourced = len(strategy.setup(list(workload.initial)))
    received_since_sync = 0
    observations: list[tuple[int, int, int, int]] = []
    observe_set = set(observe_times)
    for time, update in workload.iter_times():
        if update is not None:
            received_since_sync += 1
        decision = strategy.step(time, update)
        if decision.should_sync:
            outsourced += decision.volume
            received_since_sync = 0
        if time in observe_set:
            gap_excess = max(0, strategy.logical_gap - received_since_sync)
            observations.append(
                (time, gap_excess, outsourced, workload.logical_size_at(time))
            )
    return observations, strategy


def check_timer_bounds(
    workload: GrowingDatabase,
    epsilon: float = 0.5,
    period: int = 30,
    flush: FlushPolicy | None = None,
    beta: float = 0.05,
    observe_times: Sequence[int] | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[list[BoundCheck], list[BoundCheck]]:
    """Check the Theorem 6 (logical gap) and Theorem 7 (size) bounds for DP-Timer.

    Returns ``(gap_checks, size_checks)``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    flush = flush if flush is not None else FlushPolicy()
    if observe_times is None:
        observe_times = [t for t in range(period, workload.horizon + 1, period * 10)]

    def factory(schema: Schema) -> DPTimerStrategy:
        return DPTimerStrategy(
            dummy_factory=lambda t, s=schema: make_dummy_record(s, t),
            epsilon=epsilon,
            period=period,
            flush=flush,
            rng=rng,
        )

    observations, strategy = _replay(factory, workload, observe_times)
    gap_checks: list[BoundCheck] = []
    size_checks: list[BoundCheck] = []
    for time, gap_excess, outsourced, logical_size in observations:
        k = max(1, time // period)
        gap_bound = timer_logical_gap_bound(epsilon, k, beta)
        gap_checks.append(
            BoundCheck(
                time=time,
                observed=float(gap_excess),
                bound=gap_bound,
                holds=gap_excess <= gap_bound,
                detail=f"k={k}",
            )
        )
        size_bound = timer_outsourced_bound(
            logical_size, epsilon, k, time, flush.interval, flush.size, beta
        )
        size_checks.append(
            BoundCheck(
                time=time,
                observed=float(outsourced),
                bound=size_bound,
                holds=outsourced <= size_bound,
                detail=f"|D_t|={logical_size}",
            )
        )
    return gap_checks, size_checks


def check_ant_bounds(
    workload: GrowingDatabase,
    epsilon: float = 0.5,
    theta: int = 15,
    flush: FlushPolicy | None = None,
    beta: float = 0.05,
    observe_times: Sequence[int] | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[list[BoundCheck], list[BoundCheck]]:
    """Check the Theorem 8 (logical gap) and Theorem 9 (size) bounds for DP-ANT."""
    rng = rng if rng is not None else np.random.default_rng()
    flush = flush if flush is not None else FlushPolicy()
    if observe_times is None:
        step = max(1, workload.horizon // 20)
        observe_times = list(range(step, workload.horizon + 1, step))

    def factory(schema: Schema) -> DPANTStrategy:
        return DPANTStrategy(
            dummy_factory=lambda t, s=schema: make_dummy_record(s, t),
            epsilon=epsilon,
            theta=theta,
            flush=flush,
            rng=rng,
        )

    observations, strategy = _replay(factory, workload, observe_times)
    gap_checks: list[BoundCheck] = []
    size_checks: list[BoundCheck] = []
    for time, gap_excess, outsourced, logical_size in observations:
        gap_bound = ant_logical_gap_bound(epsilon, max(1, time), beta)
        gap_checks.append(
            BoundCheck(
                time=time,
                observed=float(gap_excess),
                bound=gap_bound,
                holds=gap_excess <= gap_bound,
            )
        )
        size_bound = ant_outsourced_bound(
            logical_size, epsilon, max(1, time), flush.interval, flush.size, beta
        )
        size_checks.append(
            BoundCheck(
                time=time,
                observed=float(outsourced),
                bound=size_bound,
                holds=outsourced <= size_bound,
                detail=f"|D_t|={logical_size}",
            )
        )
    return gap_checks, size_checks
