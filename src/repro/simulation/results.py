"""Result containers and aggregation.

A simulation run produces:

* a :class:`QueryTrace` per (query, query-time): L1 error and QET;
* a :class:`TimePoint` per query-time: outsourced/dummy sizes, storage bytes
  and logical gap at that moment;
* a :class:`RunResult` aggregating both into the quantities the paper
  reports (mean/max L1 error per query, mean QET per query, mean logical
  gap, total and dummy data size in Mb).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = ["QueryTrace", "TimePoint", "RunResult"]


def _plain_number(value):
    """Coerce numpy scalars to built-in numbers; pass everything else through."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return value


@dataclass(frozen=True)
class QueryTrace:
    """One query issuance within a run."""

    time: int
    query_name: str
    l1_error: float
    qet_seconds: float


@dataclass(frozen=True)
class TimePoint:
    """Snapshot of the outsourced state at one (query) time."""

    time: int
    outsourced_records: int
    dummy_records: int
    storage_bytes: float
    dummy_bytes: float
    logical_gap: int
    logical_size: int


@dataclass
class RunResult:
    """Aggregated outcome of one (strategy, back-end, workload) simulation."""

    strategy: str
    backend: str
    epsilon: float
    parameters: dict = field(default_factory=dict)
    query_traces: list[QueryTrace] = field(default_factory=list)
    timeline: list[TimePoint] = field(default_factory=list)
    sync_count: int = 0
    total_update_volume: int = 0

    # -- recording -------------------------------------------------------------

    def add_query_trace(self, trace: QueryTrace) -> None:
        """Record one query issuance."""
        self.query_traces.append(trace)

    def add_time_point(self, point: TimePoint) -> None:
        """Record one outsourced-state snapshot."""
        self.timeline.append(point)

    # -- per-query aggregates -----------------------------------------------------

    def query_names(self) -> tuple[str, ...]:
        """Distinct query names in issuance order."""
        seen: dict[str, None] = {}
        for trace in self.query_traces:
            seen.setdefault(trace.query_name, None)
        return tuple(seen)

    def traces_for(self, query_name: str) -> tuple[QueryTrace, ...]:
        """All traces of one query."""
        return tuple(t for t in self.query_traces if t.query_name == query_name)

    def mean_l1_error(self, query_name: str) -> float:
        """Mean L1 error of one query across its issuances."""
        traces = self.traces_for(query_name)
        if not traces:
            return 0.0
        return sum(t.l1_error for t in traces) / len(traces)

    def max_l1_error(self, query_name: str) -> float:
        """Maximum L1 error of one query across its issuances."""
        traces = self.traces_for(query_name)
        if not traces:
            return 0.0
        return max(t.l1_error for t in traces)

    def mean_qet(self, query_name: str) -> float:
        """Mean query execution time of one query."""
        traces = self.traces_for(query_name)
        if not traces:
            return 0.0
        return sum(t.qet_seconds for t in traces) / len(traces)

    def overall_mean_l1_error(self) -> float:
        """Mean L1 error across every query issuance of the run."""
        if not self.query_traces:
            return 0.0
        return sum(t.l1_error for t in self.query_traces) / len(self.query_traces)

    def overall_mean_qet(self) -> float:
        """Mean QET across every query issuance of the run."""
        if not self.query_traces:
            return 0.0
        return sum(t.qet_seconds for t in self.query_traces) / len(self.query_traces)

    # -- timeline aggregates ---------------------------------------------------------

    def mean_logical_gap(self) -> float:
        """Mean logical gap over the recorded snapshots."""
        if not self.timeline:
            return 0.0
        return sum(p.logical_gap for p in self.timeline) / len(self.timeline)

    def final_time_point(self) -> TimePoint | None:
        """The last recorded snapshot (end-of-run state)."""
        return self.timeline[-1] if self.timeline else None

    def total_data_megabytes(self) -> float:
        """Final outsourced data size in Mb (paper's "Total data (Mb)")."""
        final = self.final_time_point()
        return final.storage_bytes / 1e6 if final else 0.0

    def dummy_data_megabytes(self) -> float:
        """Final dummy data size in Mb (paper's "Dummy data (Mb)")."""
        final = self.final_time_point()
        return final.dummy_bytes / 1e6 if final else 0.0

    def error_series(self, query_name: str) -> tuple[tuple[int, float], ...]:
        """``(time, L1 error)`` series for one query (Figure 2 top rows)."""
        return tuple((t.time, t.l1_error) for t in self.traces_for(query_name))

    def qet_series(self, query_name: str) -> tuple[tuple[int, float], ...]:
        """``(time, QET)`` series for one query (Figure 2 bottom rows)."""
        return tuple((t.time, t.qet_seconds) for t in self.traces_for(query_name))

    def size_series(self) -> tuple[tuple[int, float, float], ...]:
        """``(time, total Mb, dummy Mb)`` series (Figure 3)."""
        return tuple(
            (p.time, p.storage_bytes / 1e6, p.dummy_bytes / 1e6) for p in self.timeline
        )

    # -- serialization --------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready representation that round-trips through :meth:`from_dict`.

        Every numeric field is coerced to a plain Python ``int``/``float`` so
        the representation is stable regardless of whether the run produced
        numpy scalars; JSON's ``repr``-based float encoding preserves the
        exact bit pattern, which the golden-trace tests and the runner's
        checkpoint/resume rely on.
        """
        return {
            "strategy": self.strategy,
            "backend": self.backend,
            "epsilon": float(self.epsilon),
            "parameters": {k: _plain_number(v) for k, v in self.parameters.items()},
            "query_traces": [
                {
                    "time": int(t.time),
                    "query_name": t.query_name,
                    "l1_error": float(t.l1_error),
                    "qet_seconds": float(t.qet_seconds),
                }
                for t in self.query_traces
            ],
            "timeline": [
                {
                    "time": int(p.time),
                    "outsourced_records": int(p.outsourced_records),
                    "dummy_records": int(p.dummy_records),
                    "storage_bytes": float(p.storage_bytes),
                    "dummy_bytes": float(p.dummy_bytes),
                    "logical_gap": int(p.logical_gap),
                    "logical_size": int(p.logical_size),
                }
                for p in self.timeline
            ],
            "sync_count": int(self.sync_count),
            "total_update_volume": int(self.total_update_volume),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunResult":
        """Rebuild a :class:`RunResult` produced by :meth:`to_dict`."""
        return cls(
            strategy=payload["strategy"],
            backend=payload["backend"],
            epsilon=payload["epsilon"],
            parameters=dict(payload.get("parameters", {})),
            query_traces=[QueryTrace(**t) for t in payload.get("query_traces", [])],
            timeline=[TimePoint(**p) for p in payload.get("timeline", [])],
            sync_count=payload.get("sync_count", 0),
            total_update_volume=payload.get("total_update_volume", 0),
        )

    # -- comparisons across runs ---------------------------------------------------------

    def summary(self) -> Mapping[str, float]:
        """Flat summary dictionary used by reports and benchmarks."""
        summary: dict[str, float] = {
            "mean_logical_gap": self.mean_logical_gap(),
            "total_data_mb": self.total_data_megabytes(),
            "dummy_data_mb": self.dummy_data_megabytes(),
            "sync_count": float(self.sync_count),
            "total_update_volume": float(self.total_update_volume),
        }
        for query_name in self.query_names():
            summary[f"{query_name}/mean_l1"] = self.mean_l1_error(query_name)
            summary[f"{query_name}/max_l1"] = self.max_l1_error(query_name)
            summary[f"{query_name}/mean_qet"] = self.mean_qet(query_name)
        return summary
