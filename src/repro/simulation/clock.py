"""Discrete simulation clock.

The paper's evaluation treats one minute as the minimum time span; the clock
simply counts time units, knows the query schedule and the horizon, and is
shared by the simulator components so they agree on "now".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SimulationClock"]


@dataclass
class SimulationClock:
    """Counts discrete time units from 1 to ``horizon``.

    Attributes
    ----------
    horizon:
        Last time unit (inclusive).
    query_interval:
        Queries are issued whenever ``now % query_interval == 0``;
        0 disables scheduled queries.
    """

    horizon: int
    query_interval: int = 0
    now: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.horizon < 0:
            raise ValueError("horizon must be non-negative")
        if self.query_interval < 0:
            raise ValueError("query_interval must be non-negative")

    def tick(self) -> int:
        """Advance one time unit and return the new time."""
        if self.now >= self.horizon:
            raise RuntimeError("clock advanced past its horizon")
        self.now += 1
        return self.now

    def is_query_time(self) -> bool:
        """Whether queries are scheduled for the current time unit."""
        if self.query_interval == 0 or self.now == 0:
            return False
        return self.now % self.query_interval == 0

    def remaining(self) -> int:
        """Time units left before the horizon."""
        return self.horizon - self.now

    def iter_ticks(self) -> Iterator[int]:
        """Iterate over all remaining time units, advancing the clock."""
        while self.now < self.horizon:
            yield self.tick()

    def query_times(self) -> tuple[int, ...]:
        """All scheduled query times over the full horizon."""
        if self.query_interval == 0:
            return ()
        return tuple(range(self.query_interval, self.horizon + 1, self.query_interval))
