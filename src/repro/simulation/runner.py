"""Parallel experiment orchestration: scenario-matrix grids of simulation cells.

The paper's whole Section 8 evaluation is a grid -- {strategies} x {back-ends}
x {parameter sweeps} x {workloads} -- and before this module every cell ran
serially inside one process.  This module turns one figure-replication into a
declarative object and a scheduler:

* :class:`CellSpec` -- a self-contained, JSON-serializable description of one
  grid cell (strategy, back-end, scenario name, parameters, seeds).  Cells
  reference workloads through the scenario registry
  (:mod:`repro.workload.scenarios`), so they stay cheap to pickle into worker
  processes.
* :class:`ExperimentGrid` -- declarative cell enumeration over the
  strategy x backend x scenario x parameter axes, with deterministic per-cell
  seeds derived via ``np.random.SeedSequence.spawn``: the seed of a cell
  depends only on the grid's ``base_seed`` and the cell's position, never on
  the worker count or completion order.
* :func:`run_cell` -- executes one cell (this is the function worker
  processes run); per-process scenario caching avoids rebuilding the same
  workload for every cell that shares it.
* :class:`GridRunner` -- runs the cells serially (``n_workers <= 1``) or on a
  process pool, checkpoints each completed cell as a JSON artifact under an
  artifact directory (so an interrupted figure-scale sweep resumes instead of
  restarting), and reports progress/ETA as cells complete.

Per-cell results are **bit-identical across worker counts**: every source of
randomness in a cell is derived from the cell's own recorded seeds (see
``tests/test_simulation_runner.py``), and the checkpoint JSON round-trips
results exactly (``RunResult.to_dict``/``from_dict``).

A tiny CLI is included for smoke runs::

    python -m repro.simulation.runner --strategies dp-timer,dp-ant \\
        --scenario sparse --scale 0.2 --workers 2 --artifact-dir /tmp/grid
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.strategies.flush import FlushPolicy
from repro.edb.base import EncryptedDatabase
from repro.edb.crypte import CryptEpsilon
from repro.edb.oblidb import ObliDB
from repro.edb.router import ShardRouter, resolve_shard_executor
from repro.query.planner import resolve_planner_mode
from repro.query.ast import JoinCountQuery, MultiJoinCountQuery, Query
from repro.simulation.results import RunResult
from repro.simulation.simulator import Simulation, SimulationConfig, derive_schema
from repro.util.io import atomic_write_text
from repro.util.mp import preferred_mp_context
from repro.workload.scenarios import build_scenario, partition_fleet, scenario_queries

__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_TIMER_PERIOD",
    "DEFAULT_THETA",
    "DEFAULT_FLUSH",
    "DEFAULT_QUERY_INTERVAL",
    "DEFAULT_CRYPTE_QUERY_EPSILON",
    "CellSpec",
    "ExperimentGrid",
    "GridResult",
    "GridRunner",
    "make_backend",
    "make_sharded_backend",
    "run_cell",
    "supported_backend_queries",
]

DEFAULT_EPSILON: float = 0.5
DEFAULT_TIMER_PERIOD: int = 30
DEFAULT_THETA: int = 15
DEFAULT_FLUSH: FlushPolicy = FlushPolicy(interval=2000, size=15)
DEFAULT_QUERY_INTERVAL: int = 360
DEFAULT_CRYPTE_QUERY_EPSILON: float = 3.0


def make_backend(
    name: str,
    seed: int = 0,
    crypte_query_epsilon: float = DEFAULT_CRYPTE_QUERY_EPSILON,
    mode: str = "fast",
    simulate_encryption: bool = False,
    ciphertext_store: str | None = None,
) -> Callable[[], EncryptedDatabase]:
    """A factory for one of the two evaluated back-ends (``"oblidb"`` / ``"crypte"``).

    ``mode`` selects the EDB implementation (see
    :data:`repro.edb.base.EDB_MODES`): ``"fast"`` is the vectorized columnar
    path, ``"reference"`` the original row-at-a-time one; both produce
    bit-identical runs at a fixed seed.  ``simulate_encryption`` runs every
    record through the real :class:`~repro.edb.crypto.RecordCipher`;
    ``ciphertext_store`` optionally overrides the ciphertext layout
    (``"arena"``/``"objects"``; default follows the mode), which only matters
    when encryption is simulated.
    """
    key = name.lower()
    if key in ("oblidb", "obli-db", "l0"):
        return lambda: ObliDB(
            rng=np.random.default_rng(seed + 1),
            mode=mode,
            simulate_encryption=simulate_encryption,
            ciphertext_store=ciphertext_store,
        )
    if key in ("crypte", "crypt-epsilon", "crypteps", "ldp"):
        return lambda: CryptEpsilon(
            query_epsilon=crypte_query_epsilon,
            rng=np.random.default_rng(seed + 2),
            mode=mode,
            simulate_encryption=simulate_encryption,
            ciphertext_store=ciphertext_store,
        )
    raise KeyError(f"unknown back-end {name!r}; expected 'oblidb' or 'crypte'")


def make_sharded_backend(
    name: str,
    n_shards: int,
    seed: int = 0,
    crypte_query_epsilon: float = DEFAULT_CRYPTE_QUERY_EPSILON,
    mode: str = "fast",
    simulate_encryption: bool = False,
    ciphertext_store: str | None = None,
    shard_executor: str = "threads",
    planner: str = "off",
    supervisor: str = "off",
    faults: str = "",
) -> Callable[[], ShardRouter]:
    """A factory for a :class:`~repro.edb.router.ShardRouter` over ``n_shards``
    independent back-end instances.

    Shard 0 is seeded exactly like the unsharded :func:`make_backend` (so a
    one-shard router is byte-identical to the plain back-end); later shards
    draw their seeds from ``SeedSequence([seed, shard_index])`` -- adding a
    shard never disturbs the noise streams of the existing ones.
    ``shard_executor`` selects the fan-out executor (``"threads"`` runs
    per-shard protocol work concurrently, ``"serial"`` sequentially,
    ``"processes"`` in persistent per-shard worker processes; results are
    byte-identical in every case).  ``planner="on"`` routes queries through
    the cost-based scatter planner (:mod:`repro.query.planner`) -- again
    byte-identical in every observable, only wall clock moves.
    ``supervisor="on"`` wraps every shard in the self-healing supervisor
    (:mod:`repro.fleet.supervisor`: snapshot + replay-log recovery), and
    ``faults`` injects a deterministic fault schedule
    (:func:`repro.testing.chaos.parse_fault_schedule` syntax) -- recovery is
    byte-invisible in answers, QET, noise flags and transcripts.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")

    def build() -> ShardRouter:
        shards = []
        for index in range(n_shards):
            shard_seed = (
                seed
                if index == 0
                else int(
                    np.random.SeedSequence([seed, index]).generate_state(1)[0]
                )
            )
            shards.append(
                make_backend(
                    name,
                    seed=shard_seed,
                    crypte_query_epsilon=crypte_query_epsilon,
                    mode=mode,
                    simulate_encryption=simulate_encryption,
                    ciphertext_store=ciphertext_store,
                )()
            )
        return ShardRouter(
            shards,
            route_seed=seed,
            executor=shard_executor,
            planner=planner,
            supervisor=supervisor,
            faults=faults,
        )

    return build


# ---------------------------------------------------------------------------
# Cell specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One cell of an experiment grid.

    Every field is a plain JSON value, so a cell can be pickled into a worker
    process, fingerprinted for checkpointing, and rebuilt from an artifact.
    ``queries`` optionally restricts the scenario's evaluation queries to the
    named subset (e.g. ``("Q2",)`` for the paper's sweeps); ``None`` keeps
    every query the back-end supports.

    Fleet fields: ``n_owners`` partitions every workload stream across that
    many owners (each with its own strategy and noise stream),
    ``fleet_scenario`` names the partition policy
    (:data:`repro.workload.scenarios.FLEET_PARTITIONS`; empty selects
    round-robin), and ``n_shards`` routes the outsourced records across that
    many independent EDB shards via a
    :class:`~repro.edb.router.ShardRouter`.  The defaults (1/1) reproduce
    the single-owner, single-EDB paper setup exactly.

    Hot-path fields: ``shard_executor`` picks the router's fan-out executor
    (``"threads"`` scatters Setup/Update/Query across the shards
    concurrently; ``"serial"`` keeps the sequential loop; ``"processes"``
    moves each shard into a persistent worker process -- cell results are
    byte-identical in every case, only wall clock moves),
    ``planner`` turns the cost-based scatter planner on for sharded cells
    (``"off"`` by default -- today's always-fan-out behaviour; ``"on"``
    enables observable-identical shard pruning / executor choice / join
    probe ordering, see :mod:`repro.query.planner`),
    ``views`` registers every maintainable evaluation query as a
    delta-maintained server-side view at Setup (``"on"``; answers, QET and
    transcripts stay byte-identical to the ``"off"`` rescans, only the
    simulated work ledger moves -- see :mod:`repro.query.views`), and
    ``simulate_encryption`` runs every outsourced record through the real
    record cipher (into a contiguous ciphertext arena in fast mode, the
    per-record object store in reference mode).

    Robustness fields: ``supervisor="on"`` wraps every shard in the
    self-healing supervisor (:mod:`repro.fleet.supervisor` -- per-command
    deadlines, bounded deterministic retry, snapshot+replay-log worker
    recovery), and ``faults`` injects a deterministic fault schedule in
    :func:`repro.testing.chaos.parse_fault_schedule` syntax (a non-empty
    schedule implies supervision).  Recovery is byte-invisible in every
    paper-level observable; only measured wall clock and the health
    counters move.
    """

    strategy: str
    backend: str = "oblidb"
    scenario: str = "taxi-yellow"
    scale: float = 1.0
    epsilon: float = DEFAULT_EPSILON
    timer_period: int = DEFAULT_TIMER_PERIOD
    theta: int = DEFAULT_THETA
    flush_interval: int = DEFAULT_FLUSH.interval
    flush_size: int = DEFAULT_FLUSH.size
    flush_enabled: bool = True
    query_interval: int = DEFAULT_QUERY_INTERVAL
    horizon: int | None = None
    queries: tuple[str, ...] | None = None
    sim_seed: int = 0
    backend_seed: int = 0
    workload_seed: int = 2020
    crypte_query_epsilon: float = DEFAULT_CRYPTE_QUERY_EPSILON
    edb_mode: str = "fast"
    n_owners: int = 1
    n_shards: int = 1
    fleet_scenario: str = ""
    shard_executor: str = "threads"
    planner: str = "off"
    views: str = "off"
    supervisor: str = "off"
    faults: str = ""
    simulate_encryption: bool = False
    scenario_kwargs: tuple[tuple[str, float], ...] = ()
    cell_id: str = ""

    def __post_init__(self) -> None:
        if self.n_owners < 1 or self.n_shards < 1:
            raise ValueError("n_owners and n_shards must be >= 1")
        object.__setattr__(
            self, "shard_executor", resolve_shard_executor(self.shard_executor)
        )
        object.__setattr__(self, "planner", resolve_planner_mode(self.planner))
        views = str(self.views).lower()
        if views not in ("off", "on"):
            raise ValueError(f"views must be 'off' or 'on', got {self.views!r}")
        object.__setattr__(self, "views", views)
        supervisor = str(self.supervisor).lower()
        if supervisor not in ("off", "on"):
            raise ValueError(
                f"supervisor must be 'off' or 'on', got {self.supervisor!r}"
            )
        object.__setattr__(self, "supervisor", supervisor)
        faults = str(self.faults or "")
        if faults:
            from repro.testing.chaos import parse_fault_schedule

            # Validate (and normalize) the schedule syntax at cell-build
            # time so a malformed --faults axis fails before any cell runs.
            faults = parse_fault_schedule(faults).spec()
        object.__setattr__(self, "faults", faults)
        if self.queries is not None:
            object.__setattr__(self, "queries", tuple(self.queries))
        object.__setattr__(
            self, "scenario_kwargs", tuple((k, v) for k, v in self.scenario_kwargs)
        )
        if not self.cell_id:
            object.__setattr__(self, "cell_id", self._default_cell_id())

    def _default_cell_id(self) -> str:
        parts = [
            self.strategy,
            self.backend,
            self.scenario,
            f"eps={self.epsilon:g}",
            f"T={self.timer_period}",
            f"th={self.theta}",
            f"qi={self.query_interval}",
            f"scale={self.scale:g}",
            f"seed={self.sim_seed}",
        ]
        if self.n_owners != 1 or self.n_shards != 1:
            parts.append(f"fleet={self.n_owners}x{self.n_shards}")
        parts.extend(f"{k}={v!r}" for k, v in self.scenario_kwargs)
        # The readable prefix does not cover every field (flush, horizon,
        # query subset, backend/workload seeds, ...); the content hash does,
        # so cells differing only in an unlisted field never collide.
        return "/".join(parts) + f"#{self.fingerprint()[:8]}"

    def flush_policy(self) -> FlushPolicy:
        """The cell's flush policy object."""
        if not self.flush_enabled or self.flush_size == 0:
            return FlushPolicy.disabled()
        return FlushPolicy(interval=self.flush_interval, size=self.flush_size)

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips through :meth:`from_dict`)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["queries"] = list(self.queries) if self.queries is not None else None
        payload["scenario_kwargs"] = [list(pair) for pair in self.scenario_kwargs]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CellSpec":
        """Rebuild a spec produced by :meth:`to_dict`."""
        data = dict(payload)
        if data.get("queries") is not None:
            data["queries"] = tuple(data["queries"])
        data["scenario_kwargs"] = tuple(
            (k, v) for k, v in data.get("scenario_kwargs", ())
        )
        return cls(**data)

    def fingerprint(self) -> str:
        """Stable content hash used to validate checkpoint artifacts.

        Covers every field except ``cell_id`` (which may itself embed the
        fingerprint): two specs with equal content always share a
        fingerprint, regardless of how they were labelled.
        """
        payload = self.to_dict()
        payload.pop("cell_id")
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Cell execution (this is what worker processes run)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=8)
def _cached_workloads(scenario: str, seed: int, scale: float, kwargs_items: tuple):
    """Per-process scenario cache: cells sharing a workload build it once.

    Safe to share because :class:`Simulation` only reads the update streams.
    """
    return build_scenario(scenario, seed=seed, scale=scale, **dict(kwargs_items))


def supported_backend_queries(backend: str, queries: Sequence[Query]) -> list[Query]:
    """Drop query shapes a back-end cannot run (joins on Crypt-epsilon).

    The single source of the backend/query compatibility rule: both the grid
    runner and ``EndToEndConfig.queries_for_backend`` delegate here (the
    Simulation would skip unsupported queries at run time anyway; filtering
    up front keeps the declared query set honest).
    """
    if backend.startswith("crypt"):
        return [
            q
            for q in queries
            if not isinstance(q, (JoinCountQuery, MultiJoinCountQuery))
        ]
    return list(queries)


def _queries_for(spec: CellSpec) -> list[Query]:
    queries = scenario_queries(spec.scenario)
    if spec.queries is not None:
        wanted = set(spec.queries)
        queries = [q for q in queries if q.name in wanted]
    return supported_backend_queries(spec.backend, queries)


def _safe_cell_name(spec: CellSpec) -> str:
    """Filesystem-safe per-cell name shared by checkpoints and persist dirs."""
    safe = "".join(c if c.isalnum() or c in "-_=." else "_" for c in spec.cell_id)
    return f"{safe[:80]}-{spec.fingerprint()}"


def _cell_persist_dir(
    persist_dir: str | os.PathLike | None, spec: CellSpec
) -> Path | None:
    """Per-cell snapshot-store directory under the grid's ``persist_dir``.

    Keyed by the cell's fingerprint (not only its id), so a re-parameterized
    cell never resumes from a stale snapshot of its previous definition.
    """
    if persist_dir is None:
        return None
    return Path(persist_dir) / _safe_cell_name(spec)


def run_cell(
    spec: CellSpec, persist_dir: str | os.PathLike | None = None
) -> RunResult:
    """Execute one grid cell and return its :class:`RunResult`.

    All randomness derives from the seeds recorded on the spec, so the result
    is identical no matter which process (or machine) runs the cell.  With
    ``persist_dir``, the cell writes kill-safe mid-run snapshots into its own
    fingerprint-keyed subdirectory and resumes from them (see
    :meth:`Simulation.run`); the replay is bit-identical either way.
    """
    workloads = _cached_workloads(
        spec.scenario, spec.workload_seed, spec.scale, spec.scenario_kwargs
    )
    schemas = None
    if spec.n_owners > 1:
        # Partitions inherit the unpartitioned stream's schema: a small or
        # skewed partition may be empty, which carries no record to derive
        # a schema from but is a perfectly valid (idle) fleet member.
        schemas = {}
        for stream, workload in workloads.items():
            schema = derive_schema(stream, workload)
            for index in range(spec.n_owners):
                schemas[f"{stream}#{index}"] = schema
        workloads = partition_fleet(
            workloads, spec.n_owners, policy=spec.fleet_scenario or "round-robin"
        )
    config = SimulationConfig(
        strategy=spec.strategy,
        epsilon=spec.epsilon,
        timer_period=spec.timer_period,
        theta=spec.theta,
        flush=spec.flush_policy(),
        query_interval=spec.query_interval,
        horizon=spec.horizon,
        seed=spec.sim_seed,
        views=spec.views,
    )
    if (
        spec.n_shards > 1
        or spec.planner == "on"
        or spec.supervisor == "on"
        or spec.faults
    ):
        # A planner-on (or supervised / fault-injected) cell always runs
        # through a router (a one-shard router is byte-identical to the
        # plain back-end, so K=1 cells stay comparable to their unsharded
        # twins while exercising the planner's executor choice or the
        # supervisor's recovery path).
        edb_factory: Callable[[], EncryptedDatabase] = make_sharded_backend(
            spec.backend,
            spec.n_shards,
            seed=spec.backend_seed,
            crypte_query_epsilon=spec.crypte_query_epsilon,
            mode=spec.edb_mode,
            simulate_encryption=spec.simulate_encryption,
            shard_executor=spec.shard_executor,
            planner=spec.planner,
            supervisor=spec.supervisor,
            faults=spec.faults,
        )
    else:
        edb_factory = make_backend(
            spec.backend,
            seed=spec.backend_seed,
            crypte_query_epsilon=spec.crypte_query_epsilon,
            mode=spec.edb_mode,
            simulate_encryption=spec.simulate_encryption,
        )
    simulation = Simulation(
        edb_factory=edb_factory,
        workloads=workloads,
        queries=_queries_for(spec),
        config=config,
        schemas=schemas,
    )
    return simulation.run(persist_dir=_cell_persist_dir(persist_dir, spec))


def _run_cell_timed(
    spec: CellSpec, persist_dir: str | os.PathLike | None = None
) -> tuple[RunResult, float]:
    start = time.perf_counter()
    result = run_cell(spec, persist_dir=persist_dir)
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# Grid enumeration
# ---------------------------------------------------------------------------

#: CellSpec fields that may be used as grid parameter axes.
_AXIS_FIELDS = frozenset(
    {
        "epsilon",
        "timer_period",
        "theta",
        "flush_interval",
        "flush_size",
        "query_interval",
        "scale",
        "horizon",
        "crypte_query_epsilon",
        "n_owners",
        "n_shards",
        "fleet_scenario",
        "planner",
        "views",
        "supervisor",
        "faults",
    }
)


@dataclass(frozen=True)
class ExperimentGrid:
    """Declarative enumeration of grid cells over four kinds of axes.

    ``strategies`` x ``backends`` x ``scenarios`` are the categorical axes;
    ``parameters`` maps :class:`CellSpec` field names (epsilon, timer_period,
    theta, query_interval, scale, ...) to value sequences and contributes one
    axis per entry (sorted by name for a stable cell order).  ``base``
    provides every non-swept field.

    Each cell receives its own ``SeedSequence`` child spawned from
    ``base_seed``; the child's first three words become the cell's simulation
    / backend / workload seeds.  Seeds therefore depend only on the grid
    definition and the cell's index -- not on scheduling.
    """

    strategies: tuple[str, ...]
    backends: tuple[str, ...] = ("oblidb",)
    scenarios: tuple[str, ...] = ("taxi-yellow",)
    parameters: Mapping[str, Sequence] = field(default_factory=dict)
    base: CellSpec = field(default_factory=lambda: CellSpec(strategy="dp-timer"))
    base_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategies", tuple(self.strategies))
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "parameters", dict(self.parameters))
        unknown = set(self.parameters) - _AXIS_FIELDS
        if unknown:
            raise ValueError(
                f"unknown parameter axes {sorted(unknown)}; "
                f"allowed: {sorted(_AXIS_FIELDS)}"
            )
        if not self.strategies:
            raise ValueError("grid needs at least one strategy")

    def __len__(self) -> int:
        n = len(self.strategies) * len(self.backends) * len(self.scenarios)
        for values in self.parameters.values():
            n *= len(values)
        return n

    def cells(self) -> list[CellSpec]:
        """Enumerate the grid as fully-seeded :class:`CellSpec` objects."""
        param_names = sorted(self.parameters)
        param_axes = [self.parameters[name] for name in param_names]
        combos = list(
            itertools.product(
                self.strategies, self.backends, self.scenarios, *param_axes
            )
        )
        children = np.random.SeedSequence(self.base_seed).spawn(len(combos))
        cells: list[CellSpec] = []
        for (strategy, backend, scenario, *values), child in zip(combos, children):
            sim_seed, backend_seed, workload_seed = (
                int(word) for word in child.generate_state(3, dtype=np.uint32)
            )
            overrides = dict(zip(param_names, values))
            id_parts = [strategy, backend, scenario] + [
                f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
                for name, value in zip(param_names, values)
            ]
            cells.append(
                replace(
                    self.base,
                    strategy=strategy,
                    backend=backend,
                    scenario=scenario,
                    sim_seed=sim_seed,
                    backend_seed=backend_seed,
                    workload_seed=workload_seed,
                    cell_id="/".join(id_parts),
                    **overrides,
                )
            )
        return cells


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class GridResult:
    """Outcome of one :meth:`GridRunner.run` call.

    ``results`` preserves cell-enumeration order.  ``resumed`` lists the
    cell ids whose results were loaded from checkpoint artifacts instead of
    being recomputed.
    """

    results: dict[str, RunResult]
    elapsed_seconds: float
    resumed: tuple[str, ...] = ()
    cell_seconds: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, cell_id: str) -> RunResult:
        return self.results[cell_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def executed(self) -> tuple[str, ...]:
        """Cell ids that were actually computed this run."""
        resumed = set(self.resumed)
        return tuple(cid for cid in self.results if cid not in resumed)


@dataclass
class _ComputeProgress:
    """ETA bookkeeping over the cells that actually need computing.

    Resumed cells are excluded: they load in microseconds, and averaging them
    into the per-cell rate would make the ETA claim an almost-finished sweep
    while all the compute still lies ahead.
    """

    pending_total: int
    done_offset: int
    computed: int = 0
    started: float = field(default_factory=time.perf_counter)

    def advance(self) -> tuple[int, float]:
        """Mark one computed cell; return (overall done count, eta seconds)."""
        self.computed += 1
        elapsed = time.perf_counter() - self.started
        eta = (elapsed / self.computed) * (self.pending_total - self.computed)
        return self.done_offset + self.computed, eta


class GridRunner:
    """Run grid cells serially or on a process pool, with checkpoint/resume.

    Parameters
    ----------
    n_workers:
        ``None`` or ``<= 1`` runs every cell in-process (the serial path);
        ``>= 2`` uses a ``ProcessPoolExecutor`` with that many workers.
        Results are bit-identical either way.
    artifact_dir:
        When given, each completed cell is written to
        ``<artifact_dir>/cells/<id>-<fingerprint>.json`` (atomically) and a
        ``manifest.json`` describes the grid.  A later run over the same
        cells loads matching artifacts instead of recomputing -- cells whose
        spec changed (different fingerprint) are re-run and overwritten.
    progress:
        ``True`` prints per-cell completion lines with elapsed time and a
        simple remaining-cells ETA to stderr; a callable receives the same
        information as a dict (keys ``done``, ``total``, ``cell_id``,
        ``cell_seconds``, ``elapsed_seconds``, ``eta_seconds``, ``resumed``).
    persist_dir:
        When given, every *running* cell additionally snapshots its full
        mid-run state (EDB, owners, ground truth, partial result) into
        ``<persist_dir>/<id>-<fingerprint>/`` after each query observation
        via :class:`~repro.edb.store.SnapshotStore`.  A killed sweep then
        resumes each unfinished cell from its last snapshot instead of
        restarting it, with a bit-identical replay; the per-cell store is
        removed once the cell completes (``artifact_dir`` checkpoints cover
        finished cells).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        artifact_dir: str | os.PathLike | None = None,
        progress: bool | Callable[[dict], None] = False,
        persist_dir: str | os.PathLike | None = None,
    ) -> None:
        self._n_workers = n_workers
        self._artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self._progress = progress
        self._persist_dir = Path(persist_dir) if persist_dir is not None else None

    # -- artifact layout ------------------------------------------------------

    def _cell_path(self, spec: CellSpec) -> Path:
        return self._artifact_dir / "cells" / f"{_safe_cell_name(spec)}.json"

    def _load_checkpoint(self, spec: CellSpec) -> tuple[RunResult, float] | None:
        if self._artifact_dir is None:
            return None
        path = self._cell_path(spec)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("fingerprint") != spec.fingerprint():
            return None
        return (
            RunResult.from_dict(payload["result"]),
            float(payload.get("elapsed_seconds", 0.0)),
        )

    def _save_checkpoint(self, spec: CellSpec, result: RunResult, seconds: float) -> None:
        if self._artifact_dir is None:
            return
        path = self._cell_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": spec.fingerprint(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
            "elapsed_seconds": round(seconds, 4),
        }
        # Atomic + fsync'd: a SIGKILL mid-write must never leave a torn
        # checkpoint that a resume would have to guess about.
        atomic_write_text(path, json.dumps(payload, indent=1) + "\n")

    def _write_manifest(self, cells: Sequence[CellSpec]) -> None:
        if self._artifact_dir is None:
            return
        self._artifact_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": 1,
            "n_cells": len(cells),
            "cells": [
                {"cell_id": spec.cell_id, "fingerprint": spec.fingerprint()}
                for spec in cells
            ],
        }
        atomic_write_text(
            self._artifact_dir / "manifest.json",
            json.dumps(manifest, indent=1) + "\n",
        )

    # -- progress -------------------------------------------------------------

    def _report(
        self,
        done: int,
        total: int,
        spec: CellSpec,
        cell_seconds: float,
        started: float,
        resumed: bool,
        eta: float = 0.0,
    ) -> None:
        if not self._progress:
            return
        elapsed = time.perf_counter() - started
        event = {
            "done": done,
            "total": total,
            "cell_id": spec.cell_id,
            "cell_seconds": round(cell_seconds, 3),
            "elapsed_seconds": round(elapsed, 3),
            "eta_seconds": round(eta, 3),
            "resumed": resumed,
        }
        if callable(self._progress):
            self._progress(event)
            return
        tag = "resumed" if resumed else f"{cell_seconds:6.2f}s"
        print(
            f"[{done}/{total}] {spec.cell_id}: {tag}"
            f" | elapsed {elapsed:6.1f}s | eta {eta:6.1f}s",
            file=sys.stderr,
        )

    # -- execution ------------------------------------------------------------

    def run(self, grid: ExperimentGrid | Sequence[CellSpec]) -> GridResult:
        """Execute (or resume) every cell and return results in cell order."""
        cells = list(grid.cells()) if isinstance(grid, ExperimentGrid) else list(grid)
        seen: set[str] = set()
        for spec in cells:
            if spec.cell_id in seen:
                raise ValueError(f"duplicate cell id {spec.cell_id!r}")
            seen.add(spec.cell_id)

        started = time.perf_counter()
        self._write_manifest(cells)

        results: dict[str, RunResult] = {}
        cell_seconds: dict[str, float] = {}
        resumed: list[str] = []
        pending: list[CellSpec] = []
        for spec in cells:
            checkpoint = self._load_checkpoint(spec)
            if checkpoint is not None:
                results[spec.cell_id] = checkpoint[0]
                cell_seconds[spec.cell_id] = checkpoint[1]
                resumed.append(spec.cell_id)
            else:
                pending.append(spec)

        done = len(resumed)
        total = len(cells)
        if resumed and self._progress:
            resumed_set = set(resumed)
            index = 0
            for spec in cells:
                if spec.cell_id in resumed_set:
                    index += 1
                    self._report(
                        index,
                        total,
                        spec,
                        cell_seconds[spec.cell_id],
                        started,
                        resumed=True,
                    )

        # ETA is based on *computed* cells only: resumed cells load in
        # microseconds and would otherwise make the estimate claim a nearly
        # finished sweep while all the compute still lies ahead.
        progress = _ComputeProgress(pending_total=len(pending), done_offset=done)
        workers = self._effective_workers(len(pending))
        if workers <= 1:
            for spec in pending:
                result, seconds = _run_cell_timed(spec, self._persist_dir)
                self._record(spec, result, seconds, results, cell_seconds)
                done, eta = progress.advance()
                self._report(done, total, spec, seconds, started, resumed=False, eta=eta)
        else:
            done = self._run_pool(
                pending, workers, results, cell_seconds, progress, total, started
            )

        ordered = {
            spec.cell_id: results[spec.cell_id] for spec in cells
        }
        return GridResult(
            results=ordered,
            elapsed_seconds=time.perf_counter() - started,
            resumed=tuple(resumed),
            cell_seconds=cell_seconds,
        )

    def _record(
        self,
        spec: CellSpec,
        result: RunResult,
        seconds: float,
        results: dict[str, RunResult],
        cell_seconds: dict[str, float],
    ) -> None:
        results[spec.cell_id] = result
        cell_seconds[spec.cell_id] = seconds
        self._save_checkpoint(spec, result, seconds)

    def _effective_workers(self, n_pending: int) -> int:
        if self._n_workers is None:
            return 1
        return max(1, min(self._n_workers, n_pending))

    def _run_pool(
        self,
        pending: Sequence[CellSpec],
        workers: int,
        results: dict[str, RunResult],
        cell_seconds: dict[str, float],
        progress: "_ComputeProgress",
        total: int,
        started: float,
    ) -> int:
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=preferred_mp_context()
        )
        done = progress.done_offset
        try:
            future_to_spec = {
                executor.submit(_run_cell_timed, spec, self._persist_dir): spec
                for spec in pending
            }
            remaining = set(future_to_spec)
            # FIRST_COMPLETED keeps checkpoints and progress incremental: each
            # cell is persisted as soon as it finishes, so an interrupted
            # sweep resumes from everything already computed rather than
            # losing the whole pool's work.
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = future_to_spec[future]
                    result, seconds = future.result()  # re-raises worker errors
                    self._record(spec, result, seconds, results, cell_seconds)
                    done, eta = progress.advance()
                    self._report(
                        done, total, spec, seconds, started, resumed=False, eta=eta
                    )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return done


# ---------------------------------------------------------------------------
# CLI smoke entry point
# ---------------------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    """Tiny CLI: run a small grid and print one summary line per cell."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.simulation.runner",
        description="Run an experiment grid over the scenario registry.",
    )
    parser.add_argument(
        "--strategies", default="dp-timer,dp-ant", help="comma-separated strategy names"
    )
    parser.add_argument("--backend", default="oblidb", choices=["oblidb", "crypte"])
    parser.add_argument("--scenario", default="sparse", help="scenario registry name")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--epsilons", default="", help="optional epsilon axis, comma-separated")
    parser.add_argument("--query-interval", type=int, default=500)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--artifact-dir", default=None)
    parser.add_argument(
        "--persist-dir",
        default=None,
        help="kill-safe mid-run persistence: each cell snapshots its full "
        "state into a fingerprint-keyed subdirectory after every query "
        "observation, and a killed sweep resumes every cell mid-run with a "
        "bit-identical replay",
    )
    parser.add_argument(
        "--edb-mode",
        default="fast",
        choices=["fast", "reference"],
        help="EDB implementation: vectorized fast path or row-at-a-time reference",
    )
    parser.add_argument(
        "--n-owners",
        type=int,
        default=1,
        help="fleet size: partition every stream across this many owners",
    )
    parser.add_argument(
        "--n-shards",
        type=int,
        default=1,
        help="shard the EDB across this many independent back-end instances",
    )
    parser.add_argument(
        "--fleet-scenario",
        default="",
        help="fleet partition policy (round-robin / hash-user; default round-robin)",
    )
    parser.add_argument(
        "--shard-executor",
        default="threads",
        choices=["threads", "serial", "processes"],
        help="shard fan-out executor: concurrent thread pool (default), the "
        "sequential loop, or persistent per-shard worker processes; cell "
        "results are byte-identical in every case",
    )
    parser.add_argument(
        "--planner",
        default="off",
        choices=["off", "on"],
        help="cost-based scatter planner for sharded cells: shard pruning, "
        "per-shard executor choice and join probe ordering, calibrated by "
        "the measured ledger; cell results are byte-identical either way",
    )
    parser.add_argument(
        "--views",
        default="off",
        choices=["off", "on"],
        help="delta-maintained server-side views for the covered query "
        "fragment: registered at Setup, fed an O(|batch|) delta by every "
        "sync, answering in O(1)/O(groups); answers, QET and transcripts "
        "are byte-identical either way, only the simulated work ledger "
        "moves",
    )
    parser.add_argument(
        "--supervisor",
        default="off",
        choices=["off", "on"],
        help="self-healing shard supervision: per-command deadlines, bounded "
        "deterministic retry, and snapshot+replay-log worker recovery; cell "
        "results are byte-identical either way, only measured wall clock "
        "and the health counters move",
    )
    parser.add_argument(
        "--faults",
        default="",
        help="deterministic fault schedule, comma-separated kind[:shard]@N "
        "terms (kinds: kill delay drop raise lostshm tornsnap), e.g. "
        "'kill:1@3,raise@5'; implies --supervisor on",
    )
    parser.add_argument(
        "--simulate-encryption",
        action="store_true",
        help="run every outsourced record through the real record cipher "
        "(arena-backed in fast mode, per-record objects in reference mode)",
    )
    args = parser.parse_args(argv)

    parameters: dict[str, Sequence] = {
        "scale": [args.scale],
        "query_interval": [args.query_interval],
    }
    if args.epsilons:
        parameters["epsilon"] = [float(e) for e in args.epsilons.split(",")]
    grid = ExperimentGrid(
        strategies=tuple(args.strategies.split(",")),
        backends=(args.backend,),
        scenarios=(args.scenario,),
        parameters=parameters,
        base=CellSpec(
            strategy="dp-timer",
            edb_mode=args.edb_mode,
            n_owners=args.n_owners,
            n_shards=args.n_shards,
            fleet_scenario=args.fleet_scenario,
            shard_executor=args.shard_executor,
            planner=args.planner,
            views=args.views,
            supervisor=args.supervisor,
            faults=args.faults,
            simulate_encryption=args.simulate_encryption,
        ),
        base_seed=args.seed,
    )
    runner = GridRunner(
        n_workers=args.workers,
        artifact_dir=args.artifact_dir,
        progress=True,
        persist_dir=args.persist_dir,
    )
    outcome = runner.run(grid)
    for cell_id, result in outcome.results.items():
        summary = result.summary()
        print(
            f"{cell_id}: syncs={result.sync_count}"
            f" volume={result.total_update_volume}"
            f" mean_gap={summary['mean_logical_gap']:.2f}"
            f" total_mb={summary['total_data_mb']:.3f}"
        )
    print(
        f"{len(outcome)} cells in {outcome.elapsed_seconds:.2f}s"
        f" ({len(outcome.resumed)} resumed)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
