"""Experiment configurations for every table and figure of Section 8.

The defaults match the paper: ``epsilon = 0.5``, cache flush ``f = 2000`` /
``s = 15``, ``T = 30`` for DP-Timer, ``theta = 15`` for DP-ANT, test queries
issued every 360 time units (six hours), Crypt-epsilon answer budget 3, and
the June-2020 taxi workloads (43,200 time units).

Every experiment accepts a ``scale`` parameter so tests and quick benchmark
runs can use a down-scaled workload (same shape, smaller horizon); the
benchmark harness defaults to the full-size workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.strategies.flush import FlushPolicy
from repro.edb.base import EncryptedDatabase
from repro.edb.crypte import CryptEpsilon
from repro.edb.oblidb import ObliDB
from repro.query.ast import Query
from repro.query.sql import parse_query
from repro.simulation.results import RunResult
from repro.simulation.simulator import Simulation, SimulationConfig
from repro.workload.nyc_taxi import (
    generate_green_taxi,
    generate_yellow_cab,
    JUNE_2020_MINUTES,
    GREEN_TARGET_RECORDS,
    YELLOW_TARGET_RECORDS,
)
from repro.workload.stream import GrowingDatabase

__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_TIMER_PERIOD",
    "DEFAULT_THETA",
    "DEFAULT_FLUSH",
    "DEFAULT_QUERY_INTERVAL",
    "DEFAULT_CRYPTE_QUERY_EPSILON",
    "ALL_STRATEGIES",
    "EndToEndConfig",
    "default_queries",
    "make_backend",
    "taxi_workloads",
    "run_end_to_end",
    "run_privacy_sweep",
    "run_parameter_sweep",
]

DEFAULT_EPSILON: float = 0.5
DEFAULT_TIMER_PERIOD: int = 30
DEFAULT_THETA: int = 15
DEFAULT_FLUSH: FlushPolicy = FlushPolicy(interval=2000, size=15)
DEFAULT_QUERY_INTERVAL: int = 360
DEFAULT_CRYPTE_QUERY_EPSILON: float = 3.0

#: Strategy names of the end-to-end comparison, in the paper's order.
ALL_STRATEGIES: tuple[str, ...] = ("sur", "set", "oto", "dp-timer", "dp-ant")

#: The paper's three test queries (Section 8, "Testing query").
Q1_SQL = "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100"
Q2_SQL = "SELECT pickupID, COUNT(*) AS PickupCnt FROM YellowCab GROUP BY pickupID"
Q3_SQL = (
    "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi "
    "ON YellowCab.pickTime = GreenTaxi.pickTime"
)


def default_queries() -> list[Query]:
    """Q1 (range count), Q2 (group-by count), Q3 (join count)."""
    return [
        parse_query(Q1_SQL, label="Q1"),
        parse_query(Q2_SQL, label="Q2"),
        parse_query(Q3_SQL, label="Q3"),
    ]


def make_backend(
    name: str,
    seed: int = 0,
    crypte_query_epsilon: float = DEFAULT_CRYPTE_QUERY_EPSILON,
) -> Callable[[], EncryptedDatabase]:
    """A factory for one of the two evaluated back-ends (``"oblidb"`` / ``"crypte"``)."""
    key = name.lower()
    if key in ("oblidb", "obli-db", "l0"):
        return lambda: ObliDB(rng=np.random.default_rng(seed + 1))
    if key in ("crypte", "crypt-epsilon", "crypteps", "ldp"):
        return lambda: CryptEpsilon(
            query_epsilon=crypte_query_epsilon, rng=np.random.default_rng(seed + 2)
        )
    raise KeyError(f"unknown back-end {name!r}; expected 'oblidb' or 'crypte'")


def taxi_workloads(
    scale: float = 1.0,
    include_green: bool = True,
    seed: int = 2020,
) -> dict[str, GrowingDatabase]:
    """The (possibly down-scaled) June-2020 taxi workloads.

    ``scale=1.0`` reproduces the paper's setting (43,200 time units, 18,429
    Yellow Cab and 21,300 Green Boro records).  Smaller scales shrink both
    the horizon and the record counts proportionally while keeping the
    diurnal shape, so the accuracy/performance trade-offs keep their shape.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    horizon = max(60, int(JUNE_2020_MINUTES * scale))
    yellow = generate_yellow_cab(
        rng=np.random.default_rng(seed),
        horizon=horizon,
        target_records=min(horizon, max(10, int(YELLOW_TARGET_RECORDS * scale))),
    )
    workloads: dict[str, GrowingDatabase] = {yellow.table: yellow}
    if include_green:
        green = generate_green_taxi(
            rng=np.random.default_rng(seed + 1),
            horizon=horizon,
            target_records=min(horizon, max(10, int(GREEN_TARGET_RECORDS * scale))),
        )
        workloads[green.table] = green
    return workloads


@dataclass(frozen=True)
class EndToEndConfig:
    """Configuration of the Section 8.1 end-to-end comparison."""

    backend: str = "oblidb"
    strategies: tuple[str, ...] = ALL_STRATEGIES
    epsilon: float = DEFAULT_EPSILON
    timer_period: int = DEFAULT_TIMER_PERIOD
    theta: int = DEFAULT_THETA
    flush: FlushPolicy = field(default_factory=lambda: DEFAULT_FLUSH)
    query_interval: int = DEFAULT_QUERY_INTERVAL
    scale: float = 1.0
    seed: int = 0

    def queries_for_backend(self) -> list[Query]:
        """Q1/Q2/Q3 for ObliDB; Crypt-epsilon does not support joins (Q3)."""
        queries = default_queries()
        if self.backend.startswith("crypt"):
            return [q for q in queries if q.name != "Q3"]
        return queries


def run_end_to_end(config: EndToEndConfig | None = None) -> dict[str, RunResult]:
    """Run the end-to-end comparison (Table 5, Figures 2-4) for one back-end.

    Returns a mapping ``strategy name -> RunResult``.
    """
    config = config or EndToEndConfig()
    include_green = not config.backend.startswith("crypt")
    workloads = taxi_workloads(
        scale=config.scale, include_green=include_green, seed=2020 + config.seed
    )
    queries = config.queries_for_backend()
    results: dict[str, RunResult] = {}
    for index, strategy in enumerate(config.strategies):
        sim_config = SimulationConfig(
            strategy=strategy,
            epsilon=config.epsilon,
            timer_period=config.timer_period,
            theta=config.theta,
            flush=config.flush,
            query_interval=config.query_interval,
            seed=config.seed * 1000 + index,
        )
        simulation = Simulation(
            edb_factory=make_backend(config.backend, seed=config.seed),
            workloads=workloads,
            queries=queries,
            config=sim_config,
        )
        results[strategy] = simulation.run()
    return results


def run_privacy_sweep(
    epsilons: Sequence[float] = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0),
    backend: str = "oblidb",
    strategies: Sequence[str] = ("dp-timer", "dp-ant"),
    scale: float = 1.0,
    query_interval: int = DEFAULT_QUERY_INTERVAL,
    seed: int = 0,
) -> dict[str, dict[float, RunResult]]:
    """Figure 5: accuracy/performance of the DP strategies as epsilon varies.

    The default query is Q2 on the ObliDB back-end, as in the paper.
    Returns ``{strategy: {epsilon: RunResult}}``.
    """
    workloads = taxi_workloads(scale=scale, include_green=False, seed=2020 + seed)
    query = [q for q in default_queries() if q.name == "Q2"]
    results: dict[str, dict[float, RunResult]] = {s: {} for s in strategies}
    for strategy in strategies:
        for index, epsilon in enumerate(epsilons):
            sim_config = SimulationConfig(
                strategy=strategy,
                epsilon=epsilon,
                timer_period=DEFAULT_TIMER_PERIOD,
                theta=DEFAULT_THETA,
                flush=DEFAULT_FLUSH,
                query_interval=query_interval,
                seed=seed * 1000 + index,
            )
            simulation = Simulation(
                edb_factory=make_backend(backend, seed=seed),
                workloads=workloads,
                queries=query,
                config=sim_config,
            )
            results[strategy][epsilon] = simulation.run()
    return results


def run_parameter_sweep(
    strategy: str,
    values: Sequence[int] = (1, 10, 30, 100, 300, 1000),
    backend: str = "oblidb",
    epsilon: float = DEFAULT_EPSILON,
    scale: float = 1.0,
    query_interval: int = DEFAULT_QUERY_INTERVAL,
    seed: int = 0,
) -> dict[int, RunResult]:
    """Figure 6: sweep the non-privacy parameter (T or theta) at fixed epsilon.

    ``strategy`` must be ``"dp-timer"`` (sweeps T) or ``"dp-ant"`` (sweeps
    theta).  Returns ``{parameter value: RunResult}``.
    """
    if strategy not in ("dp-timer", "dp-ant"):
        raise ValueError("parameter sweeps apply to 'dp-timer' or 'dp-ant' only")
    workloads = taxi_workloads(scale=scale, include_green=False, seed=2020 + seed)
    query = [q for q in default_queries() if q.name == "Q2"]
    results: dict[int, RunResult] = {}
    for index, value in enumerate(values):
        sim_config = SimulationConfig(
            strategy=strategy,
            epsilon=epsilon,
            timer_period=value if strategy == "dp-timer" else DEFAULT_TIMER_PERIOD,
            theta=value if strategy == "dp-ant" else DEFAULT_THETA,
            flush=DEFAULT_FLUSH,
            query_interval=query_interval,
            seed=seed * 1000 + index,
        )
        simulation = Simulation(
            edb_factory=make_backend(backend, seed=seed),
            workloads=workloads,
            queries=query,
            config=sim_config,
        )
        results[value] = simulation.run()
    return results
