"""Experiment configurations for every table and figure of Section 8.

The defaults match the paper: ``epsilon = 0.5``, cache flush ``f = 2000`` /
``s = 15``, ``T = 30`` for DP-Timer, ``theta = 15`` for DP-ANT, test queries
issued every 360 time units (six hours), Crypt-epsilon answer budget 3, and
the June-2020 taxi workloads (43,200 time units).

Every experiment accepts a ``scale`` parameter so tests and quick benchmark
runs can use a down-scaled workload (same shape, smaller horizon); the
benchmark harness defaults to the full-size workload.

Since the parallel-runner refactor these drivers are thin wrappers that
enumerate :class:`~repro.simulation.runner.CellSpec` cells and hand them to
:class:`~repro.simulation.runner.GridRunner`: pass ``n_workers`` to run the
cells of a figure concurrently and ``artifact_dir`` to checkpoint/resume
them.  Cell seeds reproduce the historical serial loop exactly, so results
are bit-identical to the pre-runner implementation (and to each other across
worker counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.strategies.flush import FlushPolicy
from repro.query.ast import Query
from repro.simulation.results import RunResult
from repro.simulation.runner import (
    DEFAULT_CRYPTE_QUERY_EPSILON,
    DEFAULT_EPSILON,
    DEFAULT_FLUSH,
    DEFAULT_QUERY_INTERVAL,
    DEFAULT_THETA,
    DEFAULT_TIMER_PERIOD,
    CellSpec,
    GridRunner,
    make_backend,
    supported_backend_queries,
)
from repro.workload.scenarios import (
    PAPER_Q1_SQL as Q1_SQL,
    PAPER_Q2_SQL as Q2_SQL,
    PAPER_Q3_SQL as Q3_SQL,
    build_scenario,
    taxi_queries,
)
from repro.workload.stream import GrowingDatabase

__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_TIMER_PERIOD",
    "DEFAULT_THETA",
    "DEFAULT_FLUSH",
    "DEFAULT_QUERY_INTERVAL",
    "DEFAULT_CRYPTE_QUERY_EPSILON",
    "ALL_STRATEGIES",
    "EndToEndConfig",
    "default_queries",
    "make_backend",
    "taxi_workloads",
    "run_end_to_end",
    "run_privacy_sweep",
    "run_parameter_sweep",
]

#: Strategy names of the end-to-end comparison, in the paper's order.
ALL_STRATEGIES: tuple[str, ...] = ("sur", "set", "oto", "dp-timer", "dp-ant")


def default_queries() -> list[Query]:
    """Q1 (range count), Q2 (group-by count), Q3 (join count)."""
    return taxi_queries()


def taxi_workloads(
    scale: float = 1.0,
    include_green: bool = True,
    seed: int = 2020,
) -> dict[str, GrowingDatabase]:
    """The (possibly down-scaled) June-2020 taxi workloads.

    ``scale=1.0`` reproduces the paper's setting (43,200 time units, 18,429
    Yellow Cab and 21,300 Green Boro records).  Smaller scales shrink both
    the horizon and the record counts proportionally while keeping the
    diurnal shape, so the accuracy/performance trade-offs keep their shape.

    This is the ``taxi-june`` / ``taxi-yellow`` scenario of the registry
    (:mod:`repro.workload.scenarios`).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    name = "taxi-june" if include_green else "taxi-yellow"
    return build_scenario(name, seed=seed, scale=scale)


@dataclass(frozen=True)
class EndToEndConfig:
    """Configuration of the Section 8.1 end-to-end comparison."""

    backend: str = "oblidb"
    strategies: tuple[str, ...] = ALL_STRATEGIES
    epsilon: float = DEFAULT_EPSILON
    timer_period: int = DEFAULT_TIMER_PERIOD
    theta: int = DEFAULT_THETA
    flush: FlushPolicy = field(default_factory=lambda: DEFAULT_FLUSH)
    query_interval: int = DEFAULT_QUERY_INTERVAL
    scale: float = 1.0
    seed: int = 0

    def queries_for_backend(self) -> list[Query]:
        """Q1/Q2/Q3 for ObliDB; Crypt-epsilon does not support joins (Q3)."""
        return supported_backend_queries(self.backend, default_queries())

    def cells(self) -> list[CellSpec]:
        """One grid cell per strategy, with the historical seed layout."""
        include_green = not self.backend.startswith("crypt")
        return [
            CellSpec(
                strategy=strategy,
                backend=self.backend,
                scenario="taxi-june" if include_green else "taxi-yellow",
                scale=self.scale,
                epsilon=self.epsilon,
                timer_period=self.timer_period,
                theta=self.theta,
                flush_interval=self.flush.interval,
                flush_size=self.flush.size,
                flush_enabled=self.flush.enabled,
                query_interval=self.query_interval,
                sim_seed=self.seed * 1000 + index,
                backend_seed=self.seed,
                workload_seed=2020 + self.seed,
            )
            for index, strategy in enumerate(self.strategies)
        ]


def run_end_to_end(
    config: EndToEndConfig | None = None,
    n_workers: int | None = None,
    artifact_dir: str | None = None,
) -> dict[str, RunResult]:
    """Run the end-to-end comparison (Table 5, Figures 2-4) for one back-end.

    Returns a mapping ``strategy name -> RunResult``.  ``n_workers`` runs the
    per-strategy cells on a process pool; ``artifact_dir`` checkpoints each
    completed cell and resumes from it on re-runs.
    """
    config = config or EndToEndConfig()
    cells = config.cells()
    outcome = GridRunner(n_workers=n_workers, artifact_dir=artifact_dir).run(cells)
    return {
        spec.strategy: outcome[spec.cell_id] for spec in cells
    }


def run_privacy_sweep(
    epsilons: Sequence[float] = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0),
    backend: str = "oblidb",
    strategies: Sequence[str] = ("dp-timer", "dp-ant"),
    scale: float = 1.0,
    query_interval: int = DEFAULT_QUERY_INTERVAL,
    seed: int = 0,
    n_workers: int | None = None,
    artifact_dir: str | None = None,
) -> dict[str, dict[float, RunResult]]:
    """Figure 5: accuracy/performance of the DP strategies as epsilon varies.

    The default query is Q2 on the ObliDB back-end, as in the paper.
    Returns ``{strategy: {epsilon: RunResult}}``.
    """
    cells: list[tuple[str, float, CellSpec]] = []
    for strategy in strategies:
        for index, epsilon in enumerate(epsilons):
            cells.append(
                (
                    strategy,
                    epsilon,
                    CellSpec(
                        strategy=strategy,
                        backend=backend,
                        scenario="taxi-yellow",
                        scale=scale,
                        epsilon=epsilon,
                        query_interval=query_interval,
                        queries=("Q2",),
                        sim_seed=seed * 1000 + index,
                        backend_seed=seed,
                        workload_seed=2020 + seed,
                    ),
                )
            )
    outcome = GridRunner(n_workers=n_workers, artifact_dir=artifact_dir).run(
        [spec for _, _, spec in cells]
    )
    results: dict[str, dict[float, RunResult]] = {s: {} for s in strategies}
    for strategy, epsilon, spec in cells:
        results[strategy][epsilon] = outcome[spec.cell_id]
    return results


def run_parameter_sweep(
    strategy: str,
    values: Sequence[int] = (1, 10, 30, 100, 300, 1000),
    backend: str = "oblidb",
    epsilon: float = DEFAULT_EPSILON,
    scale: float = 1.0,
    query_interval: int = DEFAULT_QUERY_INTERVAL,
    seed: int = 0,
    n_workers: int | None = None,
    artifact_dir: str | None = None,
) -> dict[int, RunResult]:
    """Figure 6: sweep the non-privacy parameter (T or theta) at fixed epsilon.

    ``strategy`` must be ``"dp-timer"`` (sweeps T) or ``"dp-ant"`` (sweeps
    theta).  Returns ``{parameter value: RunResult}``.
    """
    if strategy not in ("dp-timer", "dp-ant"):
        raise ValueError("parameter sweeps apply to 'dp-timer' or 'dp-ant' only")
    cells: list[tuple[int, CellSpec]] = []
    for index, value in enumerate(values):
        cells.append(
            (
                value,
                CellSpec(
                    strategy=strategy,
                    backend=backend,
                    scenario="taxi-yellow",
                    scale=scale,
                    epsilon=epsilon,
                    timer_period=value if strategy == "dp-timer" else DEFAULT_TIMER_PERIOD,
                    theta=value if strategy == "dp-ant" else DEFAULT_THETA,
                    query_interval=query_interval,
                    queries=("Q2",),
                    sim_seed=seed * 1000 + index,
                    backend_seed=seed,
                    workload_seed=2020 + seed,
                ),
            )
        )
    outcome = GridRunner(n_workers=n_workers, artifact_dir=artifact_dir).run(
        [spec for _, spec in cells]
    )
    return {value: outcome[spec.cell_id] for value, spec in cells}
