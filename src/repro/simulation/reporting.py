"""Text renderers for the paper's tables and figure series.

Every benchmark prints its output through these helpers so that the rows and
series line up with what the paper reports:

* :func:`format_table2` -- the analytic strategy comparison;
* :func:`format_table3` -- the leakage-group classification;
* :func:`format_table5` -- the aggregated end-to-end statistics;
* :func:`format_figure_series` -- ``(x, y)`` series for the figures;
* :func:`format_headline_claims` -- the abstract's "520x better accuracy than
  OTO" and "5.72x faster than SET" claims, recomputed from the measured runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.dp.theory import strategy_comparison_table
from repro.edb.leakage import leakage_group_table
from repro.simulation.results import RunResult

__all__ = [
    "format_table2",
    "format_table3",
    "format_table5",
    "format_figure_series",
    "format_headline_claims",
    "headline_claims",
]

_STRATEGY_LABELS = {
    "sur": "SUR",
    "set": "SET",
    "oto": "OTO",
    "dp-timer": "DP-Timer",
    "dp-ant": "DP-ANT",
}


def _label(strategy: str) -> str:
    return _STRATEGY_LABELS.get(strategy, strategy)


def format_table2() -> str:
    """Render Table 2 (analytic comparison of synchronization strategies)."""
    rows = strategy_comparison_table()
    header = f"{'Strategy':<10} {'Group privacy':<14} {'Logical gap':<28} {'Outsourced records'}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.strategy:<10} {row.group_privacy:<14} {row.logical_gap:<28} "
            f"{row.outsourced_records}"
        )
    return "\n".join(lines)


def format_table3() -> str:
    """Render Table 3 (leakage groups and example schemes)."""
    table = leakage_group_table()
    lines = ["Leakage group  Encrypted database schemes", "-" * 60]
    for leakage_class, schemes in table.items():
        lines.append(f"{leakage_class.value:<14} {', '.join(schemes)}")
    return "\n".join(lines)


def format_table5(results_by_backend: Mapping[str, Mapping[str, RunResult]]) -> str:
    """Render the aggregated end-to-end statistics (Table 5 layout).

    ``results_by_backend`` maps a back-end label (``"Crypt-epsilon"`` /
    ``"ObliDB"``) to its per-strategy :class:`RunResult` mapping.
    """
    lines: list[str] = []
    for backend, results in results_by_backend.items():
        strategies = list(results)
        lines.append(f"== {backend} ==")
        header = f"{'Metric':<26}" + "".join(f"{_label(s):>12}" for s in strategies)
        lines.append(header)
        lines.append("-" * len(header))
        query_names: list[str] = []
        for result in results.values():
            for name in result.query_names():
                if name not in query_names:
                    query_names.append(name)
        for query_name in query_names:
            lines.append(
                f"{query_name + ' mean L1 err':<26}"
                + "".join(f"{results[s].mean_l1_error(query_name):>12.2f}" for s in strategies)
            )
            lines.append(
                f"{query_name + ' max L1 err':<26}"
                + "".join(f"{results[s].max_l1_error(query_name):>12.2f}" for s in strategies)
            )
            lines.append(
                f"{query_name + ' mean QET (s)':<26}"
                + "".join(f"{results[s].mean_qet(query_name):>12.2f}" for s in strategies)
            )
        lines.append(
            f"{'Mean logical gap':<26}"
            + "".join(f"{results[s].mean_logical_gap():>12.2f}" for s in strategies)
        )
        lines.append(
            f"{'Total data (Mb)':<26}"
            + "".join(f"{results[s].total_data_megabytes():>12.2f}" for s in strategies)
        )
        lines.append(
            f"{'Dummy data (Mb)':<26}"
            + "".join(f"{results[s].dummy_data_megabytes():>12.2f}" for s in strategies)
        )
        lines.append("")
    return "\n".join(lines)


def format_figure_series(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 20,
) -> str:
    """Render named ``(x, y)`` series as an aligned text table.

    Long series are thinned to at most ``max_points`` evenly spaced points so
    benchmark output stays readable; the underlying data is available from
    the returned :class:`RunResult` objects for plotting.
    """
    lines = [title, "-" * len(title), f"{'series':<12} {x_label:>12} {y_label:>14}"]
    for name, points in series.items():
        points = list(points)
        if len(points) > max_points:
            step = max(1, len(points) // max_points)
            points = points[::step]
        for x, y in points:
            lines.append(f"{name:<12} {x:>12.3f} {y:>14.4f}")
    return "\n".join(lines)


def headline_claims(results: Mapping[str, RunResult]) -> dict[str, float]:
    """Recompute the abstract's headline ratios from one back-end's results.

    Returns a dictionary with:

    * ``accuracy_gain_vs_oto`` -- OTO's worst mean L1 error divided by the DP
      strategies' (paper: up to 520x);
    * ``qet_gain_vs_set`` -- SET's worst mean QET divided by the DP
      strategies' on the same query (paper: up to 5.72x);
    * ``storage_overhead_vs_sur`` -- DP total data divided by SUR total data
      (paper: at most ~1.06);
    * ``set_data_multiple_of_dp`` -- SET total data divided by DP total data
      (paper: at least ~2.1x).
    """
    dp_strategies = [s for s in ("dp-timer", "dp-ant") if s in results]
    if not dp_strategies:
        raise ValueError("headline claims require at least one DP strategy result")

    claims: dict[str, float] = {}

    if "oto" in results:
        ratios = []
        for query_name in results["oto"].query_names():
            oto_err = results["oto"].mean_l1_error(query_name)
            for strategy in dp_strategies:
                dp_err = results[strategy].mean_l1_error(query_name)
                if dp_err > 0:
                    ratios.append(oto_err / dp_err)
        claims["accuracy_gain_vs_oto"] = max(ratios) if ratios else float("inf")

    if "set" in results:
        ratios = []
        for query_name in results["set"].query_names():
            set_qet = results["set"].mean_qet(query_name)
            for strategy in dp_strategies:
                dp_qet = results[strategy].mean_qet(query_name)
                if dp_qet > 0:
                    ratios.append(set_qet / dp_qet)
        claims["qet_gain_vs_set"] = max(ratios) if ratios else float("inf")
        dp_data = min(results[s].total_data_megabytes() for s in dp_strategies)
        if dp_data > 0:
            claims["set_data_multiple_of_dp"] = (
                results["set"].total_data_megabytes() / dp_data
            )

    if "sur" in results:
        sur_data = results["sur"].total_data_megabytes()
        if sur_data > 0:
            claims["storage_overhead_vs_sur"] = max(
                results[s].total_data_megabytes() / sur_data for s in dp_strategies
            )

    return claims


def format_headline_claims(results: Mapping[str, RunResult]) -> str:
    """Human-readable rendering of :func:`headline_claims`."""
    claims = headline_claims(results)
    descriptions = {
        "accuracy_gain_vs_oto": "DP accuracy gain vs OTO (paper: up to 520x)",
        "qet_gain_vs_set": "DP QET gain vs SET (paper: up to 5.72x)",
        "storage_overhead_vs_sur": "DP storage multiple of SUR (paper: <= ~1.06x)",
        "set_data_multiple_of_dp": "SET data multiple of DP (paper: >= ~2.1x)",
    }
    lines = ["Headline claims (measured):"]
    for key, value in claims.items():
        lines.append(f"  {descriptions.get(key, key)}: {value:.2f}x")
    return "\n".join(lines)
