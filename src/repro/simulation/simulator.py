"""The end-to-end simulator.

:class:`Simulation` replays one or more growing databases (one per table)
against a single EDB back-end, with one owner + synchronization strategy per
table, and issues the evaluation queries on a fixed schedule.  It collects
the traces the paper's figures and tables are built from.

This mirrors the paper's experimental client: "the client takes as input a
timestamped dataset but consumes only one record per round", with a one
minute gap between rounds (Section 8, implementation and configuration).

Since the event-driven refactor, :meth:`Simulation.run` is a thin wrapper
over :class:`repro.engine.Engine`: owners are woken only at logical arrivals
and at their strategies' self-scheduled times (timer boundaries, flush
ticks), and ground-truth answers are maintained incrementally instead of
rescanning the logical tables at every query time.  The original per-tick
loop survives as :meth:`Simulation.run_legacy`; both paths produce
bit-identical :class:`RunResult`\\ s at a fixed seed (see
``tests/test_engine_equivalence.py``) and the benchmark
``benchmarks/bench_engine_speed.py`` tracks the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.analyst import Analyst
from repro.core.owner import Owner
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.registry import make_strategy
from repro.edb.base import EncryptedDatabase
from repro.edb.records import Schema, make_dummy_record
from repro.engine import Engine
from repro.query.ast import Query
from repro.query.incremental import IncrementalTruth
from repro.simulation.clock import SimulationClock
from repro.simulation.results import QueryTrace, RunResult, TimePoint
from repro.workload.stream import GrowingDatabase

__all__ = ["SimulationConfig", "Simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run."""

    strategy: str = "dp-timer"
    epsilon: float = 0.5
    timer_period: int = 30
    theta: int = 15
    flush: FlushPolicy = field(default_factory=FlushPolicy)
    query_interval: int = 360
    horizon: int | None = None
    seed: int = 0

    def with_overrides(self, **overrides) -> "SimulationConfig":
        """A copy with some fields replaced."""
        current = {
            "strategy": self.strategy,
            "epsilon": self.epsilon,
            "timer_period": self.timer_period,
            "theta": self.theta,
            "flush": self.flush,
            "query_interval": self.query_interval,
            "horizon": self.horizon,
            "seed": self.seed,
        }
        current.update(overrides)
        return SimulationConfig(**current)


@dataclass
class _RunContext:
    """Everything one run (engine or legacy) operates on."""

    edb: EncryptedDatabase
    analyst: Analyst
    owners: dict[str, Owner]
    result: RunResult
    queries: list[Query]
    horizon: int


class Simulation:
    """Replay growing databases against an EDB under one strategy.

    Parameters
    ----------
    edb_factory:
        Zero-argument callable building a fresh EDB back-end for the run.
    workloads:
        Mapping ``table name -> GrowingDatabase``.  One owner (with its own
        strategy instance and cache) is created per table; they all share the
        single EDB, as in the paper's join experiment.
    queries:
        The evaluation queries; queries a back-end cannot execute (e.g. joins
        on Crypt-epsilon) are skipped automatically.
    schemas:
        Optional mapping ``table name -> Schema``; derived from the workload
        records when omitted.
    config:
        Run parameters (strategy, privacy budget, query schedule, ...).
    """

    def __init__(
        self,
        edb_factory: Callable[[], EncryptedDatabase],
        workloads: Mapping[str, GrowingDatabase],
        queries: Sequence[Query],
        config: SimulationConfig,
        schemas: Mapping[str, Schema] | None = None,
    ) -> None:
        if not workloads:
            raise ValueError("at least one workload table is required")
        self._edb_factory = edb_factory
        self._workloads = dict(workloads)
        self._queries = list(queries)
        self._config = config
        self._schemas = dict(schemas) if schemas else {}
        for table, workload in self._workloads.items():
            if table not in self._schemas:
                self._schemas[table] = self._derive_schema(table, workload)

    @staticmethod
    def _derive_schema(table: str, workload: GrowingDatabase) -> Schema:
        for record in list(workload.initial) + [u for u in workload.updates if u]:
            return Schema(name=table, attributes=tuple(record.values.keys()))
        raise ValueError(
            f"workload for table {table!r} is empty; pass its schema explicitly"
        )

    # -- main entry points --------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the simulation on the event-driven engine.

        Owners are woken only at logical arrivals and at their strategies'
        :meth:`~repro.core.strategies.base.SyncStrategy.next_event` times;
        every skipped tick is a strategy no-op, so the result is identical to
        :meth:`run_legacy` at the same seed.
        """
        ctx = self._build()
        truth = ctx.analyst.truth_source
        engine = Engine(ctx.horizon)
        for table, owner in ctx.owners.items():
            engine.add_stream(
                table,
                deliver=self._make_deliver(table, owner, truth),
                arrivals=self._workloads[table].arrivals(),
                next_self_event=owner.strategy.next_event,
            )
        if self._config.query_interval:
            engine.add_periodic(
                self._config.query_interval,
                lambda time: self._observe(time, ctx),
            )
        engine.run()
        return self._finalize(ctx)

    def run_legacy(self) -> RunResult:
        """Execute the simulation with the original per-tick loop.

        Kept as the reference implementation: it visits every owner at every
        time unit and recomputes ground truth by rescanning the logical
        tables.  The equivalence tests pin :meth:`run` against it.
        """
        ctx = self._build(incremental_truth=False)
        clock = SimulationClock(
            horizon=ctx.horizon, query_interval=self._config.query_interval
        )
        for time in clock.iter_ticks():
            for table, owner in ctx.owners.items():
                update = self._workloads[table].update_at(time)
                owner.tick(time, update)
            if clock.is_query_time():
                self._observe(time, ctx)
        return self._finalize(ctx)

    # -- construction ---------------------------------------------------------------

    def _build(self, incremental_truth: bool = True) -> _RunContext:
        """Instantiate the EDB, owners and analyst shared by both run modes."""
        config = self._config
        edb = self._edb_factory()

        horizon = config.horizon
        if horizon is None:
            horizon = max(w.horizon for w in self._workloads.values())

        runnable_queries = [q for q in self._queries if edb.supports(q)]
        truth: IncrementalTruth | None = None
        if incremental_truth:
            truth = IncrementalTruth()
            for query in runnable_queries:
                if truth.can_maintain(query):
                    truth.register(query)
        analyst = Analyst(edb, truth_source=truth)

        # One independent noise stream per table: SeedSequence children keep
        # runs reproducible from one seed while adding or removing a table
        # leaves every other table's noise untouched.
        children = np.random.SeedSequence(config.seed).spawn(len(self._workloads))
        owners: dict[str, Owner] = {}
        for (table, workload), child in zip(self._workloads.items(), children):
            schema = self._schemas[table]
            strategy = make_strategy(
                config.strategy,
                dummy_factory=lambda t, s=schema: make_dummy_record(s, t),
                rng=np.random.default_rng(child),
                epsilon=config.epsilon,
                period=config.timer_period,
                theta=config.theta,
                flush=config.flush,
            )
            owner = Owner(schema=schema, strategy=strategy, edb=edb)
            owner.initialize(workload.initial)
            if truth is not None:
                truth.ingest(table, workload.initial)
            owners[table] = owner

        result = RunResult(
            strategy=config.strategy,
            backend=edb.scheme_name,
            epsilon=config.epsilon,
            parameters={
                "timer_period": config.timer_period,
                "theta": config.theta,
                "flush_interval": config.flush.interval,
                "flush_size": config.flush.size,
                "query_interval": config.query_interval,
                "horizon": horizon,
                "seed": config.seed,
            },
        )
        return _RunContext(
            edb=edb,
            analyst=analyst,
            owners=owners,
            result=result,
            queries=runnable_queries,
            horizon=horizon,
        )

    @staticmethod
    def _make_deliver(table: str, owner: Owner, truth: IncrementalTruth | None):
        def deliver(time, update):
            owner.tick(time, update)
            if update is not None and truth is not None:
                truth.ingest_one(table, update)

        return deliver

    # -- internals ------------------------------------------------------------------

    def _finalize(self, ctx: _RunContext) -> RunResult:
        """Final snapshot plus run-level totals (shared by both run modes)."""
        result = ctx.result
        # Always capture the final state even if the horizon is not a
        # multiple of the query interval.
        if not result.timeline or result.timeline[-1].time != ctx.horizon:
            self._snapshot(ctx.horizon, ctx.owners, ctx.edb, result)
        result.sync_count = sum(o.strategy.sync_count for o in ctx.owners.values())
        result.total_update_volume = sum(
            o.update_pattern.total_volume() for o in ctx.owners.values()
        )
        return result

    def _observe(self, time: int, ctx: _RunContext) -> None:
        logical_tables = lambda: {
            table: owner.logical_database for table, owner in ctx.owners.items()
        }
        for query in ctx.queries:
            observation = ctx.analyst.query(query, logical_tables, time=time)
            ctx.result.add_query_trace(
                QueryTrace(
                    time=time,
                    query_name=query.name,
                    l1_error=observation.l1_error,
                    qet_seconds=observation.qet_seconds,
                )
            )
        self._snapshot(time, ctx.owners, ctx.edb, ctx.result)

    @staticmethod
    def _snapshot(
        time: int,
        owners: Mapping[str, Owner],
        edb: EncryptedDatabase,
        result: RunResult,
    ) -> None:
        dummy_records = edb.dummy_count
        storage = edb.storage_bytes
        per_record_bytes = edb.cost_model.parameters.record_storage_bytes
        # The paper reports the logical gap of the primary (Yellow Cab) table;
        # we follow that convention: the first workload table is primary.
        primary_owner = next(iter(owners.values()))
        result.add_time_point(
            TimePoint(
                time=time,
                outsourced_records=edb.outsourced_count,
                dummy_records=dummy_records,
                storage_bytes=storage,
                dummy_bytes=dummy_records * per_record_bytes,
                logical_gap=primary_owner.logical_gap,
                logical_size=sum(o.logical_size for o in owners.values()),
            )
        )
