"""The end-to-end simulator.

:class:`Simulation` replays one or more growing databases against a single
EDB back-end (or a :class:`~repro.edb.router.ShardRouter` over several
shards), with one owner + synchronization strategy per update stream, and
issues the evaluation queries on a fixed schedule.  It collects the traces
the paper's figures and tables are built from.

This mirrors the paper's experimental client: "the client takes as input a
timestamped dataset but consumes only one record per round", with a one
minute gap between rounds (Section 8, implementation and configuration).

Workloads are keyed by *stream name*.  In the paper's single-owner shape the
stream name is the table name (one owner per table); a fleet run passes
several streams of the same table -- e.g. the partitions produced by
:func:`repro.workload.scenarios.partition_fleet` -- and gets one fleet member
per stream, all outsourcing to the shared EDB.  The owners are coordinated
through a :class:`repro.fleet.Deployment`, whose per-member strategies draw
from ``SeedSequence``-spawned noise streams.

Since the event-driven refactor, :meth:`Simulation.run` is a thin wrapper
over :class:`repro.engine.Engine`: every owner's stream is interleaved in one
event heap, woken only at its logical arrivals and at its strategy's
self-scheduled times (timer boundaries, flush ticks), and ground-truth
answers are maintained incrementally instead of rescanning the logical
tables at every query time.  The original per-tick loop survives as
:meth:`Simulation.run_legacy`; both paths produce bit-identical
:class:`RunResult`\\ s at a fixed seed (see
``tests/test_engine_equivalence.py``) and the benchmark
``benchmarks/bench_engine_speed.py`` tracks the speedup.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.analyst import Analyst
from repro.core.owner import Owner
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.registry import make_strategy
from repro.edb.base import EncryptedDatabase
from repro.edb.records import Schema, SchemaDummyFactory
from repro.engine import Engine
from repro.fleet import Deployment
from repro.query.ast import Query
from repro.query.incremental import IncrementalTruth
from repro.simulation.clock import SimulationClock
from repro.simulation.results import QueryTrace, RunResult, TimePoint
from repro.workload.stream import GrowingDatabase

__all__ = ["SimulationConfig", "Simulation", "derive_schema"]

logger = logging.getLogger(__name__)


def derive_schema(stream: str, workload: GrowingDatabase) -> Schema:
    """Derive a stream's schema from its first record.

    Raises ``ValueError`` for an empty workload -- callers that know the
    schema from elsewhere (e.g. fleet partitions of a non-empty stream,
    where a small partition may be empty) should pass it explicitly.
    """
    record = next(
        (r for r in workload.initial), None
    ) or next((u for u in workload.updates if u is not None), None)
    if record is None:
        raise ValueError(
            f"workload for stream {stream!r} is empty; pass its schema explicitly"
        )
    return Schema(name=workload.table, attributes=tuple(record.values.keys()))


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run."""

    strategy: str = "dp-timer"
    epsilon: float = 0.5
    timer_period: int = 30
    theta: int = 15
    flush: FlushPolicy = field(default_factory=FlushPolicy)
    query_interval: int = 360
    horizon: int | None = None
    seed: int = 0
    #: ``"on"`` registers delta-maintained EDB views for every runnable
    #: maintainable query at Setup; ``"off"`` keeps the rescan-only paths.
    #: Answers, QET observables and transcripts are identical either way.
    views: str = "off"

    def with_overrides(self, **overrides) -> "SimulationConfig":
        """A copy with some fields replaced."""
        current = {
            "strategy": self.strategy,
            "epsilon": self.epsilon,
            "timer_period": self.timer_period,
            "theta": self.theta,
            "flush": self.flush,
            "query_interval": self.query_interval,
            "horizon": self.horizon,
            "seed": self.seed,
            "views": self.views,
        }
        current.update(overrides)
        return SimulationConfig(**current)


@dataclass
class _RunContext:
    """Everything one run (engine or legacy) operates on."""

    edb: EncryptedDatabase
    analyst: Analyst
    owners: dict[str, Owner]
    deployment: Deployment
    result: RunResult
    queries: list[Query]
    horizon: int


class Simulation:
    """Replay growing databases against an EDB under one strategy.

    Parameters
    ----------
    edb_factory:
        Zero-argument callable building a fresh EDB back-end (or shard
        router) for the run.
    workloads:
        Mapping ``stream name -> GrowingDatabase``.  One owner (with its own
        strategy instance and cache) is created per stream; they all share
        the single EDB.  In the single-owner-per-table shape the stream name
        is the table name; fleet runs pass several streams per table.
    queries:
        The evaluation queries; queries a back-end cannot execute (e.g. joins
        on Crypt-epsilon) are skipped automatically.
    schemas:
        Optional mapping ``stream name -> Schema``; derived from the workload
        records when omitted.
    config:
        Run parameters (strategy, privacy budget, query schedule, ...).
    """

    def __init__(
        self,
        edb_factory: Callable[[], EncryptedDatabase],
        workloads: Mapping[str, GrowingDatabase],
        queries: Sequence[Query],
        config: SimulationConfig,
        schemas: Mapping[str, Schema] | None = None,
    ) -> None:
        if not workloads:
            raise ValueError("at least one workload stream is required")
        self._edb_factory = edb_factory
        self._workloads = dict(workloads)
        self._queries = list(queries)
        self._config = config
        self._schemas = dict(schemas) if schemas else {}
        for stream, workload in self._workloads.items():
            if stream not in self._schemas:
                self._schemas[stream] = derive_schema(stream, workload)

    # -- main entry points --------------------------------------------------------

    def run(
        self,
        persist_dir: str | os.PathLike | None = None,
        persist_passphrase: str | None = None,
    ) -> RunResult:
        """Execute the simulation on the event-driven engine.

        Owners are woken only at logical arrivals and at their strategies'
        :meth:`~repro.core.strategies.base.SyncStrategy.next_event` times;
        every skipped tick is a strategy no-op, so the result is identical to
        :meth:`run_legacy` at the same seed.

        When ``persist_dir`` is given, the run writes a durable
        :class:`~repro.edb.store.SnapshotStore` snapshot after every query
        observation and, if a valid snapshot of the *same* configuration is
        already present, resumes from it instead of starting over -- a killed
        run replays bit-identically (answers, QET, aggregate and per-shard
        update-pattern transcripts).  The store is cleared once the run
        completes.  ``persist_passphrase`` seals the snapshots at rest.
        Registered external table sources are not persisted (arbitrary
        callables); re-registration is the caller's responsibility.
        """
        store = None
        if persist_dir is not None:
            from repro.edb.store import SnapshotStore

            store = SnapshotStore(persist_dir, passphrase=persist_passphrase)
        ctx, resume_time = self._build_or_resume(store)
        try:
            truth = ctx.analyst.truth_source
            engine = Engine(ctx.horizon, start_time=resume_time)
            for stream, owner in ctx.owners.items():
                engine.add_stream(
                    stream,
                    deliver=self._make_deliver(owner, truth),
                    arrivals=self._workloads[stream].arrivals(),
                    next_self_event=owner.strategy.next_event,
                    resume_at=owner.current_time if resume_time else 0,
                )
            if self._config.query_interval:
                engine.add_periodic(
                    self._config.query_interval,
                    lambda time: self._observe(time, ctx),
                )
                if store is not None:
                    # Registered after the observation periodic of the same
                    # interval, so every snapshot already includes the query
                    # trace of its own time unit.
                    engine.add_periodic(
                        self._config.query_interval,
                        lambda time: self._persist(time, ctx, store),
                    )
            engine.run()
            result = self._finalize(ctx)
            if store is not None:
                store.clear()
            return result
        finally:
            self._close_edb(ctx)

    def run_legacy(self) -> RunResult:
        """Execute the simulation with the original per-tick loop.

        Kept as the reference implementation: it visits every owner at every
        time unit and recomputes ground truth by rescanning the logical
        tables.  The equivalence tests pin :meth:`run` against it.
        """
        ctx = self._build(incremental_truth=False)
        try:
            clock = SimulationClock(
                horizon=ctx.horizon, query_interval=self._config.query_interval
            )
            for time in clock.iter_ticks():
                for stream, owner in ctx.owners.items():
                    update = self._workloads[stream].update_at(time)
                    owner.tick(time, update)
                if clock.is_query_time():
                    self._observe(time, ctx)
            return self._finalize(ctx)
        finally:
            self._close_edb(ctx)

    @staticmethod
    def _close_edb(ctx: "_RunContext") -> None:
        """Release EDB resources after a run (worker processes, shared memory).

        In-process back-ends make this a cheap no-op, but a run over a
        process-executor :class:`~repro.edb.router.ShardRouter` must always
        tear its workers down, even when the run raises.
        """
        close = getattr(ctx.edb, "close", None)
        if close is not None:
            close()

    # -- durability -----------------------------------------------------------------

    def _config_signature(self) -> str:
        """Fingerprint of everything a resumed run must share with the run
        that wrote the snapshot (the grid runner's sorted-JSON scheme)."""
        config = self._config
        payload = {
            "strategy": config.strategy,
            "epsilon": config.epsilon,
            "timer_period": config.timer_period,
            "theta": config.theta,
            "flush": [config.flush.interval, config.flush.size],
            "query_interval": config.query_interval,
            "horizon": config.horizon,
            "seed": config.seed,
            "views": config.views,
            "streams": sorted(self._workloads),
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def _build_or_resume(self, store) -> tuple[_RunContext, int]:
        """Resume from the newest valid snapshot, else build from scratch."""
        if store is not None:
            snapshot = store.load_latest()
            if snapshot is not None:
                return self._resume(snapshot)
        return self._build(), 0

    def _persist(self, time: int, ctx: _RunContext, store) -> None:
        """Write one durable snapshot generation (fires after ``_observe``)."""
        from repro.edb import store as edb_store

        kind, blob = edb_store.snapshot_edb(ctx.edb)
        blobs = {
            "edb.pkl": blob,
            "owners.pkl": pickle.dumps(
                {name: owner.export_state() for name, owner in ctx.owners.items()}
            ),
            "truth.pkl": pickle.dumps(ctx.analyst.truth_source),
            "observations.pkl": pickle.dumps(list(ctx.analyst.observations)),
            "result.json": json.dumps(
                ctx.result.to_dict(), sort_keys=True
            ).encode("utf-8"),
        }
        store.save(
            blobs,
            {
                "kind": "simulation",
                "edb_kind": kind,
                "time": time,
                "horizon": ctx.horizon,
                "members": list(ctx.owners),
                "signature": self._config_signature(),
            },
        )

    def _resume(self, snapshot) -> tuple[_RunContext, int]:
        """Rebuild the run context from one :class:`EncryptedStore` snapshot."""
        from repro.edb import store as edb_store

        meta = snapshot.manifest()["meta"]
        if meta.get("kind") != "simulation":
            raise edb_store.StoreIntegrityError(
                f"store at {snapshot.path} does not hold a simulation snapshot"
            )
        if meta.get("signature") != self._config_signature():
            raise edb_store.StoreIntegrityError(
                f"snapshot at {snapshot.path} was written by a different "
                "simulation configuration"
            )
        edb = edb_store.restore_edb(meta["edb_kind"], snapshot.read_blob("edb.pkl"))
        truth = pickle.loads(snapshot.read_blob("truth.pkl"))
        deployment = Deployment(edb, truth_source=truth)
        owner_states = pickle.loads(snapshot.read_blob("owners.pkl"))
        for name in meta["members"]:
            deployment._members[name] = Owner.from_state(owner_states[name], edb)
        deployment._analyst._observations.extend(
            pickle.loads(snapshot.read_blob("observations.pkl"))
        )
        deployment._started = True
        result = RunResult.from_dict(
            json.loads(snapshot.read_blob("result.json").decode("utf-8"))
        )
        ctx = _RunContext(
            edb=edb,
            analyst=deployment.analyst,
            owners=deployment.owners,
            deployment=deployment,
            result=result,
            queries=[q for q in self._queries if edb.supports(q)],
            horizon=meta["horizon"],
        )
        return ctx, meta["time"]

    # -- construction ---------------------------------------------------------------

    def _build(self, incremental_truth: bool = True) -> _RunContext:
        """Instantiate the EDB, owner fleet and analyst shared by both modes."""
        config = self._config
        edb = self._edb_factory()

        horizon = config.horizon
        if horizon is None:
            horizon = max(w.horizon for w in self._workloads.values())

        runnable_queries = [q for q in self._queries if edb.supports(q)]
        truth: IncrementalTruth | None = None
        if incremental_truth:
            truth = IncrementalTruth()
            for query in runnable_queries:
                if truth.can_maintain(query):
                    truth.register(query)

        # One independent noise stream per owner: SeedSequence children keep
        # runs reproducible from one seed while adding or removing a stream
        # leaves every other owner's noise untouched.
        deployment = Deployment(edb, truth_source=truth)
        children = np.random.SeedSequence(config.seed).spawn(len(self._workloads))
        for (stream, workload), child in zip(self._workloads.items(), children):
            schema = self._schemas[stream]
            strategy = make_strategy(
                config.strategy,
                dummy_factory=SchemaDummyFactory(schema),
                rng=np.random.default_rng(child),
                epsilon=config.epsilon,
                period=config.timer_period,
                theta=config.theta,
                flush=config.flush,
            )
            deployment.add_owner(stream, schema, strategy)
        deployment.start(
            {stream: workload.initial for stream, workload in self._workloads.items()}
        )
        if config.views == "on":
            # Delta-maintained server-side views: registered after Setup so
            # they bootstrap from the outsourced initial databases, then fed
            # an O(|batch|) delta by every flush.  Registration never changes
            # an observable -- only the simulated work ledger records the
            # cheaper maintained answering.
            from repro.query.views import can_maintain as _can_maintain

            register_view = getattr(edb, "register_view", None)
            if register_view is not None:
                for query in runnable_queries:
                    if _can_maintain(query):
                        register_view(query)

        result = RunResult(
            strategy=config.strategy,
            backend=edb.scheme_name,
            epsilon=config.epsilon,
            parameters={
                "timer_period": config.timer_period,
                "theta": config.theta,
                "flush_interval": config.flush.interval,
                "flush_size": config.flush.size,
                "query_interval": config.query_interval,
                "horizon": horizon,
                "seed": config.seed,
            },
        )
        return _RunContext(
            edb=edb,
            analyst=deployment.analyst,
            owners=deployment.owners,
            deployment=deployment,
            result=result,
            queries=runnable_queries,
            horizon=horizon,
        )

    @staticmethod
    def _make_deliver(owner: Owner, truth: IncrementalTruth | None):
        table = owner.table

        def deliver(time, update):
            owner.tick(time, update)
            if update is not None and truth is not None:
                truth.ingest_one(table, update)

        return deliver

    # -- internals ------------------------------------------------------------------

    def _finalize(self, ctx: _RunContext) -> RunResult:
        """Final snapshot plus run-level totals (shared by both run modes)."""
        result = ctx.result
        # Always capture the final state even if the horizon is not a
        # multiple of the query interval.
        if not result.timeline or result.timeline[-1].time != ctx.horizon:
            self._snapshot(ctx.horizon, ctx.owners, ctx.edb, result)
        result.sync_count = sum(o.strategy.sync_count for o in ctx.owners.values())
        result.total_update_volume = sum(
            o.update_pattern.total_volume() for o in ctx.owners.values()
        )
        # Surface shard-recovery activity (a supervised router's measured
        # ledger): recoveries are byte-invisible in the result itself, so a
        # run that healed mid-flight says so in the log rather than nowhere.
        measured = getattr(ctx.edb, "measured", None)
        if measured is not None:
            health = getattr(measured, "health", None)
            if callable(health):
                report = health()
                if report.get("recoveries") or report.get("degraded_shards"):
                    logger.info(
                        "shard fleet healed during run: %d recoveries "
                        "(%d retries, %d batches replayed, %.3fs), "
                        "%d shard(s) degraded (%d batches dropped)",
                        report.get("recoveries", 0),
                        report.get("retries", 0),
                        report.get("replayed_batches", 0),
                        report.get("recovery_seconds", 0.0),
                        report.get("degraded_shards", 0),
                        report.get("dropped_batches", 0),
                    )
        return result

    def _observe(self, time: int, ctx: _RunContext) -> None:
        for query in ctx.queries:
            observation = ctx.analyst.query(
                query, ctx.deployment.logical_tables, time=time
            )
            ctx.result.add_query_trace(
                QueryTrace(
                    time=time,
                    query_name=query.name,
                    l1_error=observation.l1_error,
                    qet_seconds=observation.qet_seconds,
                )
            )
        self._snapshot(time, ctx.owners, ctx.edb, ctx.result)

    @staticmethod
    def _snapshot(
        time: int,
        owners: Mapping[str, Owner],
        edb: EncryptedDatabase,
        result: RunResult,
    ) -> None:
        dummy_records = edb.dummy_count
        storage = edb.storage_bytes
        per_record_bytes = edb.cost_model.parameters.record_storage_bytes
        # The paper reports the logical gap of the primary (Yellow Cab) table;
        # we follow that convention: the first workload stream names the
        # primary table, and in a fleet the table's gap is the sum over the
        # members sharing it (a single owner per table reduces to its own).
        primary_table = next(iter(owners.values())).table
        primary_gap = sum(
            o.logical_gap for o in owners.values() if o.table == primary_table
        )
        result.add_time_point(
            TimePoint(
                time=time,
                outsourced_records=edb.outsourced_count,
                dummy_records=dummy_records,
                storage_bytes=storage,
                dummy_bytes=dummy_records * per_record_bytes,
                logical_gap=primary_gap,
                logical_size=sum(o.logical_size for o in owners.values()),
            )
        )
