"""Experiment harness: drives owners, strategies and EDBs through time.

* :mod:`repro.simulation.clock` -- the discrete simulation clock;
* :mod:`repro.simulation.results` -- per-timestep traces and aggregates
  (mean/max L1 error, mean QET, logical gap, total/dummy data size);
* :mod:`repro.simulation.simulator` -- :class:`Simulation`, which replays a
  growing database against one EDB back-end and one strategy, issuing the
  evaluation queries on a fixed schedule;
* :mod:`repro.simulation.experiment` -- the experiment configurations behind
  every table and figure of Section 8;
* :mod:`repro.simulation.runner` -- the parallel experiment runner: scenario-
  matrix grids (:class:`ExperimentGrid`), a process-pool
  :class:`GridRunner` with deterministic per-cell seeds and JSON
  checkpoint/resume, and :func:`run_cell` for single cells;
* :mod:`repro.simulation.reporting` -- text renderers for the paper-style
  tables and figure series.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.results import QueryTrace, RunResult, TimePoint
from repro.simulation.simulator import Simulation, SimulationConfig
from repro.simulation.experiment import (
    DEFAULT_EPSILON,
    DEFAULT_FLUSH,
    DEFAULT_QUERY_INTERVAL,
    DEFAULT_THETA,
    DEFAULT_TIMER_PERIOD,
    EndToEndConfig,
    default_queries,
    run_end_to_end,
    run_parameter_sweep,
    run_privacy_sweep,
)
from repro.simulation.runner import (
    CellSpec,
    ExperimentGrid,
    GridResult,
    GridRunner,
    run_cell,
)
from repro.simulation.reporting import (
    format_figure_series,
    format_headline_claims,
    format_table2,
    format_table3,
    format_table5,
)

__all__ = [
    "CellSpec",
    "DEFAULT_EPSILON",
    "DEFAULT_FLUSH",
    "DEFAULT_QUERY_INTERVAL",
    "DEFAULT_THETA",
    "DEFAULT_TIMER_PERIOD",
    "EndToEndConfig",
    "ExperimentGrid",
    "GridResult",
    "GridRunner",
    "QueryTrace",
    "RunResult",
    "Simulation",
    "SimulationClock",
    "SimulationConfig",
    "TimePoint",
    "default_queries",
    "run_cell",
    "format_figure_series",
    "format_headline_claims",
    "format_table2",
    "format_table3",
    "format_table5",
    "run_end_to_end",
    "run_parameter_sweep",
    "run_privacy_sweep",
]
